"""Tests for exception handling: PUSHTRAP/POPTRAP/RAISE, try/with, and
the interaction of trap frames with checkpointing."""

from __future__ import annotations

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.errors import VMRuntimeError

RODRIGO = get_platform("rodrigo")


def run(src: str, **kw) -> bytes:
    code = compile_source(src)
    vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable", **kw))
    result = vm.run(max_instructions=5_000_000)
    assert result.status == "stopped"
    return result.stdout


class TestBasicExceptions:
    def test_raise_caught_by_wildcard(self):
        assert run('try raise "boom" with _ -> print_int 1') == b"1"

    def test_exception_value_bound(self):
        assert run('try raise 42 with e -> print_int (e + 1)') == b"43"

    def test_string_exception_pattern(self):
        src = """
        try failwith "File_not_found" with
        | "Out_of_memory" -> print_int 0
        | "File_not_found" -> print_int 1
        | _ -> print_int 2
        """
        assert run(src) == b"1"

    def test_unmatched_arm_reraises_to_outer(self):
        src = """
        try
          (try raise 7 with 5 -> print_int 50)
        with e -> print_int e
        """
        assert run(src) == b"7"

    def test_no_exception_skips_handler(self):
        assert run("try print_int 1 with _ -> print_int 2") == b"1"
        assert run("print_int (try 10 with _ -> 20)") == b"10"

    def test_uncaught_is_fatal(self):
        with pytest.raises(VMRuntimeError, match="uncaught exception: kaput"):
            run('raise "kaput"')

    def test_nested_handlers_unwind_in_order(self):
        src = """
        try
          try
            begin print_string "a"; raise "x"; print_string "never" end
          with "y" -> print_string "wrong"
        with "x" -> print_string "b"
        """
        assert run(src) == b"ab"

    def test_handler_sees_outer_locals(self):
        src = """
        let base = 100 in
        print_int (try raise 5 with e -> base + e)
        """
        assert run(src) == b"105"

    def test_raise_across_function_calls(self):
        src = """
        let rec deep n = if n = 0 then raise "bottom" else 1 + deep (n - 1);;
        try let _ = deep 50 in () with "bottom" -> print_string "caught"
        """
        assert run(src) == b"caught"

    def test_try_result_is_a_value(self):
        src = """
        let safe_div a b = try a / b with "Division_by_zero" -> 0;;
        print_int (safe_div 10 2); print_int (safe_div 1 0)
        """
        assert run(src) == b"50"

    def test_sequence_inside_try(self):
        assert run('try (print_string "x"; raise 1; ()) with _ -> print_string "y"') == b"xy"


class TestRuntimeErrorsAreCatchable:
    def test_division_by_zero(self):
        assert run('try print_int (1 / 0) with "Division_by_zero" -> print_string "div0"') == b"div0"

    def test_mod_by_zero(self):
        assert run('try print_int (1 mod 0) with _ -> print_string "m"') == b"m"

    def test_array_bounds(self):
        src = """
        let a = Array.make 3 0 in
        try print_int a.(9) with _ -> print_string "oob"
        """
        assert run(src) == b"oob"

    def test_array_set_bounds(self):
        src = """
        let a = Array.make 3 0 in
        try a.(9) <- 1 with _ -> print_string "oob"
        """
        assert run(src) == b"oob"

    def test_string_bounds(self):
        assert run('try print_int "ab".[5] with _ -> print_string "s"') == b"s"

    def test_match_failure(self):
        src = """
        try (match 3 with 0 -> () | 1 -> ()) with "Match_failure" -> print_string "mf"
        """
        assert run(src) == b"mf"

    def test_uncaught_division_still_fatal(self):
        with pytest.raises(VMRuntimeError, match="Division_by_zero"):
            run("print_int (1 / 0)")

    def test_uncaught_match_failure_still_fatal(self):
        with pytest.raises(VMRuntimeError, match="Match_failure"):
            run("match 5 with 0 -> print_int 0")


class TestExceptionsInLoopsAndThreads:
    def test_try_inside_loop(self):
        src = """
        let total = ref 0;;
        for i = 0 to 5 do
          total := !total + (try 100 / (i - 3) with _ -> 1000)
        done;;
        print_int !total
        """
        # i=0..5: 100/-3=-33, 100/-2=-50, 100/-1=-100, 1000, 100/1=100, 100/2=50
        assert run(src) == str(-33 - 50 - 100 + 1000 + 100 + 50).encode()

    def test_exception_in_thread_body_caught_inside(self):
        src = """
        let out = ref 0;;
        let t = thread_create (fun () ->
          out := (try raise 9 with e -> e * 2));;
        thread_join t;;
        print_int !out
        """
        assert run(src, quantum=20) == b"18"


class TestExceptionsAcrossCheckpoint:
    def test_checkpoint_inside_try_restores_handler(self, tmp_path):
        """A trap frame live at checkpoint time must still catch after
        restart — the frame's code pointer and stack link are fixed up."""
        src = """
        try
          begin
            checkpoint ();
            raise "after-restart"
          end
        with e -> (print_string "caught "; print_string e)
        """
        path = str(tmp_path / "t.hckp")
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        assert vm.run(max_instructions=1_000_000).stdout == b"caught after-restart"
        for target in ("rodrigo", "csd", "sp2148", "ultra64"):
            vm2, _ = restart_vm(get_platform(target), code, path)
            out = vm2.run(max_instructions=1_000_000).stdout
            assert out == b"caught after-restart", target

    def test_nested_trap_chain_survives_restart(self, tmp_path):
        src = """
        try
          try
            begin checkpoint (); raise "inner" end
          with "other" -> print_string "wrong"
        with e -> (print_string "outer got "; print_string e)
        """
        path = str(tmp_path / "n.hckp")
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        expected = vm.run(max_instructions=1_000_000).stdout
        assert expected == b"outer got inner"
        vm2, _ = restart_vm(get_platform("sp2148"), code, path)
        assert vm2.run(max_instructions=1_000_000).stdout == expected

    def test_trapsp_zero_when_no_handler(self, tmp_path):
        from repro.checkpoint.format import read_checkpoint

        path = str(tmp_path / "z.hckp")
        code = compile_source("checkpoint ();; print_int 1")
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=100_000)
        snap = read_checkpoint(path)
        assert snap.threads[0].regs.trapsp == 0

    def test_trapsp_recorded_when_handler_live(self, tmp_path):
        from repro.checkpoint.format import read_checkpoint

        path = str(tmp_path / "l.hckp")
        code = compile_source("try (checkpoint (); ()) with _ -> ();; print_int 1")
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=100_000)
        snap = read_checkpoint(path)
        assert snap.threads[0].regs.trapsp != 0
