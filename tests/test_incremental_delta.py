"""Incremental delta checkpointing (format v4): differential and fault
coverage.

The contract under test:

* a delta chain restores to *exactly* the state a full checkpoint taken
  at the same program point restores to — bit-identical restored-memory
  fingerprints and bit-identical continued output, on every simulated
  platform pair including 32<->64-bit and cross-endian hops,
* the writer's fallbacks (dirty ratio, ``full_every`` cadence, retention
  depth, failed commits) degrade deltas to fulls, never to corruption,
* chain damage is detected through the parent-SHA binding and repaired
  (or explicitly refused) by ``fsck_chain``,
* background writer failures surface as typed errors exactly once and
  poison the chain so the next checkpoint is full,
* older format versions (v1-v3) still restore.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.checkpoint.format import (
    CHECKPOINT_MAGIC_V4,
    read_checkpoint,
)
from repro.checkpoint.fsck import fsck_chain
from repro.checkpoint.reader import load_snapshot_chain, restart_vm_with_fallback
from repro.errors import CheckpointError, CheckpointIntegrityError, RestartError
from repro.metrics import DELTA, INTEGRITY
from repro.store import ChunkStore

from tests.test_vectorized_cr import restored_fingerprint

PLATFORM_NAMES = ["rodrigo", "csd", "sp2148", "ultra64"]

# A handful of checkpoints with *small* mutations in between: the ideal
# delta workload.  Output after the last checkpoint depends on the whole
# mutation history, so a wrong merge cannot produce the right answer.
PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let keep = build 150 [];;
let arr = Array.make 24 0;;
let () = for i = 0 to 23 do arr.(i) <- i * 5 done;;
let rec suml l = match l with [] -> 0 | h :: t -> h + suml t;;
checkpoint ();;
let () = for i = 0 to 23 do arr.(i) <- arr.(i) + 1 done;;
checkpoint ();;
let () = for i = 0 to 23 do arr.(i) <- arr.(i) + 2 done;;
checkpoint ();;
let () = for i = 0 to 23 do arr.(i) <- arr.(i) + 4 done;;
print_int (suml keep + arr.(7) + arr.(19));;
print_string " done";;
print_newline ();;
"""

N_CHECKPOINTS = 3


def run_chain(origin: str, path: str, **cfg_overrides):
    """Run PROGRAM on ``origin`` with incremental checkpoints enabled."""
    cfg = VMConfig(
        chkpt_filename=path,
        chkpt_mode="blocking",
        chkpt_incremental=True,
        chkpt_retain=4,
    )
    for k, v in cfg_overrides.items():
        setattr(cfg, k, v)
    code = compile_source(PROGRAM)
    vm = VirtualMachine(get_platform(origin), code, cfg)
    result = vm.run(max_instructions=5_000_000)
    assert result.status == "stopped"
    assert vm.checkpoints_taken == N_CHECKPOINTS
    return code, vm, result


def file_kind(path: str) -> str:
    with open(path, "rb") as f:
        return "delta" if f.read(6) == CHECKPOINT_MAGIC_V4 else "full"


def chain_kinds(path: str) -> list[str]:
    kinds, p, i = [], path, 0
    while os.path.exists(p):
        kinds.append(file_kind(p))
        i += 1
        p = f"{path}.{i}"
    return kinds


# ---------------------------------------------------------------------------
# Writer: chain shape and fallbacks
# ---------------------------------------------------------------------------


class TestWriterChainShape:
    def test_chain_is_delta_over_full(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        _, vm, _ = run_chain("rodrigo", path)
        # first checkpoint full, the two after it deltas; rotation puts
        # the full at the bottom of the chain
        assert chain_kinds(path) == ["delta", "delta", "full"]
        stats = vm.last_checkpoint_stats
        assert stats.kind == "delta"
        assert stats.chain_depth == 2
        assert 0 < stats.dirty_words < stats.total_words

    def test_delta_head_carries_parent_binding(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        run_chain("csd", path)
        head = read_checkpoint(path)
        parent = read_checkpoint(path + ".1")
        assert head.delta is not None and parent.delta is not None
        assert head.delta.parent_sha256 == parent.body_sha256
        base = read_checkpoint(path + ".2")
        assert base.delta is None
        assert parent.delta.parent_sha256 == base.body_sha256

    def test_full_every_forces_periodic_fulls(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        run_chain("rodrigo", path, chkpt_full_every=2)
        # cadence 2: full, delta, full -> newest-first on disk
        assert chain_kinds(path) == ["full", "delta", "full"]

    def test_zero_retention_means_all_fulls(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        _, vm, _ = run_chain("rodrigo", path, chkpt_retain=0)
        assert chain_kinds(path) == ["full"]
        assert vm.last_checkpoint_stats.kind == "full"

    def test_dirty_threshold_zero_falls_back_to_full(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        _, vm, _ = run_chain("rodrigo", path, chkpt_dirty_threshold=0.0)
        assert chain_kinds(path) == ["full"] * N_CHECKPOINTS
        assert vm.last_checkpoint_stats.kind == "full"

    def test_incremental_off_never_writes_v4(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        run_chain("rodrigo", path, chkpt_incremental=False)
        assert chain_kinds(path) == ["full"] * N_CHECKPOINTS

    def test_delta_counters_move(self, tmp_path):
        before_full = DELTA.checkpoints_full
        before_delta = DELTA.checkpoints_delta
        path = str(tmp_path / "app.hckp")
        run_chain("rodrigo", path)
        assert DELTA.checkpoints_full == before_full + 1
        assert DELTA.checkpoints_delta == before_delta + 2
        assert DELTA.delta_bytes_saved > 0

    def test_delta_head_smaller_than_full(self, tmp_path):
        inc = str(tmp_path / "inc.hckp")
        run_chain("rodrigo", inc)
        full = str(tmp_path / "full.hckp")
        run_chain("rodrigo", full, chkpt_incremental=False)
        assert os.path.getsize(inc) < os.path.getsize(full) / 2


# ---------------------------------------------------------------------------
# Differential restore: delta chain == full, on every platform pair
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("origin", PLATFORM_NAMES)
@pytest.mark.parametrize("target", PLATFORM_NAMES)
def test_delta_restore_bit_identical_to_full(origin, target, tmp_path):
    """The tentpole differential: restoring the delta head must be
    indistinguishable — restored memory and continued output — from
    restoring a full checkpoint taken at the same program point, across
    every pair including 32<->64-bit and cross-endian hops."""
    inc_path = str(tmp_path / "inc.hckp")
    code, _, baseline = run_chain(origin, inc_path)
    full_path = str(tmp_path / "full.hckp")
    run_chain(origin, full_path, chkpt_incremental=False)
    assert file_kind(inc_path) == "delta" and file_kind(full_path) == "full"

    vm_inc, _ = restart_vm(get_platform(target), code, inc_path)
    vm_full, _ = restart_vm(get_platform(target), code, full_path)
    assert restored_fingerprint(vm_inc) == restored_fingerprint(vm_full)

    out_inc = vm_inc.run(max_instructions=5_000_000)
    out_full = vm_full.run(max_instructions=5_000_000)
    assert out_inc.vm.channels.stdout_bytes() == baseline.vm.channels.stdout_bytes()
    assert out_full.vm.channels.stdout_bytes() == baseline.vm.channels.stdout_bytes()


def test_chain_merge_equals_full_snapshot(tmp_path):
    """load_snapshot_chain over the v4 chain reproduces the heap image a
    full checkpoint captured at the same point."""
    inc_path = str(tmp_path / "inc.hckp")
    run_chain("sp2148", inc_path)
    full_path = str(tmp_path / "full.hckp")
    run_chain("sp2148", full_path, chkpt_incremental=False)
    merged = load_snapshot_chain(inc_path)
    full = read_checkpoint(full_path)
    assert [
        (b, list(w)) for b, w in merged.heap_chunks
    ] == [(b, list(w)) for b, w in full.heap_chunks]
    assert merged.global_data == full.global_data
    assert merged.freelist_head == full.freelist_head


def test_every_generation_in_chain_restores(tmp_path):
    """Each rotation slot is a valid restore point (given its parents)."""
    path = str(tmp_path / "app.hckp")
    code, _, _ = run_chain("rodrigo", path)
    outputs = []
    for p in (path, path + ".1", path + ".2"):
        vm, _ = restart_vm(
            get_platform("ultra64"), code, p,
            config=VMConfig(chkpt_state="disable"),
        )
        outputs.append(vm.run(max_instructions=5_000_000).vm.channels.stdout_bytes())
    # later checkpoints replay fewer mutations but land on the same text
    assert len(set(outputs)) == 1


# ---------------------------------------------------------------------------
# Older formats keep restoring
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("version", [1, 2, 3])
def test_older_formats_still_restore(version, tmp_path):
    path = str(tmp_path / f"v{version}.hckp")
    code, _, baseline = run_chain(
        "rodrigo", path, chkpt_incremental=False, chkpt_format=version
    )
    snap = read_checkpoint(path)
    assert snap.header.format_version == version
    vm, _ = restart_vm(get_platform("csd"), code, path)
    out = vm.run(max_instructions=5_000_000)
    assert out.vm.channels.stdout_bytes() == baseline.vm.channels.stdout_bytes()


# ---------------------------------------------------------------------------
# Damage: binding detection, fallback, fsck repair
# ---------------------------------------------------------------------------


def _flip_byte(path: str, frac: float = 0.5) -> None:
    data = bytearray(open(path, "rb").read())
    data[int(len(data) * frac)] ^= 0x5A
    with open(path, "wb") as f:
        f.write(bytes(data))


class TestChainDamage:
    def test_swapped_parent_detected_by_binding(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        code, _, _ = run_chain("rodrigo", path)
        # overwrite the middle delta with the base full: every section
        # CRC still verifies, only the parent-SHA binding can catch it
        with open(path + ".2", "rb") as f:
            impostor = f.read()
        with open(path + ".1", "wb") as f:
            f.write(impostor)
        with pytest.raises(CheckpointIntegrityError, match="parent"):
            restart_vm(get_platform("rodrigo"), code, path)

    def test_fallback_walks_to_undamaged_generation(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        code, _, baseline = run_chain("rodrigo", path)
        _flip_byte(path)  # head unreadable; .1 -> .2 still a valid chain
        before = INTEGRITY.fallback_restores
        vm, stats = restart_vm_with_fallback(
            get_platform("ultra64"), code, path,
            config=VMConfig(chkpt_state="disable"),
        )
        assert stats.restored_path == path + ".1"
        assert INTEGRITY.fallback_restores == before + 1
        out = vm.run(max_instructions=5_000_000)
        assert (
            out.vm.channels.stdout_bytes()
            == baseline.vm.channels.stdout_bytes()
        )

    def test_fsck_chain_reports_healthy(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        run_chain("csd", path)
        report = fsck_chain(path)
        assert report["ok"] and report["kind"] == "delta"
        assert report["chain_depth"] == 2
        assert [e["kind"] for e in report["links"]] == ["delta", "delta", "full"]

    def test_fsck_chain_flags_binding_mismatch(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        run_chain("csd", path)
        with open(path + ".2", "rb") as f:
            impostor = f.read()
        with open(path + ".1", "wb") as f:
            f.write(impostor)
        report = fsck_chain(path)
        assert not report["ok"]
        errors = " ".join(p["error"] for p in report["problems"])
        assert "binding mismatch" in errors

    def _seed_store(self, store_root: str, path: str) -> ChunkStore:
        """Upload the pristine chain with HA-style sha-linked meta."""
        from repro.checkpoint.fsck import _chain_link_report

        store = ChunkStore(store_root)
        for p in (path, path + ".1", path + ".2"):
            link = _chain_link_report(p)
            assert link["ok"]
            meta = {
                "kind": link["kind"],
                "body_sha256": link["body_sha256"],
                "parent_sha256": link.get("parent_sha256") or "",
            }
            with open(p, "rb") as f:
                store.put_checkpoint("vm", f.read(), meta=meta)
        return store

    def test_fsck_chain_repairs_from_store(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        code, _, baseline = run_chain("rodrigo", path)
        from repro.checkpoint.fsck import LocalStoreSource

        store = self._seed_store(str(tmp_path / "store"), path)
        _flip_byte(path + ".1", 0.6)  # middle delta
        _flip_byte(path + ".2", 0.5)  # full base
        assert not fsck_chain(path)["ok"]
        report = fsck_chain(
            path, repair=True, source=LocalStoreSource(store), vm_id="vm"
        )
        assert report["ok"] and report["action"] == "repaired"
        assert report["sections_repaired"] >= 2
        vm, _ = restart_vm(get_platform("sp2148"), code, path)
        out = vm.run(max_instructions=5_000_000)
        assert (
            out.vm.channels.stdout_bytes()
            == baseline.vm.channels.stdout_bytes()
        )

    def test_fsck_chain_refuses_repair_on_unverifiable_base(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        run_chain("rodrigo", path)
        from repro.checkpoint.fsck import LocalStoreSource, _chain_link_report

        # the store holds only head and middle — the base is missing, so
        # repairing the middle delta would graft it onto garbage
        store = ChunkStore(str(tmp_path / "store"))
        for p in (path, path + ".1"):
            link = _chain_link_report(p)
            meta = {
                "kind": link["kind"],
                "body_sha256": link["body_sha256"],
                "parent_sha256": link.get("parent_sha256") or "",
            }
            with open(p, "rb") as f:
                store.put_checkpoint("vm", f.read(), meta=meta)
        _flip_byte(path + ".1", 0.6)
        _flip_byte(path + ".2", 0.5)
        report = fsck_chain(
            path, repair=True, source=LocalStoreSource(store), vm_id="vm"
        )
        assert not report["ok"]
        assert report["action"] == "refused"
        errors = " ".join(p["error"] for p in report["problems"])
        assert "refused" in errors and "no store generation" in errors


def test_delta_fuzz_scenarios_recover():
    """The fault-injection matrix over delta chains: corrupt base,
    corrupt middle, swapped parent — all detected and recovered."""
    from repro.faults.fuzz import fuzz_delta_chain

    report = fuzz_delta_chain(platforms=["rodrigo", "ultra64"])
    assert report["ok"], report["failures"]
    assert report["cases"] == 16
    outcomes = report["outcomes"]
    assert outcomes.get("detected_and_recovered", 0) > 0
    assert outcomes.get("clean_restore", 0) > 0


# ---------------------------------------------------------------------------
# Background failures, stats races, and the no-fork fallback
# ---------------------------------------------------------------------------


class TestBackgroundAndModes:
    def _finished_vm(self, platform: str, mode: str, path: str):
        code = compile_source("print_string \"x\";;")
        vm = VirtualMachine(
            get_platform(platform),
            code,
            VMConfig(
                chkpt_filename=path, chkpt_mode=mode, chkpt_incremental=True,
                chkpt_retain=4,
            ),
        )
        assert vm.run(max_instructions=1_000_000).status == "stopped"
        return vm

    def test_background_failure_surfaces_typed_error_once(self, tmp_path):
        path = str(tmp_path / "nodir" / "app.hckp")  # parent dir missing
        vm = self._finished_vm("rodrigo", "background", str(tmp_path / "ok"))
        vm.config.chkpt_filename = path
        before = INTEGRITY.background_checkpoint_failures
        vm.perform_checkpoint()
        stats = vm.last_checkpoint_stats
        assert stats.mode == "background"
        with pytest.raises(CheckpointError):
            vm.join_background_checkpoint()
        assert INTEGRITY.background_checkpoint_failures == before + 1
        # surfaced exactly once; the next join is clean
        vm.join_background_checkpoint()
        # the chain is poisoned: the next checkpoint must be full
        assert vm.delta_parent_sha is None
        vm.config.chkpt_filename = str(tmp_path / "app2.hckp")
        vm.perform_checkpoint()
        vm.join_background_checkpoint()
        assert vm.last_checkpoint_stats.kind == "full"

    def test_stats_not_completed_until_join(self, tmp_path, monkeypatch):
        """Regression for the file_bytes race: background stats must not
        claim completion (nor expose file_bytes) while the writer thread
        is still running."""
        import repro.checkpoint.writer as writer_mod

        path = str(tmp_path / "app.hckp")
        vm = self._finished_vm("rodrigo", "background", path)
        gate = threading.Event()
        real = writer_mod.write_snapshot

        def gated(*a, **kw):
            gate.wait(timeout=30)
            return real(*a, **kw)

        monkeypatch.setattr(writer_mod, "write_snapshot", gated)
        vm.perform_checkpoint()
        stats = vm.last_checkpoint_stats
        assert stats.completed is False  # writer is parked on the gate
        gate.set()
        vm.join_background_checkpoint()
        assert stats.completed is True
        assert stats.file_bytes == os.path.getsize(path)

    def test_blocking_stats_complete_immediately(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        vm = self._finished_vm("rodrigo", "blocking", path)
        vm.perform_checkpoint()
        stats = vm.last_checkpoint_stats
        assert stats.completed is True
        assert stats.file_bytes == os.path.getsize(path)

    def test_no_fork_platform_degrades_background_to_blocking(self, tmp_path):
        """pc8 (Windows NT personality) has no fork: an explicit
        background request must degrade to blocking, not hand a mutating
        VM to a concurrent serializer."""
        path = str(tmp_path / "app.hckp")
        vm = self._finished_vm("pc8", "background", path)
        vm.perform_checkpoint()
        stats = vm.last_checkpoint_stats
        assert stats.mode == "blocking"
        assert stats.completed is True
        assert vm._background_writer is None

    def test_forking_platform_honors_background(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        vm = self._finished_vm("rodrigo", "background", path)
        vm.perform_checkpoint()
        assert vm.last_checkpoint_stats.mode == "background"
        vm.join_background_checkpoint()

    def test_deltas_work_on_no_fork_platform(self, tmp_path):
        path = str(tmp_path / "app.hckp")
        code, vm, baseline = run_chain("pc8", path, chkpt_mode="background")
        assert vm.last_checkpoint_stats.mode == "blocking"
        assert chain_kinds(path) == ["delta", "delta", "full"]
        restored, _ = restart_vm(get_platform("ultra64"), code, path)
        out = restored.run(max_instructions=5_000_000)
        assert (
            out.vm.channels.stdout_bytes()
            == baseline.vm.channels.stdout_bytes()
        )


# ---------------------------------------------------------------------------
# Exhausted chains fail loudly, not wrongly
# ---------------------------------------------------------------------------


def test_missing_base_is_a_typed_chain_error(tmp_path):
    path = str(tmp_path / "app.hckp")
    code, _, _ = run_chain("rodrigo", path)
    os.unlink(path + ".2")
    with pytest.raises(CheckpointIntegrityError, match="chain"):
        restart_vm(get_platform("rodrigo"), code, path)
    with pytest.raises(RestartError):
        restart_vm_with_fallback(get_platform("rodrigo"), code, path)
