"""Unit tests for the checkpoint format framing, value conversion and
address mapping internals."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch import ARCH_32_BE, ARCH_32_LE, ARCH_64_BE, ARCH_64_LE
from repro.checkpoint.convert import ValueConverter
from repro.checkpoint.format import SectionReader, SectionWriter
from repro.memory.floats import FloatCodec
from repro.memory.strings import StringCodec
from repro.memory.values import ValueCodec


class TestSectionFraming:
    @pytest.mark.parametrize("arch", [ARCH_32_LE, ARCH_32_BE, ARCH_64_LE])
    def test_scalar_roundtrip(self, arch):
        w = SectionWriter(arch)
        w.u8(7)
        w.u32(123456)
        w.u64(2**40)
        w.i64(-99)
        w.str_lp("héllo")
        w.bytes_lp(b"\x00\x01")
        w.word(arch.word_mask)
        w.words([1, 2, 3, arch.word_mask])
        r = SectionReader(w.getvalue(), arch)
        assert r.u8() == 7
        assert r.u32() == 123456
        assert r.u64() == 2**40
        assert r.i64() == -99
        assert r.str_lp() == "héllo"
        assert r.bytes_lp() == b"\x00\x01"
        assert r.word() == arch.word_mask
        assert r.words() == [1, 2, 3, arch.word_mask]

    def test_truncation_detected(self):
        w = SectionWriter(ARCH_32_LE)
        w.u64(5)
        data = w.getvalue()[:-2]
        r = SectionReader(data, ARCH_32_LE)
        from repro.errors import CheckpointFormatError

        with pytest.raises(CheckpointFormatError):
            r.u64()

    def test_words_are_native_layout(self):
        le = SectionWriter(ARCH_32_LE)
        le.words([0x11223344])
        be = SectionWriter(ARCH_32_BE)
        be.words([0x11223344])
        # Same length header (LE), different payload order.
        assert le.getvalue()[:8] == be.getvalue()[:8]
        assert le.getvalue()[8:] == be.getvalue()[8:][::-1]


class TestValueConverter:
    def test_identity_when_same_arch(self):
        c = ValueConverter(ARCH_32_LE, ARCH_32_LE)
        assert c.identity
        assert c.convert_immediate(0x55) == 0x55
        assert c.convert_raw(0x55) == 0x55

    def test_flags(self):
        assert ValueConverter(ARCH_32_LE, ARCH_32_BE).endian_differs
        assert ValueConverter(ARCH_32_LE, ARCH_64_LE).word_size_differs
        both = ValueConverter(ARCH_32_LE, ARCH_64_BE)
        assert both.endian_differs and both.word_size_differs

    @given(st.integers(-(2**30), 2**30 - 1))
    def test_widening_preserves_ints(self, n):
        c = ValueConverter(ARCH_32_LE, ARCH_64_LE)
        v32 = ValueCodec(ARCH_32_LE)
        v64 = ValueCodec(ARCH_64_LE)
        assert v64.int_val(c.convert_immediate(v32.val_int(n))) == n

    @given(st.integers(-(2**30), 2**30 - 1))
    def test_narrow_widen_roundtrip(self, n):
        """32 -> 64 -> 32 is the identity for representable ints."""
        up = ValueConverter(ARCH_32_LE, ARCH_64_LE)
        down = ValueConverter(ARCH_64_LE, ARCH_32_LE)
        v32 = ValueCodec(ARCH_32_LE)
        w = v32.val_int(n)
        assert down.convert_immediate(up.convert_immediate(w)) == w

    def test_narrowing_wraps_with_sign(self):
        c = ValueConverter(ARCH_64_LE, ARCH_32_LE)
        v64 = ValueCodec(ARCH_64_LE)
        v32 = ValueCodec(ARCH_32_LE)
        big = 5_000_000_000
        narrowed = v32.int_val(c.convert_immediate(v64.val_int(big)))
        assert narrowed == v32.int_val(v32.val_int(big))  # same wrap rule

    @given(st.binary(max_size=64))
    def test_string_repack_all_pairs(self, data):
        archs = [ARCH_32_LE, ARCH_32_BE, ARCH_64_LE, ARCH_64_BE]
        for src in archs:
            words = StringCodec(src).encode(data)
            for dst in archs:
                c = ValueConverter(src, dst)
                assert StringCodec(dst).decode(c.repack_string(words)) == data

    @given(st.floats(allow_nan=False))
    def test_double_repack_all_pairs(self, x):
        archs = [ARCH_32_LE, ARCH_32_BE, ARCH_64_LE, ARCH_64_BE]
        for src in archs:
            words = FloatCodec(src).encode(x)
            for dst in archs:
                c = ValueConverter(src, dst)
                assert FloatCodec(dst).decode(c.repack_double(words)) == x

    def test_string_target_words(self):
        c = ValueConverter(ARCH_32_LE, ARCH_64_LE)
        words = StringCodec(ARCH_32_LE).encode(b"x" * 10)
        assert c.string_target_words(words) == 10 // 8 + 1

    def test_double_target_words(self):
        assert ValueConverter(ARCH_32_LE, ARCH_64_LE).double_target_words == 1
        assert ValueConverter(ARCH_64_LE, ARCH_32_LE).double_target_words == 2

    def test_convert_raw_sign_extends(self):
        c = ValueConverter(ARCH_32_LE, ARCH_64_LE)
        assert c.convert_raw(0xFFFFFFFF) == 0xFFFFFFFFFFFFFFFF  # -1
        assert c.convert_raw(0x7FFFFFFF) == 0x7FFFFFFF


class TestEndianFileRoundtrip:
    def test_le_to_be_to_le_checkpoint_identity(self, tmp_path):
        """LE -> BE -> LE migration reproduces the original output
        (the convert-twice path is self-inverse on live data)."""
        from repro import (
            VirtualMachine,
            VMConfig,
            compile_source,
            get_platform,
            restart_vm,
        )

        src = """
        let s = "roundtrip";;
        let f = 1.25;;
        let l = [1; 2; 3];;
        checkpoint ();;
        checkpoint ();;
        let rec sum x = match x with [] -> 0 | h :: t -> h + sum t;;
        print_string s; print_float f; print_int (sum l)
        """
        code = compile_source(src)
        path = str(tmp_path / "rt.hckp")
        cfg = VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        vm = VirtualMachine(get_platform("rodrigo"), code, cfg)
        expected = vm.run(max_instructions=1_000_000).stdout
        # Hop to big-endian (converts), checkpoint again there, hop back.
        vm_be, _ = restart_vm(get_platform("csd"), code, path, cfg)
        assert vm_be.run(max_instructions=1_000_000).stdout == expected
        vm_le, _ = restart_vm(get_platform("rodrigo"), code, path, cfg)
        assert vm_le.run(max_instructions=1_000_000).stdout == expected
