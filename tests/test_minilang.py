"""End-to-end tests: MiniML source -> byte-code -> VM execution."""

from __future__ import annotations

import pytest

from repro.arch.platforms import PLATFORMS, RODRIGO
from repro.errors import CompileError, MiniMLSyntaxError, VMRuntimeError
from repro.minilang import compile_source, parse_program, tokenize
from repro.vm import VirtualMachine, VMConfig


def run(src: str, platform=RODRIGO, max_instructions=5_000_000, **kw) -> bytes:
    code = compile_source(src)
    vm = VirtualMachine(platform, code, VMConfig(**kw))
    result = vm.run(max_instructions=max_instructions)
    assert result.status == "stopped", result.status
    return result.stdout


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("let x = 42 in x +. 3.5 (* c *) \"s\\n\"")
        kinds = [t.text for t in toks[:-1]]
        assert "let" in kinds and "42" in kinds and "+." in kinds

    def test_float_vs_array_access(self):
        toks = tokenize("a.(0) 1. 2.5")
        texts = [t.text for t in toks]
        assert ".(" in texts
        assert "1." in texts and "2.5" in texts

    def test_dotted_module_ident(self):
        toks = tokenize("Array.make 3 0")
        assert toks[0].text == "Array.make"

    def test_char_literal(self):
        toks = tokenize("'a' '\\n'")
        assert toks[0].value == ord("a")
        assert toks[1].value == 10

    def test_nested_comment(self):
        toks = tokenize("1 (* a (* b *) c *) 2")
        assert [t.value for t in toks[:-1]] == [1, 2]

    def test_unterminated_string(self):
        with pytest.raises(MiniMLSyntaxError):
            tokenize('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(MiniMLSyntaxError):
            tokenize("(* nope")


class TestParser:
    def test_top_level_items(self):
        prog = parse_program("let x = 1;; print_int x")
        assert len(prog.items) == 2

    def test_let_in_is_expression(self):
        prog = parse_program("let x = 1 in print_int x")
        assert len(prog.items) == 1

    def test_rejects_and(self):
        with pytest.raises(MiniMLSyntaxError):
            parse_program("let rec f x = g x and g x = f x;;")

    def test_match_arms(self):
        prog = parse_program("match l with [] -> 0 | h :: t -> h")
        (item,) = prog.items
        assert len(item.expr.arms) == 2


class TestBasics:
    def test_print_arith(self):
        assert run("print_int (6 * 7)") == b"42"

    def test_operator_precedence(self):
        assert run("print_int (2 + 3 * 4)") == b"14"
        assert run("print_int ((2 + 3) * 4)") == b"20"

    def test_division_and_mod(self):
        assert run("print_int (17 / 5); print_newline (); print_int (17 mod 5)") == b"3\n2"

    def test_unary_minus(self):
        assert run("print_int (-5 + 2)") == b"-3"

    def test_bool_ops(self):
        assert run("if true && not false then print_int 1 else print_int 0") == b"1"
        assert run("if false || true then print_int 1") == b"1"

    def test_comparisons(self):
        assert run("if 3 < 5 then print_int 1") == b"1"
        assert run("if 5 <= 5 then print_int 1") == b"1"
        assert run("if 3 <> 4 then print_int 1") == b"1"

    def test_string_literal_and_concat(self):
        assert run('print_string ("hello" ^ ", " ^ "world")') == b"hello, world"

    def test_string_length_and_index(self):
        assert run('print_int (String.length "abcd")') == b"4"
        assert run('print_char "xyz".[1]') == b"y"

    def test_float_arithmetic(self):
        assert run("print_float (1.5 +. 2.25)") == b"3.75"
        assert run("print_float (2.0 *. 3.5)") == b"7.0"
        assert run("if 1.5 <. 2.5 then print_int 1" if False else
                   "if lt_float 1.5 2.5 then print_int 1") == b"1"

    def test_float_int_conversion(self):
        assert run("print_int (int_of_float (float_of_int 7 *. 2.0))") == b"14"

    def test_sqrt(self):
        assert run("print_float (sqrt 16.0)") == b"4.0"

    def test_char_literals_are_ints(self):
        assert run("print_int 'A'") == b"65"


class TestBindings:
    def test_let_in(self):
        assert run("let x = 40 in print_int (x + 2)") == b"42"

    def test_nested_let(self):
        assert run("let x = 1 in let y = 2 in let z = 3 in print_int (x + y * z)") == b"7"

    def test_top_level_lets(self):
        assert run("let a = 10;; let b = a * 2;; print_int (a + b)") == b"30"

    def test_shadowing(self):
        assert run("let x = 1 in let x = x + 1 in print_int x") == b"2"

    def test_sequence_discards(self):
        assert run("let _ = 99 in (print_int 1; print_int 2)") == b"12"

    def test_unit_binding(self):
        assert run("let () = print_int 5;; print_int 6") == b"56"

    def test_unbound_identifier(self):
        with pytest.raises(CompileError):
            compile_source("print_int nope")


class TestFunctions:
    def test_simple_function(self):
        assert run("let double x = x * 2;; print_int (double 21)") == b"42"

    def test_multi_arg(self):
        assert run("let add3 a b c = a + b + c;; print_int (add3 1 2 3)") == b"6"

    def test_partial_application(self):
        assert run("let add a b = a + b in let inc = add 1 in print_int (inc 41)") == b"42"

    def test_closure_capture(self):
        assert run("let make_adder n = fun x -> x + n;; let f = make_adder 10;; print_int (f 5)") == b"15"

    def test_closure_captures_multiple(self):
        src = """
        let a = 2;;
        let f = (let b = 3 in let c = 4 in fun x -> x * b + c);;
        print_int (f 10)
        """
        assert run(src) == b"34"

    def test_recursion_factorial(self):
        src = "let rec fact n = if n <= 1 then 1 else n * fact (n - 1);; print_int (fact 10)"
        assert run(src) == b"3628800"

    def test_tail_recursion_constant_stack(self):
        # 100k iterations would overflow any reasonable stack if APPTERM
        # were not emitted for tail calls.
        src = """
        let rec loop i acc = if i = 0 then acc else loop (i - 1) (acc + i);;
        print_int (loop 100000 0)
        """
        code = compile_source(src)
        vm = VirtualMachine(RODRIGO, code)
        result = vm.run(max_instructions=20_000_000)
        # 100000*100001/2 = 5000050000 wraps into the 31-bit int range.
        v = vm.mem.values
        assert result.stdout == str(v.int_val(v.val_int(5000050000))).encode()
        assert vm.main_stack.realloc_count == 0  # constant stack space

    def test_tail_recursion_value(self):
        src = """
        let rec loop i acc = if i = 0 then acc else loop (i - 1) (acc + 1);;
        print_int (loop 50000 0)
        """
        assert run(src, max_instructions=20_000_000) == b"50000"

    def test_mutual_recursion_via_ref(self):
        src = """
        let fwd = ref (fun x -> x);;
        let rec even n = if n = 0 then true else (!fwd) (n - 1);;
        let odd n = if n = 0 then false else even (n - 1);;
        let () = fwd := odd;;
        if even 10 then print_int 1 else print_int 0
        """
        assert run(src) == b"1"

    def test_higher_order(self):
        src = """
        let twice f x = f (f x);;
        let inc x = x + 1;;
        print_int (twice inc 40)
        """
        assert run(src) == b"42"

    def test_prim_as_value(self):
        src = """
        let apply f x = f x;;
        apply print_int 7
        """
        assert run(src) == b"7"

    def test_fun_expression(self):
        assert run("print_int ((fun x y -> x - y) 50 8)") == b"42"

    def test_deep_nonTail_recursion_grows_stack(self):
        src = """
        let rec sum n = if n = 0 then 0 else n + sum (n - 1);;
        print_int (sum 5000)
        """
        code = compile_source(src)
        vm = VirtualMachine(RODRIGO, code)
        result = vm.run(max_instructions=5_000_000)
        assert result.stdout == b"12502500"
        assert vm.main_stack.realloc_count >= 1  # the stack actually grew


class TestControl:
    def test_if_without_else_is_unit(self):
        assert run("if false then print_int 1; print_int 2") == b"2"

    def test_while_loop(self):
        src = """
        let i = ref 0;;
        let total = ref 0;;
        while !i < 10 do total := !total + !i; i := !i + 1 done;;
        print_int !total
        """
        assert run(src) == b"45"

    def test_for_loop(self):
        src = """
        let total = ref 0;;
        for i = 1 to 10 do total := !total + i done;;
        print_int !total
        """
        assert run(src) == b"55"

    def test_for_downto(self):
        src = """
        let () = for i = 3 downto 1 do print_int i done
        """
        assert run(src) == b"321"

    def test_for_loop_empty_range(self):
        assert run("for i = 5 to 4 do print_int i done; print_int 9") == b"9"

    def test_begin_end(self):
        assert run("begin print_int 1; print_int 2 end") == b"12"


class TestData:
    def test_refs(self):
        assert run("let r = ref 5 in (r := !r * 2; print_int !r)") == b"10"

    def test_array_literal_and_access(self):
        assert run("let a = [| 10; 20; 30 |] in print_int (a.(1) + a.(2))") == b"50"

    def test_array_make_set_get(self):
        src = """
        let a = Array.make 5 0;;
        a.(2) <- 42;;
        print_int a.(2); print_int a.(3)
        """
        assert run(src) == b"420"

    def test_array_length(self):
        assert run("print_int (Array.length (Array.make 7 0))") == b"7"

    def test_empty_array(self):
        assert run("print_int (Array.length [||])") == b"0"

    def test_array_out_of_bounds(self):
        with pytest.raises(VMRuntimeError):
            run("let a = Array.make 2 0 in print_int a.(5)")

    def test_array_of_arrays(self):
        src = """
        let m = Array.make 3 [||];;
        for i = 0 to 2 do m.(i) <- Array.make 3 (i * 10) done;;
        print_int m.(2).(1)
        """
        assert run(src) == b"20"

    def test_string_mutation(self):
        src = """
        let s = String.make 3 'a';;
        s.[1] <- 'b';;
        print_string s
        """
        assert run(src) == b"aba"

    def test_string_of_int(self):
        assert run('print_string (string_of_int 123 ^ "!")') == b"123!"

    def test_list_literal_and_match(self):
        src = """
        let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
        print_int (sum [1; 2; 3; 4])
        """
        assert run(src) == b"10"

    def test_cons_and_match(self):
        src = """
        let l = 1 :: 2 :: [];;
        match l with
        | [] -> print_int 0
        | h :: t -> print_int h
        """
        assert run(src) == b"1"

    def test_match_int_constants(self):
        src = """
        let name n = match n with 0 -> "zero" | 1 -> "one" | _ -> "many";;
        print_string (name 0); print_string (name 1); print_string (name 9)
        """
        assert run(src) == b"zeroonemany"

    def test_match_binds_variable(self):
        assert run("match 41 with 0 -> print_int 0 | n -> print_int (n + 1)") == b"42"

    def test_match_failure(self):
        with pytest.raises(VMRuntimeError):
            run("match 5 with 0 -> print_int 0 | 1 -> print_int 1")

    def test_insertion_sort_from_paper(self):
        """The paper's Figure 9 insertion sort, near-verbatim."""
        src = """
        let rec sort lst =
          match lst with
          | [] -> []
          | head :: tail -> insert head (sort tail)
        and insert elt lst = lst
        """
        # `and` is unsupported; write the paper's program in our dialect:
        src = """
        let rec insert elt lst =
          match lst with
          | [] -> [elt]
          | head :: tail -> if elt <= head then elt :: lst else head :: insert elt tail;;
        let rec sort lst =
          match lst with
          | [] -> []
          | head :: tail -> insert head (sort tail);;
        let rec print_list l =
          match l with
          | [] -> ()
          | h :: t -> begin print_int h; print_string " "; print_list t end;;
        print_list (sort [3; 1; 4; 1; 5; 9; 2; 6])
        """
        assert run(src) == b"1 1 2 3 4 5 6 9 "


class TestMultiPlatform:
    @pytest.mark.parametrize("platform_name", sorted(PLATFORMS))
    def test_same_output_everywhere(self, platform_name):
        src = """
        let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);;
        print_int (fib 15);
        print_string " ";
        print_float (3.5 *. 2.0);
        print_string (" " ^ string_of_int (String.length "endian"))
        """
        out = run(src, platform=PLATFORMS[platform_name])
        assert out == b"610 7.0 6"

    def test_word_size_difference_is_observable(self):
        src = "print_int (1073741823 + 1)"  # 2^30 - 1 + 1
        assert run(src, platform=PLATFORMS["rodrigo"]) == str(-(2**30)).encode()
        assert run(src, platform=PLATFORMS["sp2148"]) == str(2**30).encode()


class TestGCIntegration:
    def test_heavy_allocation_with_gc(self):
        src = """
        let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
        let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
        let l = build 2000 [] in
        (gc_full_major (); print_int (sum l))
        """
        assert run(src, minor_words=512, max_instructions=10_000_000) == b"2001000"

    def test_garbage_is_collected(self):
        src = """
        let waste () =
          let rec spin i = if i = 0 then () else (let _ = [| i; i; i |] in spin (i - 1)) in
          spin 20000;;
        waste ();;
        print_int 1
        """
        code = compile_source(src)
        vm = VirtualMachine(RODRIGO, code, VMConfig(minor_words=1024))
        result = vm.run(max_instructions=10_000_000)
        assert result.stdout == b"1"
        # The heap must stay bounded: a couple of chunks at most.
        assert len(vm.mem.heap.chunks) <= 3
