"""Tests for the interpreter on hand-assembled byte-code."""

from __future__ import annotations

import pytest

from repro.arch.platforms import RODRIGO, SP2148
from repro.bytecode import Assembler, Op, disassemble
from repro.errors import VMRuntimeError
from repro.interpreter.primitives import STANDARD_PRIMITIVES
from repro.vm import VirtualMachine, VMConfig


def prim(name: str) -> int:
    return STANDARD_PRIMITIVES.by_name(name).pid


def run_asm(build, platform=RODRIGO, **kw):
    """Assemble with ``build(asm)`` and run; returns (result, stdout)."""
    asm = Assembler("test")
    build(asm)
    code = asm.assemble()
    vm = VirtualMachine(platform, code, VMConfig(**kw))
    result = vm.run(max_instructions=1_000_000)
    assert result.status == "stopped"
    return result, result.stdout


def emit_print_int(asm):
    asm.emit(Op.C_CALL, 1, prim("print_int"))


class TestArithmetic:
    def test_constant(self):
        def build(a):
            a.emit(Op.CONSTINT, 42)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"42"

    def test_mul(self):
        def build(a):
            a.emit(Op.CONSTINT, 7)
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 6)
            a.emit(Op.MULINT)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"42"

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.ADDINT, 3, 4, 7),
            (Op.SUBINT, 3, 4, -1),
            (Op.DIVINT, 7, 2, 3),
            (Op.DIVINT, -7, 2, -3),  # C-style truncation toward zero
            (Op.MODINT, -7, 2, -1),  # sign follows the dividend
            (Op.ANDINT, 6, 3, 2),
            (Op.ORINT, 6, 3, 7),
            (Op.XORINT, 6, 3, 5),
            (Op.LSLINT, 3, 4, 48),
            (Op.ASRINT, -8, 1, -4),
        ],
    )
    def test_binops(self, op, a, b, expected):
        def build(asm):
            asm.emit(Op.CONSTINT, b)
            asm.emit(Op.PUSH)
            asm.emit(Op.CONSTINT, a)
            asm.emit(op)
            emit_print_int(asm)
            asm.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == str(expected).encode()

    def test_lsrint_is_logical(self):
        # -2 tagged on 32-bit is 0xFFFFFFFD; logical shift by 1 of the
        # tagged value gives 0x7FFFFFFE|1 -> Int_val = 2**30 - 1.
        def build(asm):
            asm.emit(Op.CONSTINT, 1)
            asm.emit(Op.PUSH)
            asm.emit(Op.CONSTINT, -2)
            asm.emit(Op.LSRINT)
            emit_print_int(asm)
            asm.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == str(2**30 - 1).encode()

    def test_division_by_zero(self):
        def build(asm):
            asm.emit(Op.CONSTINT, 0)
            asm.emit(Op.PUSH)
            asm.emit(Op.CONSTINT, 1)
            asm.emit(Op.DIVINT)
            asm.emit(Op.STOP)

        with pytest.raises(VMRuntimeError):
            run_asm(build)

    def test_wraparound_32(self):
        def build(asm):
            asm.emit(Op.CONSTINT, 2**30 - 1)
            asm.emit(Op.OFFSETINT, 1)
            emit_print_int(asm)
            asm.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == str(-(2**30)).encode()

    def test_no_wraparound_64(self):
        def build(asm):
            asm.emit(Op.CONSTINT, 2**30 - 1)
            asm.emit(Op.OFFSETINT, 1)
            emit_print_int(asm)
            asm.emit(Op.STOP)

        _, out = run_asm(build, platform=SP2148)
        assert out == str(2**30).encode()


class TestBranches:
    def test_branchifnot(self):
        def build(a):
            els = a.label()
            done = a.label()
            a.emit(Op.CONSTINT, 0)  # false
            a.emit(Op.BRANCHIFNOT, els)
            a.emit(Op.CONSTINT, 111)
            a.emit(Op.BRANCH, done)
            a.place(els)
            a.emit(Op.CONSTINT, 222)
            a.place(done)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"222"

    def test_loop_sums(self):
        # sum 1..10 with a stack cell as the accumulator
        def build(a):
            loop = a.label()
            done = a.label()
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.PUSH)            # stk[0] = total
            a.emit(Op.CONSTINT, 10)
            a.emit(Op.PUSH)            # stk[0] = i, stk[1] = total
            a.place(loop)
            a.emit(Op.CHECK_SIGNALS)
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)          # i
            a.emit(Op.GTINT)           # i > 0
            a.emit(Op.BRANCHIFNOT, done)
            a.emit(Op.ACC, 0)          # i
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 2)          # total
            a.emit(Op.ADDINT)
            a.emit(Op.ASSIGN, 1)       # total += i
            a.emit(Op.ACC, 0)
            a.emit(Op.OFFSETINT, -1)
            a.emit(Op.ASSIGN, 0)       # i -= 1
            a.emit(Op.BRANCH, loop)
            a.place(done)
            a.emit(Op.ACC, 1)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"55"


class TestBlocks:
    def test_makeblock_getfield(self):
        def build(a):
            a.emit(Op.CONSTINT, 20)
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 10)
            a.emit(Op.MAKEBLOCK, 2, 0)  # block [10, 20]
            a.emit(Op.GETFIELD, 1)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"20"

    def test_setfield_and_vectlength(self):
        def build(a):
            a.emit(Op.CONSTINT, 2)
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.MAKEBLOCK, 2, 0)
            a.emit(Op.PUSH)              # save block
            a.emit(Op.CONSTINT, 99)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)            # block
            a.emit(Op.SETFIELD, 0)       # block[0] = 99
            a.emit(Op.ACC, 0)
            a.emit(Op.GETFIELD, 0)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"99"

    def test_vectitem_roundtrip(self):
        def build(a):
            # arr = array_make 3 0; arr.(1) <- 7; print arr.(1)
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 3)
            a.emit(Op.C_CALL, 2, prim("array_make"))
            a.emit(Op.PUSH)             # stk[0] = arr
            a.emit(Op.CONSTINT, 7)      # value
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 1)      # index
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 2)
            a.emit(Op.SETVECTITEM)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)
            a.emit(Op.GETVECTITEM)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"7"

    def test_vect_bounds_checked(self):
        def build(a):
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 2)
            a.emit(Op.C_CALL, 2, prim("array_make"))
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 5)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)
            a.emit(Op.GETVECTITEM)
            a.emit(Op.STOP)

        with pytest.raises(VMRuntimeError):
            run_asm(build)


class TestClosures:
    def test_simple_call(self):
        # let f x = x + 1 in print_int (f 41)
        def build(a):
            body = a.label()
            after = a.label()
            ret = a.label()
            a.emit(Op.CLOSURE, 0, body)
            a.emit(Op.PUSH)                  # stk[0] = f
            a.emit(Op.PUSH_RETADDR, ret)
            a.emit(Op.CONSTINT, 41)
            a.emit(Op.PUSH)                  # arg
            a.emit(Op.ACC, 4)                # f (above arg + 3 frame slots)
            a.emit(Op.APPLY, 1)
            a.place(ret)
            emit_print_int(a)
            a.emit(Op.POP, 1)
            a.emit(Op.STOP)
            a.place(body)
            a.emit(Op.ACC, 0)
            a.emit(Op.OFFSETINT, 1)
            a.emit(Op.RETURN, 1)

        _, out = run_asm(build)
        assert out == b"42"

    def test_captured_variable(self):
        # let y = 100 in let f x = x + y in print_int (f 1)
        def build(a):
            body = a.label()
            ret = a.label()
            a.emit(Op.CONSTINT, 100)
            a.emit(Op.CLOSURE, 1, body)     # captures accu (y) in env[1]
            a.emit(Op.PUSH)
            a.emit(Op.PUSH_RETADDR, ret)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 4)
            a.emit(Op.APPLY, 1)
            a.place(ret)
            emit_print_int(a)
            a.emit(Op.POP, 1)
            a.emit(Op.STOP)
            a.place(body)
            a.emit(Op.ENVACC, 1)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)
            a.emit(Op.ADDINT)
            a.emit(Op.RETURN, 1)

        _, out = run_asm(build)
        assert out == b"101"

    def test_recursion_offsetclosure(self):
        # let rec fact n = if n <= 1 then 1 else n * fact (n - 1)
        def build(a):
            body = a.label()
            ret = a.label()
            els = a.label()
            ret2 = a.label()
            a.emit(Op.CLOSURE, 0, body)
            a.emit(Op.PUSH)
            a.emit(Op.PUSH_RETADDR, ret)
            a.emit(Op.CONSTINT, 10)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 4)
            a.emit(Op.APPLY, 1)
            a.place(ret)
            emit_print_int(a)
            a.emit(Op.POP, 1)
            a.emit(Op.STOP)
            a.place(body)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)          # n
            a.emit(Op.LEINT)           # n <= 1
            a.emit(Op.BRANCHIFNOT, els)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.RETURN, 1)
            a.place(els)
            a.emit(Op.PUSH_RETADDR, ret2)
            a.emit(Op.ACC, 3)          # n (under the 3 frame slots)
            a.emit(Op.OFFSETINT, -1)
            a.emit(Op.PUSH)
            a.emit(Op.OFFSETCLOSURE0)  # the function itself
            a.emit(Op.APPLY, 1)
            a.place(ret2)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)          # n
            a.emit(Op.MULINT)
            a.emit(Op.RETURN, 1)

        _, out = run_asm(build)
        assert out == b"3628800"

    def test_partial_application_grab_restart(self):
        # let add x y = x + y in let inc = add 1 in print_int (inc 41)
        def build(a):
            restart = a.label()
            body = a.label()
            ret1 = a.label()
            ret2 = a.label()
            a.emit(Op.BRANCH, a_main := a.label())
            a.place(restart)
            a.emit(Op.RESTART)
            a.place(body)
            a.emit(Op.GRAB, 1)
            a.emit(Op.ACC, 1)       # x? args: x at 0, y at 1 after grab
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)
            a.emit(Op.ADDINT)
            a.emit(Op.RETURN, 2)
            a.place(a_main)
            a.emit(Op.CLOSURE, 0, body)
            a.emit(Op.PUSH)                  # stk[0] = add
            a.emit(Op.PUSH_RETADDR, ret1)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 4)
            a.emit(Op.APPLY, 1)              # add 1 -> partial closure
            a.place(ret1)
            a.emit(Op.PUSH)                  # stk[0] = inc
            a.emit(Op.PUSH_RETADDR, ret2)
            a.emit(Op.CONSTINT, 41)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 4)
            a.emit(Op.APPLY, 1)
            a.place(ret2)
            emit_print_int(a)
            a.emit(Op.POP, 2)
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"42"


class TestStringsAndPrims:
    def test_print_string(self):
        def build(a):
            # Build "hi" via string_make + setstringchar
            a.emit(Op.CONSTINT, ord("h"))
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 2)
            a.emit(Op.C_CALL, 2, prim("string_make"))
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, ord("i"))
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 2)
            a.emit(Op.SETSTRINGCHAR)
            a.emit(Op.ACC, 0)
            a.emit(Op.C_CALL, 1, prim("print_string"))
            a.emit(Op.STOP)

        _, out = run_asm(build)
        assert out == b"hi"

    def test_gc_survives_deep_allocation(self):
        # Allocate a long chain of blocks; GC pressure plus liveness.
        def build(a):
            loop = a.label()
            done = a.label()
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.PUSH)              # chain head (starts as 0)
            a.emit(Op.CONSTINT, 5000)
            a.emit(Op.PUSH)              # counter
            a.place(loop)
            a.emit(Op.CHECK_SIGNALS)
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)
            a.emit(Op.GTINT)
            a.emit(Op.BRANCHIFNOT, done)
            a.emit(Op.ACC, 1)            # old head
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)            # counter
            a.emit(Op.MAKEBLOCK, 2, 0)   # [counter, old head]
            a.emit(Op.ASSIGN, 1)
            a.emit(Op.ACC, 0)
            a.emit(Op.OFFSETINT, -1)
            a.emit(Op.ASSIGN, 0)
            a.emit(Op.BRANCH, loop)
            a.place(done)
            a.emit(Op.ACC, 1)            # head
            a.emit(Op.GETFIELD, 0)       # == 1 (last pushed)
            emit_print_int(a)
            a.emit(Op.STOP)

        _, out = run_asm(build, minor_words=512)
        assert out == b"1"


class TestDisassembler:
    def test_roundtrip_readable(self):
        a = Assembler()
        lab = a.label()
        a.emit(Op.CONSTINT, 5)
        a.emit(Op.BRANCH, lab)
        a.place(lab)
        a.emit(Op.STOP)
        text = disassemble(a.assemble())
        assert "CONSTINT 5" in text
        assert "BRANCH -> 4" in text
        assert "STOP" in text
