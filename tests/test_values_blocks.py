"""Tests for tagged values and block headers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch import ARCH_32_LE, ARCH_64_LE
from repro.memory import (
    Color,
    HeaderCodec,
    NO_SCAN_TAG,
    STRING_TAG,
    ValueCodec,
)


class TestValueCodec:
    def test_unit_false_true(self, arch):
        v = ValueCodec(arch)
        assert v.val_unit == v.val_int(0) == v.val_false
        assert v.val_true == v.val_int(1)
        assert v.bool_val(v.val_true) is True
        assert v.bool_val(v.val_false) is False

    def test_int_roundtrip_extremes(self, arch):
        v = ValueCodec(arch)
        for n in (0, 1, -1, v.max_int, v.min_int):
            assert v.int_val(v.val_int(n)) == n

    def test_int_range_32(self):
        v = ValueCodec(ARCH_32_LE)
        assert v.max_int == 2**30 - 1
        assert v.min_int == -(2**30)

    def test_int_range_64(self):
        v = ValueCodec(ARCH_64_LE)
        assert v.max_int == 2**62 - 1

    def test_overflow_wraps_like_hardware(self):
        v = ValueCodec(ARCH_32_LE)
        assert v.int_val(v.val_int(v.max_int + 1)) == v.min_int

    @given(st.integers())
    def test_val_int_always_immediate(self, n):
        v = ValueCodec(ARCH_32_LE)
        assert v.is_int(v.val_int(n))
        assert not v.is_block(v.val_int(n))

    @given(st.integers(min_value=-(2**30), max_value=2**30 - 1))
    def test_int_roundtrip_property(self, n):
        v = ValueCodec(ARCH_32_LE)
        assert v.int_val(v.val_int(n)) == n

    def test_aligned_addresses_are_blocks(self, arch):
        v = ValueCodec(arch)
        addr = 0x1000
        assert v.is_block(addr)
        assert not v.is_int(addr)

    def test_classification_is_total_and_exclusive(self, arch):
        v = ValueCodec(arch)
        for w in (0, 1, 2, 3, 0x1000, 0x1001, arch.word_mask):
            assert v.is_int(w) != v.is_block(w)


class TestHeaderCodec:
    def test_fields_roundtrip(self, arch):
        h = HeaderCodec(arch)
        hd = h.make(STRING_TAG, Color.GRAY, 1234)
        assert h.tag(hd) == STRING_TAG
        assert h.color(hd) is Color.GRAY
        assert h.size(hd) == 1234

    def test_max_size_32(self):
        h = HeaderCodec(ARCH_32_LE)
        assert h.max_size == 2**22 - 1  # the paper's 22-bit size field
        h.make(0, Color.WHITE, h.max_size)
        with pytest.raises(ValueError):
            h.make(0, Color.WHITE, h.max_size + 1)

    def test_max_size_64(self):
        h = HeaderCodec(ARCH_64_LE)
        assert h.max_size == 2**54 - 1

    def test_rejects_bad_tag(self):
        h = HeaderCodec(ARCH_32_LE)
        with pytest.raises(ValueError):
            h.make(256, Color.WHITE, 1)
        with pytest.raises(ValueError):
            h.make(-1, Color.WHITE, 1)

    def test_with_color_preserves_tag_and_size(self, arch):
        h = HeaderCodec(arch)
        hd = h.make(7, Color.WHITE, 99)
        hd2 = h.with_color(hd, Color.BLUE)
        assert h.tag(hd2) == 7
        assert h.size(hd2) == 99
        assert h.color(hd2) is Color.BLUE
        assert h.is_blue(hd2)

    def test_scannable_boundary(self, arch):
        h = HeaderCodec(arch)
        assert h.scannable(h.make(NO_SCAN_TAG - 1, Color.WHITE, 1))
        assert not h.scannable(h.make(NO_SCAN_TAG, Color.WHITE, 1))
        assert not h.scannable(h.make(STRING_TAG, Color.WHITE, 1))

    @given(
        st.integers(0, 255),
        st.sampled_from(list(Color)),
        st.integers(0, 2**22 - 1),
    )
    def test_roundtrip_property(self, tag, color, size):
        h = HeaderCodec(ARCH_32_LE)
        decoded = h.decode(h.make(tag, color, size))
        assert (decoded.tag, decoded.color, decoded.size) == (tag, color, size)

    def test_header_fits_in_word(self, arch):
        h = HeaderCodec(arch)
        hd = h.make(255, Color.BLACK, h.max_size)
        assert 0 <= hd <= arch.word_mask
