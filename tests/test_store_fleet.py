"""The sharded fleet end to end: routing, HA at scale, rebalancing, CLI."""

from __future__ import annotations

import json
import threading

import pytest

from repro import VMConfig, VirtualMachine, compile_source, get_platform
from repro.errors import StoreNotFoundError
from repro.metrics import FLEET
from repro.store import ChunkStore, HASupervisor
from repro.store.fleet import FleetClient, FleetNode

WORKLOAD = """
let limit = 40000;;
let total = ref 0;;
let i = ref 0;;
while !i < limit do
  i := !i + 1;
  total := !total + !i
done;;
print_string "sum = ";;
print_int !total
"""


@pytest.fixture(scope="module")
def code():
    return compile_source(WORKLOAD)


@pytest.fixture(scope="module")
def expected(code):
    vm = VirtualMachine(
        get_platform("rodrigo"), code, VMConfig(chkpt_state="disable")
    )
    return vm.run().stdout


@pytest.fixture
def fleet3(tmp_path):
    nodes = [
        FleetNode(ChunkStore(str(tmp_path / f"shard-{i}")), node_id=f"s{i}")
        for i in range(3)
    ]
    for node in nodes:
        node.start()
    addrs = [node.address for node in nodes]
    client = FleetClient(addrs, backoff=0.01, chunk_size=4096)
    yield nodes, addrs, client
    client.close()
    for node in nodes:
        node.stop()


def addr_str(addrs):
    return ",".join(f"{h}:{p}" for h, p in addrs)


def distinct_payload(n_chunks: int, chunk_size: int = 4096) -> bytes:
    """``n_chunks`` distinct chunks (a counter stamp defeats dedup)."""
    return b"".join(
        i.to_bytes(4, "big") + bytes(chunk_size - 4) for i in range(n_chunks)
    )


class TestFleetService:
    def test_roundtrip_and_sharding(self, fleet3):
        nodes, _addrs, client = fleet3
        payload = distinct_payload(38)
        gen, stats = client.put_checkpoint("vmx", payload)
        assert stats.chunks_total >= 30
        # the chunks actually spread across shards
        per_shard = [sum(1 for _ in n.ops.store.iter_objects())
                     for n in nodes]
        assert sum(per_shard) == stats.chunks_new
        assert sum(1 for c in per_shard if c > 0) >= 2, per_shard
        got, manifest = client.get_checkpoint("vmx", gen)
        assert got == payload
        assert manifest.payload_len == len(payload)

    def test_ls_merges_shards(self, fleet3):
        _nodes, _addrs, client = fleet3
        client.put_checkpoint("vm-a", b"a" * 9000)
        client.put_checkpoint("vm-b", b"b" * 9000)
        listing = client.ls()
        assert set(listing["vms"]) == {"vm-a", "vm-b"}

    def test_manifest_latest_is_fleet_wide(self, fleet3):
        _nodes, _addrs, client = fleet3
        client.put_checkpoint("vmgen", b"g1" * 3000)
        gen2, _ = client.put_checkpoint("vmgen", b"g2" * 3000)
        assert client.get_manifest("vmgen").generation == gen2
        with pytest.raises(StoreNotFoundError):
            client.get_manifest("never-stored")

    def test_fleet_gc_keeps_cross_shard_references(self, fleet3):
        nodes, _addrs, client = fleet3
        payload = distinct_payload(25)
        gen, stats = client.put_checkpoint("vmgc", payload)
        report = client.gc()
        assert report["removed"] == 0
        assert report["kept"] == stats.chunks_new
        got, _m = client.get_checkpoint("vmgc", gen)
        assert got == payload
        # a shard-local gc would have been wrong: manifests on other
        # shards reference this shard's chunks
        assert client.audit(deep=True)["ok"]


class TestConcurrentHA:
    def test_eight_supervisors_with_crash_failover(
        self, code, expected, fleet3, tmp_path
    ):
        """Acceptance: a 3-shard fleet serves >= 8 concurrent
        supervisors, each crash-injected and restarted across
        endianness/word-size, all restoring bit-identically."""
        _nodes, addrs, _client = fleet3
        n_workers = 8
        reports: dict[int, object] = {}
        errors: list[Exception] = []

        def worker(idx: int) -> None:
            try:
                with FleetClient(addrs, backoff=0.01,
                                 chunk_size=8192) as client:
                    reports[idx] = HASupervisor(
                        code,
                        client,
                        f"ha-fleet-{idx}",
                        start_platform="rodrigo",
                        checkpoint_every=15_000,
                        fault_budgets=(20_000, 60_000),
                        max_faults=2,
                        seed=100 + idx,
                    ).run()
            except Exception as e:  # pragma: no cover - surfaced below
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, errors
        assert len(reports) == n_workers
        hetero_hops = 0
        for idx, report in reports.items():
            assert report.completed, f"worker {idx} did not complete"
            assert report.stdout == expected, f"worker {idx} output differs"
            assert report.faults_injected == 2
            hops = zip(report.platforms_visited,
                       report.platforms_visited[1:])
            for a, b in hops:
                pa, pb = get_platform(a), get_platform(b)
                if (pa.arch.endianness is not pb.arch.endianness
                        and pa.arch.word_bytes != pb.arch.word_bytes):
                    hetero_hops += 1
        assert hetero_hops > 0
        # afterwards the fleet is still coherent
        with FleetClient(addrs, backoff=0.01) as client:
            assert client.audit(deep=True)["ok"]


class TestRebalance:
    def test_node_join_moves_bounded_and_audits_clean(self, fleet3, tmp_path):
        nodes, addrs, client = fleet3
        payload = distinct_payload(50)
        gen, stats = client.put_checkpoint("vmjoin", payload)
        total = stats.chunks_new

        joiner = FleetNode(
            ChunkStore(str(tmp_path / "shard-new")), node_id="s3"
        )
        joiner.start()
        try:
            grown = FleetClient(
                addrs + [joiner.address], backoff=0.01,
                chunk_size=client.chunk_size,
            )
            try:
                # before rebalancing, placement is (correctly) dirty
                assert not grown.audit()["ok"]
                report = grown.rebalance()
                # consistent hashing: ~1/4 of the keys move, not all
                assert 0 < report["chunks_moved"] < total
                assert grown.audit(deep=True)["ok"]
                got, _m = grown.get_checkpoint("vmjoin", gen)
                assert got == payload
            finally:
                grown.close()
        finally:
            joiner.stop()

    def test_node_drain_empties_it(self, fleet3):
        nodes, addrs, client = fleet3
        payload = distinct_payload(30)
        gen, _stats = client.put_checkpoint("vmdrain", payload)
        drained_addr = "%s:%d" % nodes[0].address
        shrunk = FleetClient(addrs, drain=[drained_addr], backoff=0.01,
                             chunk_size=client.chunk_size)
        try:
            shrunk.rebalance()
            assert sum(1 for _ in nodes[0].ops.store.iter_objects()) == 0
            assert shrunk.audit(deep=True)["ok"]
            got, _m = shrunk.get_checkpoint("vmdrain", gen)
            assert got == payload
        finally:
            shrunk.close()


class TestFleetCLI:
    def test_stat_rebalance_audit(self, fleet3, tmp_path, capsys):
        from repro.cli import main

        _nodes, addrs, client = fleet3
        client.put_checkpoint("vmcli", b"cli" * 5000)
        addr = addr_str(addrs)

        assert main(["store", "fleet", "stat", "--addr", addr]) == 0
        stat = json.loads(capsys.readouterr().out)
        assert set(stat["shards"]) == set(addr.split(","))
        assert sum(stat["ring"]["ownership"].values()) == pytest.approx(1.0)
        assert stat["ring"]["vnodes"] == 64

        assert main(["store", "fleet", "rebalance", "--addr", addr]) == 0
        assert "rebalance:" in capsys.readouterr().out

        assert main(["store", "fleet", "audit", "--deep",
                     "--addr", addr]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["manifests"] >= 1

    def test_store_commands_route_through_fleet(self, fleet3, tmp_path,
                                                capsys):
        from repro.cli import main

        _nodes, addrs, _client = fleet3
        addr = addr_str(addrs)
        blob = tmp_path / "payload.bin"
        blob.write_bytes(bytes(range(256)) * 300)

        assert main(["store", "put", "--addr", addr, "vmfile",
                     str(blob)]) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--addr", addr]) == 0
        assert "vmfile" in capsys.readouterr().out
        out_path = tmp_path / "restored.bin"
        assert main(["store", "get", "--addr", addr, "vmfile",
                     str(out_path)]) == 0
        assert out_path.read_bytes() == blob.read_bytes()

    def test_stat_json_flag(self, fleet3, capsys):
        from repro.cli import main

        _nodes, addrs, client = fleet3
        client.put_checkpoint("vmstat", b"s" * 20000)
        addr = addr_str(addrs)
        # human summary without --json
        assert main(["store", "stat", "--addr", addr]) == 0
        human = capsys.readouterr().out
        assert "ring:" in human and "object(s)" in human
        # machine detail with --json
        assert main(["store", "stat", "--addr", addr, "--json"]) == 0
        stat = json.loads(capsys.readouterr().out)
        for section in ("shards", "ring", "caches", "fleet_counters"):
            assert section in stat
        assert "ranges" in stat["ring"]
        for cache in stat["caches"].values():
            assert "hit_rate" in cache

    def test_info_json_reports_counters(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "prog.ml"
        src.write_text("let x = 6 * 7;;\ncheckpoint ();;\nprint_int x")
        ckpt = tmp_path / "prog.hckp"
        assert main(["run", str(src), "--checkpoint", str(ckpt),
                     "--mode", "blocking"]) == 0
        capsys.readouterr()
        assert main(["info", str(ckpt), "--json"]) == 0
        desc = json.loads(capsys.readouterr().out)
        assert "transport_retries" in desc["store_counters"]
        assert "cache_hit_rate" in desc["fleet_counters"]
        assert "batches_sent" in desc["fleet_counters"]
