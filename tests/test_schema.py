"""The declarative section-codec registry and its proof obligations.

Three layers of evidence that the schema refactor is behavior-preserving:

1. **Registry invariants** — the codec table and the per-version
   profiles are internally consistent and drive every consumer
   (flags, layouts, mutation targets, CLI dump, docs).
2. **Round trips** — ``serialize(parse(bytes)) == bytes`` for every
   golden fixture: all six platforms (both endiannesses, both word
   sizes) x v1/v2/v3 fulls, the scalar-writer v3, and the v4 delta
   chain.  Then full regeneration: re-running the fixture programs with
   the current writer must reproduce the checked-in SHA-256 manifest
   bit for bit.
3. **Restores** — each fixture restarts on a *different* architecture
   and its output matches the pinned stdout baselines.

Plus the drift guards: the tables in docs/FILE_FORMAT.md must equal
``repro schema dump --markdown``, and the version-ladder lint must pass.
"""

from __future__ import annotations

import hashlib
import importlib.util
import io
import json
import os

import pytest

from repro import PLATFORMS, compile_source, get_platform
from repro.checkpoint.format import read_checkpoint, serialize_snapshot
from repro.checkpoint.inspect import describe_checkpoint
from repro.checkpoint.reader import restart_vm
from repro.checkpoint.schema import FormatProfile, all_codecs
from repro.checkpoint.schema.render import doc_generated_block, render_markdown
from repro.errors import CheckpointFormatError

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
GOLDEN = os.path.join(REPO, "tests", "fixtures", "golden")

with open(os.path.join(GOLDEN, "MANIFEST.json")) as _f:
    MANIFEST = json.load(_f)

#: Every fixture restarts on the platform opposite in both endianness
#: and word size — the hardest conversion each source has.
OPPOSITE = {
    "rodrigo": "ultra64",   # 32 LE -> 64 BE
    "pc8": "ultra64",       # 32 LE -> 64 BE
    "csd": "sp2148",        # 32 BE -> 64 LE
    "sp2148": "csd",        # 64 LE -> 32 BE
    "rs6000": "sp2148",     # 32 BE -> 64 LE
    "ultra64": "rodrigo",   # 64 BE -> 32 LE
}


def _sha(path: str) -> str:
    with open(path, "rb") as f:
        return hashlib.sha256(f.read()).hexdigest()


# ---------------------------------------------------------------------------
# Registry invariants
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_profiles_cover_v1_to_v4(self):
        assert [p.version for p in FormatProfile.all()] == [1, 2, 3, 4]

    def test_nine_codecs_with_unique_ids(self):
        codecs = all_codecs()
        assert sorted(codecs) == sorted(
            ["header", "boundaries", "globals", "heap", "index",
             "atoms", "cglobals", "threads", "channels"]
        )
        sids = [c.sid for c in codecs.values()]
        assert len(set(sids)) == len(sids)

    def test_section_order_is_registration_order(self):
        # Body order is the registry order; the index section only joins
        # for block-index-capable profiles.
        v1 = [c.name for c in FormatProfile.for_version(1).codecs]
        v3 = [c.name for c in FormatProfile.for_version(3).codecs]
        assert "index" not in v1
        assert v3.index("index") == v3.index("heap") + 1
        assert [n for n in v3 if n != "index"] == v1

    def test_capability_monotonicity(self):
        # Each version adds capabilities; none are ever removed.
        profs = FormatProfile.all()
        for attr in ("block_index", "integrity_trailer", "delta_base_capable"):
            seen = False
            for p in profs:
                if p.delta:
                    continue
                got = getattr(p, attr)
                assert not (seen and not got), f"{attr} regressed at v{p.version}"
                seen = seen or got

    def test_flags_follow_profile_capabilities(self):
        for p in FormatProfile.all():
            for c in p.codecs:
                flags = c.flags(p)
                assert ("crc_protected" in flags) == (
                    c.crc_protected and p.integrity_trailer
                )
                assert ("delta_capable" in flags) == (c.delta_capable and p.delta)

    def test_for_magic_rejects_garbage(self):
        with pytest.raises(CheckpointFormatError):
            FormatProfile.for_magic(b"NOPE\x00\x00")
        assert FormatProfile.for_magic(b"NOPE\x00\x00", None) is None

    def test_for_version_rejects_unknown(self):
        with pytest.raises(CheckpointFormatError):
            FormatProfile.for_version(9)

    def test_mutation_targets_gate_on_trailer(self):
        # Swaps are only detectable when a per-section CRC exists, so the
        # fuzzer must only get swap-eligible targets from v3+ profiles.
        for p in FormatProfile.all():
            eligible = [t for t in p.mutation_targets() if t["swap_eligible"]]
            if p.integrity_trailer:
                assert len(eligible) >= 8
            else:
                assert eligible == []

    def test_describe_is_json_serializable(self):
        doc = [p.describe() for p in FormatProfile.all()]
        json.loads(json.dumps(doc))
        assert doc[0]["magic"] == "HCKP\\x01\\x00"
        assert all(len(d["sections"]) >= 8 for d in doc)


# ---------------------------------------------------------------------------
# Byte round trips over the golden fixtures
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("platform", sorted(MANIFEST["platforms"]))
def test_reserialize_reproduces_golden_bytes(platform):
    """parse -> serialize is the identity on every fixture file.

    This exercises every codec's decode *and* encode for every profile
    on both endiannesses and word sizes, including the index-free scalar
    file and the presence-gated delta sections.
    """
    entry = MANIFEST["platforms"][platform]
    for fname, want_sha in sorted(entry["files"].items()):
        path = os.path.join(GOLDEN, platform, fname)
        snap = read_checkpoint(path)
        blob = serialize_snapshot(snap)
        got_sha = hashlib.sha256(blob).hexdigest()
        assert got_sha == want_sha, f"{platform}/{fname}: reserialized bytes differ"


def test_writer_regenerates_golden_manifest(tmp_path):
    """The schema-driven writer reproduces the pre-refactor bytes.

    Re-runs every fixture program (six platforms x three full versions,
    the scalar path, and the three-generation delta chain) and compares
    each file's SHA-256 — and the captured stdout — against the
    checked-in manifest generated from the seed writer.
    """
    spec = importlib.util.spec_from_file_location(
        "make_golden_fixtures",
        os.path.join(REPO, "scripts", "make_golden_fixtures.py"),
    )
    gen = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gen)
    fresh = gen.generate(str(tmp_path))
    assert fresh["platforms"] == MANIFEST["platforms"]


# ---------------------------------------------------------------------------
# Cross-architecture restores against pinned baselines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("platform", sorted(MANIFEST["platforms"]))
def test_full_fixture_restores_on_opposite_arch(platform):
    code = compile_source(MANIFEST["programs"]["full"])
    target = get_platform(OPPOSITE[platform])
    out = io.BytesIO()
    vm, stats = restart_vm(
        target, code, os.path.join(GOLDEN, platform, "full_v3.hckp"),
        stdout=out,
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped"
    assert result.stdout.decode() == MANIFEST["platforms"][platform]["stdout"]["full"]
    src = PLATFORMS[platform].arch
    assert stats.converted_endianness == (src.endianness != target.arch.endianness)
    assert stats.converted_word_size == (src.word_bytes != target.arch.word_bytes)


@pytest.mark.parametrize("platform", sorted(MANIFEST["platforms"]))
def test_delta_chain_restores_on_opposite_arch(platform):
    code = compile_source(MANIFEST["programs"]["delta"])
    out = io.BytesIO()
    vm, _stats = restart_vm(
        get_platform(OPPOSITE[platform]), code,
        os.path.join(GOLDEN, platform, "delta.hckp"),
        stdout=out,
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped"
    # The mid-run prints live in the checkpointed channel buffer, so the
    # restore replays the whole pinned stdout, mid-run prints included.
    assert (
        result.stdout.decode()
        == MANIFEST["platforms"][platform]["stdout"]["delta"]
    )


# ---------------------------------------------------------------------------
# Schema-derived inspection (satellite: null section table below v3)
# ---------------------------------------------------------------------------


def test_info_sections_null_below_v3_and_sized_above():
    v1 = describe_checkpoint(os.path.join(GOLDEN, "rodrigo", "full_v1.hckp"))
    assert v1["sections"] is None
    assert v1["section_bytes"] is None
    v3 = describe_checkpoint(os.path.join(GOLDEN, "rodrigo", "full_v3.hckp"))
    assert {s["name"] for s in v3["sections"]} >= {"header", "heap", "threads"}
    for s in v3["sections"]:
        assert "crc_protected" in s["flags"]
        assert v3["section_bytes"][s["name"]] == s["length"]
    assert sum(v3["section_bytes"].values()) > 0


# ---------------------------------------------------------------------------
# Drift guards: CLI dump, docs, version-ladder lint
# ---------------------------------------------------------------------------


def test_schema_dump_cli(capsys):
    from repro.cli import main

    assert main(["schema", "dump", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert [p["version"] for p in doc] == [1, 2, 3, 4]

    assert main(["schema", "dump", "--markdown"]) == 0
    assert capsys.readouterr().out == render_markdown()


def test_file_format_doc_matches_registry():
    with open(os.path.join(REPO, "docs", "FILE_FORMAT.md")) as f:
        doc = doc_generated_block(f.read())
    assert doc == render_markdown().strip("\n"), (
        "docs/FILE_FORMAT.md drifted from the registry; regenerate the "
        "block with `repro schema dump --markdown`"
    )


def test_no_version_ladders_outside_schema():
    spec = importlib.util.spec_from_file_location(
        "check_no_version_ladders",
        os.path.join(REPO, "scripts", "check_no_version_ladders.py"),
    )
    lint = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(lint)
    hits = lint.find_ladders()
    assert hits == [], "version ladders outside checkpoint/schema: " + "; ".join(
        f"{p}:{n}" for p, n, _ in hits
    )
    body = lint.find_whole_body_reads()
    assert body == [], (
        "whole-body parse calls outside checkpoint/schema: "
        + "; ".join(f"{p}:{n}" for p, n, _ in body)
    )
