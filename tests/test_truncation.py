"""Truncation hardening: a checkpoint cut anywhere raises a typed error.

Sweeps real checkpoint files of every format version, cutting them at
every section boundary and at sampled interior offsets.  The reader must
always raise a :class:`~repro.errors.RestartError` subclass that names
the file — never a raw ``struct.error``, ``IndexError`` or similar.
"""

from __future__ import annotations

import io

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.checkpoint.format import read_checkpoint, read_section_table
from repro.errors import CheckpointFormatError, RestartError

RODRIGO = get_platform("rodrigo")

PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let data = build 30 [];;
let s = "hello truncation";;
checkpoint ();;
print_string s;;
"""


@pytest.fixture(scope="module", params=[1, 2, 3], ids=["v1", "v2", "v3"])
def checkpoint_bytes(request, tmp_path_factory):
    fmt = request.param
    path = str(tmp_path_factory.mktemp("trunc") / f"v{fmt}.hckp")
    code = compile_source(PROGRAM)
    vm = VirtualMachine(
        RODRIGO,
        code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking", chkpt_format=fmt),
        stdout=io.BytesIO(),
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped" and vm.checkpoints_taken == 1
    with open(path, "rb") as f:
        return path, f.read()


def cut_offsets(data: bytes) -> list[int]:
    """Every section boundary (±1 where possible) plus an even sample of
    interior offsets and the whole header region byte-by-byte."""
    offsets = set(range(0, min(24, len(data))))
    table = read_section_table(data)
    for s in table or []:
        for off in (s.offset - 1, s.offset, s.offset + 1, s.end - 1, s.end):
            if 0 <= off < len(data):
                offsets.add(off)
    step = max(1, len(data) // 40)
    offsets.update(range(0, len(data), step))
    offsets.add(len(data) - 1)
    return sorted(offsets)


class TestTruncationSweep:
    def test_every_cut_raises_typed_error(self, tmp_path, checkpoint_bytes):
        path, data = checkpoint_bytes
        cut_path = str(tmp_path / "cut.hckp")
        for off in cut_offsets(data):
            with open(cut_path, "wb") as f:
                f.write(data[:off])
            try:
                read_checkpoint(cut_path)
            except RestartError as e:
                assert cut_path in str(e), (
                    f"cut at {off}: error does not name the file: {e}"
                )
            except Exception as e:  # noqa: BLE001 — the point of the test
                pytest.fail(
                    f"cut at {off}/{len(data)} raised untyped "
                    f"{type(e).__name__}: {e}"
                )
            else:
                pytest.fail(f"cut at {off}/{len(data)} parsed successfully")

    def test_truncation_error_names_section_and_offset(
        self, tmp_path, checkpoint_bytes
    ):
        path, data = checkpoint_bytes
        cut_path = str(tmp_path / "cut.hckp")
        # Cut deep inside the body: past the header, before the end.
        with open(cut_path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(CheckpointFormatError) as exc:
            read_checkpoint(cut_path)
        assert exc.value.path == cut_path
        assert exc.value.section is not None
        assert "format v" in str(exc.value)

    def test_empty_and_tiny_files(self, tmp_path):
        cut_path = str(tmp_path / "tiny.hckp")
        for content in (b"", b"H", b"HCKP", b"HCKP\x03\x00", b"HCKP\x03\x00abc"):
            with open(cut_path, "wb") as f:
                f.write(content)
            with pytest.raises(RestartError):
                read_checkpoint(cut_path)

    def test_appended_garbage_detected(self, tmp_path, checkpoint_bytes):
        path, data = checkpoint_bytes
        cut_path = str(tmp_path / "grown.hckp")
        with open(cut_path, "wb") as f:
            f.write(data + b"\x00" * 64)
        with pytest.raises(RestartError):
            read_checkpoint(cut_path)
