"""Replication building blocks: wire codec, output gate, epoch lease,
commit tailer, flaky transport, and the acked channel end to end."""

from __future__ import annotations

import socket
import threading

import pytest

from repro import VMConfig, VirtualMachine, compile_source, get_platform
from repro.errors import (
    LeaseLostError,
    ReplicationError,
    ReplicationProtocolError,
)
from repro.faults.injectors import CrashHooks, FlakySocket, SimulatedCrashError
from repro.metrics import REPLICATION
from repro.replication import (
    CommitTailer,
    EpochLease,
    GenRecord,
    OutputGate,
    ReplicationSender,
    StandbyServer,
)
from repro.replication import wire
from repro.store import ChunkStore, StoreClient, StoreServer


@pytest.fixture
def store(tmp_path):
    server = StoreServer(ChunkStore(str(tmp_path / "store")))
    host, port = server.start()
    client = StoreClient(host, port, backoff=0.01)
    yield client
    client.close()
    server.stop()


def _rec(seq=1, kind="full", data=b"payload", stdout=b"out"):
    return GenRecord(
        seq=seq,
        kind=kind,
        body_sha256="ab" * 32,
        parent_sha256="cd" * 32 if kind == "delta" else "",
        chain_depth=1 if kind == "delta" else 0,
        format_version=4,
        instructions=1234,
        stdout=stdout,
        data=data,
    )


class TestWireCodec:
    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            wire.send_frame(a, wire.OP_PING, b"x" * 100)
            assert wire.recv_frame(b) == (wire.OP_PING, b"x" * 100)
        finally:
            a.close()
            b.close()

    def test_bad_magic_rejected(self):
        a, b = socket.socketpair()
        try:
            frame = bytearray(wire.encode_frame(wire.OP_PING))
            frame[:4] = b"NOPE"
            a.sendall(frame)
            with pytest.raises(ReplicationProtocolError, match="magic"):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_unknown_version_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(
                wire.HEADER.pack(wire.MAGIC, wire.VERSION + 1, wire.OP_PING, 0)
            )
            with pytest.raises(ReplicationProtocolError, match="version"):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_is_typed(self):
        a, b = socket.socketpair()
        try:
            a.sendall(wire.encode_frame(wire.OP_GEN, b"full-payload")[:6])
            a.close()
            with pytest.raises(ReplicationProtocolError, match="mid-frame"):
                wire.recv_frame(b, allow_eof=True)
        finally:
            b.close()

    def test_clean_eof_returns_none_when_allowed(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert wire.recv_frame(b, allow_eof=True) is None
        finally:
            b.close()

    def test_gen_roundtrip(self):
        rec = _rec(seq=7, kind="delta", data=b"\x00\x01" * 500)
        back = wire.decode_gen(wire.encode_gen(rec))
        assert back == rec

    def test_gen_corrupted_data_rejected(self):
        payload = bytearray(wire.encode_gen(_rec(data=b"A" * 64)))
        payload[-40] ^= 0xFF  # flip a bit inside the file bytes
        with pytest.raises(ReplicationProtocolError, match="digest"):
            wire.decode_gen(bytes(payload))

    def test_gen_lying_sizes_rejected(self):
        payload = wire.encode_gen(_rec())
        with pytest.raises(ReplicationProtocolError, match="sizes lie"):
            wire.decode_gen(payload + b"trailing")

    def test_ack_roundtrip(self):
        assert wire.decode_ack(wire.encode_ack(9, 8)) == (9, 8)


class TestOutputGate:
    def test_holds_until_release(self):
        gate = OutputGate()
        gate.feed(b"hello world")
        assert gate.take() == b""  # nothing released yet
        assert gate.held_bytes == 11
        gate.release_to(5)
        assert gate.take() == b"hello"
        assert gate.take() == b""  # no double delivery
        gate.release_all()
        assert gate.take() == b" world"
        assert gate.held_bytes == 0

    def test_feed_must_be_cumulative(self):
        gate = OutputGate()
        gate.feed(b"abcdef")
        with pytest.raises(ReplicationError, match="backwards"):
            gate.feed(b"abc")
        with pytest.raises(ReplicationError, match="backwards"):
            gate.feed(b"abcdXf")

    def test_release_beyond_produced_rejected(self):
        gate = OutputGate()
        gate.feed(b"ab")
        with pytest.raises(ReplicationError, match="produced"):
            gate.release_to(3)

    def test_resume_skips_the_delivered_overlap(self):
        # Old primary delivered 5 bytes; the restored generation covers 8.
        gate = OutputGate.resume(prefill=b"12345678", delivered=5)
        assert gate.take() == b"678"  # released minus already-delivered
        gate.feed(b"12345678XY")
        gate.release_all()
        assert gate.take() == b"XY"

    def test_resume_rejects_impossible_delivered_offset(self):
        with pytest.raises(ReplicationError, match="output rule"):
            OutputGate.resume(prefill=b"123", delivered=4)


class TestEpochLease:
    def test_epochs_are_sequential_and_audited(self, store):
        lease = EpochLease(store, "wl", "node-a")
        assert lease.read().epoch == 0
        assert lease.claim(expected=0) == 1
        assert lease.claim(expected=1) == 2
        state = lease.read()
        assert (state.epoch, state.holder) == (2, "node-a")
        assert [(c.epoch, c.holder, c.valid) for c in lease.history()] == [
            (1, "node-a", True), (2, "node-a", True),
        ]

    def test_losing_claim_raises_and_names_the_winner(self, store):
        a = EpochLease(store, "wl", "node-a")
        b = EpochLease(store, "wl", "node-b")
        assert a.claim(expected=0) == 1
        # b observed epoch 0 (stale) and races: the store already moved.
        with pytest.raises(LeaseLostError) as e:
            b.claim(expected=0)
        assert e.value.holder == "node-a"
        assert e.value.epoch == 1
        # The losing claim is recorded but invalid: it holds nothing
        # and must never fence the rightful leader.
        claims = a.history()
        assert [c.valid for c in claims] == [True, False]
        assert a.check(1).holder == "node-a"

    def test_fencing_probe(self, store):
        a = EpochLease(store, "wl", "node-a")
        b = EpochLease(store, "wl", "node-b")
        my = a.claim(expected=0)
        assert a.check(my).epoch == my  # still the newest: fine
        b.claim(expected=my)  # the takeover
        with pytest.raises(LeaseLostError, match="fenced"):
            a.check(my)
        # The winner's own probe passes.
        assert b.check(my + 1).holder == "node-b"

    def test_identical_claims_never_collapse(self, store):
        """The store dedups identical payloads; lease claims must not be
        deduped or two promotions could share one epoch."""
        lease = EpochLease(store, "wl", "node-a")
        assert lease.claim(expected=0) == 1
        assert lease.claim(expected=1) == 2
        assert lease.claim(expected=2) == 3


WORKLOAD = """
let n = ref 0;;
while !n < 9000 do
  n := !n + 1;
  (if !n mod 3000 = 0 then (print_string "tick "; print_int !n))
done;;
print_string " end"
"""


@pytest.fixture(scope="module")
def code():
    return compile_source(WORKLOAD)


def _primary(code, path):
    cfg = VMConfig(
        chkpt_state="enable",
        chkpt_filename=path,
        chkpt_mode="blocking",
        chkpt_incremental=True,
        chkpt_retain=8,
    )
    return VirtualMachine(get_platform("rodrigo"), code, cfg)


class TestCommitTailer:
    def test_capture_packages_the_committed_file(self, code, tmp_path):
        path = str(tmp_path / "p.hckp")
        vm = _primary(code, path)
        tailer = CommitTailer(vm, path)
        vm.run(max_instructions=5_000)
        rec1 = tailer.capture()
        assert rec1.seq == 1
        assert rec1.kind == "full"
        with open(path, "rb") as f:
            assert rec1.data == f.read()
        vm.run(max_instructions=5_000)
        rec2 = tailer.capture()
        assert rec2.seq == 2
        assert rec2.kind == "delta"
        assert rec2.parent_sha256 == rec1.body_sha256
        assert rec2.stdout.startswith(rec1.stdout)
        assert len(rec2.data) < len(rec1.data)  # deltas ship dirty runs

    def test_crash_mid_commit_ships_nothing(self, code, tmp_path):
        path = str(tmp_path / "p.hckp")
        vm = _primary(code, path)
        tailer = CommitTailer(vm, path)
        vm.run(max_instructions=5_000)
        with pytest.raises(SimulatedCrashError):
            tailer.capture(inner_hooks=CrashHooks("journal_written"))
        assert tailer.seq == 0  # the torn generation never became a record
        assert vm.config.commit_hooks is None  # hooks restored


class TestFlakySocket:
    def _pair(self, **kwargs):
        a, b = socket.socketpair()
        return FlakySocket(a, **kwargs), a, b

    def test_seeded_determinism(self):
        def run(seed):
            fs, a, b = self._pair(seed=seed, drop=0.3, duplicate=0.2)
            for i in range(20):
                fs.sendall(bytes([i]))
            a.close()
            b.close()
            return list(fs.events)

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_drop_loses_the_frame(self):
        fs, a, b = self._pair(seed=0, drop=1.0)
        try:
            fs.sendall(b"gone")
            b.settimeout(0.05)
            with pytest.raises(TimeoutError):
                b.recv(16)
            assert fs.events == ["drop"]
        finally:
            a.close()
            b.close()

    def test_duplicate_sends_twice(self):
        fs, a, b = self._pair(seed=0, duplicate=1.0)
        try:
            fs.sendall(b"xy")
            assert b.recv(16) == b"xyxy"
        finally:
            a.close()
            b.close()

    def test_reorder_swaps_adjacent_frames(self):
        fs, a, b = self._pair(seed=0, reorder=0.5)
        try:
            sent = []
            while "hold" not in fs.events:
                fs.sendall(b"A")
                sent.append(b"A")
            # One frame is now held back; a guaranteed pass-through send
            # must overtake it and flush it afterwards.
            fs.reorder = 0.0
            fs.sendall(b"B")
            data = b""
            b.settimeout(0.5)
            while len(data) < len(sent) + 1:
                data += b.recv(64)
            assert data.endswith(b"BA")  # B overtook the held A
        finally:
            a.close()
            b.close()

    def test_partition_blackholes_and_starves(self):
        fs, a, b = self._pair(seed=0)
        try:
            fs.partition(True)
            fs.sendall(b"lost")
            fs.settimeout(0.05)
            with pytest.raises((socket.timeout, TimeoutError)):
                fs.recv(16)
            assert fs.events == ["blackhole"]
            fs.partition(False)
            fs.sendall(b"back")
            assert b.recv(16) == b"back"
        finally:
            a.close()
            b.close()

    def test_probabilities_validated(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ValueError, match="drop"):
                FlakySocket(a, drop=1.5)
        finally:
            a.close()
            b.close()


class TestChannelEndToEnd:
    """Sender and standby over a real (sometimes flaky) TCP link."""

    def _standby(self, code, tmp_path, **kwargs):
        sb = StandbyServer(
            code,
            "ultra64",
            node_id="sb",
            chain_path=str(tmp_path / "standby.hckp"),
            heartbeat_timeout=0.2,
            **kwargs,
        )
        host, port = sb.start()
        return sb, host, port

    def test_ship_applies_and_acks(self, code, tmp_path):
        sb, host, port = self._standby(code, tmp_path)
        path = str(tmp_path / "p.hckp")
        vm = _primary(code, path)
        tailer = CommitTailer(vm, path)
        sender = ReplicationSender.connect(host, port, node_id="pr")
        try:
            info = sender.hello(code.digest().hex(), 1, "rodrigo")
            assert info["applied"] == 0
            for _ in range(3):
                vm.run(max_instructions=3_000)
                rec = tailer.capture()
                assert sender.ship(rec) == rec.seq
            assert sb.applied_seq == 3
            assert sb.resident_vm is not None
            # The resident VM lives on the standby's own platform.
            assert sb.resident_vm.platform.name == "ultra64"
            assert sb.prefill == tailer.vm.channels.stdout_bytes()
        finally:
            sender.close()
            sb.stop()

    def test_hello_rejects_wrong_program(self, code, tmp_path):
        sb, host, port = self._standby(code, tmp_path)
        other = compile_source("print_string \"imposter\"")
        sender = ReplicationSender.connect(host, port, node_id="pr")
        try:
            with pytest.raises(ReplicationError, match="digest"):
                sender.hello(other.digest().hex(), 1, "rodrigo")
        finally:
            sender.close()
            sb.stop()

    def test_duplicated_frames_are_dropped_once_applied(self, code, tmp_path):
        """A flaky channel that duplicates every frame: the standby
        dedups by sequence number and re-acks, the run converges."""
        before = REPLICATION.as_dict()
        sb, host, port = self._standby(code, tmp_path)
        path = str(tmp_path / "p.hckp")
        vm = _primary(code, path)
        tailer = CommitTailer(vm, path)
        sender = ReplicationSender.connect(
            host, port, node_id="pr",
            wrap=lambda s: FlakySocket(s, seed=3, duplicate=1.0),
        )
        try:
            sender.hello(code.digest().hex(), 1, "rodrigo")
            for _ in range(3):
                vm.run(max_instructions=3_000)
                sender.ship(tailer.capture())
            # Barrier: the PING rides behind the last GEN's duplicate,
            # so its PONG means the standby has drained (and counted)
            # every duplicate already on the wire.
            assert sender.ping()
            assert sb.applied_seq == 3
            delta = REPLICATION.delta_since(before)
            assert delta.get("duplicates_dropped", 0) >= 3
        finally:
            sender.close()
            sb.stop()

    def test_dropped_frames_heal_by_retransmit(self, code, tmp_path):
        before = REPLICATION.as_dict()
        sb, host, port = self._standby(code, tmp_path)
        path = str(tmp_path / "p.hckp")
        vm = _primary(code, path)
        tailer = CommitTailer(vm, path)
        # Seeded drops on the primary->standby direction; the sender's
        # ack timeout + retransmit budget must absorb them.
        sender = ReplicationSender.connect(
            host, port, node_id="pr",
            wrap=lambda s: FlakySocket(s, seed=2, drop=0.3),
            ack_timeout=0.3, max_retransmits=6,
        )
        try:
            sender.hello(code.digest().hex(), 1, "rodrigo")
            for _ in range(4):
                vm.run(max_instructions=2_000)
                sender.ship(tailer.capture())
            assert sb.applied_seq == 4
            delta = REPLICATION.delta_since(before)
            assert delta.get("retransmits", 0) >= 1
        finally:
            sender.close()
            sb.stop()

    def test_eof_triggers_suspicion(self, code, tmp_path):
        sb, host, port = self._standby(code, tmp_path)
        path = str(tmp_path / "p.hckp")
        vm = _primary(code, path)
        tailer = CommitTailer(vm, path)
        sender = ReplicationSender.connect(host, port, node_id="pr")
        try:
            sender.hello(code.digest().hex(), 1, "rodrigo")
            vm.run(max_instructions=3_000)
            sender.ship(tailer.capture())
            sender.close()  # the primary's host dies
            assert sb.await_suspect(timeout=5.0)
            assert sb.suspicion_reason == "eof"
        finally:
            sb.stop()

    def test_quiet_channel_triggers_timeout_suspicion(self, code, tmp_path):
        sb, host, port = self._standby(
            code, tmp_path, heartbeat_misses=2,
        )
        sb.heartbeat_timeout = 0.2
        path = str(tmp_path / "p.hckp")
        vm = _primary(code, path)
        tailer = CommitTailer(vm, path)
        flaky_holder = []

        def wrap(s):
            fs = FlakySocket(s, seed=0)
            flaky_holder.append(fs)
            return fs

        sender = ReplicationSender.connect(
            host, port, node_id="pr", wrap=wrap,
            ack_timeout=0.1, max_retransmits=1,
        )
        try:
            sender.hello(code.digest().hex(), 1, "rodrigo")
            vm.run(max_instructions=3_000)
            sender.ship(tailer.capture())
            flaky_holder[0].partition(True)  # the cable is yanked
            assert sb.await_suspect(timeout=5.0)
            assert sb.suspicion_reason == "timeout"
        finally:
            sender.close()
            sb.stop()

    def test_promote_without_replication_refuses(self, code, tmp_path, store):
        sb = StandbyServer(
            code, "ultra64", node_id="sb",
            chain_path=str(tmp_path / "s.hckp"),
            lease=EpochLease(store, "wl", "sb"),
        )
        with pytest.raises(ReplicationError, match="cold-start"):
            sb.promote()
