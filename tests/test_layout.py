"""Tests for memory areas and the virtual address space."""

from __future__ import annotations

import pytest

from repro.arch import ARCH_32_LE
from repro.errors import AlignmentError, SegmentationFault
from repro.memory import AddressSpace, AreaKind, MemoryArea


def make_area(base=0x1000, n=16, kind=AreaKind.STACK):
    return MemoryArea(kind, base, n, ARCH_32_LE, label="t")


class TestMemoryArea:
    def test_geometry(self):
        a = make_area()
        assert a.n_words == 16
        assert a.size_bytes == 64
        assert a.end == 0x1040
        assert a.contains(0x1000)
        assert a.contains(0x103C)
        assert not a.contains(0x1040)

    def test_misaligned_base_rejected(self):
        with pytest.raises(AlignmentError):
            MemoryArea(AreaKind.STACK, 0x1002, 4, ARCH_32_LE)

    def test_load_store(self):
        a = make_area()
        a.store(0x1008, 42)
        assert a.load(0x1008) == 42
        assert a.words[2] == 42

    def test_out_of_range_access(self):
        a = make_area()
        with pytest.raises(SegmentationFault):
            a.load(0x1040)
        with pytest.raises(SegmentationFault):
            a.load(0x0FFC)

    def test_misaligned_access(self):
        a = make_area()
        with pytest.raises(AlignmentError):
            a.load(0x1001)

    def test_addr_index_inverse(self):
        a = make_area()
        for i in range(a.n_words):
            assert a.index_of(a.addr_of(i)) == i


class TestAddressSpace:
    def test_map_find(self):
        s = AddressSpace(ARCH_32_LE)
        a = s.map(make_area(0x1000))
        b = s.map(make_area(0x2000))
        assert s.find(0x1000) is a
        assert s.find(0x2004) is b
        assert s.find_or_none(0x3000) is None

    def test_overlap_rejected(self):
        s = AddressSpace(ARCH_32_LE)
        s.map(make_area(0x1000, 16))
        with pytest.raises(SegmentationFault):
            s.map(make_area(0x1020, 16))  # overlaps [0x1000, 0x1040)
        with pytest.raises(SegmentationFault):
            s.map(make_area(0x0FE0, 16))  # ends at 0x1020

    def test_unmap(self):
        s = AddressSpace(ARCH_32_LE)
        a = s.map(make_area(0x1000))
        s.unmap(a)
        with pytest.raises(SegmentationFault):
            s.find(0x1000)
        # Double unmap is an error.
        with pytest.raises(SegmentationFault):
            s.unmap(a)

    def test_global_load_store(self):
        s = AddressSpace(ARCH_32_LE)
        s.map(make_area(0x1000))
        s.store(0x1004, 7)
        assert s.load(0x1004) == 7

    def test_unmapped_access_faults(self):
        s = AddressSpace(ARCH_32_LE)
        with pytest.raises(SegmentationFault):
            s.load(0x9999000)

    def test_areas_sorted_and_filtered(self):
        s = AddressSpace(ARCH_32_LE)
        s.map(make_area(0x3000, kind=AreaKind.CODE))
        s.map(make_area(0x1000, kind=AreaKind.STACK))
        s.map(make_area(0x2000, kind=AreaKind.CODE))
        bases = [a.base for a in s.areas()]
        assert bases == sorted(bases)
        assert len(s.areas_of_kind(AreaKind.CODE)) == 2
