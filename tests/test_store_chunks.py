"""Tests for the content-addressed chunk store (no network)."""

from __future__ import annotations

import hashlib
import json
import os
import random

import pytest

from repro.errors import StoreError, StoreIntegrityError, StoreNotFoundError
from repro.store.chunkstore import (
    ChunkStore,
    Manifest,
    PutStats,
    chunk_key,
    pack_files,
    unpack_files,
)


@pytest.fixture
def store(tmp_path):
    return ChunkStore(str(tmp_path / "store"))


class TestObjects:
    def test_put_get_roundtrip(self, store):
        data = b"hello chunk store"
        key, was_new = store.put_object(data)
        assert was_new
        assert key == hashlib.sha256(data).hexdigest()
        assert store.get_object(key) == data

    def test_put_is_idempotent(self, store):
        data = os.urandom(1000)
        key1, new1 = store.put_object(data)
        key2, new2 = store.put_object(data)
        assert key1 == key2
        assert new1 and not new2
        assert sum(1 for _ in store.iter_objects()) == 1

    def test_missing_object_raises(self, store):
        with pytest.raises(StoreNotFoundError):
            store.get_object(chunk_key(b"never stored"))

    def test_corrupted_object_detected_on_read(self, store):
        key, _ = store.put_object(b"x" * 5000)
        path = store._object_path(key)
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises((StoreIntegrityError, StoreError)):
            store.get_object(key)

    def test_empty_object(self, store):
        key, _ = store.put_object(b"")
        assert store.get_object(key) == b""


class TestCheckpoints:
    def test_put_get_checkpoint_roundtrip(self, store):
        payload = os.urandom(300_000)
        manifest, stats = store.put_checkpoint("vm/a", payload)
        assert manifest.generation == 1
        assert stats.bytes_total == len(payload)
        back, m2 = store.get_checkpoint("vm/a")
        assert back == payload
        assert m2.generation == 1

    def test_generations_increment(self, store):
        for i in range(3):
            store.put_checkpoint("vm", bytes([i]) * 10_000)
        assert store.generations("vm") == [1, 2, 3]
        back, m = store.get_checkpoint("vm", generation=2)
        assert back == b"\x01" * 10_000
        assert m.generation == 2

    def test_dedup_ratio_over_slowly_mutating_heap(self, store):
        """Acceptance: > 2x dedup across >= 5 consecutive checkpoints of
        a slowly-mutating payload (one chunk-sized region churns)."""
        rng = random.Random(42)
        payload = bytearray(rng.randbytes(512 * 1024))
        total = PutStats()
        for _ in range(5):
            # mutate ~4% of the payload, like a heap between checkpoints
            off = rng.randrange(0, len(payload) - 20_000)
            payload[off : off + 20_000] = rng.randbytes(20_000)
            _, stats = store.put_checkpoint("heap", bytes(payload))
            total.merge(stats)
        assert len(store.generations("heap")) == 5
        assert total.dedup_ratio > 2.0

    def test_identical_payload_reuses_generation(self, store):
        """A retried upload of the same payload must not mint a new
        generation — this is what makes client retries idempotent."""
        payload = os.urandom(100_000)
        m1, _ = store.put_checkpoint("vm", payload)
        m2, stats = store.put_checkpoint("vm", payload)
        assert m2.generation == m1.generation
        assert store.generations("vm") == [1]
        assert stats.bytes_new == 0

    def test_integrity_verified_on_read(self, store):
        payload = os.urandom(200_000)
        manifest, _ = store.put_checkpoint("vm", payload)
        victim = manifest.chunks[1]
        path = store._object_path(victim)
        raw = bytearray(open(path, "rb").read())
        raw[10] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises((StoreIntegrityError, StoreError)):
            store.get_checkpoint("vm")

    def test_manifest_chunks_must_exist(self, store):
        with pytest.raises(StoreError):
            store.commit_manifest(
                "vm", [chunk_key(b"ghost")], payload_len=5,
                payload_sha256=hashlib.sha256(b"ghost").hexdigest(),
            )

    def test_bad_vm_id_rejected(self, store):
        for bad in ("", "../escape", "a//b", "semi;colon", "sp ace"):
            with pytest.raises(StoreError):
                store.put_checkpoint(bad, b"data")

    def test_empty_payload_roundtrip(self, store):
        manifest, _ = store.put_checkpoint("vm", b"")
        back, _ = store.get_checkpoint("vm")
        assert back == b""
        assert manifest.payload_len == 0

    def test_missing_vm_raises_not_found(self, store):
        with pytest.raises(StoreNotFoundError):
            store.get_checkpoint("nobody")


class TestMaintenance:
    def test_ls_reports_every_generation(self, store):
        store.put_checkpoint("a", b"1" * 1000)
        store.put_checkpoint("a", b"2" * 1000)
        store.put_checkpoint("b", b"3" * 1000, meta={"platform": "csd"})
        listing = store.ls()
        assert set(listing["vms"]) == {"a", "b"}
        assert [g["generation"] for g in listing["vms"]["a"]] == [1, 2]
        assert listing["vms"]["b"][0]["meta"] == {"platform": "csd"}

    def test_prune_and_gc(self, store):
        for i in range(4):
            store.put_checkpoint("vm", os.urandom(100_000))
        n_before = sum(1 for _ in store.iter_objects())
        dropped = store.prune("vm", keep_last=1)
        assert dropped == [1, 2, 3]
        assert store.generations("vm") == [4]
        report = store.gc()
        assert report["removed"] > 0
        assert sum(1 for _ in store.iter_objects()) < n_before
        # the surviving generation still reads back fine
        store.get_checkpoint("vm")

    def test_gc_keeps_shared_chunks(self, store):
        shared = os.urandom(150_000)
        store.put_checkpoint("a", shared)
        store.put_checkpoint("b", shared)
        store.prune("a", keep_last=1)  # no-op, one gen
        # drop every generation of b by pruning down after adding one more
        store.put_checkpoint("b", os.urandom(1000))
        store.prune("b", keep_last=1)
        store.gc()
        back, _ = store.get_checkpoint("a")
        assert back == shared

    def test_audit_clean_and_after_corruption(self, store):
        store.put_checkpoint("vm", os.urandom(100_000))
        report = store.audit()
        assert report["ok"] and report["problems"] == []
        key = next(iter(store.iter_objects()))
        path = store._object_path(key)
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        report = store.audit()
        assert not report["ok"]
        assert report["problems"]


class TestManifestFormat:
    def test_json_roundtrip(self, store):
        payload = os.urandom(50_000)
        manifest, _ = store.put_checkpoint("vm", payload, meta={"x": 1})
        again = Manifest.from_json(manifest.to_json())
        assert again == manifest

    def test_manifest_json_is_stable(self, store):
        manifest, _ = store.put_checkpoint("vm", b"abc")
        doc = json.loads(manifest.to_json())
        for field in ("vm_id", "generation", "chunk_size", "payload_len",
                      "payload_sha256", "chunks", "meta", "created"):
            assert field in doc


class TestPutStats:
    def test_dedup_ratio_full_dedup(self):
        s = PutStats(chunks_total=4, chunks_new=0, bytes_total=100, bytes_new=0)
        assert s.dedup_ratio == float("inf")

    def test_dedup_ratio_no_dedup(self):
        s = PutStats(chunks_total=2, chunks_new=2, bytes_total=50, bytes_new=50)
        assert s.dedup_ratio == 1.0

    def test_merge(self):
        a = PutStats(chunks_total=1, chunks_new=1, bytes_total=10, bytes_new=10)
        a.merge(PutStats(chunks_total=3, chunks_new=1, bytes_total=30, bytes_new=5))
        assert (a.chunks_total, a.chunks_new) == (4, 2)
        assert (a.bytes_total, a.bytes_new) == (40, 15)


class TestPackFiles:
    def test_roundtrip(self):
        files = {"manifest.rclu": b"\x00\x01", "node0.hckp": os.urandom(5000),
                 "empty": b""}
        assert unpack_files(pack_files(files)) == files

    def test_bad_magic_rejected(self):
        with pytest.raises(StoreError):
            unpack_files(b"not a pack")


class TestDirectoryLock:
    """The gc/prune vs concurrent-commit exclusion (PR 3 satellite)."""

    def test_acquire_creates_and_release_removes(self, tmp_path):
        from repro.store.chunkstore import DirectoryLock

        lock_path = str(tmp_path / ".lock")
        lock = DirectoryLock(lock_path)
        lock.acquire()
        assert os.path.exists(lock_path)
        lock.release()
        assert not os.path.exists(lock_path)

    def test_context_manager(self, tmp_path):
        from repro.store.chunkstore import DirectoryLock

        lock_path = str(tmp_path / ".lock")
        with DirectoryLock(lock_path):
            assert os.path.exists(lock_path)
        assert not os.path.exists(lock_path)

    def test_contended_lock_times_out(self, tmp_path):
        from repro.store.chunkstore import DirectoryLock

        lock_path = str(tmp_path / ".lock")
        holder = DirectoryLock(lock_path)
        holder.acquire()
        waiter = DirectoryLock(lock_path, timeout=0.1, stale_after=60.0)
        with pytest.raises(StoreError, match="timed out"):
            waiter.acquire()
        holder.release()

    def test_not_reentrant(self, tmp_path):
        from repro.store.chunkstore import DirectoryLock

        lock = DirectoryLock(str(tmp_path / ".lock"))
        lock.acquire()
        with pytest.raises(StoreError, match="not reentrant"):
            lock.acquire()
        lock.release()

    def test_stale_lock_broken(self, tmp_path):
        from repro.store.chunkstore import DirectoryLock

        lock_path = str(tmp_path / ".lock")
        with open(lock_path, "w") as f:
            f.write("99999 0\n")
        old = os.path.getmtime(lock_path) - 120
        os.utime(lock_path, (old, old))
        lock = DirectoryLock(lock_path, timeout=1.0, stale_after=60.0)
        lock.acquire()  # breaks the abandoned lock instead of timing out
        lock.release()

    def test_gc_blocked_while_commit_holds_lock(self, tmp_path):
        store = ChunkStore(str(tmp_path / "store"), lock_timeout=0.1)
        store.put_checkpoint("vm", os.urandom(100_000))
        with store._lock():
            with pytest.raises(StoreError, match="timed out"):
                store.gc()
        # Lock released: the sweep runs (and deletes nothing live).
        report = store.gc()
        assert report["removed"] == 0

    def test_commit_waits_for_gc_then_proceeds(self, tmp_path):
        import threading

        store = ChunkStore(str(tmp_path / "store"), lock_timeout=5.0)
        lock = store._lock()
        lock.acquire()
        done = []

        def commit():
            done.append(store.put_checkpoint("vm", os.urandom(50_000)))

        t = threading.Thread(target=commit)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive(), "commit must block while the lock is held"
        lock.release()
        t.join(timeout=5.0)
        assert not t.is_alive() and len(done) == 1
        manifest, _stats = done[0]
        assert store.read_manifest("vm", manifest.generation) is not None

    def test_prune_takes_the_lock(self, tmp_path):
        store = ChunkStore(str(tmp_path / "store"), lock_timeout=0.1)
        for _ in range(3):
            store.put_checkpoint("vm", os.urandom(10_000))
        with store._lock():
            with pytest.raises(StoreError, match="timed out"):
                store.prune("vm", keep_last=1)
        assert len(store.prune("vm", keep_last=1)) == 2
