"""Tests for the MiniML standard prelude."""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.errors import CompileError, VMRuntimeError
from repro.minilang.stdlib import prelude_globals

RODRIGO = get_platform("rodrigo")


def run(src: str) -> bytes:
    code = compile_source(src)
    vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
    result = vm.run(max_instructions=5_000_000)
    assert result.status == "stopped"
    return result.stdout


class TestNumericHelpers:
    def test_abs_min_max(self):
        assert run("print_int (abs (-5)); print_int (min 3 9); print_int (max 3 9)") == b"539"

    def test_succ_pred(self):
        assert run("print_int (succ 41); print_int (pred 43)") == b"4242"


class TestListModule:
    def test_length_rev_append(self):
        src = """
        let l = [1; 2; 3];;
        print_int (List.length l);;
        List.iter print_int (List.rev l);;
        print_int (List.length (List.append l [4; 5]))
        """
        assert run(src) == b"33215"

    def test_map_preserves_order(self):
        assert run("List.iter print_int (List.map succ [1; 2; 3])") == b"234"

    def test_fold_left(self):
        assert run("print_int (List.fold_left (fun a b -> a * 10 + b) 0 [1; 2; 3])") == b"123"

    def test_mem(self):
        assert run("""
        if List.mem 2 [1; 2; 3] then print_int 1;;
        if not (List.mem 9 [1; 2; 3]) then print_int 0
        """) == b"10"

    def test_nth_and_failure(self):
        assert run("print_int (List.nth [10; 20; 30] 1)") == b"20"
        with pytest.raises(VMRuntimeError, match="List.nth"):
            run("print_int (List.nth [1] 5)")

    def test_filter(self):
        assert run("List.iter print_int (List.filter (fun x -> x mod 2 = 0) [1;2;3;4;5;6])") == b"246"

    def test_assoc(self):
        src = """
        let table = [ [|1; 100|]; [|2; 200|] ];;
        print_int (List.assoc 2 table);;
        print_int (try List.assoc 9 table with "Not_found" -> -1)
        """
        assert run(src) == b"200-1"


class TestArrayModule:
    def test_init_and_copy_are_independent(self):
        src = """
        let a = Array.init 4 (fun i -> i * 10);;
        let b = Array.copy a;;
        b.(0) <- 999;;
        print_int a.(0); print_string "/"; print_int b.(0);
        print_string "/"; print_int a.(3)
        """
        assert run(src) == b"0/999/30"

    def test_fill_and_iter(self):
        src = """
        let a = Array.make 5 1;;
        Array.fill a 1 3 7;;
        Array.iter print_int a
        """
        assert run(src) == b"17771"

    def test_to_list(self):
        assert run("List.iter print_int (Array.to_list (Array.init 4 succ))") == b"1234"

    def test_empty_array_cases(self):
        assert run("print_int (Array.length (Array.init 0 succ))") == b"0"
        assert run("print_int (List.length (Array.to_list [||]))") == b"0"


class TestStringHelpers:
    def test_get_and_repeat(self):
        assert run("print_char (String.get \"xyz\" 1); print_string (String.repeat \"ha\" 2)") == b"yhaha"


class TestPreludeMechanics:
    def test_prelude_can_be_disabled(self):
        with pytest.raises(CompileError):
            compile_source("print_int (List.length [1])", prelude=False)

    def test_user_can_shadow_prelude(self):
        assert run("let abs x = 999;; print_int (abs 5)") == b"999"

    def test_prelude_globals_enumerates(self):
        names = prelude_globals()
        assert "List.map" in names
        assert "Array.init" in names
        assert "abs" in names

    def test_prelude_survives_checkpoint(self, tmp_path):
        from repro import restart_vm

        src = """
        let data = List.map (fun x -> x * x) [1; 2; 3];;
        checkpoint ();;
        print_int (List.fold_left (fun a b -> a + b) 0 data)
        """
        path = str(tmp_path / "p.hckp")
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        assert vm.run(max_instructions=2_000_000).stdout == b"14"
        vm2, _ = restart_vm(get_platform("ultra64"), code, path)
        assert vm2.run(max_instructions=2_000_000).stdout == b"14"
