"""Differential tests: the fast dispatch tier against the reference loop.

The fast tier (decode-once closures, superinstruction fusion, batched
counted-loop kernels — :mod:`repro.interpreter.dispatch`) is an
*observational substitute* for the canonical fetch/decode/execute loop.
These tests pin the substitution down:

* identical stdout, exit status and instruction counts on every example
  workload, on a 32-bit little-endian and a 64-bit big-endian platform;
* identical final heap occupancy;
* bit-identical checkpoint files when a run checkpoints itself;
* a checkpoint taken *mid fused region* (the reference tier stopped
  between two members of a planned superinstruction) restores and
  completes correctly under the fast tier on an opposite-endianness,
  opposite-word-size platform — fused groups only exist at bind time,
  never in checkpointed state.
"""

from __future__ import annotations

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.bytecode.image import CodeImage
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError
from repro.workloads import (
    insertion_sort_expected,
    insertion_sort_source,
    matmul_expected,
    matmul_source,
)

#: Opposite endianness AND opposite word size (32LE vs 64BE).
PLATFORM_PAIR = ["rodrigo", "ultra64"]

LOOP = """
let r = ref 0;;
let s = ref 0;;
while !r < 5000 do (r := !r + 1; s := !s + 2) done;;
print_int !r; print_string "/"; print_int !s
"""

#: Race-free by construction: the threads write disjoint cells, so the
#: result is interleaving-independent.  (The two tiers reach quantum
#: ticks at slightly different instruction boundaries — batched
#: dispatches only poll at their edges — so programs whose *output*
#: depends on preemption timing are outside the equivalence contract.)
THREADS = """
let a = ref 0;;
let b = ref 0;;
let spin cell n =
  let i = ref 0 in
  while !i < 200 do (cell := !cell + n; i := !i + 1) done;;
let t1 = thread_create (fun () -> spin a 1);;
let t2 = thread_create (fun () -> spin b 10);;
thread_join t1; thread_join t2;
print_int (!a * 10000 + !b)
"""

EXCEPTIONS = """
let rec loop i acc =
  if i = 0 then acc
  else
    let v = try (if i mod 3 = 0 then raise 99 else i)
            with e -> e + 901 in
    loop (i - 1) (acc + v);;
print_int (loop 60 0)
"""

WORKLOADS = {
    "loop": lambda: LOOP,
    "matmul": lambda: matmul_source(6, checkpoint=False),
    "sort": lambda: insertion_sort_source(40, checkpoint=False),
    "threads": lambda: THREADS,
    "exceptions": lambda: EXCEPTIONS,
}

#: Workloads that call ``checkpoint ()`` themselves; the files the two
#: tiers write must be bit-identical.
CK_WORKLOADS = {
    "matmul_ck": lambda: matmul_source(6),
    "sort_ck": lambda: insertion_sort_source(40),
    "threads_ck": lambda: THREADS.replace(
        "print_int", "checkpoint ();\nprint_int"
    ),
}


def run_tier(src, platform_name, tier, ck_path=None):
    """Run ``src`` under one dispatch tier; plain ``run()`` so the tier
    selector actually honors the configuration (budgeted runs always
    take the reference loop)."""
    code = compile_source(src)
    cfg = (
        dict(chkpt_filename=str(ck_path), chkpt_mode="blocking")
        if ck_path is not None
        else dict(chkpt_state="disable")
    )
    vm = VirtualMachine(
        get_platform(platform_name), code, VMConfig(dispatch=tier, **cfg)
    )
    result = vm.run()
    assert result.status == "stopped"
    return result


def heap_words(vm):
    return vm.mem.minor.used_words + vm.mem.heap.live_words()


class TestDifferential:
    """fast == reference on every observable, on both platform shapes."""

    @pytest.mark.parametrize("platform_name", PLATFORM_PAIR)
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_matches_reference(self, platform_name, name):
        src = WORKLOADS[name]()
        ref = run_tier(src, platform_name, "reference")
        fast = run_tier(src, platform_name, "fast")
        assert fast.stdout == ref.stdout
        assert fast.instructions == ref.instructions
        assert heap_words(fast.vm) == heap_words(ref.vm)

    @pytest.mark.parametrize("platform_name", PLATFORM_PAIR)
    @pytest.mark.parametrize("name", sorted(CK_WORKLOADS))
    def test_checkpoint_bytes_identical(self, platform_name, name, tmp_path):
        src = CK_WORKLOADS[name]()
        paths = {
            tier: tmp_path / f"{name}-{tier}.hckp"
            for tier in ("reference", "fast")
        }
        ref = run_tier(src, platform_name, "reference", paths["reference"])
        fast = run_tier(src, platform_name, "fast", paths["fast"])
        assert fast.stdout == ref.stdout
        assert fast.instructions == ref.instructions
        ref_bytes = paths["reference"].read_bytes()
        fast_bytes = paths["fast"].read_bytes()
        assert ref_bytes == fast_bytes

    def test_fusion_and_kernel_variants_match(self):
        """Each fast-tier layer can be disabled without changing results."""
        from repro.interpreter.dispatch import build_fast_code

        src = WORKLOADS["loop"]()
        ref = run_tier(src, "rodrigo", "reference")
        for fusion, kernels in [(False, True), (True, False), (False, False)]:
            code = compile_source(src)
            vm = VirtualMachine(
                get_platform("rodrigo"), code,
                VMConfig(dispatch="fast", chkpt_state="disable"),
            )
            vm.interp._fast = build_fast_code(
                vm.interp, fusion=fusion, kernels=kernels
            )
            result = vm.run()
            assert result.status == "stopped"
            assert result.stdout == ref.stdout, (fusion, kernels)
            assert result.instructions == ref.instructions, (fusion, kernels)


class TestMidFusedRegionCheckpoint:
    """A checkpoint between two members of a planned superinstruction.

    The fast tier never creates such a state itself (a fused closure is
    one uninterruptible dispatch covering several canonical
    instructions), but the reference tier — and any checkpoint written
    by an older VM — can stop there.  The fast tier must execute from
    that pc with canonical single-instruction semantics.
    """

    SRC = """
    let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);;
    let a = fib 16;;
    let r = ref 0;;
    while !r < 300 do r := !r + 1 done;;
    print_int a; print_string "+"; print_int !r
    """
    EXPECTED = b"987+300"

    def _stop_mid_group(self, vm, code):
        """Step the reference tier until pc is inside a fused group."""
        mid = {
            m
            for g in code.decoded().groups
            for m in g.members[1:]
        }
        assert mid, "program has no fusible regions; test is vacuous"
        for _ in range(200_000):
            result = vm.run(max_instructions=1)
            if result.status != "budget":
                pytest.fail("program finished before reaching a fused region")
            if vm.interp.pc in mid:
                return vm.interp.pc
        pytest.fail("never stopped inside a fused region")

    @pytest.mark.parametrize(
        "origin,target", [("rodrigo", "ultra64"), ("ultra64", "rodrigo")]
    )
    def test_restore_mid_group_under_fast_tier(self, origin, target, tmp_path):
        path = str(tmp_path / "mid.hckp")
        code = compile_source(self.SRC)
        vm = VirtualMachine(
            get_platform(origin), code,
            VMConfig(dispatch="reference", chkpt_filename=path,
                     chkpt_mode="blocking"),
        )
        stop_pc = self._stop_mid_group(vm, code)
        vm.perform_checkpoint()

        # Opposite endianness, opposite word size, opposite tier.
        vm2, _ = restart_vm(
            get_platform(target), code, path, VMConfig(dispatch="fast")
        )
        assert vm2.interp.pc == stop_pc  # really restarting mid-group
        result = vm2.run()
        assert result.status == "stopped"
        assert result.stdout == self.EXPECTED

        # And the reference tier agrees from the same file.
        vm3, _ = restart_vm(
            get_platform(target), code, path, VMConfig(dispatch="reference")
        )
        assert vm3.run(max_instructions=50_000_000).stdout == self.EXPECTED


class TestStrideLoopKernels:
    """Array-stride ``for`` loops batch through numpy — or fall back.

    The kernel must be an observational no-op: wherever a batch cannot
    be proven safe (aliasing, bounds faults, representation overflow)
    it falls back to single-step execution, so every test here is a
    straight differential against the reference tier.
    """

    def _diff(self, src, platform_name="rodrigo"):
        ref = run_tier(src, platform_name, "reference")
        fast = run_tier(src, platform_name, "fast")
        assert fast.stdout == ref.stdout
        assert fast.instructions == ref.instructions
        return fast

    def test_matmul_inner_loop_is_planned_as_reduction(self):
        from repro.bytecode.decoded import StrideLoopPlan

        code = compile_source(matmul_source(6, checkpoint=False))
        stride = [
            p for p in code.decoded().loops
            if isinstance(p, StrideLoopPlan)
        ]
        assert stride, "matmul must expose at least one stride loop"
        # The dot-product accumulation: c.(j) <- c.(j) + term.
        def is_reduction(p):
            _, arr, idx, val = p.store
            return (
                isinstance(val, tuple)
                and val[0] == "bin"
                and ("elem", arr, idx) in (val[2], val[3])
            )
        assert any(is_reduction(p) for p in stride)

    @pytest.mark.parametrize("platform_name", PLATFORM_PAIR)
    def test_fill_copy_and_dot_product(self, platform_name):
        src = """
        let a = Array.make 64 0;;
        let b = Array.make 64 0;;
        let s = Array.make 1 0;;
        for i = 0 to 63 do a.(i) <- i * 3 done;;
        for i = 0 to 63 do b.(i) <- a.(i) done;;
        for i = 0 to 63 do s.(0) <- s.(0) + (a.(i) * b.(i)) done;;
        print_int s.(0); print_string "/"; print_int b.(63)
        """
        result = self._diff(src, platform_name)
        assert result.stdout == b"768096/189"

    def test_downward_loop(self):
        src = """
        let a = Array.make 32 0;;
        for i = 31 downto 0 do a.(i) <- 31 - i done;;
        let s = Array.make 1 0;;
        for i = 0 to 31 do s.(0) <- s.(0) + a.(i) done;;
        print_int s.(0)
        """
        assert self._diff(src).stdout == b"496"

    def test_aliased_read_write_falls_back(self):
        """``a.(i) <- a.(i-1) + 1`` is order-dependent; the batch must
        detect the alias and fall back to sequential semantics."""
        src = """
        let a = Array.make 16 0;;
        a.(0) <- 7;;
        for i = 1 to 15 do a.(i) <- a.(i - 1) + 1 done;;
        print_int a.(15)
        """
        assert self._diff(src).stdout == b"22"

    def test_bounds_fault_mid_loop_falls_back_to_exact_raise(self):
        """An out-of-bounds store inside a stride loop must raise the
        catchable exception at the exact iteration the reference tier
        would, with all earlier writes committed."""
        src = """
        let a = Array.make 24 0;;
        let b = Array.make 8 0;;
        let r = try
            (for i = 0 to 23 do b.(i) <- a.(i) + 1 done; 0)
          with _ -> b.(7);;
        print_int r
        """
        assert self._diff(src).stdout == b"1"

    def test_reduction_overflow_falls_back_to_wrap(self):
        """On 32-bit, accumulating past max_int must reproduce the
        reference tier's silent wrap (the batch aborts instead of
        modeling it)."""
        src = """
        let s = Array.make 1 0;;
        for i = 0 to 99 do s.(0) <- s.(0) + 30000000 done;;
        print_int s.(0)
        """
        self._diff(src, "rodrigo")  # 32-bit: wraps
        self._diff(src, "ultra64")  # 64-bit: exact

    def test_threaded_stride_loops(self):
        src = """
        let a = Array.make 256 0;;
        let b = Array.make 256 0;;
        let fill arr k =
          for i = 0 to 255 do arr.(i) <- i * k done;;
        let t1 = thread_create (fun () -> fill a 1);;
        let t2 = thread_create (fun () -> fill b 3);;
        thread_join t1; thread_join t2;
        print_int (a.(255) + b.(255))
        """
        assert self._diff(src).stdout == b"1020"

    def test_checkpoint_bytes_identical_with_stride_loops(self, tmp_path):
        src = """
        let a = Array.make 128 0;;
        for i = 0 to 127 do a.(i) <- i * i done;;
        checkpoint ();;
        let s = Array.make 1 0;;
        for i = 0 to 127 do s.(0) <- s.(0) + a.(i) done;;
        print_int s.(0)
        """
        paths = {
            tier: tmp_path / f"stride-{tier}.hckp"
            for tier in ("reference", "fast")
        }
        ref = run_tier(src, "ultra64", "reference", paths["reference"])
        fast = run_tier(src, "ultra64", "fast", paths["fast"])
        assert fast.stdout == ref.stdout == b"690880"
        assert (
            paths["reference"].read_bytes() == paths["fast"].read_bytes()
        )


class TestTailOnlyFusion:
    """APPLY/GETVECTITEM/SETVECTITEM fuse only as group tails."""

    def test_tail_ops_never_inner(self):
        from repro.bytecode.decoded import FUSIBLE_INNER, FUSION_PATTERNS

        tail_only = {int(Op.APPLY), int(Op.GETVECTITEM),
                     int(Op.SETVECTITEM)}
        assert not tail_only & FUSIBLE_INNER
        for pat in FUSION_PATTERNS:
            assert not tail_only & set(pat[:-1]), pat

    @pytest.mark.parametrize("platform_name", PLATFORM_PAIR)
    def test_fused_getvectitem_raise_path(self, platform_name):
        """A bounds fault on a *fused* GETVECTITEM (tail of
        PUSH;GETGLOBAL;GETVECTITEM) must land in the handler with
        canonical state."""
        src = """
        let a = Array.make 4 5;;
        let get i = try a.(i) with _ -> -1;;
        let s = ref 0;;
        for i = 0 to 7 do s := !s + get i done;;
        print_int !s
        """
        ref = run_tier(src, platform_name, "reference")
        fast = run_tier(src, platform_name, "fast")
        assert fast.stdout == ref.stdout == b"16"
        assert fast.instructions == ref.instructions


class TestFastTierSemantics:
    def test_illegal_opcode_same_error_both_tiers(self):
        code = CodeImage([9999, int(Op.STOP)], "bad", 0)
        messages = {}
        for tier in ("reference", "fast"):
            vm = VirtualMachine(
                get_platform("rodrigo"), code,
                VMConfig(dispatch=tier, chkpt_state="disable"),
            )
            with pytest.raises(BytecodeError) as exc:
                vm.run() if tier == "fast" else vm.run(max_instructions=10)
            messages[tier] = str(exc.value)
        assert messages["fast"] == messages["reference"]
        assert "illegal opcode 9999 at 0" in messages["fast"]

    def test_budgeted_run_uses_reference_tier(self):
        """An instruction budget must force the per-instruction loop."""
        code = compile_source(LOOP)
        vm = VirtualMachine(
            get_platform("rodrigo"), code,
            VMConfig(dispatch="fast", chkpt_state="disable"),
        )
        result = vm.run(max_instructions=7)
        assert result.status == "budget"
        assert result.instructions == 7
        assert vm.interp._fast is None  # fast code never got built

    def test_trace_hook_forces_reference_tier(self):
        from repro.tracing import InstructionTracer

        code = compile_source("print_int (1 + 2)")
        vm = VirtualMachine(
            get_platform("rodrigo"), code,
            VMConfig(dispatch="fast", chkpt_state="disable"),
        )
        tracer = InstructionTracer()
        vm.interp.trace_hook = tracer
        result = vm.run()
        assert result.status == "stopped"
        assert tracer.total == result.instructions
        assert vm.interp._fast is None

    def test_hot_pairs_counts_consecutive_opcodes(self):
        from repro.tracing import InstructionTracer

        code = compile_source(LOOP)
        vm = VirtualMachine(
            get_platform("rodrigo"), code,
            VMConfig(dispatch="fast", chkpt_state="disable"),
        )
        tracer = InstructionTracer(limit=100)
        vm.interp.trace_hook = tracer
        result = vm.run()
        assert result.status == "stopped"
        # Single-threaded: every dispatch after the first extends a pair.
        assert sum(tracer.pair_counts.values()) == tracer.total - 1
        pairs = tracer.hot_pairs(5)
        assert len(pairs) == 5
        assert all(
            isinstance(a, str) and isinstance(b, str) and n >= 1
            for a, b, n in pairs
        )
        assert pairs == sorted(pairs, key=lambda p: -p[2])

    def test_dispatch_env_parsing(self):
        assert VMConfig().dispatch == "fast"
        assert VMConfig.from_env({}).dispatch == "fast"
        assert (
            VMConfig.from_env({"CHKPT_DISPATCH": "reference"}).dispatch
            == "reference"
        )
        assert (
            VMConfig.from_env({"CHKPT_DISPATCH": " FAST "}).dispatch == "fast"
        )
        # Unrecognized values leave the default alone.
        assert VMConfig.from_env({"CHKPT_DISPATCH": "turbo"}).dispatch == "fast"

    def test_decoded_stream_cached_per_image(self):
        code = compile_source(LOOP)
        assert code.decoded() is code.decoded()
        assert code.decoded().n_units == len(code.units)
