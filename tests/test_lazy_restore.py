"""Lazy first-touch restore: differential and fault-injection tests.

``--lazy-restore`` defers per-chunk heap conversion (pointer fixing,
endianness repack, 32<->64 payload fill) into first-touch thunks.  The
thunks run the same kernels the eager pass runs, restricted to one
chunk, so a lazy restore must be *observationally identical* to an
eager one:

* restarted runs print the same bytes on every endianness x word-size
  pairing,
* once drained, the restored memory fingerprint matches eager exactly,
* a checkpoint taken *mid-lazy-restore* — some chunks converted by
  touch, the rest still raw — commits bit-identically to a checkpoint
  taken after an eager restore,
* a corrupt chunk whose thunk fires arbitrarily late surfaces as a
  typed :class:`CheckpointIntegrityError`, never a raw numpy crash.
"""

from __future__ import annotations

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.errors import CheckpointIntegrityError

#: rodrigo is the 32-bit little-endian origin; the targets cover the
#: four conversion pairings: nothing / endianness / word size / both.
ORIGIN = "rodrigo"
TARGETS = ["rodrigo", "csd", "sp2148", "ultra64"]

PROGRAM = """
let r = ref 0;;
let arr = Array.make 16 3;;
let lst = ref [];;
let fl = ref 2.25;;
let s = ref "seed";;
for i = 0 to 15 do arr.(i) <- i * i done;;
for i = 1 to 40 do begin
  r := !r + i;
  lst := (i * 7) :: !lst;
  fl := !fl *. 1.0625;
  if i mod 3 = 0 then s := !s ^ "x" else ()
end done;;
checkpoint ();;
let rec suml l = match l with [] -> 0 | h :: t -> h + suml t;;
r := !r + suml !lst + Array.length arr;;
print_int !r;;
print_string (" " ^ !s ^ " ");;
print_float !fl
"""

#: Fills several heap chunks (small ``chunk_words``), then only reads
#: the list head after the checkpoint — most chunks are never touched.
MULTI_CHUNK_PROGRAM = """
let keep = ref [];;
let () =
  for i = 1 to 24 do
    let a = Array.make 512 i in
    keep := a :: !keep
  done;;
checkpoint ();;
let rec first l = match l with [] -> 0 | h :: _ -> h.(0);;
print_int (first !keep)
"""

SMALL_CHUNKS = 2048  # words; forces the heap across many chunks


def _checkpoint(code, path: str, source_cfg=None) -> bytes:
    cfg = source_cfg or VMConfig()
    cfg.chkpt_filename = path
    cfg.chkpt_mode = "blocking"
    vm = VirtualMachine(get_platform(ORIGIN), code, cfg)
    result = vm.run(max_instructions=10_000_000)
    assert result.status == "stopped"
    assert vm.checkpoints_taken == 1
    return result


def _fingerprint(vm: VirtualMachine) -> dict:
    """Restored memory as plain data (materializes staged chunks)."""
    heap = vm.mem.heap
    return {
        "chunks": [(c.base, list(c.area.words)) for c in heap.chunks],
        "freelist_head": heap.freelist_head,
        "global_data": vm.global_data,
        "threads": {
            tid: (t.accu, t.env, t.stack.sp, list(t.stack.used_slice()))
            for tid, t in sorted(vm.sched.threads.items())
        },
    }


# ---------------------------------------------------------------------------
# Differential: lazy == eager on every pairing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("target", TARGETS)
def test_lazy_restore_matches_eager(target, tmp_path):
    code = compile_source(PROGRAM)
    path = str(tmp_path / "c.hckp")
    origin_out = _checkpoint(code, path)

    tp = get_platform(target)
    vm_e, st_e = restart_vm(tp, code, path)
    vm_l, st_l = restart_vm(tp, code, path, VMConfig(lazy_restore=True))

    assert not st_e.lazy
    assert st_l.lazy
    assert st_l.lazy_chunks_total >= 1
    # Nothing touched the heap yet: all conversion is still pending.
    assert st_l.lazy_chunks_converted == 0
    assert vm_l.lazy_restore is not None

    # Drained, the lazy restore reproduces the eager memory exactly.
    vm_l.finish_lazy_restore()
    assert st_l.lazy_chunks_converted == st_l.lazy_chunks_total
    assert _fingerprint(vm_l) == _fingerprint(vm_e)

    out_e = vm_e.run(max_instructions=10_000_000)
    out_l = vm_l.run(max_instructions=10_000_000)
    assert out_l.stdout == out_e.stdout == origin_out.stdout


@pytest.mark.parametrize("target", TARGETS)
def test_lazy_restore_converges_by_first_touch_alone(target, tmp_path):
    """No explicit drain: demand faults + the tick drainer finish it."""
    code = compile_source(PROGRAM)
    path = str(tmp_path / "c.hckp")
    origin_out = _checkpoint(code, path)

    vm_l, st_l = restart_vm(
        get_platform(target), code, path, VMConfig(lazy_restore=True)
    )
    out = vm_l.run(max_instructions=10_000_000)
    assert out.stdout == origin_out.stdout
    assert st_l.lazy_seconds > 0.0
    assert st_l.completion_seconds >= st_l.total_seconds


# ---------------------------------------------------------------------------
# Checkpoint taken mid-lazy-restore
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("target", TARGETS)
def test_checkpoint_during_lazy_restore_is_bit_identical(target, tmp_path):
    code = compile_source(MULTI_CHUNK_PROGRAM)
    path = str(tmp_path / "c.hckp")
    _checkpoint(code, path, VMConfig(chunk_words=SMALL_CHUNKS))

    tp = get_platform(target)
    cfg = lambda **kw: VMConfig(  # noqa: E731
        chunk_words=SMALL_CHUNKS,
        chkpt_mode="blocking",
        **kw,
    )
    pe = str(tmp_path / f"eager-{target}.hckp")
    pl = str(tmp_path / f"lazy-{target}.hckp")

    vm_e, _ = restart_vm(tp, code, path, cfg(chkpt_filename=pe))
    vm_e.perform_checkpoint()

    vm_l, st_l = restart_vm(
        tp, code, path, cfg(chkpt_filename=pl, lazy_restore=True)
    )
    assert st_l.lazy_chunks_total > 1, "program must span several chunks"
    # Touch a strict subset: dereference the globals block only.
    vm_l.mem.space.load(vm_l.global_data)
    touched = st_l.lazy_chunks_converted
    assert 1 <= touched < st_l.lazy_chunks_total
    # Mid-restore checkpoint: the writer must force the remaining
    # thunks inside the blocking window and dump converted words.
    vm_l.perform_checkpoint()
    assert vm_l.lazy_restore is None
    assert st_l.lazy_chunks_converted == st_l.lazy_chunks_total
    assert "lazy_finish" in vm_l.last_checkpoint_stats.phases.report()

    with open(pe, "rb") as f:
        eager_bytes = f.read()
    with open(pl, "rb") as f:
        lazy_bytes = f.read()
    assert lazy_bytes == eager_bytes


def test_partial_touch_then_drain_matches_eager(tmp_path):
    """The tick drainer converts untouched chunks; memory still matches."""
    code = compile_source(MULTI_CHUNK_PROGRAM)
    path = str(tmp_path / "c.hckp")
    origin_out = _checkpoint(code, path, VMConfig(chunk_words=SMALL_CHUNKS))

    tp = get_platform("csd")  # opposite endianness
    vm_e, _ = restart_vm(tp, code, path, VMConfig(chunk_words=SMALL_CHUNKS))
    vm_l, st_l = restart_vm(
        tp, code, path,
        VMConfig(chunk_words=SMALL_CHUNKS, lazy_restore=True),
    )
    # Drain one chunk at a time, interleaved with demand touches.
    vm_l.mem.space.load(vm_l.global_data)
    while vm_l.lazy_restore is not None:
        vm_l.drain_lazy_restore()
    assert st_l.lazy_chunks_converted == st_l.lazy_chunks_total
    assert _fingerprint(vm_l) == _fingerprint(vm_e)
    out = vm_l.run(max_instructions=10_000_000)
    assert out.stdout == origin_out.stdout


# ---------------------------------------------------------------------------
# Fault injection: late-firing thunk over a corrupt chunk
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("target", ["csd", "ultra64"])
def test_corrupt_chunk_late_thunk_raises_typed_error(target, tmp_path):
    code = compile_source(MULTI_CHUNK_PROGRAM)
    path = str(tmp_path / "c.hckp")
    _checkpoint(code, path, VMConfig(chunk_words=SMALL_CHUNKS))

    vm_l, st_l = restart_vm(
        get_platform(target), code, path,
        VMConfig(chunk_words=SMALL_CHUNKS, lazy_restore=True),
    )
    assert st_l.lazy
    chunk = vm_l.mem.heap.chunks[0]
    area = chunk.area
    assert area.pending_conversion
    arr = area.peek_staged()
    if hasattr(arr, "materialize"):
        # Deferred-section restore stages an unread chunk slice; pull
        # the (verified) payload in so we can corrupt the staged words
        # that the conversion thunk will consume.
        arr = arr.materialize()
        area._staged = arr
    if target == "csd":
        # Same word size: the thunk re-reads headers from the staged
        # words.  Word 0 is always a header; give it an impossible size
        # so the conversion kernel indexes out of range.
        arr[0] = (2 * arr.size) << 10  # white, tag 0, size 2x the chunk
    else:
        # Cross word size: block metadata was classified eagerly, so
        # corrupt the staged backing itself (truncated array) — the
        # deferred payload fill then scatters past the end.
        area._staged = arr[:8]
    with pytest.raises(CheckpointIntegrityError) as exc_info:
        vm_l.mem.space.load(chunk.base + vm_l.platform.arch.word_bytes)
    assert exc_info.value.section == "heap"
    assert "lazy conversion" in str(exc_info.value)


# ---------------------------------------------------------------------------
# Deferred sections: the restore defers bytes, the drain verifies late
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("target", TARGETS)
def test_lazy_restart_defers_sections_then_verifies(target, tmp_path):
    """A lazy restart leaves the heap section unread/unverified; the
    drain completes the whole-file verification afterwards and the
    RESTART counters record both halves."""
    from repro.metrics import RESTART

    code = compile_source(MULTI_CHUNK_PROGRAM)
    path = str(tmp_path / "c.hckp")
    origin_out = _checkpoint(code, path, VMConfig(chunk_words=SMALL_CHUNKS))

    before = RESTART.as_dict()
    vm_l, st_l = restart_vm(
        get_platform(target), code, path,
        VMConfig(chunk_words=SMALL_CHUNKS, lazy_restore=True),
    )
    assert st_l.sections_deferred >= 1
    assert st_l.bytes_deferred > 0
    assert st_l.bytes_verified > 0
    moved = RESTART.delta_since(before)
    assert moved["lazy_restores"] == 1
    assert moved["bytes_deferred"] == st_l.bytes_deferred
    assert moved["late_verifications"] == 0

    out = vm_l.run(max_instructions=10_000_000)
    assert out.stdout == origin_out.stdout
    vm_l.finish_lazy_restore()
    moved = RESTART.delta_since(before)
    assert moved["late_verifications"] == 1
    assert moved["late_failures"] == 0


# ---------------------------------------------------------------------------
# Knob semantics
# ---------------------------------------------------------------------------


def test_lazy_requires_vectorized_path(tmp_path):
    """``--lazy-restore --no-vectorize`` degrades to an eager restore."""
    code = compile_source(PROGRAM)
    path = str(tmp_path / "c.hckp")
    origin_out = _checkpoint(code, path)
    vm, st = restart_vm(
        get_platform("csd"), code, path,
        VMConfig(lazy_restore=True, vectorize=False),
    )
    assert not st.lazy
    assert vm.lazy_restore is None
    out = vm.run(max_instructions=10_000_000)
    assert out.stdout == origin_out.stdout


def test_lazy_env_knob():
    assert VMConfig.from_env({"CHKPT_LAZY": "1"}).lazy_restore
    assert not VMConfig.from_env({"CHKPT_LAZY": "off"}).lazy_restore
    assert not VMConfig.from_env({}).lazy_restore
