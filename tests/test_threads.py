"""Tests for VM green threads and synchronization primitives."""

from __future__ import annotations

import pytest

from repro.arch.platforms import RODRIGO
from repro.errors import DeadlockError, ThreadError
from repro.minilang import compile_source
from repro.vm import VirtualMachine, VMConfig


def run(src: str, quantum=50, max_instructions=5_000_000, **kw):
    code = compile_source(src)
    vm = VirtualMachine(RODRIGO, code, VMConfig(quantum=quantum, **kw))
    result = vm.run(max_instructions=max_instructions)
    assert result.status == "stopped"
    return result, vm


class TestThreadBasics:
    def test_spawn_and_join(self):
        src = """
        let t = thread_create (fun () -> print_string "child ") in
        (thread_join t; print_string "parent")
        """
        result, vm = run(src)
        assert result.stdout == b"child parent"
        assert vm.is_multithreaded

    def test_single_threaded_flag(self):
        result, vm = run("print_int 1")
        assert not vm.is_multithreaded

    def test_many_threads_all_run(self):
        src = """
        let counter = ref 0;;
        let t1 = thread_create (fun () -> counter := !counter + 1);;
        let t2 = thread_create (fun () -> counter := !counter + 10);;
        let t3 = thread_create (fun () -> counter := !counter + 100);;
        thread_join t1; thread_join t2; thread_join t3;
        print_int !counter
        """
        result, _ = run(src)
        assert result.stdout == b"111"

    def test_join_already_finished(self):
        src = """
        let t = thread_create (fun () -> ()) in
        (thread_yield (); thread_yield (); thread_join t; print_int 1)
        """
        result, _ = run(src)
        assert result.stdout == b"1"

    def test_preemption_interleaves(self):
        # With a tiny quantum, two busy loops must interleave: both make
        # progress before either finishes.
        src = """
        let log = Array.make 2 0;;
        let busy id =
          for i = 1 to 500 do
            log.(id) <- log.(id) + 1
          done;;
        let t = thread_create (fun () -> busy 0) in
        (busy 1; thread_join t; print_int (log.(0) + log.(1)))
        """
        result, vm = run(src, quantum=20)
        assert result.stdout == b"1000"
        assert vm.sched.switches >= 2

    def test_thread_self_ids(self):
        src = """
        let t = thread_create (fun () -> print_int (thread_self ())) in
        (thread_join t; print_int (thread_self ()))
        """
        result, _ = run(src)
        assert result.stdout == b"10"


class TestMutex:
    def test_mutual_exclusion_protects_counter(self):
        src = """
        let m = mutex_create ();;
        let total = ref 0;;
        let worker () =
          for i = 1 to 100 do
            mutex_lock m;
            total := !total + 1;
            mutex_unlock m
          done;;
        let t1 = thread_create worker;;
        let t2 = thread_create worker;;
        thread_join t1; thread_join t2; print_int !total
        """
        result, _ = run(src, quantum=13)
        assert result.stdout == b"200"

    def test_lock_blocks_until_unlocked(self):
        src = """
        let m = mutex_create ();;
        let () = mutex_lock m;;
        let t = thread_create (fun () -> begin mutex_lock m; print_string "B"; mutex_unlock m end);;
        thread_yield ();
        print_string "A";
        mutex_unlock m;
        thread_join t
        """
        result, _ = run(src, quantum=10)
        assert result.stdout == b"AB"

    def test_unlock_not_held_raises(self):
        with pytest.raises(ThreadError):
            run("let m = mutex_create () in mutex_unlock m")

    def test_relock_by_owner_raises(self):
        with pytest.raises(ThreadError):
            run("let m = mutex_create () in (mutex_lock m; mutex_lock m)")

    def test_deadlock_detected(self):
        src = """
        let m = mutex_create ();;
        mutex_lock m;;
        let t = thread_create (fun () -> mutex_lock m) in
        (thread_join t; print_int 1)
        """
        with pytest.raises(DeadlockError):
            run(src, quantum=10)


class TestCondition:
    def test_wait_signal(self):
        src = """
        let m = mutex_create ();;
        let c = condition_create ();;
        let ready = ref 0;;
        let waiter () =
          begin
            mutex_lock m;
            while !ready = 0 do condition_wait c m done;
            print_string "woke";
            mutex_unlock m
          end;;
        let t = thread_create waiter;;
        thread_yield ();
        mutex_lock m;
        ready := 1;
        condition_signal c;
        mutex_unlock m;
        thread_join t;
        print_string " done"
        """
        result, _ = run(src, quantum=10)
        assert result.stdout == b"woke done"

    def test_broadcast_wakes_all(self):
        src = """
        let m = mutex_create ();;
        let c = condition_create ();;
        let go = ref 0;;
        let count = ref 0;;
        let waiter () =
          begin
            mutex_lock m;
            while !go = 0 do condition_wait c m done;
            count := !count + 1;
            mutex_unlock m
          end;;
        let t1 = thread_create waiter;;
        let t2 = thread_create waiter;;
        let t3 = thread_create waiter;;
        thread_yield ();
        mutex_lock m; go := 1; condition_broadcast c; mutex_unlock m;
        thread_join t1; thread_join t2; thread_join t3;
        print_int !count
        """
        result, _ = run(src, quantum=10)
        assert result.stdout == b"3"

    def test_producer_consumer(self):
        src = """
        let m = mutex_create ();;
        let c = condition_create ();;
        let queue = ref [];;
        let consumed = ref 0;;
        let consumer () =
          let rec take n =
            if n = 0 then () else
            begin
              mutex_lock m;
              while (match !queue with [] -> true | _ :: _ -> false) do
                condition_wait c m
              done;
              (match !queue with
               | [] -> ()
               | h :: t -> begin queue := t; consumed := !consumed + h end);
              mutex_unlock m;
              take (n - 1)
            end
          in take 5;;
        let t = thread_create consumer;;
        for i = 1 to 5 do
          mutex_lock m;
          queue := i :: !queue;
          condition_signal c;
          mutex_unlock m;
          thread_yield ()
        done;;
        thread_join t;;
        print_int !consumed
        """
        result, _ = run(src, quantum=15)
        assert result.stdout == b"15"

    def test_wait_without_lock_raises(self):
        src = """
        let m = mutex_create () in
        let c = condition_create () in
        condition_wait c m
        """
        with pytest.raises(ThreadError):
            run(src)
