"""Live warm-standby failover, end to end: across seeded crash and
partition schedules the client-observed stdout must be bit-identical to
a crash-free run, with exactly one valid lease holder per epoch."""

from __future__ import annotations

import pytest

from repro import VMConfig, VirtualMachine, compile_source, get_platform
from repro.arch.platforms import PLATFORMS
from repro.metrics import REPLICATION
from repro.replication import LiveHA
from repro.store import ChunkStore, StoreServer

# Enough work for ~7 replicated generations at the test cadence, with
# output spread through the run so every fault window has bytes at
# stake; totals stay inside 31-bit ints for the 32-bit platforms.
WORKLOAD = """
let limit = 12000;;
let total = ref 0;;
let i = ref 0;;
while !i < limit do
  i := !i + 1;
  total := !total + !i;
  (if !i mod 1500 = 0 then
    (print_string "t"; print_int (!i / 1500); print_string "=";
     print_int !total; print_string ";"))
done;;
print_string " sum="; print_int !total
"""

CHECKPOINT_EVERY = 60_000


@pytest.fixture(scope="module")
def code():
    return compile_source(WORKLOAD)


@pytest.fixture(scope="module")
def expected(code):
    vm = VirtualMachine(
        get_platform("rodrigo"), code, VMConfig(chkpt_state="disable")
    )
    return vm.run().stdout


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    server = StoreServer(
        ChunkStore(str(tmp_path_factory.mktemp("live") / "store"))
    )
    server.start()
    yield server
    server.stop()


def _live(code, store, vm_id, schedule, seed, **kwargs):
    # The quiet window (timeout x misses) must ride out scheduler
    # stalls on a loaded host: the primary keepalives every
    # checkpoint_every/4 instructions, but a descheduled process can't
    # ping.  A false suspicion here degrades into the fenced-primary
    # path, which the crash schedules assert never happens.
    kwargs.setdefault("checkpoint_every", CHECKPOINT_EVERY)
    kwargs.setdefault("heartbeat_timeout", 0.2)
    kwargs.setdefault("heartbeat_misses", 3)
    kwargs.setdefault("ack_timeout", 0.4)
    kwargs.setdefault("max_retransmits", 1)
    return LiveHA(
        code, store.address, vm_id, schedule=schedule, seed=seed, **kwargs
    )


def _audit_lease(report):
    """The split-brain invariants every run must satisfy."""
    valid = [(e, h) for e, h, ok in report.lease_history if ok]
    # Exactly one valid holder per epoch, epochs strictly increasing.
    epochs = [e for e, _ in valid]
    assert epochs == sorted(set(epochs))
    # Every epoch this run used was validly held.
    assert set(report.epochs) <= set(epochs)
    # Each promotion moved the epoch strictly forward.
    assert report.epochs == sorted(set(report.epochs))


def hetero(a: str, b: str) -> bool:
    pa, pb = PLATFORMS[a], PLATFORMS[b]
    return (pa.arch.endianness is not pb.arch.endianness
            and pa.arch.word_bytes != pb.arch.word_bytes)


class TestLiveOracle:
    def test_crash_free_run_matches_unreplicated_oracle(
        self, code, store, expected
    ):
        report = _live(code, store, "live-oracle", "none", seed=0).run()
        assert report.completed
        assert report.client_stdout == expected
        assert report.promotions == 0
        assert report.fenced_demotions == 0
        assert report.generations_shipped >= 5
        _audit_lease(report)

    def test_default_standby_is_fully_heterogeneous(self, code, store):
        ha = _live(code, store, "live-hetero", "none", seed=0)
        assert hetero(
            ha.primary_platform.name, ha.standby_platform.name
        )


class TestSeededSchedules:
    """The acceptance sweep: 20 seeded crash/partition schedules, each
    bit-identical to the crash-free run with a clean lease audit."""

    @pytest.mark.parametrize("seed", range(10))
    def test_crash_schedule(self, code, store, expected, seed):
        report = _live(
            code, store, f"live-crash-{seed}", "crash", seed=seed
        ).run()
        assert report.completed
        assert report.client_stdout == expected
        assert report.promotions == 1
        assert report.fenced_demotions == 0  # a dead primary never revives
        assert len(report.epochs) == 2
        assert report.takeover_seconds is not None
        _audit_lease(report)

    @pytest.mark.parametrize("seed", range(10))
    def test_partition_schedule(self, code, store, expected, seed):
        """The split-brain case: the isolated primary keeps running and
        believes it leads, the standby promotes through the lease, and
        the healed primary is fenced — with nothing duplicated or lost
        in the client's stream."""
        report = _live(
            code, store, f"live-part-{seed}", "partition", seed=seed
        ).run()
        assert report.completed
        assert report.client_stdout == expected
        assert report.promotions == 1
        assert report.fenced_demotions == 1
        assert len(report.epochs) == 2
        _audit_lease(report)


class TestPartitionDetails:
    def test_isolated_output_is_discarded_not_delivered(
        self, code, store, expected
    ):
        before = REPLICATION.as_dict()
        report = _live(
            code, store, "live-part-detail", "partition", seed=4
        ).run()
        assert report.client_stdout == expected
        # The old primary produced bytes during isolation that the gate
        # held; they were discarded at the fence and re-produced by the
        # successor — never delivered twice.
        assert report.held_discarded_bytes > 0
        assert report.generations_discarded >= 1
        delta = REPLICATION.delta_since(before)
        assert delta.get("fenced_demotions", 0) == 1
        assert delta.get("promotions", 0) == 1

    def test_crash_mid_commit_never_ships_the_torn_generation(
        self, code, store, expected
    ):
        # Seeds are deterministic: find one whose crash style is
        # mid-commit so the power cut lands inside the commit protocol.
        import random

        def style(s):
            r = random.Random(s)
            r.randint(2, 5)  # the fault slice draw precedes the style
            return r.choice(["mid-run", "mid-commit"])

        seed = next(s for s in range(50) if style(s) == "mid-commit")
        report = _live(
            code, store, "live-midcommit", "crash", seed=seed
        ).run()
        assert report.fault_style == "mid-commit"
        assert report.completed
        assert report.client_stdout == expected


class TestHeteroPairings:
    """Both endianness/word-size pairings, both directions."""

    @pytest.mark.parametrize("primary,standby", [
        ("rodrigo", "ultra64"),  # 32LE -> 64BE
        ("ultra64", "rodrigo"),  # 64BE -> 32LE
        ("csd", "sp2148"),       # 32BE -> 64LE
        ("sp2148", "csd"),       # 64LE -> 32BE
    ])
    def test_failover_across_architectures(
        self, code, store, expected, primary, standby
    ):
        assert hetero(primary, standby)
        report = _live(
            code, store, f"live-{primary}-{standby}", "crash", seed=1,
            primary_platform=primary, standby_platform=standby,
        ).run()
        assert report.completed
        assert report.client_stdout == expected
        assert report.promotions == 1


class TestReplicationCounters:
    def test_run_moves_the_counters(self, code, store):
        before = REPLICATION.as_dict()
        report = _live(
            code, store, "live-counters", "crash", seed=2
        ).run()
        assert report.completed
        delta = REPLICATION.delta_since(before)
        assert delta.get("generations_sent", 0) >= 1
        assert delta.get("generations_applied", 0) >= 1
        assert delta.get("acks", 0) >= 1
        assert delta.get("promotions", 0) == 1

    def test_flaky_channel_still_converges(self, code, store, expected):
        """Seeded drop/duplicate faults on the channel for the whole
        run: retransmits and dedup keep the stream exact."""
        before = REPLICATION.as_dict()
        report = _live(
            code, store, "live-flaky", "none", seed=3,
            channel_faults={"duplicate": 0.25, "delay": 0.2,
                            "delay_max": 0.002},
        ).run()
        assert report.completed
        assert report.client_stdout == expected
        delta = REPLICATION.delta_since(before)
        assert delta.get("duplicates_dropped", 0) >= 1
