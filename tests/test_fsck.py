"""fsck: verify a checkpoint, repair damaged sections from a replica."""

from __future__ import annotations

import io

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.checkpoint.format import read_section_table
from repro.checkpoint.fsck import (
    ClientSource,
    LocalStoreSource,
    fsck_checkpoint,
    verify_checkpoint_bytes,
)
from repro.checkpoint.reader import restart_vm
from repro.metrics import INTEGRITY
from repro.store import ChunkStore, StoreClient, StoreServer

RODRIGO = get_platform("rodrigo")

PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let data = build 200 [];;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
checkpoint ();;
print_string "sum=";;
print_int (sum data);;
"""


@pytest.fixture(scope="module")
def code():
    return compile_source(PROGRAM)


@pytest.fixture
def replicated(tmp_path, code):
    """A committed checkpoint plus a store replica holding its chunks."""
    path = str(tmp_path / "ck.hckp")
    vm = VirtualMachine(
        RODRIGO, code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
        stdout=io.BytesIO(),
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped" and vm.checkpoints_taken == 1
    with open(path, "rb") as f:
        data = f.read()
    store = ChunkStore(str(tmp_path / "store"))
    store.put_checkpoint("vm", data)
    return path, data, store


def damage_section(path: str, data: bytes, name: str = "heap") -> None:
    table = read_section_table(data)
    target = next(s for s in table if s.name == name)
    buf = bytearray(data)
    buf[target.offset + target.length // 2] ^= 0xFF
    with open(path, "wb") as f:
        f.write(bytes(buf))


class TestVerify:
    def test_healthy_file(self, replicated):
        path, data, _ = replicated
        assert verify_checkpoint_bytes(data) == []
        report = fsck_checkpoint(path)
        assert report["ok"] and report["action"] == "none"

    def test_damaged_section_listed_with_range(self, replicated):
        path, data, _ = replicated
        damage_section(path, data)
        with open(path, "rb") as f:
            problems = verify_checkpoint_bytes(f.read())
        assert len(problems) == 1
        p = problems[0]
        assert p["section"] == "heap"
        assert p["length"] > 0 and p["expected"] != p["actual"]

    def test_truncation_reported(self, replicated):
        path, data, _ = replicated
        with open(path, "wb") as f:
            f.write(data[: len(data) // 3])
        report = fsck_checkpoint(path)
        assert not report["ok"]
        assert report["problems"]

    def test_missing_file(self, tmp_path):
        report = fsck_checkpoint(str(tmp_path / "ghost.hckp"))
        assert not report["ok"]

    def test_repair_without_replica_fails_cleanly(self, replicated):
        path, data, _ = replicated
        damage_section(path, data)
        report = fsck_checkpoint(path, repair=True)
        assert not report["ok"]
        assert any("replica" in p["error"] for p in report["problems"]
                   if "error" in p)


class TestRepairFromLocalStore:
    def test_bitflip_patched_chunkwise(self, replicated):
        path, data, store = replicated
        damage_section(path, data)
        before = INTEGRITY.sections_repaired
        report = fsck_checkpoint(
            path, repair=True, source=LocalStoreSource(store), vm_id="vm"
        )
        assert report["ok"], report
        assert report["action"] == "patched"
        assert report["sections_repaired"] >= 1
        # A single flipped bit costs one-ish chunks, not the whole file.
        assert 0 < report["chunks_fetched"] <= 3
        assert INTEGRITY.sections_repaired > before
        with open(path, "rb") as f:
            assert f.read() == data

    def test_truncated_file_refetched_whole(self, replicated):
        path, data, store = replicated
        with open(path, "wb") as f:
            f.write(data[: len(data) // 2])
        report = fsck_checkpoint(
            path, repair=True, source=LocalStoreSource(store), vm_id="vm"
        )
        assert report["ok"], report
        assert report["action"] == "refetched"
        with open(path, "rb") as f:
            assert f.read() == data

    def test_repaired_file_restores(self, replicated, code):
        path, data, store = replicated
        damage_section(path, data)
        fsck_checkpoint(
            path, repair=True, source=LocalStoreSource(store), vm_id="vm"
        )
        out = io.BytesIO()
        vm, _ = restart_vm(
            RODRIGO, code, path, VMConfig(chkpt_state="disable"), stdout=out
        )
        result = vm.run(max_instructions=20_000_000)
        assert result.status == "stopped"
        assert result.stdout == b"sum=20100"

    def test_unknown_vm_is_unrepairable(self, replicated):
        path, data, store = replicated
        damage_section(path, data)
        report = fsck_checkpoint(
            path, repair=True, source=LocalStoreSource(store), vm_id="ghost"
        )
        assert not report["ok"]


class TestRepairViaDaemon:
    def test_client_source_end_to_end(self, replicated):
        path, data, store = replicated
        server = StoreServer(store)
        host, port = server.start()
        try:
            with StoreClient(host, port, backoff=0.01) as client:
                damage_section(path, data)
                report = fsck_checkpoint(
                    path, repair=True, source=ClientSource(client), vm_id="vm"
                )
                assert report["ok"], report
                assert report["action"] in ("patched", "refetched")
                with open(path, "rb") as f:
                    assert f.read() == data
        finally:
            server.stop()
