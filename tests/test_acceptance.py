"""Acceptance test: a realistic application using most VM features at
once, driven through repeated heterogeneous migrations.

The application is a small log-processing job: it generates a log file
through an output channel, then a worker pool (threads + mutex) parses
and aggregates it with lists, arrays, strings, floats, exceptions and
the standard prelude — checkpointing periodically.  We crash it at
arbitrary points and restart it round-robin across all six Table 1
platforms until it completes; the final report must match the
uninterrupted run exactly.
"""

from __future__ import annotations

import itertools

import pytest

from repro import (
    PLATFORMS,
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)

APP = """
(* --- phase 1: produce a "log file" --- *)
let log_path = "{log_path}";;
let () =
  let out = open_out log_path in
  begin
    for i = 1 to 60 do
      let level = (match i mod 3 with 0 -> "ERR" | 1 -> "INFO" | _ -> "WARN") in
      output_string out (level ^ " " ^ string_of_int (i * 7) ^ "\\n")
    done;
    close_out out
  end;;

(* --- phase 2: parse it back --- *)
let parse_line line =
  (* "LEVEL N" -> [| level_code; n |] *)
  let sp = ref 0 in
  begin
    let n = String.length line in
    let i = ref 0 in
    while !i < n do
      (if line.[!i] = ' ' then sp := !i);
      i := !i + 1
    done;
    let level = String.sub line 0 !sp in
    let num = ref 0 in
    for j = !sp + 1 to n - 1 do
      num := !num * 10 + (line.[j] - '0')
    done;
    let code = (match level with
      | "ERR" -> 2 | "WARN" -> 1 | "INFO" -> 0
      | _ -> failwith "bad level") in
    [| code; !num |]
  end;;

let records = ref [];;
let () =
  let inc = open_in log_path in
  begin
    (try
      while true do
        records := parse_line (input_line inc) :: !records
      done
    with _ -> ());
    close_in inc
  end;;

(* --- phase 3: aggregate with a worker pool --- *)
let m = mutex_create ();;
let sums = Array.make 3 0;;
let counts = Array.make 3 0;;
let work lst () =
  List.iter (fun r ->
    begin
      mutex_lock m;
      sums.(r.(0)) <- sums.(r.(0)) + r.(1);
      counts.(r.(0)) <- counts.(r.(0)) + 1;
      mutex_unlock m
    end) lst;;
let split l =
  let rec go l a b flip =
    match l with
    | [] -> [| a; b |]
    | h :: t -> if flip then go t (h :: a) b false else go t a (h :: b) true
  in go l [] [] true;;
let halves = split !records;;
let t1 = thread_create (work halves.(0));;
let t2 = thread_create (work halves.(1));;
thread_join t1;;
thread_join t2;;

(* --- phase 4: report --- *)
let avg k = float_of_int sums.(k) /. float_of_int counts.(k);;
print_string "ERR=";  print_int sums.(2);;
print_string " WARN="; print_int sums.(1);;
print_string " INFO="; print_int sums.(0);;
print_string " avgERR="; print_float (avg 2);;
print_string " total="; print_int (sums.(0) + sums.(1) + sums.(2))
"""


def app_source(tmp_path) -> str:
    return APP.replace("{log_path}", str(tmp_path / "app.log").replace("\\", "/"))


def reference_output(tmp_path) -> tuple[bytes, int]:
    code = compile_source(app_source(tmp_path))
    vm = VirtualMachine(
        RODRIGO, code, VMConfig(chkpt_state="disable", quantum=60)
    )
    result = vm.run(max_instructions=50_000_000)
    assert result.status == "stopped"
    return result.stdout, result.instructions


RODRIGO = get_platform("rodrigo")


def test_reference_run_is_correct(tmp_path):
    out, _ = reference_output(tmp_path)
    # i*7 for i=1..60 split by i mod 3.
    err = sum(i * 7 for i in range(1, 61) if i % 3 == 0)
    warn = sum(i * 7 for i in range(1, 61) if i % 3 == 2)
    info = sum(i * 7 for i in range(1, 61) if i % 3 == 1)
    assert out.startswith(
        f"ERR={err} WARN={warn} INFO={info}".encode()
    )
    assert out.endswith(f"total={err + warn + info}".encode())


def test_migrating_through_all_platforms(tmp_path):
    expected, total_instructions = reference_output(tmp_path)
    budget = max(total_instructions // 8, 2_000)
    path = str(tmp_path / "acc.hckp")
    code = compile_source(app_source(tmp_path))
    cfg = VMConfig(
        chkpt_filename=path,
        chkpt_interval=0.0,  # checkpoint at every poll: maximal coverage
        chkpt_mode="blocking",
        quantum=60,
    )
    vm = VirtualMachine(RODRIGO, code, cfg)
    hop_platforms = itertools.cycle(sorted(PLATFORMS))
    result = vm.run(max_instructions=budget)
    hops = 0
    while result.status == "budget":
        hops += 1
        assert hops < 300, "application failed to make progress"
        if vm.checkpoints_taken == 0 and hops == 1:
            # Crashed before the first checkpoint ever: cold restart.
            vm = VirtualMachine(RODRIGO, code, cfg)
        else:
            vm, _ = restart_vm(
                get_platform(next(hop_platforms)), code, path, cfg
            )
        result = vm.run(max_instructions=budget)
    assert result.status == "stopped"
    assert result.stdout == expected
    assert hops >= 3  # the run genuinely spanned several machines
