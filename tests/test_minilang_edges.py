"""Parser and compiler edge cases for MiniML."""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.errors import CompileError, MiniMLSyntaxError

RODRIGO = get_platform("rodrigo")


def run(src: str) -> bytes:
    vm = VirtualMachine(
        RODRIGO, compile_source(src), VMConfig(chkpt_state="disable")
    )
    result = vm.run(max_instructions=2_000_000)
    assert result.status == "stopped"
    return result.stdout


class TestParserErrors:
    @pytest.mark.parametrize("src", [
        "let = 3",                 # missing name
        "let x 3",                 # missing =
        "if 1 then 2 else",        # dangling else
        "match x with",            # no arms
        "fun -> 1",                # no params
        "for i = 1 to do () done", # missing bound
        "(1 + 2",                  # unbalanced paren
        "[1; 2",                   # unbalanced bracket
        "let x = 1 in",            # missing body
        "try 1",                   # missing with
        "x <- 3",                  # <- needs an element access
    ])
    def test_rejected(self, src):
        with pytest.raises(MiniMLSyntaxError):
            compile_source(src)

    def test_error_carries_position(self):
        with pytest.raises(MiniMLSyntaxError, match="line 2"):
            compile_source("let a = 1;;\nlet = 2")


class TestPrecedence:
    def test_unary_minus_binds_tighter_than_binop(self):
        assert run("print_int (-2 * 3)") == b"-6"
        assert run("print_int (10 - -3)") == b"13"

    def test_cons_right_associative(self):
        assert run("print_int (List.length (1 :: 2 :: 3 :: []))") == b"3"

    def test_concat_right_associative(self):
        assert run('print_string ("a" ^ "b" ^ "c")') == b"abc"

    def test_comparison_below_arithmetic(self):
        assert run("if 1 + 1 = 2 then print_int 1") == b"1"

    def test_and_binds_tighter_than_or(self):
        assert run("if true || false && false then print_int 1") == b"1"

    def test_application_tightest(self):
        assert run("let f x = x * 2;; print_int (f 3 + 1)") == b"7"

    def test_sequence_loosest(self):
        assert run("print_int 1; print_int (1 + 1)") == b"12"

    def test_float_vs_int_operators_distinct(self):
        assert run("print_float (1.5 +. 0.5); print_int (1 + 1)") == b"2.02"


class TestCompilerEdges:
    def test_deeply_nested_closures(self):
        src = """
        let f a = fun b -> fun c -> fun d -> a * 1000 + b * 100 + c * 10 + d;;
        print_int (f 1 2 3 4)
        """
        assert run(src) == b"1234"

    def test_closure_chain_captures_correct_values(self):
        src = """
        let make i = fun () -> i;;
        let fs = List.map make [1; 2; 3];;
        List.iter (fun f -> print_int (f ())) fs
        """
        assert run(src) == b"123"

    def test_shadowed_prelude_in_local_scope(self):
        assert run("let min a b = a * b in print_int (min 3 4)") == b"12"

    def test_applying_result_of_application(self):
        src = """
        let add a b = a + b;;
        print_int ((add 1) 2)
        """
        assert run(src) == b"3"

    def test_over_application_of_curried_function(self):
        # f returns a closure; applying f with 2 args at once exercises
        # the extra_args machinery.
        src = """
        let f a = fun b -> a - b;;
        print_int (f 10 4)
        """
        assert run(src) == b"6"

    def test_prim_partial_application(self):
        src = """
        let out = List.map (string_concat "pre-") ["a"; "b"];;
        List.iter print_string out
        """
        assert run(src) == b"pre-apre-b"

    def test_too_many_args_to_prim_rejected(self):
        with pytest.raises(CompileError):
            compile_source("print_int 1 2")

    def test_let_rec_value_rejected(self):
        with pytest.raises(CompileError):
            compile_source("let rec x = 1;; print_int x")

    def test_large_literal_rejected(self):
        with pytest.raises(CompileError):
            compile_source(f"print_int {2**40}")

    def test_unit_parameter_functions(self):
        assert run("let f () = 9;; print_int (f ())") == b"9"

    def test_nested_match_in_arm_body(self):
        src = """
        let classify l =
          match l with
          | [] -> 0
          | h :: t -> (match t with [] -> 1 | _ :: _ -> 2);;
        print_int (classify []);
        print_int (classify [9]);
        print_int (classify [9; 9])
        """
        assert run(src) == b"012"

    def test_empty_program(self):
        vm = VirtualMachine(
            RODRIGO, compile_source(""), VMConfig(chkpt_state="disable")
        )
        assert vm.run(max_instructions=100_000).status == "stopped"
