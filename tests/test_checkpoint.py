"""Integration tests for heterogeneous checkpoint/restart.

The central scenario throughout: run a program to a checkpoint, restart
the checkpoint on every platform (same arch, endian-swapped, widened,
narrowed), and require the continued execution to produce exactly the
output the uninterrupted run produces.
"""

from __future__ import annotations

import io

import pytest

from repro import (
    PLATFORMS,
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.checkpoint.format import read_checkpoint
from repro.errors import CheckpointFormatError, RestartError

RODRIGO = get_platform("rodrigo")


def run_to_completion(src: str, platform=RODRIGO, **cfg) -> bytes:
    code = compile_source(src)
    vm = VirtualMachine(platform, code, VMConfig(chkpt_state="disable", **cfg))
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped"
    return result.stdout


def checkpoint_then_restart(
    src: str,
    origin=RODRIGO,
    target=RODRIGO,
    mode: str = "blocking",
    tmp_path=None,
    **cfg,
) -> tuple[bytes, bytes, VirtualMachine]:
    """Run with one checkpoint; restart on ``target``.

    Returns (output of the first run, output after restart, restarted vm).
    """
    path = str(tmp_path / "ck.hckp")
    code = compile_source(src)
    vm = VirtualMachine(
        origin, code,
        VMConfig(chkpt_filename=path, chkpt_mode=mode, **cfg),
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped"
    assert vm.checkpoints_taken >= 1
    vm2, stats = restart_vm(target, code, path, VMConfig(**cfg))
    result2 = vm2.run(max_instructions=20_000_000)
    assert result2.status == "stopped"
    return result.stdout, result2.stdout, vm2


#: A program that does meaningful work before AND after the checkpoint,
#: exercising heap structures (lists, arrays, strings, floats), deep
#: stack state and closures across the checkpoint boundary.
MIXED_PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
let data = build 100 [];;
let arr = Array.make 10 0;;
let () = for i = 0 to 9 do arr.(i) <- i * i done;;
let banner = "state:" ^ string_of_int (sum data);;
let factor = 2.5;;
checkpoint ();;
print_string banner;;
print_string " arr=";;
print_int (arr.(9) + arr.(3));;
print_string " f=";;
print_float (factor *. 4.0);;
print_string " more=";;
print_int (sum (build 10 []))
"""

EXPECTED_MIXED = b"state:5050 arr=90 f=10.0 more=55"


class TestSamePlatformRestart:
    def test_uninterrupted_reference(self):
        assert run_to_completion(MIXED_PROGRAM) == EXPECTED_MIXED

    def test_checkpoint_does_not_perturb_run(self, tmp_path):
        out1, _, _ = checkpoint_then_restart(MIXED_PROGRAM, tmp_path=tmp_path)
        assert out1 == EXPECTED_MIXED

    def test_restart_continues_after_checkpoint(self, tmp_path):
        _, out2, _ = checkpoint_then_restart(MIXED_PROGRAM, tmp_path=tmp_path)
        # Every print comes after the checkpoint, so the restarted run
        # reproduces the full output.
        assert out2 == EXPECTED_MIXED

    def test_restart_preserves_deep_stack(self, tmp_path):
        src = """
        let rec f n =
          if n = 0 then (checkpoint (); 0)
          else n + f (n - 1);;
        print_int (f 200)
        """
        out1, out2, _ = checkpoint_then_restart(src, tmp_path=tmp_path)
        assert out1 == b"20100"
        assert out2 == b"20100"  # the whole recursion tower was restored

    def test_restart_preserves_closures(self, tmp_path):
        src = """
        let make_counter start =
          let cell = ref start in
          fun () -> begin cell := !cell + 1; !cell end;;
        let tick = make_counter 41;;
        let _ = tick ();;
        checkpoint ();;
        print_int (tick ())
        """
        out1, out2, _ = checkpoint_then_restart(src, tmp_path=tmp_path)
        assert out1 == b"43"
        assert out2 == b"43"

    def test_restart_preserves_partial_application(self, tmp_path):
        src = """
        let add3 a b c = a + b + c;;
        let partial = add3 10 20;;
        checkpoint ();;
        print_int (partial 12)
        """
        _, out2, _ = checkpoint_then_restart(src, tmp_path=tmp_path)
        assert out2 == b"42"

    def test_multiple_checkpoints_keep_latest(self, tmp_path):
        src = """
        let r = ref 0;;
        r := 1;; checkpoint ();;
        r := 2;; checkpoint ();;
        print_int !r
        """
        path = str(tmp_path / "ck.hckp")
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=1_000_000)
        assert vm.checkpoints_taken == 2
        vm2, _ = restart_vm(RODRIGO, code, path)
        assert vm2.run(max_instructions=1_000_000).stdout == b"2"

    def test_background_mode_commits_after_join(self, tmp_path):
        out1, out2, _ = checkpoint_then_restart(
            MIXED_PROGRAM, mode="background", tmp_path=tmp_path
        )
        assert out1 == EXPECTED_MIXED
        assert out2 == EXPECTED_MIXED

    def test_gc_after_restart_is_sound(self, tmp_path):
        src = """
        let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
        let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
        let keep = build 500 [];;
        checkpoint ();;
        let _ = build 3000 [] in ();;
        gc_full_major ();;
        print_int (sum keep)
        """
        _, out2, vm2 = checkpoint_then_restart(
            src, tmp_path=tmp_path, minor_words=512
        )
        assert out2 == b"125250"
        vm2.mem.heap.check_integrity()


class TestHeterogeneousRestart:
    @pytest.mark.parametrize("target_name", sorted(PLATFORMS))
    def test_restart_everywhere_from_rodrigo(self, target_name, tmp_path):
        _, out2, vm2 = checkpoint_then_restart(
            MIXED_PROGRAM, target=PLATFORMS[target_name], tmp_path=tmp_path
        )
        assert out2 == EXPECTED_MIXED
        vm2.mem.heap.check_integrity()

    @pytest.mark.parametrize("origin_name", sorted(PLATFORMS))
    def test_checkpoint_anywhere_restart_on_rodrigo(self, origin_name, tmp_path):
        _, out2, _ = checkpoint_then_restart(
            MIXED_PROGRAM,
            origin=PLATFORMS[origin_name],
            target=RODRIGO,
            tmp_path=tmp_path,
        )
        assert out2 == EXPECTED_MIXED

    def test_endian_conversion_flagged(self, tmp_path):
        path = str(tmp_path / "ck.hckp")
        code = compile_source("checkpoint ();; print_int 1")
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=100_000)
        _, stats = restart_vm(get_platform("csd"), code, path)
        assert stats.converted_endianness
        assert not stats.converted_word_size

    def test_word_size_conversion_flagged(self, tmp_path):
        path = str(tmp_path / "ck.hckp")
        code = compile_source("checkpoint ();; print_int 1")
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=100_000)
        _, stats = restart_vm(get_platform("sp2148"), code, path)
        assert stats.converted_word_size

    def test_narrowing_preserves_sign(self, tmp_path):
        # Values fitting in 31 bits survive 64 -> 32 narrowing exactly.
        src = """
        let a = -123456789;;
        let b = 1000000000;;
        checkpoint ();;
        print_int a; print_string " "; print_int b
        """
        _, out2, _ = checkpoint_then_restart(
            src,
            origin=get_platform("sp2148"),
            target=RODRIGO,
            tmp_path=tmp_path,
        )
        assert out2 == b"-123456789 1000000000"

    def test_strings_survive_endian_swap(self, tmp_path):
        src = """
        let s = "The quick brown fox jumps over the lazy dog";;
        checkpoint ();;
        print_string s; print_int (String.length s)
        """
        _, out2, _ = checkpoint_then_restart(
            src, target=get_platform("csd"), tmp_path=tmp_path
        )
        assert out2 == b"The quick brown fox jumps over the lazy dog43"

    def test_strings_survive_widening(self, tmp_path):
        src = """
        let s = "endianness!";;
        let t = String.make 3 'x';;
        checkpoint ();;
        t.[1] <- 'y';
        print_string (s ^ t)
        """
        _, out2, _ = checkpoint_then_restart(
            src, target=get_platform("sp2148"), tmp_path=tmp_path
        )
        assert out2 == b"endianness!xyx"

    def test_floats_survive_all_conversions(self, tmp_path):
        src = """
        let x = 3.141592653589793;;
        let y = -0.5;;
        checkpoint ();;
        print_float (x *. 2.0); print_string " "; print_float y
        """
        for target in ("csd", "sp2148", "ultra64"):
            _, out2, _ = checkpoint_then_restart(
                src, target=get_platform(target), tmp_path=tmp_path
            )
            assert out2 == b"6.283185307179586 -0.5"

    def test_chain_of_migrations(self, tmp_path):
        """rodrigo -> csd -> sp2148 -> rodrigo, checkpointing at each hop."""
        src = """
        let r = ref 0;;
        r := !r + 1;; checkpoint ();;
        r := !r + 10;; checkpoint ();;
        r := !r + 100;; checkpoint ();;
        print_int !r
        """
        path = str(tmp_path / "chain.hckp")
        code = compile_source(src)
        cfg = VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        vm = VirtualMachine(RODRIGO, code, cfg)
        # Stop the first run after the first checkpoint by limiting budget:
        # simpler — run fully, then hop the latest checkpoint across.
        vm.run(max_instructions=1_000_000)
        hops = ["csd", "sp2148", "rodrigo"]
        out = b""
        for hop in hops:
            vm, _ = restart_vm(
                get_platform(hop), code, path,
                VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
            )
            result = vm.run(max_instructions=1_000_000)
            out = result.stdout
        assert out == b"111"

    def test_64bit_value_to_32bit_wraps_with_sign(self, tmp_path):
        # A value needing > 31 bits is wrapped (documented lossy case).
        src = """
        let big = 1000000000 * 5;;
        checkpoint ();;
        print_int big
        """
        code = compile_source(src)
        path = str(tmp_path / "big.hckp")
        vm = VirtualMachine(
            get_platform("sp2148"), code,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
        )
        assert vm.run(max_instructions=100_000).stdout == b"5000000000"
        vm2, _ = restart_vm(RODRIGO, code, path)
        out = vm2.run(max_instructions=100_000).stdout
        v = vm2.mem.values
        assert out == str(v.int_val(v.val_int(5000000000))).encode()


class TestCheckpointFileFormat:
    def _take(self, tmp_path, platform=RODRIGO) -> str:
        path = str(tmp_path / "f.hckp")
        code = compile_source('let x = [1; 2; 3];; checkpoint ();; print_int 1')
        vm = VirtualMachine(
            platform, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=100_000)
        return path

    def test_arch_marker_detection(self, tmp_path):
        for name in ("rodrigo", "csd", "sp2148", "ultra64"):
            p = get_platform(name)
            path = self._take(tmp_path, p)
            snap = read_checkpoint(path)
            assert snap.arch.bits == p.arch.bits
            assert snap.arch.endianness == p.arch.endianness

    def test_truncated_file_rejected(self, tmp_path):
        path = self._take(tmp_path)
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(CheckpointFormatError):
            read_checkpoint(path)

    def test_corrupt_byte_rejected(self, tmp_path):
        path = self._take(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as f:
            f.write(bytes(data))
        with pytest.raises(CheckpointFormatError):
            read_checkpoint(path)

    def test_wrong_program_rejected(self, tmp_path):
        path = self._take(tmp_path)
        other = compile_source("print_int 2")
        with pytest.raises(RestartError):
            restart_vm(RODRIGO, other, path)

    def test_multithreaded_flag_recorded(self, tmp_path):
        path = str(tmp_path / "mt.hckp")
        src = """
        let t = thread_create (fun () -> ()) in
        (thread_join t; checkpoint (); print_int 1)
        """
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=1_000_000)
        snap = read_checkpoint(path)
        assert snap.header.multithreaded
        assert len(snap.threads) == 2

    def test_checkpoint_excludes_minor_heap_and_free_capacity(self, tmp_path):
        """The file holds the heap + used stack, not whole-process state."""
        path = self._take(tmp_path)
        snap = read_checkpoint(path)
        main = next(t for t in snap.threads if t.tid == 0)
        assert len(main.stack_words) < main.capacity_words
