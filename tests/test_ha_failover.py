"""End-to-end HA: periodic store checkpoints, faults, hetero restart."""

from __future__ import annotations

import pytest

from repro import VMConfig, VirtualMachine, compile_source, get_platform
from repro.arch.platforms import PLATFORMS
from repro.errors import ReproError
from repro.store import ChunkStore, HASupervisor, StoreClient, StoreServer

# Several checkpoint intervals of work; the total stays inside 31-bit
# ints so migration across the 32-bit machines is lossless.
WORKLOAD = """
let limit = 40000;;
let total = ref 0;;
let i = ref 0;;
while !i < limit do
  i := !i + 1;
  total := !total + !i
done;;
print_string "sum = ";;
print_int !total
"""


@pytest.fixture(scope="module")
def code():
    return compile_source(WORKLOAD)


@pytest.fixture(scope="module")
def expected(code):
    vm = VirtualMachine(
        get_platform("rodrigo"), code, VMConfig(chkpt_state="disable")
    )
    return vm.run().stdout


@pytest.fixture
def service(tmp_path):
    server = StoreServer(ChunkStore(str(tmp_path / "store")))
    host, port = server.start()
    client = StoreClient(host, port, backoff=0.01)
    yield server, client
    client.close()
    server.stop()


def hetero(a: str, b: str) -> bool:
    pa, pb = PLATFORMS[a], PLATFORMS[b]
    return (pa.arch.endianness is not pb.arch.endianness
            and pa.arch.word_bytes != pb.arch.word_bytes)


class TestHAFailover:
    def test_end_to_end_bit_identical(self, code, expected, service):
        """Acceptance: a VM checkpointing to a live store daemon is
        killed mid-run, auto-restarted on a platform differing in both
        endianness and word size, and still produces output
        bit-identical to the uninterrupted run."""
        _, client = service
        supervisor = HASupervisor(
            code, client, "ha-e2e",
            start_platform="rodrigo",
            checkpoint_every=20_000,
            fault_budgets=(30_000, 80_000),
            max_faults=3,
            seed=7,
        )
        report = supervisor.run()
        assert report.completed and report.exit_code == 0
        assert report.stdout == expected
        assert report.faults_injected == 3
        assert report.restarts + report.cold_restarts == 3
        # every warm handoff crossed endianness AND word size
        hops = list(zip(report.platforms_visited, report.platforms_visited[1:]))
        assert hops, "no restart happened"
        for a, b in hops:
            assert hetero(a, b), f"restart {a} -> {b} was not heterogeneous"
        assert report.upload_stats.dedup_ratio > 2.0

    def test_metrics_are_populated(self, code, service):
        _, client = service
        report = HASupervisor(
            code, client, "ha-metrics",
            checkpoint_every=15_000,
            fault_budgets=(20_000, 50_000),
            max_faults=2,
            seed=11,
        ).run()
        assert report.checkpoints >= 5
        assert report.generations == sorted(report.generations)
        assert len(report.restart_latencies) == report.restarts
        assert all(lat > 0 for lat in report.restart_latencies)
        assert report.work_lost_instructions > 0
        phases = report.phases.as_dict()["phases"]
        for phase in ("run", "checkpoint", "upload", "restart_download",
                      "restart_rebuild"):
            assert phase in phases, f"phase {phase!r} missing"
        # dedup across the periodic checkpoints of a slowly-moving heap
        # (each migration re-encodes the heap natively, resetting the
        # chunk population — so the bound here is looser than the
        # single-platform one asserted elsewhere)
        assert report.upload_stats.dedup_ratio > 1.5
        doc = report.as_dict()
        assert doc["completed"] and doc["dedup_ratio"] > 1.5

    def test_fault_before_first_checkpoint_cold_starts(self, code, expected,
                                                       service):
        _, client = service
        report = HASupervisor(
            code, client, "ha-cold",
            checkpoint_every=50_000,
            fault_budgets=(1_000, 5_000),  # dies before any checkpoint
            max_faults=1,
            seed=3,
        ).run()
        assert report.cold_restarts == 1
        assert report.completed
        assert report.stdout == expected

    def test_no_faults_runs_straight_through(self, code, expected, service):
        _, client = service
        report = HASupervisor(
            code, client, "ha-quiet",
            checkpoint_every=25_000,
            max_faults=0,
            seed=1,
        ).run()
        assert report.completed
        assert report.faults_injected == 0
        assert report.restarts == 0
        assert report.stdout == expected
        assert report.checkpoints > 0  # periodic pushes still happened

    def test_checkpoints_land_in_store(self, code, service):
        server, client = service
        HASupervisor(
            code, client, "ha-landed",
            checkpoint_every=20_000,
            max_faults=1,
            fault_budgets=(30_000, 60_000),
            seed=5,
        ).run()
        gens = server.store.generations("ha-landed")
        assert gens, "no generation stored"
        payload, manifest = server.store.get_checkpoint("ha-landed")
        assert manifest.meta["platform"] in PLATFORMS
        assert payload  # a verified, reassembled checkpoint

    def test_rejects_nonpositive_interval(self, code, service):
        _, client = service
        with pytest.raises(ReproError):
            HASupervisor(code, client, "bad", checkpoint_every=0)

    def test_restart_candidates_force_heterogeneity(self, code, service):
        _, client = service
        sup = HASupervisor(code, client, "cand")
        for name in PLATFORMS:
            for cand in sup._restart_candidates(PLATFORMS[name]):
                assert cand != name
        # from 32LE rodrigo, only fully-different machines qualify
        cands = sup._restart_candidates(PLATFORMS["rodrigo"])
        assert all(hetero("rodrigo", c) for c in cands)


class TestMidWriteFaults:
    """Crashes that strike *during* the checkpoint commit (PR 3): the
    atomic commit protocol plus the store generation walk must keep the
    run completing with bit-identical output."""

    def test_midwrite_crashes_still_complete_bit_identical(
        self, code, expected, service
    ):
        _, client = service
        report = HASupervisor(
            code, client, "ha-midwrite",
            checkpoint_every=10_000,
            fault_budgets=(500_000, 900_000),  # never die *between* writes
            max_faults=3,
            seed=13,
            midwrite_fault_prob=1.0,  # every checkpoint attempt dies
        ).run()
        assert report.completed
        assert report.stdout == expected
        assert report.midwrite_faults == 3
        assert report.faults_injected == 3
        assert report.midwrite_faults <= report.faults_injected
        doc = report.as_dict()
        assert doc["midwrite_faults"] == 3
        assert "integrity" in doc

    def test_midwrite_prob_validated(self, code, service):
        _, client = service
        with pytest.raises(ReproError):
            HASupervisor(code, client, "ha-bad", midwrite_fault_prob=1.5)

    def test_occasional_midwrite_faults(self, code, expected, service):
        _, client = service
        report = HASupervisor(
            code, client, "ha-mixed",
            checkpoint_every=8_000,
            fault_budgets=(30_000, 60_000),
            max_faults=4,
            seed=17,
            midwrite_fault_prob=0.3,
        ).run()
        assert report.completed
        assert report.stdout == expected


class TestIncrementalHA:
    """HA supervision over an *incremental* checkpoint config: deltas
    ride the chain-aware upload/download paths and survive faults."""

    def _config(self):
        return VMConfig(
            chkpt_incremental=True,
            chkpt_retain=5,
            chkpt_full_every=4,
        )

    def test_end_to_end_with_delta_chains(self, code, expected, service):
        server, client = service
        report = HASupervisor(
            code, client, "ha-inc",
            checkpoint_every=15_000,
            fault_budgets=(30_000, 80_000),
            max_faults=2,
            seed=7,
            config=self._config(),
        ).run()
        assert report.completed and report.exit_code == 0
        assert report.stdout == expected
        assert report.faults_injected == 2
        # the store saw both kinds, each tagged with its chain identity
        kinds = set()
        for gen in server.store.generations("ha-inc"):
            meta = server.store.read_manifest("ha-inc", gen).meta
            kinds.add(meta["kind"])
            assert meta["body_sha256"], "upload missing chain identity"
            if meta["kind"] == "delta":
                assert meta["parent_sha256"]
                assert meta["chain_depth"] >= 1
        assert kinds == {"full", "delta"}

    def test_delta_uploads_are_smaller(self, code, service):
        server, client = service
        HASupervisor(
            code, client, "ha-inc-size",
            checkpoint_every=12_000,
            max_faults=0,
            seed=3,
            config=self._config(),
        ).run()
        full_sizes, delta_sizes = [], []
        for gen in server.store.generations("ha-inc-size"):
            m = server.store.read_manifest("ha-inc-size", gen)
            (full_sizes if m.meta["kind"] == "full" else delta_sizes).append(
                m.payload_len
            )
        assert full_sizes and delta_sizes
        # a delta carries only the dirty regions of a slowly-moving heap
        assert max(delta_sizes) < min(full_sizes)

    def test_restart_downloads_parent_chain(self, code, expected, service):
        """A fault landing while the newest generation is a delta forces
        the restart to reassemble the chain from sha-linked manifests."""
        _, client = service
        report = HASupervisor(
            code, client, "ha-inc-chain",
            checkpoint_every=10_000,
            fault_budgets=(35_000, 75_000),
            max_faults=3,
            seed=19,
            config=self._config(),
        ).run()
        assert report.completed
        assert report.stdout == expected
        assert report.restarts + report.cold_restarts == 3
