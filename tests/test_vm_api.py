"""Tests for the VirtualMachine façade and its public API contracts."""

from __future__ import annotations

import io

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)

RODRIGO = get_platform("rodrigo")


class TestRunResult:
    def test_fields(self):
        code = compile_source("print_int 5")
        vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        result = vm.run(max_instructions=100_000)
        assert result.status == "stopped"
        assert result.exit_code == 0
        assert result.instructions > 0
        assert result.vm is vm
        assert result.stdout == b"5"

    def test_exit_prim_sets_code(self):
        code = compile_source("print_int 1;; exit 3;; print_int 2")
        vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        result = vm.run(max_instructions=100_000)
        assert result.status == "exited"
        assert result.exit_code == 3
        assert result.stdout == b"1"

    def test_stdout_to_real_stream(self):
        sink = io.BytesIO()
        code = compile_source('print_string "direct"')
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_state="disable"), stdout=sink
        )
        vm.run(max_instructions=100_000)
        assert sink.getvalue() == b"direct"

    def test_stdin_supplied(self):
        # stdin is channel id 0; exercise the injected sink directly.
        code = compile_source("print_int 0")
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_state="disable"),
            stdin=io.BytesIO(b"A"),
        )
        vm.run(max_instructions=100_000)
        assert vm.channels.stdin.read_byte() == ord("A")


class TestDeterminism:
    def test_same_run_same_checkpoint_bytes(self, tmp_path):
        """Two identical runs produce byte-identical checkpoint files —
        no timestamps or nondeterminism leak into the format."""
        src = """
        let data = List.map (fun x -> x * 3) [5; 6; 7];;
        checkpoint ();;
        print_int (List.fold_left (fun a b -> a + b) 0 data)
        """
        code = compile_source(src)
        digests = []
        for i in range(2):
            path = str(tmp_path / f"d{i}.hckp")
            vm = VirtualMachine(
                RODRIGO, code,
                VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
            )
            vm.run(max_instructions=1_000_000)
            digests.append(open(path, "rb").read())
        assert digests[0] == digests[1]

    def test_restart_of_restart_is_stable(self, tmp_path):
        """checkpoint -> restart -> checkpoint on the same platform is a
        fixpoint for program behaviour."""
        src = """
        let r = ref 10;;
        checkpoint ();;
        r := !r + 1;;
        checkpoint ();;
        print_int !r
        """
        path = str(tmp_path / "fx.hckp")
        code = compile_source(src)
        cfg = VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        vm = VirtualMachine(RODRIGO, code, cfg)
        assert vm.run(max_instructions=1_000_000).stdout == b"11"
        for _ in range(3):
            vm, _ = restart_vm(RODRIGO, code, path, cfg)
            assert vm.run(max_instructions=1_000_000).stdout == b"11"


class TestRootEnumeration:
    def test_temp_roots_guard_prim_arguments(self):
        """A primitive's arguments survive a GC its own allocation
        triggers (the ArgsView/temp-roots discipline)."""
        src = """
        let rec spin n acc =
          if n = 0 then acc
          else spin (n - 1) (string_concat acc "x");;
        print_int (String.length (spin 200 ""))
        """
        code = compile_source(src)
        # A tiny minor heap forces collections *inside* string_concat.
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_state="disable", minor_words=256),
        )
        result = vm.run(max_instructions=5_000_000)
        assert result.stdout == b"200"
        assert vm.gc.minor.collections > 0

    def test_all_thread_registers_are_roots(self):
        """Blocked threads' registers survive GC churn by other threads."""
        src = """
        let m = mutex_create ();;
        mutex_lock m;;
        let t = thread_create (fun () ->
          let precious = [| 7; 8; 9 |] in
          begin mutex_lock m; print_int precious.(0); mutex_unlock m end);;
        thread_yield ();;
        let rec churn n = if n = 0 then () else (let _ = [n; n] in churn (n - 1));;
        churn 4000;;
        mutex_unlock m;;
        thread_join t
        """
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_state="disable", minor_words=512, quantum=40),
        )
        result = vm.run(max_instructions=10_000_000)
        assert result.stdout == b"7"


class TestConfigEdges:
    def test_auto_mode_follows_platform(self, tmp_path):
        for name, expected in (("rodrigo", "background"), ("pc8", "blocking")):
            path = str(tmp_path / f"{name}.hckp")
            code = compile_source("checkpoint ();; print_int 1")
            vm = VirtualMachine(
                get_platform(name), code, VMConfig(chkpt_filename=path)
            )
            vm.run(max_instructions=100_000)
            vm.join_background_checkpoint()
            assert vm.last_checkpoint_stats.mode == expected

    def test_quantum_configurable(self):
        code = compile_source("print_int 1")
        vm = VirtualMachine(RODRIGO, code, VMConfig(quantum=123))
        assert vm.sched.quantum == 123

    def test_live_thread_count(self):
        src = """
        let t = thread_create (fun () -> ());;
        thread_join t;;
        print_int 0
        """
        code = compile_source(src)
        vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        vm.run(max_instructions=1_000_000)
        assert vm.live_thread_count() == 1  # only main survives
