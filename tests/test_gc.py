"""Tests for the generational garbage collector."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.platforms import RODRIGO
from repro.gc import GCController, MajorCollector, MinorCollector, Phase
from repro.gc.roots import AttrSlot
from repro.memory import Color, MemoryManager
from repro.memory.minor_heap import MAX_YOUNG_WOSIZE


class Roots:
    """A trivial root provider: a fixed set of named attributes."""

    def __init__(self, mem, n=4):
        self.mem = mem
        for i in range(n):
            setattr(self, f"r{i}", mem.values.val_unit)
        self._n = n

    def iter_roots(self):
        for i in range(self._n):
            yield AttrSlot(self, f"r{i}")


def setup(minor_words=256, **kw):
    mem = MemoryManager(RODRIGO, minor_words=minor_words, chunk_words=2048)
    roots = Roots(mem)
    gc = GCController(mem, roots, **kw)
    return mem, roots, gc


class TestMinorCollection:
    def test_promotes_reachable_young_block(self):
        mem, roots, gc = setup()
        v = mem.values
        b = mem.make_block(0, [v.val_int(7), v.val_int(8)])
        roots.r0 = b
        promoted = gc.minor.collect()
        assert promoted == 3  # header + 2 fields
        nb = roots.r0
        assert nb != b
        assert mem.is_in_heap(nb)
        assert v.int_val(mem.field(nb, 0)) == 7
        assert mem.minor.is_empty()

    def test_unreachable_young_data_dropped(self):
        mem, roots, gc = setup()
        mem.make_block(0, [mem.values.val_int(1)])
        assert gc.minor.collect() == 0
        assert mem.minor.is_empty()

    def test_graph_structure_preserved(self):
        mem, roots, gc = setup()
        v = mem.values
        leaf = mem.make_block(0, [v.val_int(5)])
        # Two parents sharing one leaf, plus a cycle through field 1.
        p1 = mem.make_block(1, [leaf, v.val_int(0)])
        p2 = mem.make_block(2, [leaf, p1])
        mem.set_field(p1, 1, p2)  # cycle
        roots.r0 = p1
        gc.minor.collect()
        np1, = [roots.r0]
        np2 = mem.field(np1, 1)
        assert mem.tag_of(np1) == 1 and mem.tag_of(np2) == 2
        # Sharing preserved: both parents reference the same leaf copy.
        assert mem.field(np1, 0) == mem.field(np2, 0)
        # Cycle preserved.
        assert mem.field(np2, 1) == np1

    def test_reftable_entries_updated_and_cleared(self):
        mem, roots, gc = setup()
        v = mem.values
        big = mem.alloc(MAX_YOUNG_WOSIZE + 1, 0)
        roots.r0 = big
        young = mem.make_block(0, [v.val_int(3)])
        mem.set_field(big, 0, young)
        assert mem.reftable
        gc.minor.collect()
        assert not mem.reftable
        promoted = mem.field(big, 0)
        assert mem.is_in_heap(promoted)
        assert v.int_val(mem.field(promoted, 0)) == 3

    def test_strings_promoted_opaque(self):
        mem, roots, gc = setup()
        s = mem.make_string(b"keep me")
        roots.r1 = s
        gc.minor.collect()
        assert mem.read_string(roots.r1) == b"keep me"

    def test_automatic_minor_gc_on_pressure(self):
        mem, roots, gc = setup(minor_words=128)
        v = mem.values
        keep = mem.make_block(0, [v.val_int(0)])
        roots.r0 = keep
        # Allocate enough garbage to force several minor collections.
        for i in range(200):
            mem.make_block(0, [v.val_int(i)])
        assert gc.minor.collections >= 2
        assert v.int_val(mem.field(roots.r0, 0)) == 0


class TestMajorCollection:
    def test_full_major_reclaims_garbage(self):
        mem, roots, gc = setup()
        v = mem.values
        keep = mem.make_block(0, [v.val_int(1)])
        roots.r0 = keep
        for i in range(100):
            mem.make_block(0, [v.val_int(i), v.val_int(i)])
        gc.full_major()
        live_before = mem.heap.live_words()
        # Everything except the kept block (and fragments) is free again.
        gc.full_major()
        assert mem.heap.live_words() == live_before
        assert v.int_val(mem.field(roots.r0, 0)) == 1
        mem.heap.check_integrity()

    def test_colors_after_full_cycle(self):
        mem, roots, gc = setup()
        v = mem.values
        roots.r0 = mem.make_block(0, [v.val_int(1)])
        gc.full_major()
        # After a complete cycle every block is white (live), blue (free)
        # or a white fragment; never gray or black.
        for _, _, hd in mem.heap.iter_blocks():
            assert mem.headers.color(hd) in (Color.WHITE, Color.BLUE)

    def test_incremental_slices_eventually_finish(self):
        mem, roots, gc = setup()
        v = mem.values
        roots.r0 = mem.make_block(0, [v.val_int(1), v.val_int(2)])
        gc.minor.collect()
        gc.major.start_cycle()
        guard = 0
        while gc.major.phase is not Phase.IDLE:
            gc.major.run_slice(8)
            guard += 1
            assert guard < 100_000
        assert gc.major.cycles_completed == 1
        mem.heap.check_integrity()

    def test_grayvals_overflow_forces_rescan(self):
        mem, roots, gc = setup(grayvals_limit=2)
        v = mem.values
        # A long linked list overflows a 2-entry gray stack.
        lst = v.val_int(0)
        for i in range(50):
            lst = mem.make_block(0, [v.val_int(i), lst])
        roots.r0 = lst
        gc.minor.collect()
        gc.major.start_cycle()
        gc.major.finish_cycle()
        # All list cells survive.
        n, cur = 0, roots.r0
        while v.is_block(cur):
            n += 1
            cur = mem.field(cur, 1)
        assert n == 50
        mem.heap.check_integrity()

    def test_deletion_barrier_keeps_snapshot_alive(self):
        mem, roots, gc = setup()
        v = mem.values
        inner = mem.make_block(0, [v.val_int(42)])
        outer = mem.make_block(0, [inner])
        roots.r0 = outer
        gc.minor.collect()
        inner_major = mem.field(roots.r0, 0)
        gc.major.start_cycle()
        # Overwrite the only pointer to `inner` mid-mark: the deletion
        # barrier must gray the old value so it survives this cycle.
        mem.set_field(roots.r0, 0, v.val_int(0))
        gc.major.finish_cycle()
        hd = mem.heap.load_header(inner_major)
        assert mem.headers.color(hd) is not Color.BLUE
        assert v.int_val(mem.field(inner_major, 0)) == 42

    def test_allocation_during_mark_is_black(self):
        mem, roots, gc = setup()
        gc.minor.collect()
        gc.major.start_cycle()
        assert gc.major.is_marking
        b = mem.alloc_shr(3, 0)
        hd = mem.heap.load_header(b)
        assert mem.headers.color(hd) is Color.BLACK

    def test_promotion_during_mark_survives(self):
        mem, roots, gc = setup()
        v = mem.values
        gc.minor.collect()
        gc.major.start_cycle()
        young = mem.make_block(0, [v.val_int(9)])
        roots.r0 = young
        gc.minor.collect()  # promotes while marking
        gc.major.finish_cycle()
        gc.full_major()
        assert v.int_val(mem.field(roots.r0, 0)) == 9

    def test_pacing_does_work_after_minor(self):
        mem, roots, gc = setup(minor_words=128)
        v = mem.values
        keep = []
        lst = v.val_int(0)
        for i in range(300):
            lst = mem.make_block(0, [v.val_int(i), lst])
            roots.r0 = lst
        # Slices ran as part of the automatic collections.
        assert gc.major.mark_slices + gc.major.sweep_slices > 0


class TestController:
    def test_disabled_gc_raises_on_pressure(self):
        mem, roots, gc = setup(minor_words=64)
        gc.disabled = True
        with pytest.raises(RuntimeError):
            for _ in range(100):
                mem.make_block(0, [mem.values.val_int(0)])

    def test_compact_freelist_merges(self):
        mem, roots, gc = setup()
        blocks = [mem.alloc_shr(4, 0) for _ in range(10)]
        for b in blocks:
            mem.heap.free_block(b)
        n_before = len(list(mem.heap.iter_freelist()))
        gc.compact_freelist()
        n_after = len(list(mem.heap.iter_freelist()))
        assert n_after < n_before
        mem.heap.check_integrity()

    def test_compact_rejected_mid_cycle(self):
        mem, roots, gc = setup()
        gc.minor.collect()
        gc.major.start_cycle()
        with pytest.raises(RuntimeError):
            gc.compact_freelist()

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=5, max_size=60))
    def test_random_mutation_preserves_reachable_values(self, ops):
        """Random allocate/drop/mutate churn never corrupts live data."""
        mem, roots, gc = setup(minor_words=128)
        v = mem.values
        expected = {}
        counter = 0
        for op in ops:
            if op in (0, 1):  # allocate and root it
                counter += 1
                slot = f"r{counter % 4}"
                b = mem.make_block(0, [v.val_int(counter)])
                setattr(roots, slot, b)
                expected[slot] = counter
            elif op == 2:  # drop a root
                slot = f"r{counter % 4}"
                setattr(roots, slot, v.val_unit)
                expected.pop(slot, None)
            else:  # churn garbage
                for i in range(30):
                    mem.make_block(0, [v.val_int(i)])
        gc.full_major()
        for slot, val in expected.items():
            b = getattr(roots, slot)
            assert v.int_val(mem.field(b, 0)) == val
        mem.heap.check_integrity()
