"""Tests for the message-passing cluster and coordinated C/R."""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.cluster import Cluster, ClusterDeadlock, restart_cluster

# A ring: rank 0 injects a token; each node adds its rank and forwards;
# after LAPS laps rank 0 prints the total.
RING = """
let me = cluster_rank ();;
let n = cluster_size ();;
let laps = 3;;
let next = (me + 1) mod n;;
let () =
  if me = 0 then
    begin
      cluster_send next 0;
      let rec wait k acc =
        if k = 0 then acc
        else
          let tok = cluster_recv () in
          (if k = 1 then acc + tok
           else begin cluster_send next 0; wait (k - 1) (acc + tok) end)
      in
      let total = wait laps 0 in
      begin print_string "total="; print_int total end
    end
  else
    begin
      let rec relay k =
        if k = 0 then () else
        let tok = cluster_recv () in
        begin cluster_send next (tok + me); relay (k - 1) end
      in relay laps
    end
"""

# Parallel sum: every worker sends a tuple (rank, partial) to rank 0.
SCATTER = """
let me = cluster_rank ();;
let n = cluster_size ();;
let () =
  if me = 0 then
    begin
      let rec gather k acc =
        if k = 0 then acc
        else
          let msg = cluster_recv () in
          (match msg with
           | [] -> gather k acc
           | h :: _ -> gather (k - 1) (acc + h))
      in
      begin print_string "sum="; print_int (gather (n - 1) 0) end
    end
  else
    begin
      let rec range i acc = if i = 0 then acc else range (i - 1) (i * me :: acc) in
      let rec suml l = match l with [] -> 0 | h :: t -> h + suml t in
      cluster_send 0 [suml (range 10 [])]
    end
"""


def ring_expected(n_nodes: int, laps: int = 3) -> bytes:
    per_lap = sum(range(1, n_nodes))
    return f"total={laps * per_lap}".encode()


class TestClusterExecution:
    def test_ring_homogeneous(self):
        code = compile_source(RING)
        cluster = Cluster(code, ["rodrigo"] * 4)
        cluster.run()
        assert cluster.stdout(0) == ring_expected(4)

    def test_ring_heterogeneous(self):
        """Every node on a different architecture: messages are
        marshaled portably, so mixed clusters just work."""
        code = compile_source(RING)
        cluster = Cluster(code, ["rodrigo", "csd", "sp2148", "ultra64"])
        cluster.run()
        assert cluster.stdout(0) == ring_expected(4)
        assert cluster.messages_sent == 12

    def test_scatter_gather(self):
        code = compile_source(SCATTER)
        cluster = Cluster(code, ["rodrigo", "sp2148", "csd"])
        cluster.run()
        # worker m sends sum(i*m for i in 1..10) = 55*m
        assert cluster.stdout(0) == f"sum={55 * (1 + 2)}".encode()

    def test_deadlock_detected(self):
        code = compile_source("let _ = cluster_recv ();; print_int 0")
        cluster = Cluster(code, ["rodrigo", "rodrigo"])
        with pytest.raises(ClusterDeadlock):
            cluster.run()

    def test_send_to_unknown_rank(self):
        from repro.errors import ReproError

        code = compile_source("cluster_send 9 1")
        cluster = Cluster(code, ["rodrigo"])
        with pytest.raises(ReproError):
            cluster.run()

    def test_prims_outside_cluster_fail(self):
        from repro import VirtualMachine, VMConfig
        from repro.errors import PrimitiveError

        code = compile_source("print_int (cluster_rank ())")
        vm = VirtualMachine(
            __import__("repro").get_platform("rodrigo"), code,
            VMConfig(chkpt_state="disable"),
        )
        with pytest.raises(PrimitiveError):
            vm.run(max_instructions=10_000)


class TestCoordinatedCheckpoint:
    def _run_with_mid_checkpoint(self, code, platforms, ckpt_dir, steps):
        cluster = Cluster(code, platforms, slice_instructions=400)
        for _ in range(steps):
            if cluster.finished:
                break
            cluster.step()
        cluster.checkpoint(ckpt_dir)
        return cluster

    def test_checkpoint_restart_finishes_ring(self, tmp_path):
        code = compile_source(RING)
        ckpt_dir = str(tmp_path / "cluster_ck")
        self._run_with_mid_checkpoint(
            code, ["rodrigo"] * 4, ckpt_dir, steps=4
        )
        # Restart every node on a *different* platform and finish.
        cluster2 = restart_cluster(
            code, ckpt_dir, ["sp2148", "ultra64", "csd", "pc8"],
            slice_instructions=400,
        )
        cluster2.run()
        assert cluster2.stdout(0) == ring_expected(4)

    def test_checkpoint_preserves_in_flight_messages(self, tmp_path):
        """Messages sitting in mailboxes at checkpoint time are part of
        the coordinated snapshot and are delivered after restart."""
        src = """
        let me = cluster_rank ();;
        let () =
          if me = 0 then
            begin
              cluster_send 1 41;
              print_string "sent"
            end
          else
            begin
              let v = cluster_recv () in
              begin print_string "got "; print_int (v + 1) end
            end
        """
        code = compile_source(src)
        cluster = Cluster(code, ["rodrigo", "rodrigo"], slice_instructions=60)
        # Step until node 0 has sent (finished) but before node 1 consumed.
        cluster.step()
        ckpt_dir = str(tmp_path / "inflight")
        # Force the interesting case: if the message is still queued,
        # checkpoint now; otherwise the test still passes trivially.
        cluster.checkpoint(ckpt_dir)
        cluster2 = restart_cluster(code, ckpt_dir, ["csd", "sp2148"])
        cluster2.run()
        assert cluster2.stdout(1) == b"got 42"

    def test_stdout_survives_restart(self, tmp_path):
        src = """
        let me = cluster_rank ();;
        print_string "early ";;
        let v = (if me = 0 then begin cluster_send 1 5; cluster_recv () end
                 else let x = cluster_recv () in begin cluster_send 0 (x * 2); 0 end);;
        print_string "late=";;
        print_int v
        """
        code = compile_source(src)
        cluster = Cluster(code, ["rodrigo", "rodrigo"], slice_instructions=300)
        cluster.step()
        ckpt_dir = str(tmp_path / "out")
        cluster.checkpoint(ckpt_dir)
        cluster2 = restart_cluster(code, ckpt_dir, ["sp2148", "csd"])
        cluster2.run()
        assert cluster2.stdout(0) == b"early late=10"
        assert cluster2.stdout(1) == b"early late=0"

    def test_manifest_corruption_rejected(self, tmp_path):
        import os

        from repro.errors import CheckpointFormatError

        code = compile_source(RING)
        ckpt_dir = str(tmp_path / "bad")
        self._run_with_mid_checkpoint(code, ["rodrigo"] * 4, ckpt_dir, 2)
        path = os.path.join(ckpt_dir, "manifest.rclu")
        data = bytearray(open(path, "rb").read())
        data[10] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointFormatError):
            restart_cluster(code, ckpt_dir, ["rodrigo"] * 4)

    def test_platform_count_mismatch(self, tmp_path):
        from repro.errors import RestartError

        code = compile_source(RING)
        ckpt_dir = str(tmp_path / "cnt")
        self._run_with_mid_checkpoint(code, ["rodrigo"] * 4, ckpt_dir, 2)
        with pytest.raises(RestartError):
            restart_cluster(code, ckpt_dir, ["rodrigo"] * 3)
