"""Unit tests for the boundary-compare address mapper (paper §3.2.2)."""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.checkpoint.format import read_checkpoint
from repro.checkpoint.relocate import AddressMapper
from repro.errors import RestartError
from repro.memory.layout import AreaKind

RODRIGO = get_platform("rodrigo")
SP2148 = get_platform("sp2148")


@pytest.fixture
def snapshot_and_vm(tmp_path):
    """A real checkpoint from rodrigo plus a fresh same-arch VM whose
    heap was restored, so chunk counts line up."""
    from repro.checkpoint.reader import _fresh_heap, _restore_heap_chunks

    path = str(tmp_path / "m.hckp")
    code = compile_source('let l = [1; 2];; let s = "x";; checkpoint ();; print_int 1')
    origin = VirtualMachine(
        RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
    )
    origin.run(max_instructions=100_000)
    snap = read_checkpoint(path)
    target = VirtualMachine(get_platform("pc8"), code, VMConfig(chkpt_state="disable"))
    _fresh_heap(target)
    _restore_heap_chunks(target, snap)
    return snap, target


class TestAddressMapper:
    def test_heap_pointer_maps_by_chunk_offset(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        mapper = AddressMapper(snap, vm)
        src_base, words = snap.heap_chunks[0]
        dst_base = vm.mem.heap.chunks[0].base
        assert mapper.map(src_base + 8) == dst_base + 8

    def test_code_pointer_maps_by_unit_index(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        mapper = AddressMapper(snap, vm)
        code_area = next(a for a in snap.boundaries if a.kind == "code")
        assert mapper.map(code_area.base + 4 * 7) == vm.code_base + 4 * 7

    def test_one_past_end_code_pointer(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        mapper = AddressMapper(snap, vm)
        code_area = next(a for a in snap.boundaries if a.kind == "code")
        end = code_area.base + 4 * code_area.n_words
        assert mapper.map(end) == vm.code_base + 4 * len(vm.code.units)

    def test_atom_maps_by_tag(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        mapper = AddressMapper(snap, vm)
        atoms_area = next(
            a for a in snap.boundaries if a.kind == AreaKind.ATOMS.value
        )
        src_atom_3 = atoms_area.base + 4 * 4  # tag 3 on a 4-byte arch
        assert mapper.map(src_atom_3) == vm.mem.atoms.atom(3)

    def test_stack_maps_by_distance_from_high(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        mapper = AddressMapper(snap, vm)
        stack_area = next(
            a for a in snap.boundaries if a.kind == AreaKind.STACK.value
        )
        src_high = stack_area.base + 4 * stack_area.n_words
        mapped = mapper.map(src_high - 12)
        assert mapped == vm.main_stack.stack_high - 12

    def test_unmapped_address_is_none(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        mapper = AddressMapper(snap, vm)
        assert mapper.map(0xDEAD0000) is None
        assert mapper.map(0) is None

    def test_minor_heap_pointer_rejected(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        mapper = AddressMapper(snap, vm)
        minor_area = next(
            a for a in snap.boundaries if a.kind == AreaKind.MINOR_HEAP.value
        )
        with pytest.raises(RestartError):
            mapper.map(minor_area.base + 4)

    def test_chunk_count_mismatch_rejected(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        vm.mem.heap.add_chunk()  # now one more chunk than the snapshot
        with pytest.raises(RestartError):
            AddressMapper(snap, vm)

    def test_relocation_table_path(self, snapshot_and_vm):
        snap, vm = snapshot_and_vm
        src_base, _ = snap.heap_chunks[0]
        relocation = {src_base + 4: 0x12345678}
        mapper = AddressMapper(snap, vm, heap_relocation=relocation)
        assert mapper.map(src_base + 4) == 0x12345678
        # A heap address missing from the table is a dangling pointer.
        assert mapper.map(src_base + 12) is None
        assert mapper.dangling_pointers == 1
