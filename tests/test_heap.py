"""Tests for the major heap: chunks, freelist, allocation, page table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.platforms import RODRIGO
from repro.memory import AddressSpace, Color, Heap, MemoryManager, PAGE_SIZE
from repro.memory.heap import NULL


def fresh_heap(chunk_words=2048):
    space = AddressSpace(RODRIGO.arch)
    layout = RODRIGO.layout
    return Heap(space, RODRIGO.arch, layout.heap_base, layout.chunk_stride,
                chunk_words=chunk_words)


class TestChunks:
    def test_first_chunk_is_one_blue_block(self):
        h = fresh_heap()
        h.add_chunk()
        assert len(h.chunks) == 1
        blocks = list(h.iter_blocks())
        assert len(blocks) == 1
        _, block, hd = blocks[0]
        assert h.headers.is_blue(hd)
        assert h.headers.size(hd) == h.chunks[0].n_words - 1
        assert h.freelist_head == block

    def test_chunk_is_integral_pages(self):
        h = fresh_heap(chunk_words=1000)  # not page-aligned on purpose
        c = h.add_chunk()
        assert (c.n_words * 4) % PAGE_SIZE == 0

    def test_page_table_covers_chunks_exactly(self):
        h = fresh_heap()
        c = h.add_chunk()
        assert h.is_in_heap(c.base + 4)
        assert h.is_in_heap(c.end - 4)
        assert not h.is_in_heap(c.base - PAGE_SIZE)
        assert not h.is_in_heap(c.end + PAGE_SIZE)

    def test_chunks_are_chained(self):
        h = fresh_heap()
        a = h.add_chunk()
        b = h.add_chunk()
        assert a.next is b
        assert b.next is None


class TestAllocation:
    def test_alloc_grows_heap_on_demand(self):
        h = fresh_heap()
        assert not h.chunks
        b = h.alloc(10, 0)
        assert len(h.chunks) == 1
        assert h.headers.size(h.load_header(b)) == 10
        assert h.headers.color(h.load_header(b)) is Color.WHITE

    def test_alloc_carves_from_tail(self):
        h = fresh_heap()
        b1 = h.alloc(10, 0)
        b2 = h.alloc(10, 1)
        # Both come from the same chunk; later allocation sits lower.
        assert b2 < b1
        assert h.headers.tag(h.load_header(b2)) == 1

    def test_exact_fit_unlinks(self):
        h = fresh_heap(chunk_words=256)
        h.add_chunk()
        free_size = h.headers.size(h.load_header(h.freelist_head))
        b = h.alloc(free_size, 0)
        assert h.freelist_head == NULL
        assert h.headers.size(h.load_header(b)) == free_size

    def test_near_fit_leaves_fragment(self):
        h = fresh_heap(chunk_words=256)
        h.add_chunk()
        free_size = h.headers.size(h.load_header(h.freelist_head))
        b = h.alloc(free_size - 1, 0)
        assert h.freelist_head == NULL
        # A white zero-size fragment precedes the block.
        frag_hd = h.space.load(b - 8)
        assert h.headers.size(frag_hd) == 0
        assert h.headers.color(frag_hd) is Color.WHITE
        h.check_integrity()

    def test_free_and_reuse(self):
        h = fresh_heap()
        b = h.alloc(10, 0)
        h.free_block(b)
        assert b in set(h.iter_freelist())
        b2 = h.alloc(10, 0)
        # First-fit finds the freed block first (freelist head).
        assert b2 == b

    def test_coverage_invariant_after_many_allocs(self):
        h = fresh_heap()
        blocks = [h.alloc(1 + i % 7, 0) for i in range(200)]
        for b in blocks[::3]:
            h.free_block(b)
        h.check_integrity()

    def test_rejects_zero_size(self):
        h = fresh_heap()
        with pytest.raises(ValueError):
            h.alloc(0, 0)

    def test_live_and_free_words_account_for_everything(self):
        h = fresh_heap()
        for i in range(50):
            h.alloc(3, 0)
        total = h.total_words()
        # live + free + fragments == total; fragments counted as live here
        assert h.live_words() + h.free_words() == total

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 64), min_size=1, max_size=80))
    def test_integrity_property(self, sizes):
        h = fresh_heap()
        blocks = []
        for i, s in enumerate(sizes):
            blocks.append(h.alloc(s, i % 250))
            if i % 3 == 2 and blocks:
                h.free_block(blocks.pop(0))
        h.check_integrity()

    def test_rebuild_freelist_matches_blue_blocks(self):
        h = fresh_heap()
        blocks = [h.alloc(4, 0) for _ in range(20)]
        for b in blocks[::2]:
            h.free_block(b)
        before = set(h.iter_freelist())
        h.rebuild_freelist()
        assert set(h.iter_freelist()) == before


class TestFieldAccess:
    def test_field_set_field(self):
        h = fresh_heap()
        b = h.alloc(3, 0)
        h.set_field(b, 2, 99)
        assert h.field(b, 2) == 99
        assert h.field(b, 0) != 99 or True
