"""Presence-cache semantics: hits, epoch invalidation, stale recovery."""

from __future__ import annotations

import os

import pytest

from repro.metrics import FLEET
from repro.store import ChunkStore
from repro.store.chunkstore import chunk_key
from repro.store.fleet import FleetClient, FleetNode, PresenceCache


@pytest.fixture(autouse=True)
def _reset_fleet_counters():
    FLEET.reset()
    yield
    FLEET.reset()


class TestPresenceCacheUnit:
    def test_positive_and_negative_hits(self):
        cache = PresenceCache()
        assert cache.lookup("aa") is None  # cold: a miss
        cache.note_present(["aa"])
        cache.note_absent(["bb"])
        assert cache.lookup("aa") is True
        assert cache.lookup("bb") is False
        assert cache.hits == 2 and cache.misses == 1
        assert cache.stats()["hit_rate"] == pytest.approx(2 / 3)

    def test_notes_move_keys_between_sets(self):
        cache = PresenceCache()
        cache.note_absent(["k"])
        cache.note_present(["k"])  # the put happened
        assert cache.lookup("k") is True
        cache.note_absent(["k"])  # the sweep happened
        assert cache.lookup("k") is False

    def test_epoch_sync_first_observation_keeps_entries(self):
        cache = PresenceCache()
        cache.note_present(["k"])
        assert cache.sync_epoch(5) is False  # first sync just records
        assert cache.lookup("k") is True

    def test_epoch_movement_invalidates(self):
        cache = PresenceCache()
        cache.sync_epoch(1)
        cache.note_present(["k1"])
        cache.note_absent(["k2"])
        assert cache.sync_epoch(2) is True
        assert cache.lookup("k1") is None
        assert cache.lookup("k2") is None
        assert cache.invalidations == 1
        assert FLEET.cache_invalidations == 1

    def test_stable_epoch_keeps_entries(self):
        cache = PresenceCache()
        cache.sync_epoch(3)
        cache.note_present(["k"])
        assert cache.sync_epoch(3) is False
        assert cache.lookup("k") is True

    def test_bounded_size_resets(self):
        cache = PresenceCache(max_entries=4)
        cache.note_present([f"p{i}" for i in range(3)])
        cache.note_absent([f"a{i}" for i in range(3)])  # 6 > 4: reset
        assert len(cache) == 0


@pytest.fixture
def fleet(tmp_path):
    nodes = [
        FleetNode(ChunkStore(str(tmp_path / f"shard-{i}")), node_id=f"s{i}")
        for i in range(3)
    ]
    for node in nodes:
        node.start()
    client = FleetClient(
        [node.address for node in nodes], backoff=0.01, chunk_size=1024
    )
    yield nodes, client
    client.close()
    for node in nodes:
        node.stop()


def payload_of(n: int, stamp: bytes = b"A") -> bytes:
    """``n`` distinct 1024-byte chunks (matching the fixture chunk_size)."""
    return b"".join(
        stamp + i.to_bytes(3, "big") + bytes(1020) for i in range(n)
    )


class TestFleetCacheIntegration:
    def test_repeat_upload_is_fully_cache_served(self, fleet):
        _nodes, client = fleet
        payload = payload_of(40)
        gen1, stats1 = client.put_checkpoint("vmc", payload)
        assert stats1.chunks_new == stats1.chunks_total == 40
        hits_before = FLEET.cache_hits
        gen2, stats2 = client.put_checkpoint("vmc", payload)
        # identical payload: the commit is idempotent (same generation)
        assert gen2 == gen1
        assert stats2.chunks_new == 0
        # every unique chunk answered from cache: no has_many round trip
        assert FLEET.cache_hits - hits_before == 40

    def test_negative_entries_skip_presence_query(self, fleet):
        _nodes, client = fleet
        keys = [chunk_key(bytes([i]) * 100) for i in range(5)]
        for node, cache in client.caches.items():
            cache.sync_epoch(0)
        # seed negative answers for keys the fleet has never seen
        for key in keys:
            client.caches[client.chunk_node(key)].note_absent([key])
        hits_before = FLEET.cache_hits
        payload = b"".join(bytes([i]) * 100 for i in range(5))
        saved = client.chunk_size
        client.chunk_size = 100
        try:
            _gen, stats = client.put_checkpoint("vmneg", payload)
        finally:
            client.chunk_size = saved
        assert stats.chunks_new == 5  # negative hit -> straight to put
        assert FLEET.cache_hits - hits_before == 5

    def test_gc_epoch_bump_invalidates_caches(self, fleet):
        _nodes, client = fleet
        client.put_checkpoint("vmgc", payload_of(10))
        assert any(len(c) for c in client.caches.values())
        client.gc()  # sweeps (epoch bump on every shard) + drops caches
        assert all(len(c) == 0 for c in client.caches.values())
        inval_before = FLEET.cache_invalidations
        # next upload re-syncs epochs; caches were dropped locally so
        # sync just re-records — but a *fresh* client with stale state
        # would invalidate:
        other = FleetClient(
            [f"{h}:{p}" for h, p in (n.address for n in _nodes)],
            backoff=0.01,
        )
        try:
            other._sync_epochs()  # records current epochs
            for node in other.nodes:
                # simulate having synced before the gc
                other.caches[node].epoch = -1
            other._sync_epochs()
            assert FLEET.cache_invalidations - inval_before == len(other.nodes)
        finally:
            other.close()

    def test_prune_style_sweep_invalidates_on_next_sync(self, fleet):
        nodes, client = fleet
        client.put_checkpoint("vmp", payload_of(8))
        client._sync_epochs()
        # destructive op behind the client's back: external sweep
        nodes[0].ops.store.sweep_keep(set())
        invalidated = client._sync_epochs()
        assert client.caches is not None
        node_addr = "%s:%d" % nodes[0].address
        assert invalidated[node_addr] == 1
        assert len(client.caches[node_addr]) == 0

    def test_stale_cache_two_pass_recovery(self, fleet):
        """A gc racing an upload: positive cache entries go stale after
        the opening epoch read.  The post-commit epoch check must catch
        it, re-verify every key, and re-upload the swept chunks."""
        nodes, client = fleet
        payload = payload_of(30)
        client.put_checkpoint("vmr", payload)  # fills positive caches

        real_commit = client._commit
        raced = {"done": False}

        def racing_commit(*args, **kwargs):
            if not raced["done"]:
                raced["done"] = True
                # the race: every shard sweeps everything mid-upload,
                # after the cache said "owner already has these chunks"
                for node in nodes:
                    node.ops.store.sweep_keep(set())
            return real_commit(*args, **kwargs)

        client._commit = racing_commit
        try:
            gen, stats = client.put_checkpoint("vmr", payload)
        finally:
            client._commit = real_commit
        assert raced["done"]
        assert FLEET.stale_cache_retries == 1
        # the cached-positive fast path uploaded nothing up front...
        assert stats.chunks_new == 0
        # ...but the recovery pass re-sent every chunk, so the fleet
        # reassembles the checkpoint bit-identically
        got, manifest = client.get_checkpoint("vmr", gen)
        assert got == payload
        assert client.audit(deep=True)["ok"]

    def test_stale_recovery_raises_when_source_cannot_reupload(self, fleet):
        from repro.errors import StoreNotFoundError

        nodes, client = fleet
        payload = payload_of(6)
        client.put_checkpoint("vms", payload)

        real_commit = client._commit
        raced = {"done": False}

        def racing_commit(*args, **kwargs):
            out = real_commit(*args, **kwargs)
            if not raced["done"]:
                raced["done"] = True
                for node in nodes:
                    node.ops.store.sweep_keep(set())
            return out

        client._commit = racing_commit
        # sabotage the recovery source too: the re-read iterator yields
        # nothing, as if the checkpoint file were deleted mid-upload
        orig_verify = client._verify_after_commit

        def broken_verify(epochs_before, keys, make_iter):
            return orig_verify(epochs_before, keys, lambda: iter(()))

        client._verify_after_commit = broken_verify
        try:
            with pytest.raises(StoreNotFoundError, match="vanished"):
                client.put_checkpoint("vms", payload)
        finally:
            client._commit = real_commit
            client._verify_after_commit = orig_verify

    def test_cache_disabled_still_correct(self, tmp_path):
        nodes = [
            FleetNode(ChunkStore(str(tmp_path / f"nc-{i}")), node_id=f"n{i}")
            for i in range(2)
        ]
        for node in nodes:
            node.start()
        client = FleetClient(
            [node.address for node in nodes], cache=False, backoff=0.01,
            chunk_size=512,
        )
        try:
            payload = payload_of(12)
            gen, stats = client.put_checkpoint("vmnc", payload)
            assert client.caches is None
            got, _m = client.get_checkpoint("vmnc", gen)
            assert got == payload
        finally:
            client.close()
            for node in nodes:
                node.stop()
