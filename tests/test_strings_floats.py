"""Tests for string and float payload codecs."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.arch import ARCH_32_BE, ARCH_32_LE, ARCH_64_BE, ARCH_64_LE
from repro.memory import FloatCodec, StringCodec


class TestStringCodec:
    def test_words_needed_always_leaves_pad_byte(self, arch):
        c = StringCodec(arch)
        wb = arch.word_bytes
        assert c.words_needed(0) == 1
        assert c.words_needed(wb - 1) == 1
        assert c.words_needed(wb) == 2

    def test_empty_string(self, arch):
        c = StringCodec(arch)
        words = c.encode(b"")
        assert len(words) == 1
        assert c.decode(words) == b""
        assert c.byte_length(words) == 0

    def test_roundtrip_hello(self, arch):
        c = StringCodec(arch)
        assert c.decode(c.encode(b"hello, world")) == b"hello, world"

    @given(st.binary(max_size=200))
    def test_roundtrip_property_all_archs(self, data):
        for arch in (ARCH_32_LE, ARCH_32_BE, ARCH_64_LE, ARCH_64_BE):
            c = StringCodec(arch)
            assert c.decode(c.encode(data)) == data

    def test_memory_bytes_identical_across_endianness(self):
        """The in-memory byte image of a string is endian-neutral."""
        data = b"heterogeneous checkpointing"
        le = StringCodec(ARCH_32_LE)
        be = StringCodec(ARCH_32_BE)
        assert le.memory_bytes(le.encode(data)) == be.memory_bytes(be.encode(data))

    def test_cross_endian_repack_is_byteswap(self):
        """LE word values of a string are the byteswapped BE word values."""
        data = b"abcdefgh"
        le_words = StringCodec(ARCH_32_LE).encode(data)
        be_words = StringCodec(ARCH_32_BE).encode(data)
        swapped = [
            int.from_bytes(w.to_bytes(4, "little"), "big") for w in le_words
        ]
        assert swapped == be_words

    def test_get_set_byte(self, arch):
        c = StringCodec(arch)
        words = c.encode(b"abcdef")
        assert c.get_byte(words, 0) == ord("a")
        assert c.get_byte(words, 5) == ord("f")
        c.set_byte(words, 0, ord("z"))
        assert c.decode(words) == b"zbcdef"

    def test_corrupt_padding_detected(self, arch):
        c = StringCodec(arch)
        words = c.encode(b"x")
        words[-1] = arch.set_byte_of_word(
            words[-1], arch.word_bytes - 1, arch.word_bytes * len(words)
        )
        with pytest.raises(ValueError):
            c.byte_length(words)


class TestFloatCodec:
    def test_words_per_double(self):
        assert FloatCodec(ARCH_32_LE).words_per_double == 2
        assert FloatCodec(ARCH_64_LE).words_per_double == 1

    def test_roundtrip_simple(self, arch):
        c = FloatCodec(arch)
        for x in (0.0, 1.5, -2.25, 3.141592653589793, 1e300, -1e-300):
            assert c.decode(c.encode(x)) == x

    def test_nan_and_inf(self, arch):
        c = FloatCodec(arch)
        assert math.isnan(c.decode(c.encode(math.nan)))
        assert c.decode(c.encode(math.inf)) == math.inf

    @given(st.floats(allow_nan=False))
    def test_roundtrip_property(self, x):
        for arch in (ARCH_32_LE, ARCH_32_BE, ARCH_64_LE, ARCH_64_BE):
            c = FloatCodec(arch)
            assert c.decode(c.encode(x)) == x

    def test_memory_bytes_cross_endian(self):
        """The 8-byte IEEE image differs between endiannesses as a unit."""
        x = 2.718281828459045
        le = FloatCodec(ARCH_32_LE).encode(x)
        be = FloatCodec(ARCH_32_BE).encode(x)
        le_raw = b"".join(w.to_bytes(4, "little") for w in le)
        be_raw = b"".join(w.to_bytes(4, "big") for w in be)
        assert le_raw == be_raw[::-1]

    def test_wrong_payload_size_rejected(self):
        c = FloatCodec(ARCH_32_LE)
        with pytest.raises(ValueError):
            c.decode([0])
