"""Property-based end-to-end test of the C/R invariant.

For randomly generated MiniML programs with a checkpoint inserted at a
random position, and for every (origin, target) platform combination
drawn: the output of the run that was checkpointed equals the output of
the uninterrupted run, and the restarted run reproduces it exactly —
even across endianness and word-size changes.

(Outputs here are small, so the stdout buffer never flushes before the
checkpoint; buffered output travels with the checkpoint and the
restarted run therefore replays the *full* output.)
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)

PLATFORM_NAMES = ["rodrigo", "csd", "sp2148", "ultra64"]

#: Statement templates over the fixed global state; {k}/{i}/{j} are
#: filled with small random ints.
STATEMENTS = [
    "r := !r + {k}",
    "r := !r * 2 + {i}",
    "arr.({i}) <- !r + arr.({j})",
    "arr.({i}) <- arr.({i}) + {k}",
    "lst := {k} :: !lst",
    "lst := (match !lst with [] -> [{i}] | h :: t -> (h + {j}) :: t)",
    "fl := !fl *. 1.5",
    "fl := !fl +. float_of_int !r",
    "s := !s ^ \"{c}\"",
    "s := string_of_int ({k}) ^ !s",
    "let tmp = Array.make {arrn} ({k}) in r := !r + tmp.({i} mod {arrn})",
    "if !r mod 2 = 0 then r := !r + 1 else arr.(0) <- arr.(0) + 1",
    "for q = 1 to {i} + 1 do r := !r + q done",
]

PRELUDE = """
let r = ref 0;;
let arr = Array.make 8 0;;
let lst = ref [];;
let fl = ref 1.5;;
let s = ref "a";;
"""

DIGEST = """
let rec suml l = match l with [] -> 0 | h :: t -> h + suml t;;
print_int !r;;
print_string " [";;
for i = 0 to 7 do begin print_int arr.(i); print_string ";" end done;;
print_string "] ";;
print_int (suml !lst);;
print_string (" " ^ !s ^ " ");;
print_float !fl
"""


@st.composite
def program_with_checkpoint(draw):
    n = draw(st.integers(2, 10))
    stmts = []
    for _ in range(n):
        template = draw(st.sampled_from(STATEMENTS))
        stmt = template.format(
            k=draw(st.integers(-50, 50)),
            i=draw(st.integers(0, 7)),
            j=draw(st.integers(0, 7)),
            c=draw(st.sampled_from("xyz")),
            arrn=draw(st.integers(1, 6)),
        )
        stmts.append(stmt)
    cut = draw(st.integers(0, n))
    body = ";;\n".join(stmts[:cut] + ["checkpoint ()"] + stmts[cut:])
    origin = draw(st.sampled_from(PLATFORM_NAMES))
    target = draw(st.sampled_from(PLATFORM_NAMES))
    return PRELUDE + body + ";;\n" + DIGEST, origin, target


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program_with_checkpoint())
def test_checkpoint_restart_is_transparent(tmp_path_factory, case):
    src, origin_name, target_name = case
    tmp = tmp_path_factory.mktemp("prop")
    path = str(tmp / "prop.hckp")
    code = compile_source(src)

    # Reference: uninterrupted run on the origin platform.
    ref_vm = VirtualMachine(
        get_platform(origin_name), code, VMConfig(chkpt_state="disable")
    )
    ref = ref_vm.run(max_instructions=5_000_000)
    assert ref.status == "stopped"

    # Checkpointed run on the origin platform.
    vm = VirtualMachine(
        get_platform(origin_name),
        code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
    )
    first = vm.run(max_instructions=5_000_000)
    assert first.status == "stopped"
    assert first.stdout == ref.stdout  # checkpointing never perturbs output
    assert vm.checkpoints_taken == 1

    # Restart on the target platform: identical output.
    vm2, _ = restart_vm(get_platform(target_name), code, path)
    second = vm2.run(max_instructions=5_000_000)
    assert second.status == "stopped"
    assert second.stdout == ref.stdout
    vm2.mem.heap.check_integrity()
