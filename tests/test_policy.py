"""Tests for checkpoint policy: flags, intervals, env-var config."""

from __future__ import annotations

import time

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.errors import CheckpointError

RODRIGO = get_platform("rodrigo")

SPIN = """
let r = ref 0;;
while !r < 150000 do r := !r + 1 done;;
print_int 1
"""


class TestVMConfigFromEnv:
    def test_defaults(self):
        cfg = VMConfig.from_env({})
        assert cfg.chkpt_state == "enable"
        assert cfg.chkpt_filename is None
        assert cfg.chkpt_interval is None

    def test_restart_state(self):
        cfg = VMConfig.from_env(
            {"CHKPT_STATE": "restart", "CHKPT_FILENAME": "/tmp/x.hckp"}
        )
        assert cfg.chkpt_state == "restart"
        assert cfg.chkpt_filename == "/tmp/x.hckp"

    def test_negative_interval_disables(self):
        cfg = VMConfig.from_env({"CHKPT_INTERVAL": "-1"})
        assert cfg.chkpt_interval is None

    def test_interval_parsed(self):
        cfg = VMConfig.from_env({"CHKPT_INTERVAL": "0.5"})
        assert cfg.chkpt_interval == 0.5

    def test_unknown_state_ignored(self):
        cfg = VMConfig.from_env({"CHKPT_STATE": "bogus"})
        assert cfg.chkpt_state == "enable"


class TestCheckpointPolicy:
    def test_disable_suppresses_user_checkpoints(self, tmp_path):
        path = str(tmp_path / "no.hckp")
        code = compile_source("checkpoint ();; print_int 1")
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_state="disable", chkpt_filename=path),
        )
        result = vm.run(max_instructions=100_000)
        assert result.stdout == b"1"
        assert vm.checkpoints_taken == 0
        import os

        assert not os.path.exists(path)

    def test_missing_filename_is_an_error(self):
        code = compile_source("checkpoint ();; print_int 1")
        vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_filename=None))
        with pytest.raises(CheckpointError):
            vm.run(max_instructions=100_000)

    def test_periodic_checkpoints_fire(self, tmp_path):
        """CHKPT_INTERVAL: system-initiated checkpoints at safe points."""
        path = str(tmp_path / "periodic.hckp")
        code = compile_source(SPIN)
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(
                chkpt_filename=path,
                chkpt_interval=0.02,
                chkpt_mode="blocking",
            ),
        )
        result = vm.run(max_instructions=50_000_000)
        assert result.status == "stopped"
        assert vm.checkpoints_taken >= 2  # the loop runs well over 40 ms

    def test_periodic_checkpoint_is_restartable(self, tmp_path):
        path = str(tmp_path / "p2.hckp")
        code = compile_source(SPIN)
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(
                chkpt_filename=path,
                chkpt_interval=0.02,
                chkpt_mode="blocking",
            ),
        )
        vm.run(max_instructions=50_000_000)
        assert vm.checkpoints_taken >= 1
        # The checkpoint landed mid-loop (a system-initiated safe point);
        # restarting resumes the loop and finishes.
        vm2, _ = restart_vm(RODRIGO, code, path)
        result = vm2.run(max_instructions=50_000_000)
        assert result.status == "stopped"
        assert result.stdout == b"1"

    def test_request_checkpoint_api(self, tmp_path):
        path = str(tmp_path / "api.hckp")
        code = compile_source(SPIN)
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
        )
        vm.request_checkpoint()  # external request, e.g. a signal handler
        result = vm.run(max_instructions=50_000_000)
        assert result.status == "stopped"
        assert vm.checkpoints_taken == 1


class TestCGlobalsAcrossRestart:
    def test_registered_roots_are_restored(self, tmp_path):
        path = str(tmp_path / "cg.hckp")
        code = compile_source("checkpoint ();; print_int 7")
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
        )
        # A "C extension" registers a root holding a heap value.
        slot = vm.mem.cglobals.alloc_slot()
        block = vm.mem.make_block(0, [vm.mem.values.val_int(99)])
        vm.mem.cglobals.store(slot, block)
        raw_slot = vm.mem.cglobals.alloc_slot(register_root=False, init=0xAB)
        vm.run(max_instructions=100_000)

        for target in ("rodrigo", "csd", "sp2148"):
            vm2, _ = restart_vm(get_platform(target), code, path)
            cg = vm2.mem.cglobals
            assert cg.used_words == 2
            root_addr = cg.root_addresses()[0]
            restored = cg.load(root_addr)
            assert vm2.mem.values.int_val(vm2.mem.field(restored, 0)) == 99
            # The raw (non-root) slot is carried over verbatim.
            assert cg.area.words[1] == 0xAB
