"""Tests for channels (file descriptor abstraction)."""

from __future__ import annotations

import io

import pytest

from repro.arch.platforms import RODRIGO
from repro.channels import Channel, ChannelManager, ChannelMode
from repro.errors import ChannelError
from repro.minilang import compile_source
from repro.vm import VirtualMachine


def run(src: str, stdin: bytes = b""):
    code = compile_source(src)
    vm = VirtualMachine(RODRIGO, code, stdin=io.BytesIO(stdin))
    result = vm.run(max_instructions=2_000_000)
    assert result.status == "stopped"
    return result


class TestChannelUnit:
    def test_write_buffers_then_flushes(self):
        sink = io.BytesIO()
        ch = Channel(5, None, ChannelMode.WRITE, sink, std_name="stdout")
        ch.write(b"abc")
        assert sink.getvalue() == b""  # buffered
        ch.flush()
        assert sink.getvalue() == b"abc"
        assert ch.position == 3

    def test_large_write_autoflushes(self):
        sink = io.BytesIO()
        ch = Channel(5, None, ChannelMode.WRITE, sink, std_name="stdout")
        ch.write(b"x" * 5000)
        assert len(sink.getvalue()) == 5000

    def test_read_byte_and_eof(self):
        ch = Channel(5, None, ChannelMode.READ, io.BytesIO(b"ab"), std_name="stdin")
        assert ch.read_byte() == ord("a")
        assert ch.read_byte() == ord("b")
        assert ch.read_byte() == -1
        assert ch.position == 2

    def test_read_line(self):
        ch = Channel(5, None, ChannelMode.READ, io.BytesIO(b"one\ntwo\n"), std_name="stdin")
        assert ch.read_line() == b"one"
        assert ch.read_line() == b"two"
        with pytest.raises(ChannelError):
            ch.read_line()

    def test_direction_enforced(self):
        ch = Channel(5, None, ChannelMode.READ, io.BytesIO(), std_name="stdin")
        with pytest.raises(ChannelError):
            ch.write(b"x")
        out = Channel(6, None, ChannelMode.WRITE, io.BytesIO(), std_name="stdout")
        with pytest.raises(ChannelError):
            out.read_byte()

    def test_closed_channel_rejects_io(self):
        ch = Channel(5, None, ChannelMode.WRITE, io.BytesIO(), std_name="stdout")
        ch.close()
        with pytest.raises(ChannelError):
            ch.write(b"x")

    def test_reopen_write_truncates_to_position(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with open(path, "wb") as f:
            f.write(b"0123456789")
        ch = Channel(5, path, ChannelMode.WRITE)
        ch.position = 4  # checkpoint said only 4 bytes were durable
        ch.reopen({})
        ch.write(b"AB")
        ch.flush()
        ch.close()
        assert open(path, "rb").read() == b"0123AB"

    def test_reopen_read_seeks(self, tmp_path):
        path = str(tmp_path / "in.txt")
        with open(path, "wb") as f:
            f.write(b"abcdef")
        ch = Channel(5, path, ChannelMode.READ)
        ch.position = 3
        ch.reopen({})
        assert ch.read_byte() == ord("d")

    def test_reopen_missing_file_fails(self, tmp_path):
        ch = Channel(5, str(tmp_path / "gone.txt"), ChannelMode.WRITE)
        ch.position = 1
        with pytest.raises(ChannelError):
            ch.reopen({})


class TestChannelManager:
    def test_std_channels_exist(self):
        mgr = ChannelManager()
        assert mgr.stdout.is_std and mgr.stdin.is_std and mgr.stderr.is_std

    def test_open_close_roundtrip(self, tmp_path):
        mgr = ChannelManager()
        path = str(tmp_path / "f.txt")
        cid = mgr.open_out(path)
        mgr.get(cid).write(b"hello")
        mgr.close(cid)
        assert open(path, "rb").read() == b"hello"
        cid2 = mgr.open_in(path)
        assert mgr.get(cid2).read_line() == b"hello"

    def test_snapshot_restore_roundtrip(self, tmp_path):
        mgr = ChannelManager()
        path = str(tmp_path / "f.txt")
        cid = mgr.open_out(path)
        ch = mgr.get(cid)
        ch.write(b"committed")
        ch.flush()
        ch.write(b"buffered")  # stays in the buffer
        records = mgr.snapshot()
        # A new manager (a "restarted machine") restores the table.
        mgr2 = ChannelManager()
        mgr2.restore(records)
        ch2 = mgr2.get(cid)
        assert ch2.position == 9
        assert bytes(ch2.out_buffer) == b"buffered"
        ch2.flush()
        ch2.close()
        assert open(path, "rb").read() == b"committedbuffered"

    def test_unknown_channel(self):
        with pytest.raises(ChannelError):
            ChannelManager().get(99)


class TestChannelPrims:
    def test_file_write_read_via_miniml(self, tmp_path):
        path = str(tmp_path / "data.txt").replace("\\", "/")
        src = f"""
        let out = open_out "{path}";;
        output_string out "line one\\n";;
        output_string out "line two\\n";;
        close_out out;;
        let inc = open_in "{path}";;
        print_string (input_line inc);;
        print_string "|";;
        print_string (input_line inc);;
        close_in inc
        """
        result = run(src)
        assert result.stdout == b"line one|line two"

    def test_input_char_eof(self, tmp_path):
        path = str(tmp_path / "c.txt")
        with open(path, "wb") as f:
            f.write(b"Z")
        src = f"""
        let inc = open_in "{path}" in
        (print_int (input_char inc); print_string " "; print_int (input_char inc))
        """
        result = run(src)
        assert result.stdout == b"90 -1"

    def test_stdin_prim(self):
        src = """
        let c = stdout_channel () in
        (output_string c "via channel"; flush c)
        """
        result = run(src)
        assert result.stdout == b"via channel"
