"""Tests for the architecture model and word codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch import (
    ARCH_32_BE,
    ARCH_32_LE,
    ARCH_64_LE,
    Architecture,
    Endianness,
    WordCodec,
    get_platform,
    PLATFORMS,
)


class TestArchitecture:
    def test_word_geometry_32(self):
        a = ARCH_32_LE
        assert a.word_bytes == 4
        assert a.word_mask == 0xFFFFFFFF
        assert a.max_signed == 2**31 - 1
        assert a.min_signed == -(2**31)

    def test_word_geometry_64(self):
        a = ARCH_64_LE
        assert a.word_bytes == 8
        assert a.word_mask == 2**64 - 1

    def test_rejects_odd_word_size(self):
        with pytest.raises(ValueError):
            Architecture(16, Endianness.LITTLE)

    def test_signed_roundtrip(self):
        a = ARCH_32_LE
        assert a.to_signed(a.to_unsigned(-1)) == -1
        assert a.to_signed(0x7FFFFFFF) == 2**31 - 1
        assert a.to_signed(0x80000000) == -(2**31)

    def test_asr_preserves_sign(self):
        a = ARCH_32_LE
        assert a.to_signed(a.asr(a.to_unsigned(-8), 1)) == -4
        assert a.asr(8, 1) == 4

    @given(st.integers())
    def test_unsigned_signed_inverse(self, n):
        a = ARCH_32_LE
        w = a.to_unsigned(n)
        assert a.to_unsigned(a.to_signed(w)) == w

    def test_word_bytes_little_vs_big(self):
        assert ARCH_32_LE.word_to_bytes(1) == b"\x01\x00\x00\x00"
        assert ARCH_32_BE.word_to_bytes(1) == b"\x00\x00\x00\x01"

    def test_word_from_bytes_roundtrip(self, arch):
        for w in (0, 1, 0xDEADBEEF & arch.word_mask, arch.word_mask):
            assert arch.word_from_bytes(arch.word_to_bytes(w)) == w

    def test_word_from_bytes_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ARCH_32_LE.word_from_bytes(b"\x00" * 3)

    def test_byte_of_word_little(self):
        a = ARCH_32_LE
        w = 0x04030201
        assert [a.byte_of_word(w, i) for i in range(4)] == [1, 2, 3, 4]

    def test_byte_of_word_big(self):
        a = ARCH_32_BE
        w = 0x04030201
        assert [a.byte_of_word(w, i) for i in range(4)] == [4, 3, 2, 1]

    def test_byte_of_word_matches_memory_bytes(self, arch):
        w = 0x0123456789ABCDEF & arch.word_mask
        raw = arch.word_to_memory_bytes(w)
        for i in range(arch.word_bytes):
            assert arch.byte_of_word(w, i) == raw[i]

    @given(st.data())
    def test_set_byte_roundtrip(self, data):
        for arch in (ARCH_32_LE, ARCH_32_BE, ARCH_64_LE):
            w = data.draw(st.integers(0, arch.word_mask))
            i = data.draw(st.integers(0, arch.word_bytes - 1))
            b = data.draw(st.integers(0, 255))
            w2 = arch.set_byte_of_word(w, i, b)
            assert arch.byte_of_word(w2, i) == b
            for j in range(arch.word_bytes):
                if j != i:
                    assert arch.byte_of_word(w2, j) == arch.byte_of_word(w, j)

    def test_data_compatible(self):
        assert ARCH_32_LE.data_compatible(ARCH_32_LE)
        assert not ARCH_32_LE.data_compatible(ARCH_32_BE)
        assert not ARCH_32_LE.data_compatible(ARCH_64_LE)


class TestWordCodec:
    def test_encode_decode_roundtrip(self, arch):
        codec = WordCodec(arch)
        words = [0, 1, 42, arch.word_mask, 0x12345678]
        assert codec.decode(codec.encode(words)) == words

    def test_encode_length(self, arch):
        codec = WordCodec(arch)
        assert len(codec.encode([0] * 7)) == 7 * arch.word_bytes

    def test_decode_rejects_ragged(self):
        codec = WordCodec(ARCH_32_LE)
        with pytest.raises(ValueError):
            codec.decode(b"\x00" * 5)

    def test_le_be_encodings_are_byteswaps(self):
        words = [0x11223344, 0xAABBCCDD]
        le = WordCodec(ARCH_32_LE).encode(words)
        be = WordCodec(ARCH_32_BE).encode(words)
        assert le != be
        assert WordCodec(ARCH_32_LE).byteswapped(le) == be

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=64))
    def test_byteswap_involution(self, words):
        codec = WordCodec(ARCH_32_LE)
        data = codec.encode(words)
        assert codec.byteswapped(codec.byteswapped(data)) == data


class TestPlatforms:
    def test_table1_platforms_exist(self):
        for name in ("rodrigo", "pc8", "csd", "sp2148", "rs6000", "ultra64"):
            assert name in PLATFORMS

    def test_rodrigo_is_32le_linux(self):
        p = get_platform("rodrigo")
        assert p.arch.bits == 32
        assert p.arch.endianness is Endianness.LITTLE
        assert p.supports_fork

    def test_pc8_has_no_fork(self):
        assert not get_platform("pc8").supports_fork

    def test_csd_is_big_endian(self):
        assert get_platform("csd").arch.endianness is Endianness.BIG

    def test_sp2148_is_64bit(self):
        assert get_platform("sp2148").arch.bits == 64

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            get_platform("cray")

    def test_layouts_are_distinct(self):
        bases = {p.layout.heap_base for p in PLATFORMS.values()}
        assert len(bases) == len(PLATFORMS)

    def test_describe_mentions_arch(self):
        text = get_platform("csd").describe()
        assert "big-endian" in text or "big" in text
