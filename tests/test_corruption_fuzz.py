"""The corruption-matrix invariant, in-suite (CI runs the full matrix).

Every seeded mutation of a checkpoint head must produce either a clean
restore (bit-identical output) or a typed detection followed by a
successful fallback to the retained generation — never an uncaught
exception, never silently wrong output.
"""

from __future__ import annotations

import pytest

from repro.faults import fuzz_matrix
from repro.faults.injectors import (
    Mutation,
    apply_mutation,
    mutate_bytes,
    plan_mutations,
)


class TestMutationPrimitives:
    def test_plan_is_deterministic(self):
        a = plan_mutations(10_000, seed=42, count=20)
        b = plan_mutations(10_000, seed=42, count=20)
        assert a == b
        c = plan_mutations(10_000, seed=43, count=20)
        assert a != c

    def test_plan_mixes_kinds(self):
        plan = plan_mutations(10_000, seed=1, count=100)
        kinds = {m.kind for m in plan}
        assert kinds == {"truncate", "bitflip"}

    def test_truncate(self):
        assert apply_mutation(b"abcdef", Mutation("truncate", 3)) == b"abc"

    def test_bitflip_is_involution(self):
        data = bytes(range(64))
        m = Mutation("bitflip", 10, bit=5)
        once = apply_mutation(data, m)
        assert once != data
        assert apply_mutation(once, m) == data

    def test_section_swap(self):
        data = b"AAAABBBBCCCC"
        m = Mutation("section-swap", 0, length=4, other=8)
        assert apply_mutation(data, m) == b"CCCCBBBBAAAA"
        assert apply_mutation(data, m) != data

    def test_input_never_mutated(self):
        data = bytes(100)
        for m in plan_mutations(len(data), seed=3, count=10):
            apply_mutation(data, m)
        assert data == bytes(100)

    def test_mutate_bytes_convenience(self):
        out = mutate_bytes(b"\x00" * 500, seed=9, count=5)
        assert len(out) == 5
        assert all(o != b"\x00" * 500 for o in out)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            apply_mutation(b"xy", Mutation("scramble", 0))


class TestFuzzMatrix:
    def test_invariant_holds_on_sampled_matrix(self):
        report = fuzz_matrix(
            seed=7, mutations=24, platforms=["rodrigo", "sp2148"]
        )
        assert report["ok"], report["failures"]
        assert report["mutations"] == 24
        assert report["pairs"] == 4
        outcomes = report["outcomes"]
        assert sum(outcomes.values()) == 24
        # With a v3 head, essentially every mutation is detected and the
        # retained generation takes over.
        assert outcomes["detected_and_recovered"] > 0
        assert outcomes["typed_failure_no_chain"] == 0

    def test_report_is_deterministic(self):
        a = fuzz_matrix(seed=11, mutations=6, platforms=["rodrigo"])
        b = fuzz_matrix(seed=11, mutations=6, platforms=["rodrigo"])
        assert a == b

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            fuzz_matrix(seed=1, mutations=1, platforms=["vax780"])

    def test_cross_endian_pair_with_section_swaps(self):
        """Big-endian origin, little-endian target — plus enough budget
        that the plan includes section swaps."""
        report = fuzz_matrix(
            seed=5, mutations=10, platforms=["ultra64", "rodrigo"]
        )
        assert report["ok"], report["failures"]
