"""Tests for the checkpoint inspector/validator."""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.checkpoint.format import read_checkpoint, serialize_snapshot
from repro.checkpoint.inspect import inspect_checkpoint, inspect_snapshot

RODRIGO = get_platform("rodrigo")

RICH_PROGRAM = """
let data = List.map (fun x -> x * x) [1; 2; 3; 4];;
let s = "a string in the heap";;
let f = 3.5;;
let arr = Array.make 20 0;;
let m = mutex_create ();;
let t = thread_create (fun () -> ());;
thread_join t;;
try (checkpoint (); ()) with _ -> ();;
print_int (List.length data)
"""


def take(tmp_path, src=RICH_PROGRAM, platform=RODRIGO):
    path = str(tmp_path / "i.hckp")
    code = compile_source(src)
    vm = VirtualMachine(
        platform, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
    )
    result = vm.run(max_instructions=2_000_000)
    assert result.status == "stopped"
    return path


class TestInspector:
    def test_healthy_checkpoint_validates(self, tmp_path):
        report = inspect_checkpoint(take(tmp_path))
        assert report.ok, report.problems
        assert report.platform_name == "rodrigo"
        assert report.word_bytes == 4
        assert report.multithreaded
        assert report.thread_count == 2
        assert report.live_blocks > 0
        assert report.live_words + report.free_words <= report.heap_words + 1

    def test_block_classes_counted(self, tmp_path):
        report = inspect_checkpoint(take(tmp_path))
        assert report.blocks_by_class["string"] >= 1
        assert report.blocks_by_class["double"] >= 1
        assert report.blocks_by_class["closure"] >= 1
        assert report.blocks_by_class["structured"] >= 5

    def test_pointer_destinations_classified(self, tmp_path):
        report = inspect_checkpoint(take(tmp_path))
        assert report.pointers_by_area["heap-chunk"] > 0
        assert report.pointers_by_area["code"] > 0  # closure code pointers

    def test_trapsp_validates_as_stack_address(self, tmp_path):
        report = inspect_checkpoint(take(tmp_path))
        assert report.ok  # includes the live trap frame check

    def test_validates_on_big_endian_and_64bit(self, tmp_path):
        for name in ("csd", "sp2148", "ultra64"):
            report = inspect_checkpoint(
                take(tmp_path, platform=get_platform(name))
            )
            assert report.ok, (name, report.problems)
            assert report.endianness == get_platform(name).arch.endianness.value

    def test_detects_corrupt_header(self, tmp_path):
        path = take(tmp_path)
        snap = read_checkpoint(path)
        # Smash a header so a block overruns its chunk.
        base, words = snap.heap_chunks[0]
        words[0] = (len(words) + 100) << 10  # absurd size, tag 0, white
        report = inspect_snapshot(snap)
        assert not report.ok
        assert any("overruns" in p for p in report.problems)

    def test_detects_wild_pointer(self, tmp_path):
        path = take(tmp_path)
        snap = read_checkpoint(path)
        main = next(t for t in snap.threads if t.tid == 0)
        main.stack_words[0] = 0x6660_0000  # even, mapped nowhere
        report = inspect_snapshot(snap)
        assert not report.ok
        assert any("points nowhere" in p for p in report.problems)

    def test_render_mentions_everything(self, tmp_path):
        report = inspect_checkpoint(take(tmp_path))
        text = report.render()
        assert "validation : OK" in text
        assert "heap" in text and "string" in text

    def test_cli_deep_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = take(tmp_path)
        assert main(["info", path, "--deep"]) == 0
        out = capsys.readouterr().out
        assert "validation : OK" in out
