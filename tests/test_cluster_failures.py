"""Cluster failure paths: deadlock detection, mailbox survival, store C/R."""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.cluster import (
    Cluster,
    ClusterDeadlock,
    checkpoint_cluster_to_store,
    restart_cluster,
    restart_cluster_from_store,
)
from repro.errors import CheckpointFormatError, StoreNotFoundError
from repro.store import ChunkStore, StoreClient, StoreServer

# Every node waits forever: nothing is ever sent.
ALL_WAIT = """
let _ = cluster_recv ();;
print_int 0
"""

# Rank 0 sends one message to each peer and prints; peers echo the
# value back, incremented, and print what they got.
EXCHANGE = """
let me = cluster_rank ();;
let n = cluster_size ();;
let () =
  if me = 0 then
    begin
      let rec fan i = if i = n then () else begin cluster_send i (10 * i); fan (i + 1) end in
      fan 1;
      let rec gather k acc =
        if k = 0 then acc else gather (k - 1) (acc + cluster_recv ())
      in
      begin print_string "acc="; print_int (gather (n - 1) 0) end
    end
  else
    begin
      let v = cluster_recv () in
      begin cluster_send 0 (v + 1); print_string "ok" end
    end
"""


@pytest.fixture
def service(tmp_path):
    server = StoreServer(ChunkStore(str(tmp_path / "store")))
    host, port = server.start()
    client = StoreClient(host, port, backoff=0.01)
    yield server, client
    client.close()
    server.stop()


class TestDeadlockDetection:
    def test_all_nodes_waiting_empty_mailboxes(self):
        """Satellite acceptance: every node blocked on an empty mailbox
        with nothing in flight is reported as a deadlock, naming the
        stuck ranks."""
        code = compile_source(ALL_WAIT)
        cluster = Cluster(code, ["rodrigo", "csd", "sp2148"])
        with pytest.raises(ClusterDeadlock) as exc:
            cluster.run()
        msg = str(exc.value)
        assert "[0, 1, 2]" in msg
        assert "waiting" in msg
        for node in cluster.nodes:
            assert node.state == "waiting"
            assert not node.mailbox

    def test_deadlock_not_raised_while_messages_in_flight(self):
        code = compile_source(EXCHANGE)
        cluster = Cluster(code, ["rodrigo"] * 3, slice_instructions=200)
        cluster.run()  # must complete, never report a false deadlock
        assert cluster.finished

    def test_deadlock_survives_checkpoint_restart(self, tmp_path):
        """A doomed cluster is still (correctly) doomed after C/R —
        the waiting states and empty mailboxes round-trip faithfully."""
        code = compile_source(ALL_WAIT)
        cluster = Cluster(code, ["rodrigo", "rodrigo"])
        # step until both nodes are parked waiting
        for _ in range(50):
            if all(n.state == "waiting" for n in cluster.nodes):
                break
            cluster.step()
        ckpt = str(tmp_path / "doomed")
        cluster.checkpoint(ckpt)
        cluster2 = restart_cluster(code, ckpt, ["csd", "ultra64"])
        with pytest.raises(ClusterDeadlock):
            cluster2.run()


class TestMailboxSurvival:
    def test_mailbox_contents_survive_hetero_roundtrip(self, tmp_path):
        """Satellite acceptance: bytes sitting in mailboxes at
        checkpoint time are delivered after a restart on *different*
        platforms — byte-for-byte."""
        code = compile_source(EXCHANGE)
        cluster = Cluster(code, ["rodrigo"] * 3, slice_instructions=150)
        # run until at least one marshaled message is parked in a mailbox
        queued = None
        for _ in range(200):
            cluster.step()
            if any(n.mailbox for n in cluster.nodes):
                queued = {
                    n.rank: list(n.mailbox) for n in cluster.nodes if n.mailbox
                }
                break
            if cluster.finished:
                break
        assert queued, "never observed an in-flight message"
        ckpt = str(tmp_path / "mail")
        cluster.checkpoint(ckpt)

        cluster2 = restart_cluster(
            code, ckpt, ["ultra64", "csd", "sp2148"], slice_instructions=150
        )
        for rank, msgs in queued.items():
            assert list(cluster2.nodes[rank].mailbox) == msgs
        cluster2.run()
        assert cluster2.stdout(0) == b"acc=" + str(10 + 1 + 20 + 1).encode()
        assert cluster2.stdout(1) == b"ok"


class TestStoreBackedClusterCR:
    def test_roundtrip_through_store(self, tmp_path, service):
        server, client = service
        code = compile_source(EXCHANGE)
        cluster = Cluster(code, ["rodrigo"] * 3, slice_instructions=150)
        cluster.step()
        gen, stats = checkpoint_cluster_to_store(
            cluster, client, "cluster/exchange",
            directory=str(tmp_path / "ck"),
        )
        assert gen == 1
        assert stats.bytes_total > 0
        manifest = server.store.read_manifest("cluster/exchange", gen)
        assert manifest.meta == {"kind": "cluster", "nodes": 3}

        cluster2 = restart_cluster_from_store(
            code, client, "cluster/exchange",
            ["csd", "ultra64", "sp2148"],
            directory=str(tmp_path / "rs"),
            slice_instructions=150,
        )
        cluster2.run()
        assert cluster2.stdout(0) == b"acc=32"

    def test_missing_cluster_id_raises(self, service):
        _, client = service
        code = compile_source(EXCHANGE)
        with pytest.raises(StoreNotFoundError):
            restart_cluster_from_store(code, client, "ghost", ["rodrigo"] * 3)

    def test_non_cluster_payload_rejected(self, service):
        _, client = service
        client.put_checkpoint("plain", b"just one vm checkpoint")
        code = compile_source(EXCHANGE)
        with pytest.raises(CheckpointFormatError):
            restart_cluster_from_store(code, client, "plain", ["rodrigo"] * 3)
