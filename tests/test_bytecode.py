"""Tests for the byte-code layer: images, assembler, disassembler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bytecode import (
    Assembler,
    CodeImage,
    Op,
    OPERAND_COUNTS,
    disassemble,
)
from repro.errors import BytecodeError


class TestCodeImage:
    def test_serialize_roundtrip(self):
        img = CodeImage([int(Op.CONSTINT), 5, int(Op.STOP)], "t", 3,
                        [b"lit", b""], [1.5, -2.0])
        img2 = CodeImage.from_bytes(img.to_bytes())
        assert img2.units == img.units
        assert img2.name == "t"
        assert img2.n_globals == 3
        assert img2.string_literals == [b"lit", b""]
        assert img2.float_literals == [1.5, -2.0]
        assert img2.digest() == img.digest()

    def test_digest_covers_everything(self):
        base = CodeImage([0], "x", 1, [b"a"], [1.0])
        assert base.digest() != CodeImage([1], "x", 1, [b"a"], [1.0]).digest()
        assert base.digest() != CodeImage([0], "x", 2, [b"a"], [1.0]).digest()
        assert base.digest() != CodeImage([0], "x", 1, [b"b"], [1.0]).digest()
        assert base.digest() != CodeImage([0], "x", 1, [b"a"], [2.0]).digest()
        # The name is informational only.
        assert base.digest() == CodeImage([0], "y", 1, [b"a"], [1.0]).digest()

    def test_signed_unit(self):
        img = CodeImage([-5, 5])
        assert img.signed_unit(0) == -5
        assert img.signed_unit(1) == 5

    def test_bad_magic(self):
        with pytest.raises(BytecodeError):
            CodeImage.from_bytes(b"NOPE" + b"\x00" * 20)

    def test_truncated(self):
        data = CodeImage([1, 2, 3]).to_bytes()
        with pytest.raises(BytecodeError):
            CodeImage.from_bytes(data[: len(data) // 2])

    def test_unit_range_checked(self):
        with pytest.raises(BytecodeError):
            CodeImage([2**32])

    @given(st.lists(st.integers(-(2**31), 2**32 - 1), max_size=50))
    def test_roundtrip_property(self, units):
        img = CodeImage(units)
        assert CodeImage.from_bytes(img.to_bytes()).units == img.units


class TestAssembler:
    def test_label_forward_and_backward(self):
        a = Assembler()
        start = a.label()
        a.place(start)
        fwd = a.label()
        a.emit(Op.BRANCH, fwd)
        a.emit(Op.BRANCH, start)
        a.place(fwd)
        a.emit(Op.STOP)
        img = a.assemble()
        # First BRANCH: operand at unit 1, target 4 -> offset 3.
        assert img.signed_unit(1) == 3
        # Second BRANCH: operand at unit 3, target 0 -> offset -3.
        assert img.signed_unit(3) == -3

    def test_undefined_label(self):
        a = Assembler()
        a.emit(Op.BRANCH, a.label())
        with pytest.raises(BytecodeError):
            a.assemble()

    def test_double_place(self):
        a = Assembler()
        lab = a.label()
        a.place(lab)
        with pytest.raises(BytecodeError):
            a.place(lab)

    def test_operand_count_enforced(self):
        a = Assembler()
        with pytest.raises(BytecodeError):
            a.emit(Op.CONSTINT)
        with pytest.raises(BytecodeError):
            a.emit(Op.PUSH, 1)

    def test_label_only_in_branch_slot(self):
        a = Assembler()
        with pytest.raises(BytecodeError):
            a.emit(Op.CONSTINT, a.label())
        # CLOSURE's second operand is the branch slot, not the first.
        with pytest.raises(BytecodeError):
            a.emit(Op.CLOSURE, a.label(), 0)

    def test_literal_interning(self):
        a = Assembler()
        assert a.string_literal(b"x") == a.string_literal(b"x") == 0
        assert a.string_literal(b"y") == 1
        assert a.float_literal(1.5) == a.float_literal(1.5) == 0
        assert a.float_literal(float("nan")) == a.float_literal(float("nan"))

    def test_every_opcode_has_operand_count(self):
        for op in Op:
            assert op in OPERAND_COUNTS


class TestDisassembler:
    def test_every_emittable_opcode_disassembles(self):
        a = Assembler()
        lab = a.label()
        a.place(lab)
        for op in Op:
            argc = OPERAND_COUNTS[op]
            if op in (Op.BRANCH, Op.BRANCHIF, Op.BRANCHIFNOT, Op.PUSH_RETADDR):
                a.emit(op, lab)
            elif op is Op.CLOSURE:
                a.emit(op, 0, lab)
            else:
                a.emit(op, *([0] * argc))
        text = disassemble(a.assemble())
        for op in Op:
            assert op.name in text

    def test_unknown_opcode(self):
        with pytest.raises(BytecodeError):
            disassemble(CodeImage([9999]))

    def test_truncated_operand(self):
        with pytest.raises(BytecodeError):
            disassemble(CodeImage([int(Op.CONSTINT)]))
