"""Tests for the store daemon, client retry, replication, heartbeats."""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.errors import (
    StoreConnectionError,
    StoreNotFoundError,
    StoreProtocolError,
)
from repro.store import ChunkStore, StoreClient, StoreServer


@pytest.fixture
def server(tmp_path):
    srv = StoreServer(ChunkStore(str(tmp_path / "primary")))
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    host, port = server.address
    with StoreClient(host, port, retries=2, backoff=0.01) as c:
        yield c


class DroppingProxy:
    """A TCP proxy that kills its first N accepted connections, then
    forwards transparently — the injected transport fault."""

    def __init__(self, upstream: tuple[str, int], drop_first: int = 1) -> None:
        self.upstream = upstream
        self.drops_left = drop_first
        self.connections = 0
        self._listen = socket.socket()
        self._listen.bind(("127.0.0.1", 0))
        self._listen.listen(8)
        self.address = self._listen.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listen.accept()
            except OSError:
                return
            self.connections += 1
            if self.drops_left > 0:
                self.drops_left -= 1
                conn.close()  # the fault: connection dies immediately
                continue
            threading.Thread(
                target=self._forward, args=(conn,), daemon=True
            ).start()

    def _forward(self, conn: socket.socket) -> None:
        up = socket.create_connection(self.upstream)

        def pump(src, dst):
            try:
                while True:
                    data = src.recv(65536)
                    if not data:
                        break
                    dst.sendall(data)
            except OSError:
                pass
            finally:
                for s in (src, dst):
                    try:
                        s.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass

        t = threading.Thread(target=pump, args=(up, conn), daemon=True)
        t.start()
        pump(conn, up)

    def close(self) -> None:
        self._stop.set()
        self._listen.close()


class TestDaemonRoundtrip:
    def test_ping(self, client):
        assert client.ping()

    def test_checkpoint_roundtrip(self, client):
        payload = os.urandom(300_000)
        gen, stats = client.put_checkpoint("vm", payload, meta={"p": "csd"})
        assert gen == 1
        assert stats.chunks_new == stats.chunks_total
        back, manifest = client.get_checkpoint("vm")
        assert back == payload
        assert manifest.meta == {"p": "csd"}

    def test_file_roundtrip_streams(self, client, tmp_path):
        src = tmp_path / "in.bin"
        src.write_bytes(os.urandom(200_000))
        client.put_checkpoint_file("vm", str(src))
        out = tmp_path / "out.bin"
        client.get_checkpoint_file("vm", str(out))
        assert out.read_bytes() == src.read_bytes()

    def test_second_put_dedups(self, client):
        payload = bytearray(os.urandom(256 * 1024))
        client.put_checkpoint("vm", bytes(payload))
        payload[1000:1100] = os.urandom(100)  # touch one chunk
        gen, stats = client.put_checkpoint("vm", bytes(payload))
        assert gen == 2
        assert stats.chunks_new == 1
        assert stats.dedup_ratio > 2.0

    def test_empty_payload(self, client):
        client.put_checkpoint("vm", b"")
        back, _ = client.get_checkpoint("vm")
        assert back == b""

    def test_application_errors_not_retried(self, client):
        with pytest.raises(StoreNotFoundError):
            client.get_manifest("ghost")
        assert client.retries_used == 0

    def test_ls_gc_stat_audit(self, client):
        client.put_checkpoint("vm", os.urandom(10_000))
        assert "vm" in client.ls()["vms"]
        assert client.gc()["removed"] == 0
        stat = client.stat()
        assert stat["requests_served"] > 0
        assert client.audit()["ok"]

    def test_many_clients_concurrently(self, server):
        host, port = server.address
        errors: list[Exception] = []

        def worker(i: int) -> None:
            try:
                with StoreClient(host, port) as c:
                    payload = bytes([i]) * 50_000
                    c.put_checkpoint(f"vm{i}", payload)
                    back, _ = c.get_checkpoint(f"vm{i}")
                    assert back == payload
            except Exception as e:  # surfaces in the main thread
                errors.append(e)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestClientRetry:
    def test_survives_one_dropped_connection(self, server, tmp_path):
        """Acceptance: a put_checkpoint_file succeeds although the first
        connection is torn down by the network."""
        proxy = DroppingProxy(server.address, drop_first=1)
        try:
            src = tmp_path / "ck.bin"
            src.write_bytes(os.urandom(150_000))
            with StoreClient(*proxy.address, retries=3, backoff=0.01) as c:
                gen, _ = c.put_checkpoint_file("vm", str(src))
                assert gen == 1
                assert c.retries_used >= 1
                back, _ = c.get_checkpoint("vm")
            assert back == src.read_bytes()
        finally:
            proxy.close()

    def test_retried_upload_is_idempotent(self, server, tmp_path):
        """A retry that re-sends the whole upload must not mint a second
        generation."""
        proxy = DroppingProxy(server.address, drop_first=0)
        try:
            payload = os.urandom(100_000)
            with StoreClient(*proxy.address, retries=3, backoff=0.01) as c:
                c.put_checkpoint("vm", payload)
                # simulate "reply lost, client retries the whole upload"
                gen, stats = c.put_checkpoint("vm", payload)
            assert gen == 1
            assert stats.bytes_new == 0
            assert server.store.generations("vm") == [1]
        finally:
            proxy.close()

    def test_gives_up_after_bounded_retries(self):
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))  # bound but never accepting
        try:
            host, port = dead.getsockname()
            c = StoreClient(host, port, connect_timeout=0.2,
                            retries=2, backoff=0.01)
            with pytest.raises(StoreConnectionError, match="3 attempt"):
                c.ping()
        finally:
            dead.close()

    def test_garbage_response_raises_protocol_error(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def answer_garbage():
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.sendall(b"HTTP/1.1 200 OK\r\n\r\n")
            conn.close()

        t = threading.Thread(target=answer_garbage, daemon=True)
        t.start()
        try:
            host, port = listener.getsockname()
            c = StoreClient(host, port, retries=0, io_timeout=2.0)
            with pytest.raises((StoreProtocolError, StoreConnectionError)):
                c.ping()
        finally:
            listener.close()


class TestReplication:
    def _pair(self, tmp_path):
        follower = StoreServer(ChunkStore(str(tmp_path / "follower")))
        follower.start()
        primary = StoreServer(
            ChunkStore(str(tmp_path / "primary")),
            replicas=[follower.address],
            heartbeat_interval=0.05,
        )
        primary.start()
        return primary, follower

    def test_manifest_and_chunks_reach_follower(self, tmp_path):
        primary, follower = self._pair(tmp_path)
        try:
            payload = os.urandom(200_000)
            with StoreClient(*primary.address) as c:
                gen, _ = c.put_checkpoint("vm", payload)
            back, m = follower.store.get_checkpoint("vm")
            assert back == payload
            assert m.generation == gen
            assert primary.followers[0].manifests_replicated == 1
        finally:
            primary.stop()
            follower.stop()

    def test_recovered_follower_catches_up(self, tmp_path):
        """Self-healing: a follower that was down during generation 1
        holds generations 1 *and* 2 after the next checkpoint lands."""
        primary, follower = self._pair(tmp_path)
        try:
            follower.stop()  # the outage
            base = os.urandom(150_000)
            with StoreClient(*primary.address) as c:
                c.put_checkpoint("vm", base)
                assert primary.replication_failures >= 1

                # follower comes back on the same address
                follower2 = StoreServer(
                    ChunkStore(str(tmp_path / "follower")),
                    port=follower.address[1],
                )
                follower2.start()
                primary.heartbeat_once()  # liveness recovers
                assert primary.followers[0].alive

                c.put_checkpoint("vm", base + os.urandom(10_000))
            assert follower2.store.generations("vm") == [1, 2]
            back, _ = follower2.store.get_checkpoint("vm", generation=1)
            assert back == base
            follower2.stop()
        finally:
            primary.stop()

    def test_heartbeat_marks_dead_follower(self, tmp_path):
        primary, follower = self._pair(tmp_path)
        try:
            follower.stop()
            for _ in range(primary.heartbeat_misses):
                primary.heartbeat_once()
            state = primary.followers[0]
            assert not state.alive
            assert state.consecutive_failures >= primary.heartbeat_misses
            # replication now skips it without raising
            with StoreClient(*primary.address) as c:
                gen, _ = c.put_checkpoint("vm", b"x" * 1000)
            assert gen == 1
        finally:
            primary.stop()

    def test_follower_state_in_stats(self, tmp_path):
        primary, follower = self._pair(tmp_path)
        try:
            with StoreClient(*primary.address) as c:
                c.put_checkpoint("vm", b"y" * 1000)
                stat = c.stat()
            (f,) = stat["followers"]
            assert f["alive"] and f["manifests_replicated"] == 1
        finally:
            primary.stop()
            follower.stop()


class MidFrameServer:
    """A fake store daemon that dies mid-response-frame.

    For its first ``die_count`` connections it reads the request, sends
    only ``reply_bytes`` bytes of a valid OP_OK response and slams the
    connection shut — a daemon killed between ``write()`` and the frame
    boundary.  Later connections answer PING properly.
    """

    def __init__(self, reply_bytes: int, die_count: int = 1) -> None:
        from repro.store import protocol as P

        self._P = P
        self.reply_bytes = reply_bytes
        self.die_count = die_count
        self.connections = 0
        self._listen = socket.socket()
        self._listen.bind(("127.0.0.1", 0))
        self._listen.listen(8)
        self.address = self._listen.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        P = self._P
        while not self._stop.is_set():
            try:
                conn, _ = self._listen.accept()
            except OSError:
                return
            self.connections += 1
            try:
                op, _payload = P.recv_frame(conn)
                frame = P.encode_frame(P.OP_OK, b"pong")
                if self.connections <= self.die_count:
                    conn.sendall(frame[: self.reply_bytes])
                else:
                    conn.sendall(frame)
            except Exception:
                pass
            finally:
                conn.close()

    def close(self) -> None:
        self._stop.set()
        self._listen.close()


class TestClientMidFrameDeath:
    """The daemon dies halfway through a response frame (PR 3 satellite):
    the client must retry on the typed mid-frame error and either recover
    or surface :class:`StoreConnectionError` — never hang or crash."""

    def test_partial_header_then_recovery(self):
        srv = MidFrameServer(reply_bytes=4)  # 4 of the 10 header bytes
        try:
            host, port = srv.address
            with StoreClient(host, port, retries=2, backoff=0.01) as c:
                assert c.ping()
                assert c.retries_used == 1
                assert srv.connections == 2
        finally:
            srv.close()

    def test_partial_payload_then_recovery(self):
        # Full header (length says 4) but only half the payload follows.
        from repro.store import protocol as P

        partial = P.HEADER.size + 2
        srv = MidFrameServer(reply_bytes=partial)
        try:
            host, port = srv.address
            with StoreClient(host, port, retries=2, backoff=0.01) as c:
                assert c.ping()
                assert c.retries_used == 1
        finally:
            srv.close()

    def test_persistent_mid_frame_death_is_typed(self):
        srv = MidFrameServer(reply_bytes=4, die_count=100)
        try:
            host, port = srv.address
            with StoreClient(host, port, retries=2, backoff=0.01) as c:
                with pytest.raises(StoreConnectionError, match="after 3"):
                    c.ping()
                # One initial attempt + `retries` retries, no more.
                assert srv.connections == 3
        finally:
            srv.close()

    def test_zero_byte_response_then_recovery(self):
        srv = MidFrameServer(reply_bytes=0)
        try:
            host, port = srv.address
            with StoreClient(host, port, retries=2, backoff=0.01) as c:
                assert c.ping()
        finally:
            srv.close()


class TestPipelinedUpload:
    """The producer/consumer upload pipeline: chunk reading + hashing
    overlaps the network round-trips, with identical results to a
    sequential put."""

    def test_many_chunk_payload_roundtrips(self, client):
        payload = os.urandom(64 * 1024 * 40 + 17)  # 41 chunks, odd tail
        gen, stats = client.put_checkpoint("vm", payload)
        assert stats.chunks_total == 41
        assert stats.bytes_total == len(payload)
        assert stats.chunks_new == stats.chunks_total
        assert stats.overlap_seconds >= 0.0
        back, manifest = client.get_checkpoint("vm")
        assert back == payload
        assert manifest.payload_len == len(payload)

    def test_pipelined_dedup_matches_sequential(self, client):
        payload = bytearray(os.urandom(64 * 1024 * 12))
        client.put_checkpoint("vm", bytes(payload))
        payload[5 * 64 * 1024] ^= 0xFF  # dirty exactly one chunk
        _, stats = client.put_checkpoint("vm", bytes(payload))
        assert stats.chunks_new == 1
        assert stats.bytes_new == 64 * 1024

    def test_producer_error_propagates_and_mints_nothing(self, client):
        def chunks():
            yield b"x" * 1000
            raise ValueError("disk fell off")

        with pytest.raises(ValueError, match="disk fell off"):
            client._put_stream("vm", chunks(), None)
        with pytest.raises(StoreNotFoundError):
            client.get_manifest("vm")

    def test_repeated_chunks_deduped_within_one_put(self, client):
        chunk = os.urandom(64 * 1024)
        payload = chunk * 20
        _, stats = client.put_checkpoint("vm", payload)
        assert stats.chunks_total == 20
        assert stats.chunks_new == 1  # same key uploaded once
        back, _ = client.get_checkpoint("vm")
        assert back == payload

    def test_overlap_counter_accumulates(self, client):
        from repro.metrics import DELTA

        before = DELTA.upload_overlap_seconds
        client.put_checkpoint("vm", os.urandom(64 * 1024 * 8))
        assert DELTA.upload_overlap_seconds >= before


class TestJitterBackoff:
    """Full-jitter retry backoff (PR 7 satellite): delays are uniform in
    [0, bounded exponential cap], seedable for tests, and the retry
    counts surface in the metrics registry."""

    def test_delays_within_cap_and_seeded(self):
        a = StoreClient("h", 1, backoff=0.1, backoff_max=1.0, jitter_seed=42)
        b = StoreClient("h", 1, backoff=0.1, backoff_max=1.0, jitter_seed=42)
        delays_a = [a._backoff_delay(n) for n in range(1, 8)]
        delays_b = [b._backoff_delay(n) for n in range(1, 8)]
        assert delays_a == delays_b  # same seed, same schedule
        for attempt, delay in enumerate(delays_a, start=1):
            cap = min(0.1 * 2 ** (attempt - 1), 1.0)
            assert 0.0 <= delay <= cap

    def test_distinct_seeds_desynchronize(self):
        # the point of jitter: two clients retrying the same outage must
        # not sleep identical schedules (thundering herd)
        a = StoreClient("h", 1, backoff=0.1, jitter_seed=1)
        b = StoreClient("h", 1, backoff=0.1, jitter_seed=2)
        assert [a._backoff_delay(n) for n in range(1, 6)] != \
               [b._backoff_delay(n) for n in range(1, 6)]

    def test_jitter_disabled_is_deterministic_cap(self):
        c = StoreClient("h", 1, backoff=0.05, backoff_max=0.4, jitter=False)
        assert [c._backoff_delay(n) for n in range(1, 6)] == \
               [0.05, 0.1, 0.2, 0.4, 0.4]

    def test_retries_surface_in_store_counters(self, server, tmp_path):
        from repro.metrics import STORE

        STORE.reset()
        proxy = DroppingProxy(server.address, drop_first=2)
        try:
            with StoreClient(*proxy.address, retries=3, backoff=0.01,
                             jitter_seed=7) as c:
                assert c.ping()
                assert c.retries_used == 2
            assert STORE.transport_retries == 2
            assert STORE.as_dict() == {"transport_retries": 2}
        finally:
            proxy.close()
            STORE.reset()


class TestFollowerReprobe:
    """Dead-follower handling (PR 7 satellite): a follower marked dead
    keeps being probed on the heartbeat cadence, and the probe that
    revives it triggers a full catch-up across *every* vm."""

    def _primary(self, tmp_path, follower_addr, misses=1):
        primary = StoreServer(
            ChunkStore(str(tmp_path / "primary")),
            replicas=[follower_addr],
            heartbeat_interval=30.0,  # driven manually via heartbeat_once
            heartbeat_misses=misses,
        )
        primary.start()
        return primary

    def test_dead_follower_is_reprobed(self, tmp_path):
        follower = StoreServer(ChunkStore(str(tmp_path / "f")))
        follower.start()
        primary = self._primary(tmp_path, follower.address)
        try:
            follower.stop()
            primary.heartbeat_once()  # miss -> dead (misses=1)
            state = primary.followers[0]
            assert not state.alive
            assert state.reprobes == 0
            for _ in range(3):
                primary.heartbeat_once()
            assert state.reprobes == 3  # still probing while dead
            assert not state.alive
        finally:
            primary.stop()

    def test_revival_triggers_full_catch_up(self, tmp_path):
        """Commit to vm-a AND vm-b while the follower is dead; revival
        must replay both — not just the vm that commits next."""
        follower = StoreServer(ChunkStore(str(tmp_path / "f")))
        follower.start()
        port = follower.address[1]
        primary = self._primary(tmp_path, follower.address)
        try:
            follower.stop()
            primary.heartbeat_once()  # dead
            a, b = os.urandom(50_000), os.urandom(50_000)
            with StoreClient(*primary.address) as c:
                c.put_checkpoint("vm-a", a)
                c.put_checkpoint("vm-b", b)
            # an empty store rejoins on the same address (disk was lost)
            follower2 = StoreServer(
                ChunkStore(str(tmp_path / "f2")), port=port
            )
            follower2.start()
            try:
                primary.heartbeat_once()  # revival probe
                state = primary.followers[0]
                assert state.alive
                assert state.reprobes >= 1
                assert state.catchups == 1
                assert follower2.store.get_checkpoint("vm-a")[0] == a
                assert follower2.store.get_checkpoint("vm-b")[0] == b
                # the counters are visible through stat()
                with StoreClient(*primary.address) as c:
                    (f,) = c.stat()["followers"]
                assert f["catchups"] == 1 and f["reprobes"] >= 1
            finally:
                follower2.stop()
        finally:
            primary.stop()

    def test_failed_catch_up_remarks_dead(self, tmp_path):
        """If the catch-up replay itself fails the follower must not be
        declared alive with holes in its history."""
        follower = StoreServer(ChunkStore(str(tmp_path / "f")))
        follower.start()
        primary = self._primary(tmp_path, follower.address)
        try:
            follower.stop()
            primary.heartbeat_once()
            with StoreClient(*primary.address) as c:
                c.put_checkpoint("vm", os.urandom(20_000))
            # revive, but sabotage the replay
            follower2 = StoreServer(
                ChunkStore(str(tmp_path / "f2")), port=follower.address[1]
            )
            follower2.start()
            try:
                original = primary._catch_up
                from repro.errors import StoreError

                def failing_catch_up(f):
                    raise StoreError("replay pipe burst")

                primary._catch_up = failing_catch_up
                try:
                    primary.heartbeat_once()
                finally:
                    primary._catch_up = original
                state = primary.followers[0]
                assert not state.alive
                assert state.catchups == 1  # attempted
                assert "replay pipe burst" in state.last_error
                # the next heartbeat (replay intact) heals it
                primary.heartbeat_once()
                assert state.alive
                assert follower2.store.vm_ids() == ["vm"]
            finally:
                follower2.stop()
        finally:
            primary.stop()


class TestHeartbeatClock:
    """Follower liveness must ride the monotonic clock: an NTP step (or
    a manual ``date``) moving the wall clock must neither age a healthy
    follower nor freshen a dead one."""

    def test_never_seen_reports_none(self):
        from repro.store.server import FollowerState

        state = FollowerState("127.0.0.1", 1)
        assert state.seen_ago() is None
        assert state.describe()["last_ok_age_seconds"] is None

    def test_wall_clock_step_does_not_age_a_follower(self, monkeypatch):
        import time as time_module

        from repro.store.server import FollowerState

        state = FollowerState("127.0.0.1", 1)
        state.last_ok = time_module.monotonic()
        real_time = time_module.time
        # A day-long forward wall-clock step, mid-measurement.
        monkeypatch.setattr(
            time_module, "time", lambda: real_time() + 86_400.0
        )
        age = state.seen_ago()
        assert age is not None and age < 5.0
        assert state.describe()["last_ok_age_seconds"] < 5.0

    def test_heartbeat_stamps_monotonic_age(self, tmp_path, monkeypatch):
        import time as time_module

        follower = StoreServer(ChunkStore(str(tmp_path / "f")))
        follower.start()
        primary = StoreServer(
            ChunkStore(str(tmp_path / "p")),
            replicas=[follower.address],
            heartbeat_interval=60.0,  # the test drives beats by hand
        )
        primary.start()
        try:
            real_time = time_module.time
            # Wall clock steps a day *backwards* before the beat lands;
            # the recorded age must still come out tiny.
            monkeypatch.setattr(
                time_module, "time", lambda: real_time() - 86_400.0
            )
            primary.heartbeat_once()
            state = primary.followers[0]
            assert state.alive
            age = state.seen_ago()
            assert age is not None and 0.0 <= age < 5.0
        finally:
            primary.stop()
            follower.stop()


class TestFlakyTransportRetry:
    """The seeded FlakySocket injector against the real store protocol:
    dropped request frames starve the response read, the client's retry
    loop reconnects, and every op still lands exactly once."""

    def _flaky_client(self, server, monkeypatch, seed, drop):
        from repro.faults.injectors import FlakySocket

        flakies = []
        real_connect = StoreClient._connect

        def connect_flaky(client_self):
            fs = FlakySocket(real_connect(client_self), seed=seed, drop=drop)
            flakies.append(fs)
            return fs

        monkeypatch.setattr(StoreClient, "_connect", connect_flaky)
        client = StoreClient(
            *server.address, retries=8, backoff=0.01, io_timeout=0.3
        )
        return client, flakies

    def test_seeded_drops_are_healed_by_retry(self, server, monkeypatch):
        from repro.metrics import STORE

        client, flakies = self._flaky_client(
            server, monkeypatch, seed=7, drop=0.25
        )
        before = STORE.transport_retries
        try:
            payload = os.urandom(120_000)
            gen, _ = client.put_checkpoint("vm", payload, meta={"p": "csd"})
            assert gen == 1
            back, meta = client.get_checkpoint("vm")
            assert back == payload
            assert meta.meta["p"] == "csd"
        finally:
            client.close()
        drops = sum(
            1 for fs in flakies for e in fs.events if e == "drop"
        )
        assert drops >= 1, "seed produced no drops; pick another"
        # Every drop forced a reconnect the counters can see.
        assert client.retries_used >= drops
        assert STORE.transport_retries - before >= drops

    def test_flaky_run_is_deterministic_for_a_seed(self, server, monkeypatch):
        """Same seed, same op sequence -> the injector misbehaves
        identically, so flaky-transport test failures replay exactly."""
        def run():
            client, flakies = self._flaky_client(
                server, monkeypatch, seed=11, drop=0.3
            )
            try:
                for _ in range(5):
                    assert client.ping()
            finally:
                client.close()
            return [e for fs in flakies for e in fs.events]

        assert run() == run()
