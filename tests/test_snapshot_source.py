"""SnapshotSource / SectionHandle: the lazily-verified section layer.

Proof obligations for the deferred-section refactor:

* **Bit identity through handles** — every golden fixture (v1/v2
  legacy, v3 fulls, the scalar-writer file, the v4 delta chain; all
  six platforms, both endiannesses and word sizes) opened through a
  deferred :class:`SnapshotSource` and driven to full resolution
  reserializes to the checked-in SHA-256 manifest bit for bit.
* **Deferral is real** — a deferred open of a v3 full reads only the
  framing (magic, trailer, non-heap sections, chunk headers), a small
  fraction of the file; the heap payload bytes stay on disk.
* **Chains read partially** — ``load_snapshot_chain(defer=True)``
  over a delta chain reads only the parent sections the dirty regions
  need; untouched base chunks are never read.
* **Late failures are typed** — corruption in a deferred section
  surfaces as the same annotated
  :class:`~repro.errors.CheckpointIntegrityError` the eager verifier
  raises, never a raw ``struct.error``/``KeyError``/numpy crash,
  no matter how late the touch happens.
* **Reporting** — ``describe_checkpoint`` / ``repro info --json``
  carry the section-resolution report and the RESTART counters.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.checkpoint.format import serialize_snapshot
from repro.checkpoint.inspect import describe_checkpoint
from repro.checkpoint.reader import load_snapshot_chain
from repro.checkpoint.schema import ChunkSlice, SnapshotSource
from repro.errors import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
)
from repro.metrics import RESTART

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
GOLDEN = os.path.join(REPO, "tests", "fixtures", "golden")

with open(os.path.join(GOLDEN, "MANIFEST.json")) as _f:
    MANIFEST = json.load(_f)


def _fixture_files(platform: str):
    entry = MANIFEST["platforms"][platform]
    for fname, sha in sorted(entry["files"].items()):
        yield os.path.join(GOLDEN, platform, fname), sha


# ---------------------------------------------------------------------------
# Bit identity: every fixture through handles
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("platform", sorted(MANIFEST["platforms"]))
def test_every_fixture_resolves_bit_identical_via_handles(platform):
    """Deferred open -> resolve_all -> serialize is the identity on all
    42 fixture files: both endiannesses, both word sizes, v1/v2 legacy
    delegation, the scalar-path file, and the delta chain links."""
    for path, want_sha in _fixture_files(platform):
        src = SnapshotSource.open(path, defer=True)
        try:
            snap = src.resolve_all()
            assert src.fully_verified
            blob = serialize_snapshot(snap)
        finally:
            src.close()
        got = hashlib.sha256(blob).hexdigest()
        assert got == want_sha, f"{path}: bytes differ through handles"


@pytest.mark.parametrize("platform", sorted(MANIFEST["platforms"]))
def test_deferred_serialize_without_parsing_heap(platform):
    """Verification alone (no heap parse) suffices to reserialize a v3
    full bit-identically — the writer consumes the chunk slices via
    their array protocol, payload bytes read straight off the disk."""
    path = os.path.join(GOLDEN, platform, "full_v3.hckp")
    want = MANIFEST["platforms"][platform]["files"]["full_v3.hckp"]
    src = SnapshotSource.open(path, defer=True)
    try:
        assert any(
            isinstance(w, ChunkSlice) for _, w in src.snapshot.heap_chunks
        )
        src.finish_verification()
        blob = serialize_snapshot(src.snapshot)
    finally:
        src.close()
    assert hashlib.sha256(blob).hexdigest() == want


# ---------------------------------------------------------------------------
# Deferral accounting
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("platform", sorted(MANIFEST["platforms"]))
def test_deferred_open_reads_a_small_fraction(platform):
    path = os.path.join(GOLDEN, platform, "full_v3.hckp")
    size = os.path.getsize(path)
    src = SnapshotSource.open(path, defer=True)
    try:
        rep = src.stats()
        assert rep["sections"] == len(src.handles)
        assert rep["unresolved_names"] == ["heap"]
        assert rep["bytes_deferred"] > 0
        assert not rep["sha_verified"]
        # The heap dominates the file; the open must not touch it.
        assert rep["bytes_read"] < size * 0.10, (
            f"deferred open read {rep['bytes_read']} of {size} bytes"
        )
        src.resolve_all()
        rep = src.stats()
        assert rep["unresolved"] == 0
        assert rep["bytes_deferred"] == 0
        assert rep["sha_verified"]
    finally:
        src.close()


def test_handle_lifecycle_and_fd_release(tmp_path):
    path = os.path.join(GOLDEN, "rodrigo", "full_v3.hckp")
    src = SnapshotSource.open(path, defer=True)
    heap = next(h for h in src.handles if h.name == "heap")
    assert not heap.verified and not heap.resolved
    others = [h for h in src.handles if h.name != "heap"]
    assert all(h.resolved for h in others)
    src.finish_verification()
    assert heap.verified and not heap.resolved
    assert src._fd is not None, "fd must stay open while slices are lazy"
    for _, w in src.snapshot.heap_chunks:
        if isinstance(w, ChunkSlice):
            w.materialize()
    assert heap.resolved
    assert src._fd is None, "last materialize must release the fd"


def test_gather_reads_sparse_words_without_materializing():
    path = os.path.join(GOLDEN, "ultra64", "full_v3.hckp")
    src = SnapshotSource.open(path, defer=True)
    try:
        base, ws = next(
            (b, w)
            for b, w in src.snapshot.heap_chunks
            if isinstance(w, ChunkSlice)
        )
        idx = np.array([0, 1, len(ws) - 1, 0], dtype=np.int64)
        sparse = ws.gather(idx)
        full = ws.materialize()
        assert np.array_equal(sparse, full[idx])
    finally:
        src.close()


# ---------------------------------------------------------------------------
# Delta chains: partial parent reads
# ---------------------------------------------------------------------------

#: Many untouched chunks, then a delta that dirties only one small
#: array: the parent's other chunks must never leave the disk.
CHAIN_PROGRAM = """
let keep = ref [];;
let () = for i = 1 to 16 do keep := (Array.make 512 i) :: !keep done;;
let arr = Array.make 8 0;;
checkpoint ();;
let () = for i = 0 to 7 do arr.(i) <- i + 1 done;;
checkpoint ();;
print_int arr.(3)
"""


def _write_chain(tmp_path) -> str:
    path = str(tmp_path / "app.hckp")
    cfg = VMConfig(
        chkpt_filename=path,
        chkpt_mode="blocking",
        chkpt_incremental=True,
        chkpt_retain=4,
        chunk_words=2048,
    )
    code = compile_source(CHAIN_PROGRAM)
    vm = VirtualMachine(get_platform("rodrigo"), code, cfg)
    result = vm.run(max_instructions=10_000_000)
    assert result.status == "stopped"
    assert vm.checkpoints_taken == 2
    return path


def test_chain_defer_reads_only_needed_parent_sections(tmp_path):
    path = _write_chain(tmp_path)
    total = sum(
        os.path.getsize(p)
        for p in (path, path + ".1")
        if os.path.exists(p)
    )

    eager = load_snapshot_chain(path, raw_arrays=True)
    merged = load_snapshot_chain(path, raw_arrays=True, defer=True)
    sources = merged._sources
    assert sources, "deferred chain load must track its sources"
    read = sum(s.stats()["bytes_read"] for s in sources)
    # The dirty delta covers one chunk; the base's other chunks stay on
    # disk, so the deferred load reads well under half the chain.
    assert read < total * 0.5, f"read {read} of {total} chain bytes"
    lazy_chunks = [
        w for _, w in merged.heap_chunks if isinstance(w, ChunkSlice)
    ]
    assert lazy_chunks, "untouched parent chunks must stay deferred"

    # ... and the merge is still exactly the eager merge.
    assert [b for b, _ in merged.heap_chunks] == [
        b for b, _ in eager.heap_chunks
    ]
    for (_, wm), (_, we) in zip(merged.heap_chunks, eager.heap_chunks):
        assert np.array_equal(np.asarray(wm), np.asarray(we))
    # Materializing the survivors pushed reads up, but still partial:
    # the merged deltas' own superseded ranges were never fetched twice.
    assert sum(s.stats()["bytes_read"] for s in sources) <= total


# ---------------------------------------------------------------------------
# Fault injection: late typed errors
# ---------------------------------------------------------------------------


def _corrupt_deferred_heap(src: SnapshotSource, path: str) -> None:
    """Flip a byte inside a still-unread chunk payload on disk."""
    slice_ = next(
        w for _, w in src.snapshot.heap_chunks if isinstance(w, ChunkSlice)
    )
    off = slice_._offset + (slice_.n_words // 2) * src.arch.word_bytes
    with open(path, "r+b") as f:
        f.seek(off)
        b = f.read(1)
        f.seek(off)
        f.write(bytes([b[0] ^ 0xFF]))


def test_corrupt_deferred_section_raises_typed_late_error(tmp_path):
    fixture = os.path.join(GOLDEN, "csd", "full_v3.hckp")
    path = str(tmp_path / "c.hckp")
    with open(fixture, "rb") as f:
        data = f.read()
    with open(path, "wb") as f:
        f.write(data)

    src = SnapshotSource.open(path, defer=True)
    try:
        # The structural open saw nothing wrong: damage is in bytes it
        # deliberately never read.
        assert src.stats()["bytes_deferred"] > 0
        _corrupt_deferred_heap(src, path)
        with pytest.raises(CheckpointIntegrityError) as exc_info:
            src.finish_verification()
        assert exc_info.value.section == "heap"
        assert "CRC mismatch" in str(exc_info.value)
        # Idempotently corrupt: a retry reports the same typed failure.
        with pytest.raises(CheckpointIntegrityError):
            src.finish_verification()
    finally:
        src.close()


def test_corrupt_deferred_section_fails_lazy_restart_drain(tmp_path):
    """End to end: the drain (or any forced finish) after a lazy
    restart surfaces deferred corruption as a typed, annotated error —
    never a struct/Key/numpy crash mid-execution."""
    prog = """
let keep = ref [];;
let () = for i = 1 to 8 do keep := (Array.make 512 i) :: !keep done;;
checkpoint ();;
print_int (List.length !keep)
"""
    path = str(tmp_path / "c.hckp")
    cfg = VMConfig(
        chkpt_filename=path, chkpt_mode="blocking", chunk_words=2048
    )
    code = compile_source(prog)
    vm = VirtualMachine(get_platform("rodrigo"), code, cfg)
    assert vm.run(max_instructions=10_000_000).status == "stopped"

    before = RESTART.late_failures
    vm_l, st_l = restart_vm(
        get_platform("rodrigo"), code, path,
        VMConfig(chunk_words=2048, lazy_restore=True),
    )
    assert st_l.sections_deferred >= 1
    sources = vm_l.lazy_restore.sources
    assert sources and not sources[0].fully_verified
    _corrupt_deferred_heap(sources[0], path)
    with pytest.raises(CheckpointError) as exc_info:
        vm_l.finish_lazy_restore()
    exc = exc_info.value
    assert isinstance(exc, (CheckpointIntegrityError, CheckpointFormatError))
    assert path in str(exc), "late error must be annotated with the path"
    assert RESTART.late_failures == before + 1


def test_truncated_deferred_payload_is_typed(tmp_path):
    fixture = os.path.join(GOLDEN, "sp2148", "full_v3.hckp")
    path = str(tmp_path / "c.hckp")
    with open(fixture, "rb") as f:
        data = f.read()
    with open(path, "wb") as f:
        f.write(data)
    src = SnapshotSource.open(path, defer=True)
    try:
        slice_ = next(
            w
            for _, w in src.snapshot.heap_chunks
            if isinstance(w, ChunkSlice)
        )
        os.truncate(path, slice_._offset + 8)
        with pytest.raises(CheckpointIntegrityError):
            # The fd pins the inode, so reads return short, not stale.
            slice_.materialize()
    finally:
        src.close()


# ---------------------------------------------------------------------------
# Reporting: info --json / describe_checkpoint
# ---------------------------------------------------------------------------


def test_describe_checkpoint_carries_lazy_report():
    path = os.path.join(GOLDEN, "pc8", "full_v3.hckp")
    desc = describe_checkpoint(path)
    rep = desc["lazy"]
    assert rep["sections"] == len(desc["sections"])
    assert rep["unresolved_names"] == ["heap"]
    assert rep["bytes_deferred"] > 0
    assert rep["bytes_verified"] + rep["bytes_deferred"] <= rep["bytes_total"]
    # v1 files have no section table: the report degrades, not crashes.
    v1 = describe_checkpoint(os.path.join(GOLDEN, "pc8", "full_v1.hckp"))
    assert v1["lazy"]["sections"] is None
    assert v1["lazy"]["sha_verified"]


def test_info_json_reports_lazy_and_restart_counters(capsys):
    from repro.cli import main

    path = os.path.join(GOLDEN, "rodrigo", "full_v3.hckp")
    assert main(["info", path, "--json"]) == 0
    desc = json.loads(capsys.readouterr().out)
    assert desc["lazy"]["unresolved_names"] == ["heap"]
    assert set(desc["restart_counters"]) == {
        "lazy_restores",
        "sections_deferred",
        "bytes_deferred",
        "late_verifications",
        "late_failures",
    }
