"""Checkpoint/restart of multi-threaded applications (paper §3.1.4, §3.2.3)."""

from __future__ import annotations

import pytest

from repro import (
    PLATFORMS,
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.threads.thread import BlockKind, ThreadState

RODRIGO = get_platform("rodrigo")


def checkpoint_then_restart(src, target=RODRIGO, tmp_path=None, quantum=25,
                            max_instructions=10_000_000):
    path = str(tmp_path / "mt.hckp")
    code = compile_source(src)
    cfg = VMConfig(chkpt_filename=path, chkpt_mode="blocking", quantum=quantum)
    vm = VirtualMachine(RODRIGO, code, cfg)
    r1 = vm.run(max_instructions=max_instructions)
    assert r1.status == "stopped"
    assert vm.checkpoints_taken >= 1
    vm2, stats = restart_vm(target, code, path, VMConfig(quantum=quantum))
    r2 = vm2.run(max_instructions=max_instructions)
    assert r2.status == "stopped"
    return r1.stdout, r2.stdout, vm2


WORKER_PROGRAM = """
let m = mutex_create ();;
let total = ref 0;;
let worker k () =
  for i = 1 to 50 do
    mutex_lock m;
    total := !total + k;
    mutex_unlock m
  done;;
let t1 = thread_create (worker 1);;
let t2 = thread_create (worker 100);;
checkpoint ();;
thread_join t1;
thread_join t2;
print_int !total
"""


class TestMultithreadedCheckpoint:
    def test_threads_resume_on_same_platform(self, tmp_path):
        out1, out2, vm2 = checkpoint_then_restart(WORKER_PROGRAM, tmp_path=tmp_path)
        assert out1 == b"5050"
        assert out2 == b"5050"
        assert len(vm2.sched.threads) == 3

    @pytest.mark.parametrize("target", ["csd", "sp2148", "ultra64"])
    def test_threads_resume_cross_platform(self, target, tmp_path):
        _, out2, _ = checkpoint_then_restart(
            WORKER_PROGRAM, target=PLATFORMS[target], tmp_path=tmp_path
        )
        assert out2 == b"5050"

    def test_blocked_thread_state_restored(self, tmp_path):
        """A thread asleep on a condition variable survives the restart
        and is woken by a signal sent *after* the restart."""
        src = """
        let m = mutex_create ();;
        let c = condition_create ();;
        let flag = ref 0;;
        let waiter () =
          begin
            mutex_lock m;
            while !flag = 0 do condition_wait c m done;
            print_string "woken";
            mutex_unlock m
          end;;
        let t = thread_create waiter;;
        thread_yield ();;
        checkpoint ();;
        mutex_lock m; flag := 1; condition_signal c; mutex_unlock m;
        thread_join t;
        print_string " end"
        """
        out1, out2, _ = checkpoint_then_restart(src, tmp_path=tmp_path, quantum=10)
        assert out1 == b"woken end"
        assert out2 == b"woken end"

    def test_blocked_thread_cross_word_size(self, tmp_path):
        src = """
        let m = mutex_create ();;
        let () = mutex_lock m;;
        let t = thread_create (fun () -> begin mutex_lock m; print_string "got"; mutex_unlock m end);;
        thread_yield ();;
        checkpoint ();;
        mutex_unlock m;
        thread_join t;
        print_string "!"
        """
        _, out2, _ = checkpoint_then_restart(
            src, target=PLATFORMS["sp2148"], tmp_path=tmp_path, quantum=10
        )
        assert out2 == b"got!"

    def test_finished_thread_recorded(self, tmp_path):
        src = """
        let t = thread_create (fun () -> ());;
        thread_join t;;
        checkpoint ();;
        thread_join t;  (* joining a finished thread is immediate *)
        print_string "ok"
        """
        out1, out2, vm2 = checkpoint_then_restart(src, tmp_path=tmp_path)
        assert out2 == b"ok"
        assert vm2.sched.threads[1].state is ThreadState.FINISHED

    def test_many_threads_with_own_stacks(self, tmp_path):
        src = """
        let results = Array.make 4 0;;
        let rec deep n = if n = 0 then 1 else 1 + deep (n - 1);;
        let mk i = thread_create (fun () -> results.(i) <- deep (50 + i));;
        let t0 = mk 0;;
        let t1 = mk 1;;
        let t2 = mk 2;;
        let t3 = mk 3;;
        checkpoint ();;
        thread_join t0; thread_join t1; thread_join t2; thread_join t3;
        print_int (results.(0) + results.(1) + results.(2) + results.(3))
        """
        out1, out2, vm2 = checkpoint_then_restart(src, tmp_path=tmp_path, quantum=7)
        assert out1 == b"210"  # 51+52+53+54
        assert out2 == b"210"
        assert len(vm2.sched.threads) == 5

    def test_scheduler_timer_reenabled_after_checkpoint(self, tmp_path):
        path = str(tmp_path / "t.hckp")
        code = compile_source(WORKER_PROGRAM)
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking", quantum=25),
        )
        vm.run(max_instructions=10_000_000)
        assert vm.sched.timer_enabled
