"""Tests for the store wire protocol (frame codec over socketpairs)."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.errors import StoreProtocolError
from repro.store import protocol as P


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrameCodec:
    def test_roundtrip(self, pair):
        a, b = pair
        P.send_frame(a, P.OP_PING, b"payload bytes")
        op, payload = P.recv_frame(b)
        assert op == P.OP_PING
        assert payload == b"payload bytes"

    def test_empty_payload(self, pair):
        a, b = pair
        P.send_frame(a, P.OP_LS)
        assert P.recv_frame(b) == (P.OP_LS, b"")

    def test_header_layout(self):
        frame = P.encode_frame(P.OP_OK, b"xy")
        magic, version, op, length = P.HEADER.unpack(frame[: P.HEADER.size])
        assert magic == b"RSTP"
        assert version == P.VERSION
        assert op == P.OP_OK
        assert length == 2
        assert frame[P.HEADER.size:] == b"xy"

    def test_multiple_frames_back_to_back(self, pair):
        a, b = pair
        for i in range(5):
            P.send_frame(a, P.OP_PUT_CHUNK, bytes([i]) * i)
        for i in range(5):
            assert P.recv_frame(b) == (P.OP_PUT_CHUNK, bytes([i]) * i)

    def test_oversize_payload_refused_on_send(self):
        with pytest.raises(StoreProtocolError):
            P.encode_frame(P.OP_PUT_CHUNK, b"\0" * (P.MAX_FRAME + 1))

    def test_oversize_length_refused_on_receive(self, pair):
        a, b = pair
        a.sendall(P.HEADER.pack(P.MAGIC, P.VERSION, P.OP_PING,
                                P.MAX_FRAME + 1))
        with pytest.raises(StoreProtocolError, match="exceeds MAX_FRAME"):
            P.recv_frame(b)

    def test_bad_magic_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("<4sBBI", b"EVIL", P.VERSION, P.OP_PING, 0))
        with pytest.raises(StoreProtocolError, match="magic"):
            P.recv_frame(b)

    def test_bad_version_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("<4sBBI", P.MAGIC, 99, P.OP_PING, 0))
        with pytest.raises(StoreProtocolError, match="version"):
            P.recv_frame(b)

    def test_truncated_header_raises(self, pair):
        a, b = pair
        a.sendall(b"RST")  # 3 of the 10 header bytes
        a.close()
        with pytest.raises(StoreProtocolError, match="mid-frame"):
            P.recv_frame(b)

    def test_truncated_payload_raises(self, pair):
        a, b = pair
        a.sendall(P.HEADER.pack(P.MAGIC, P.VERSION, P.OP_PING, 100))
        a.sendall(b"only this much")
        a.close()
        with pytest.raises(StoreProtocolError, match="mid-frame"):
            P.recv_frame(b)

    def test_clean_eof_returns_none_when_allowed(self, pair):
        a, b = pair
        a.close()
        assert P.recv_frame(b, allow_eof=True) is None

    def test_clean_eof_raises_when_not_allowed(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(StoreProtocolError):
            P.recv_frame(b)


class TestPayloadHelpers:
    def test_json_roundtrip(self):
        doc = {"vm_id": "a", "chunks": ["00ff"], "n": 3}
        assert P.decode_json(P.encode_json(doc)) == doc

    def test_malformed_json_raises(self):
        with pytest.raises(StoreProtocolError):
            P.decode_json(b"{nope")

    def test_chunk_roundtrip(self):
        key = bytes(range(32))
        data = b"chunk body"
        assert P.decode_chunk(P.encode_chunk(key, data)) == (key, data)

    def test_chunk_key_must_be_32_bytes(self):
        with pytest.raises(StoreProtocolError):
            P.encode_chunk(b"short", b"data")

    def test_chunk_payload_must_hold_digest(self):
        with pytest.raises(StoreProtocolError):
            P.decode_chunk(b"\x00" * 31)

    def test_opcodes_are_distinct_and_named(self):
        ops = [v for k, v in vars(P).items()
               if k.startswith("OP_") and isinstance(v, int)]
        assert len(ops) == len(set(ops))
        for op in ops:
            assert op in P.OP_NAMES
