"""Differential tests: vectorized C/R == scalar C/R, bit for bit.

The vectorized fast paths (numpy kernels for checkpoint heap save,
restart pointer fixing and the 32<->64 heap rebuild) must be *exactly*
interchangeable with the scalar reference implementation that
``--no-vectorize`` selects:

* both writers capture the same VM state (identical decoded snapshots),
* both readers rebuild the same VM state (identical restored-memory
  fingerprints) from either writer's file,
* restarted runs produce identical output either way,
* format-v1 files (no block-extent index) restore correctly on every
  simulated platform pair — the index is an accelerator, never a
  requirement.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.arch.codec import WordCodec
from repro.checkpoint.convert import ValueConverter
from repro.checkpoint.format import read_checkpoint, serialize_snapshot
from repro.memory.strings import StringCodec

PLATFORM_NAMES = ["rodrigo", "csd", "sp2148", "ultra64"]
ARCHES = {name: get_platform(name).arch for name in PLATFORM_NAMES}

PROGRAM = """
let r = ref 0;;
let arr = Array.make 16 3;;
let lst = ref [];;
let fl = ref 2.25;;
let s = ref "seed";;
for i = 0 to 15 do arr.(i) <- i * i done;;
for i = 1 to 40 do begin
  r := !r + i;
  lst := (i * 7) :: !lst;
  fl := !fl *. 1.0625;
  if i mod 3 = 0 then s := !s ^ "x" else ()
end done;;
checkpoint ();;
let rec suml l = match l with [] -> 0 | h :: t -> h + suml t;;
r := !r + suml !lst + Array.length arr;;
print_int !r;;
print_string (" " ^ !s ^ " ");;
print_float !fl
"""


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _area_words(area) -> list[int]:
    staged = area.peek_staged()
    if staged is not None:
        return [int(w) for w in staged]
    return list(area.words)


def restored_fingerprint(vm: VirtualMachine) -> dict:
    """Everything restart rebuilds, as plain comparable data."""
    heap = vm.mem.heap
    threads = {}
    for tid in sorted(vm.sched.threads):
        t = vm.sched.threads[tid]
        threads[tid] = (
            t.state.value,
            t.accu,
            t.env,
            t.extra_args,
            t.trapsp,
            t.stack.sp,
            list(t.stack.used_slice()),
        )
    return {
        "chunks": [
            (c.base, _area_words(c.area)) for c in heap.chunks
        ],
        "freelist_head": heap.freelist_head,
        "allocated_words": heap.allocated_words,
        "global_data": vm.global_data,
        "cglobals": list(
            vm.mem.cglobals.area.words[: vm.mem.cglobals.used_words]
        ),
        "cglobal_roots": list(vm.mem.cglobals.root_indices),
        "threads": threads,
    }


def checkpointed_run(code, origin: str, path: str, vectorize: bool):
    vm = VirtualMachine(
        get_platform(origin),
        code,
        VMConfig(
            chkpt_filename=path, chkpt_mode="blocking", vectorize=vectorize
        ),
    )
    result = vm.run(max_instructions=5_000_000)
    assert result.status == "stopped"
    assert vm.checkpoints_taken == 1
    return result


def snapshot_facts(path: str):
    """The decoded content of a checkpoint file (index excluded)."""
    snap = read_checkpoint(path)
    return {
        "header": dataclasses.replace(snap.header),
        "boundaries": snap.boundaries,
        "freelist_head": snap.freelist_head,
        "global_data": snap.global_data,
        "allocated_words": snap.allocated_words,
        "heap_chunks": [(b, list(w)) for b, w in snap.heap_chunks],
        "atom_words": list(snap.atom_words),
        "cglobal_words": list(snap.cglobal_words),
        "cglobal_roots": list(snap.cglobal_roots),
        "threads": snap.threads,
        "channels": snap.channels,
    }


def rewrite_as_v1(path_in: str, path_out: str) -> None:
    """Re-serialize a checkpoint as format v1 (magic v1, no index)."""
    snap = read_checkpoint(path_in)
    snap.header = dataclasses.replace(snap.header, format_version=1)
    snap.chunk_index = None
    with open(path_out, "wb") as f:
        f.write(serialize_snapshot(snap))


# ---------------------------------------------------------------------------
# Writer equivalence: both paths save the same state
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("origin", PLATFORM_NAMES)
def test_writers_capture_identical_snapshots(origin, tmp_path):
    code = compile_source(PROGRAM)
    pv = str(tmp_path / "vec.hckp")
    ps = str(tmp_path / "scl.hckp")
    out_v = checkpointed_run(code, origin, pv, vectorize=True)
    out_s = checkpointed_run(code, origin, ps, vectorize=False)
    assert out_v.stdout == out_s.stdout
    assert snapshot_facts(pv) == snapshot_facts(ps)
    # Only the vectorized writer emits the block-extent index.
    assert read_checkpoint(pv).chunk_index is not None
    assert read_checkpoint(ps).chunk_index is None


# ---------------------------------------------------------------------------
# Reader equivalence + v1 compatibility, every platform pair
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("origin", PLATFORM_NAMES)
@pytest.mark.parametrize("target", PLATFORM_NAMES)
def test_restore_paths_and_v1_files_agree(origin, target, tmp_path):
    code = compile_source(PROGRAM)
    path = str(tmp_path / "v2.hckp")
    path_v1 = str(tmp_path / "v1.hckp")
    origin_out = checkpointed_run(code, origin, path, vectorize=True)
    rewrite_as_v1(path, path_v1)
    assert read_checkpoint(path_v1).header.format_version == 1

    tp = get_platform(target)
    vm_vec, _ = restart_vm(tp, code, path)
    vm_scl, _ = restart_vm(tp, code, path, VMConfig(vectorize=False))
    # v1 file through the vectorized reader: no index, so the block
    # discovery walk feeds the same kernels.
    vm_v1, _ = restart_vm(tp, code, path_v1)

    fp = restored_fingerprint(vm_vec)
    assert fp == restored_fingerprint(vm_scl)
    assert fp == restored_fingerprint(vm_v1)

    for vm in (vm_vec, vm_scl, vm_v1):
        vm.mem.heap.check_integrity()
        out = vm.run(max_instructions=5_000_000)
        assert out.status == "stopped"
        assert out.stdout == origin_out.stdout


# ---------------------------------------------------------------------------
# Random programs: the property-based differential
# ---------------------------------------------------------------------------

STATEMENTS = [
    "r := !r + {k}",
    "arr.({i}) <- !r + arr.({j})",
    "lst := {k} :: !lst",
    "fl := !fl *. 1.5",
    "s := !s ^ \"{c}\"",
    "if !r mod 2 = 0 then r := !r + 1 else arr.(0) <- arr.(0) + 1",
    "for q = 1 to {i} + 1 do r := !r + q done",
]

PRELUDE = """
let r = ref 0;;
let arr = Array.make 8 0;;
let lst = ref [];;
let fl = ref 1.5;;
let s = ref "a";;
"""

DIGEST = """
let rec suml l = match l with [] -> 0 | h :: t -> h + suml t;;
print_int (!r + suml !lst + arr.(0));;
print_string (" " ^ !s ^ " ");;
print_float !fl
"""


@st.composite
def random_case(draw):
    n = draw(st.integers(2, 8))
    stmts = []
    for _ in range(n):
        template = draw(st.sampled_from(STATEMENTS))
        stmts.append(
            template.format(
                k=draw(st.integers(-50, 50)),
                i=draw(st.integers(0, 7)),
                j=draw(st.integers(0, 7)),
                c=draw(st.sampled_from("xyz")),
            )
        )
    cut = draw(st.integers(0, n))
    body = ";;\n".join(stmts[:cut] + ["checkpoint ()"] + stmts[cut:])
    origin = draw(st.sampled_from(PLATFORM_NAMES))
    target = draw(st.sampled_from(PLATFORM_NAMES))
    return PRELUDE + body + ";;\n" + DIGEST, origin, target


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_case())
def test_vectorized_equals_scalar_on_random_programs(
    tmp_path_factory, case
):
    src, origin, target = case
    tmp = tmp_path_factory.mktemp("diff")
    pv = str(tmp / "vec.hckp")
    ps = str(tmp / "scl.hckp")
    code = compile_source(src)

    out_v = checkpointed_run(code, origin, pv, vectorize=True)
    out_s = checkpointed_run(code, origin, ps, vectorize=False)
    assert out_v.stdout == out_s.stdout
    assert snapshot_facts(pv) == snapshot_facts(ps)

    tp = get_platform(target)
    # Cross the files and the reader paths.
    vm_vv, _ = restart_vm(tp, code, pv)
    vm_vs, _ = restart_vm(tp, code, pv, VMConfig(vectorize=False))
    vm_sv, _ = restart_vm(tp, code, ps)

    fp = restored_fingerprint(vm_vv)
    assert fp == restored_fingerprint(vm_vs)
    assert fp == restored_fingerprint(vm_sv)
    for vm in (vm_vv, vm_vs, vm_sv):
        out = vm.run(max_instructions=5_000_000)
        assert out.status == "stopped"
        assert out.stdout == out_v.stdout


# ---------------------------------------------------------------------------
# Converter kernels: batch == scalar
# ---------------------------------------------------------------------------

ARCH_PAIRS = [
    (a, b) for a in PLATFORM_NAMES for b in PLATFORM_NAMES
]


@settings(max_examples=60, deadline=None)
@given(
    pair=st.sampled_from(ARCH_PAIRS),
    words=st.lists(st.integers(0, 2**32 - 1), max_size=64),
)
def test_convert_raw_batch_equals_scalar(pair, words):
    vc = ValueConverter(ARCHES[pair[0]], ARCHES[pair[1]])
    expected = [vc.convert_raw(w) for w in words]
    assert vc.convert_raw_many(words) == expected
    arr = np.asarray(words, dtype=np.uint64)
    assert vc.convert_raw_array(arr).tolist() == expected


@settings(max_examples=60, deadline=None)
@given(
    pair=st.sampled_from(ARCH_PAIRS),
    words=st.lists(
        st.integers(0, 2**31 - 1).map(lambda v: v * 2 + 1), max_size=64
    ),
)
def test_convert_immediate_batch_equals_scalar(pair, words):
    vc = ValueConverter(ARCHES[pair[0]], ARCHES[pair[1]])
    expected = [vc.convert_immediate(w) for w in words]
    arr = np.asarray(words, dtype=np.uint64)
    assert vc.convert_immediate_array(arr).tolist() == expected


@settings(max_examples=60, deadline=None)
@given(
    pair=st.sampled_from(ARCH_PAIRS),
    data=st.binary(max_size=40),
)
def test_repack_string_batch_equals_scalar(pair, data):
    src, dst = ARCHES[pair[0]], ARCHES[pair[1]]
    vc = ValueConverter(src, dst)
    words = StringCodec(src).encode(data)
    expected = vc.repack_string(words)
    # The array kernel's contract is same-word-size (an endian swap in
    # place); cross-word-size repacks go through the scalar method.
    if src.word_bytes == dst.word_bytes:
        arr = np.asarray(words, dtype=np.uint64)
        assert vc.repack_string_array(arr).tolist() == expected
    assert StringCodec(dst).decode(expected) == data


@settings(max_examples=60, deadline=None)
@given(
    pair=st.sampled_from(ARCH_PAIRS),
    pattern=st.integers(0, 2**64 - 1),
)
def test_repack_double_batch_equals_scalar(pair, pattern):
    src, dst = ARCHES[pair[0]], ARCHES[pair[1]]
    # Build the double's source-machine words from its 64-bit pattern.
    identity = ValueConverter(src, src)
    words = [
        int(w)
        for w in identity.double_words_from_patterns(
            np.asarray([pattern], dtype=np.uint64)
        )
    ]
    vc = ValueConverter(src, dst)
    expected = vc.repack_double(words)
    if src.word_bytes == dst.word_bytes:
        arr = np.asarray(words, dtype=np.uint64)
        assert vc.repack_double_array(arr).tolist() == expected
    # Cross-size: the pattern must survive the scalar repack.
    back = ValueConverter(dst, dst).double_pattern_array(
        np.asarray(expected, dtype=np.uint64)
    )
    assert int(back[0]) == pattern


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(PLATFORM_NAMES),
    words=st.lists(st.integers(0, 2**32 - 1), max_size=64),
)
def test_word_codec_array_roundtrip_equals_scalar(name, words):
    codec = WordCodec(ARCHES[name])
    data = codec.encode(words)
    assert codec.encode_array(np.asarray(words, dtype=np.uint64)) == data
    assert codec.decode(data) == words
    assert codec.decode_array(data).tolist() == words
