"""Tests for the core-dump baseline checkpointer (paper §1, §5.1)."""

from __future__ import annotations

import os

import pytest

from repro import (
    HomogeneousCheckpointer,
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
)
from repro.errors import IncompatibleCheckpointError

RODRIGO = get_platform("rodrigo")
CSD = get_platform("csd")

PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
let data = build 200 [];;
print_int (sum data)
"""


def run_and_dump(tmp_path, platform=RODRIGO):
    code = compile_source(PROGRAM)
    vm = VirtualMachine(platform, code, VMConfig(chkpt_state="disable"))
    # Run partially, then dump mid-flight.
    status = vm.run(max_instructions=2000)
    assert status.status == "budget"
    path = str(tmp_path / "core.dump")
    size = HomogeneousCheckpointer(vm).save(path)
    return code, vm, path, size


class TestHomogeneousBaseline:
    def test_same_platform_restore_continues(self, tmp_path):
        code, vm, path, _ = run_and_dump(tmp_path)
        reference = vm.run(max_instructions=10_000_000)
        assert reference.status == "stopped"
        # Restore the dump into a fresh VM on the identical platform.
        vm2 = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        HomogeneousCheckpointer(vm2).restore(path)
        result = vm2.run(max_instructions=10_000_000)
        assert result.status == "stopped"
        assert result.stdout == reference.stdout == b"20100"

    def test_cross_platform_restore_refused(self, tmp_path):
        code, _, path, _ = run_and_dump(tmp_path)
        vm2 = VirtualMachine(CSD, code, VMConfig(chkpt_state="disable"))
        with pytest.raises(IncompatibleCheckpointError):
            HomogeneousCheckpointer(vm2).restore(path)

    def test_wrong_program_refused(self, tmp_path):
        _, _, path, _ = run_and_dump(tmp_path)
        other = compile_source("print_int 1")
        vm2 = VirtualMachine(RODRIGO, other, VMConfig(chkpt_state="disable"))
        with pytest.raises(IncompatibleCheckpointError):
            HomogeneousCheckpointer(vm2).restore(path)

    def test_core_dump_is_larger_than_heterogeneous_checkpoint(self, tmp_path):
        """The paper's §5.1 size claim: dumping only the logical state
        (live heap + used stack) beats dumping the whole process image."""
        code = compile_source(PROGRAM)
        ck_path = str(tmp_path / "h.hckp")
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_filename=ck_path, chkpt_mode="blocking"),
        )
        vm.run(max_instructions=2000)
        vm.perform_checkpoint()
        hetero_size = vm.last_checkpoint_stats.file_bytes
        core_path = str(tmp_path / "core.dump")
        core_size = HomogeneousCheckpointer(vm).save(core_path)
        assert hetero_size > 0
        assert core_size > hetero_size

    def test_corrupt_dump_rejected(self, tmp_path):
        code, _, path, _ = run_and_dump(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[100] ^= 0x5A
        with open(path, "wb") as f:
            f.write(bytes(data))
        vm2 = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        from repro.errors import CheckpointFormatError

        with pytest.raises(CheckpointFormatError):
            HomogeneousCheckpointer(vm2).restore(path)
