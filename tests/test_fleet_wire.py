"""RSTP/2 wire codecs, incremental framing, and version negotiation."""

from __future__ import annotations

import pytest

from repro.errors import StoreNotFoundError, StoreProtocolError
from repro.store import ChunkStore, StoreClient, StoreServer
from repro.store import protocol as P
from repro.store.chunkstore import chunk_key
from repro.store.fleet import FleetNode, FleetNodeClient
from repro.store.fleet import wire as W


class TestBatchCodec:
    def test_roundtrip(self):
        items = [
            (P.OP_PING, b""),
            (P.OP_PUT_CHUNK, b"\x00" * 40),
            (P.OP_LS, b"{}"),
        ]
        assert W.decode_ops(W.encode_ops(items)) == items

    def test_empty_batch_roundtrips(self):
        assert W.decode_ops(W.encode_ops([])) == []

    def test_encode_rejects_oversized_batch(self):
        items = [(P.OP_PING, b"")] * (W.MAX_BATCH_OPS + 1)
        with pytest.raises(StoreProtocolError, match="MAX_BATCH_OPS"):
            W.encode_ops(items)

    def test_decode_rejects_lying_count(self):
        payload = W.encode_ops([(P.OP_PING, b"")])
        inflated = (W.MAX_BATCH_OPS + 1).to_bytes(4, "little") + payload[4:]
        with pytest.raises(StoreProtocolError, match="MAX_BATCH_OPS"):
            W.decode_ops(inflated)

    def test_decode_rejects_truncated_subframe(self):
        payload = W.encode_ops([(P.OP_PUT_CHUNK, b"x" * 10)])
        with pytest.raises(StoreProtocolError, match="truncated"):
            W.decode_ops(payload[:-3])

    def test_decode_rejects_trailing_garbage(self):
        payload = W.encode_ops([(P.OP_PING, b"")])
        with pytest.raises(StoreProtocolError, match="trailing"):
            W.decode_ops(payload + b"junk")

    def test_decode_rejects_short_payload(self):
        with pytest.raises(StoreProtocolError, match="count"):
            W.decode_ops(b"\x01")


class TestPopFrame:
    def test_pops_complete_frame_and_consumes(self):
        buf = bytearray(
            P.encode_frame(P.OP_PING, b"abc")
            + P.encode_frame(P.OP_LS, b"", P.RSTP2)
        )
        assert W.pop_frame(buf) == (P.VERSION, P.OP_PING, b"abc")
        assert W.pop_frame(buf) == (P.RSTP2, P.OP_LS, b"")
        assert W.pop_frame(buf) is None
        assert not buf

    def test_byte_at_a_time_feed(self):
        frame = P.encode_frame(P.OP_PUT_CHUNK, b"payload-bytes", P.RSTP2)
        buf = bytearray()
        popped = []
        for byte in frame:
            buf.append(byte)
            got = W.pop_frame(buf)
            if got is not None:
                popped.append(got)
        assert popped == [(P.RSTP2, P.OP_PUT_CHUNK, b"payload-bytes")]

    def test_bad_magic_raises(self):
        frame = bytearray(P.encode_frame(P.OP_PING))
        frame[:4] = b"NOPE"
        with pytest.raises(StoreProtocolError, match="magic"):
            W.pop_frame(frame)

    def test_unsupported_version_raises(self):
        frame = bytearray(P.encode_frame(P.OP_PING))
        frame[4] = 99
        with pytest.raises(StoreProtocolError, match="version"):
            W.pop_frame(frame)

    def test_oversized_length_raises(self):
        frame = bytearray(P.HEADER.pack(P.MAGIC, P.VERSION, P.OP_PING,
                                        P.MAX_FRAME + 1))
        with pytest.raises(StoreProtocolError, match="MAX_FRAME"):
            W.pop_frame(frame)


@pytest.fixture
def fleet_node(tmp_path):
    node = FleetNode(ChunkStore(str(tmp_path / "shard")), node_id="n0")
    node.start()
    yield node
    node.stop()


@pytest.fixture
def v1_server(tmp_path):
    srv = StoreServer(ChunkStore(str(tmp_path / "v1store")))
    srv.start()
    yield srv
    srv.stop()


class TestNegotiation:
    def test_fleet_client_vs_fleet_node_speaks_rstp2(self, fleet_node):
        host, port = fleet_node.address
        with FleetNodeClient(host, port, backoff=0.01) as c:
            assert c.speaks_rstp2
            assert c.negotiated == P.RSTP2
            assert c.remote_node_id == "n0"
            assert c.wire_rev == P.RSTP2

    def test_fleet_client_vs_v1_daemon_downgrades(self, v1_server):
        host, port = v1_server.address
        with FleetNodeClient(host, port, backoff=0.01) as c:
            assert not c.speaks_rstp2
            assert c.negotiated == P.VERSION
            assert c.wire_rev == P.VERSION
            # the RSTP/2 surface still works, sequentially
            data = b"v1-compat-chunk"
            assert c.put_chunks([data]) == 1
            found, missing = c.get_many([chunk_key(data), "ff" * 32])
            assert found == {chunk_key(data): data}
            assert missing == ["ff" * 32]

    def test_v1_client_vs_fleet_node_works(self, fleet_node):
        host, port = fleet_node.address
        with StoreClient(host, port, backoff=0.01) as c:
            assert c.ping()
            assert c.put_chunk(b"old client, new daemon")
            assert c.has_chunk(chunk_key(b"old client, new daemon"))

    def test_batch_fallback_reports_per_op_errors(self, v1_server):
        host, port = v1_server.address
        with FleetNodeClient(host, port, backoff=0.01) as c:
            digest = bytes.fromhex(chunk_key(b"present"))
            c.put_chunk(b"present")
            results = c.batch_call([
                (P.OP_HAS_CHUNK, digest),
                (P.OP_GET_CHUNK, bytes.fromhex("ab" * 32)),
            ])
            assert results[0][0] == P.OP_OK
            assert results[1][0] == P.OP_ERR
            err = P.decode_json(results[1][1])
            assert err["error"] == "StoreNotFoundError"


class TestRstp2Ops:
    def test_batched_ops_share_one_frame(self, fleet_node):
        host, port = fleet_node.address
        chunks = [f"chunk-{i}".encode() for i in range(10)]
        with FleetNodeClient(host, port, backoff=0.01) as c:
            assert c.put_chunks(chunks) == 10
            assert c.put_chunks(chunks) == 0  # idempotent, all dedup
        assert fleet_node.ops.batches_handled == 2
        assert fleet_node.ops.batched_ops_handled == 20

    def test_get_many_streams_and_names_missing(self, fleet_node):
        host, port = fleet_node.address
        chunks = [f"stream-{i}".encode() for i in range(5)]
        keys = [chunk_key(ch) for ch in chunks]
        with FleetNodeClient(host, port, backoff=0.01) as c:
            c.put_chunks(chunks)
            found, missing = c.get_many(keys + ["0" * 64])
            assert found == dict(zip(keys, chunks))
            assert missing == ["0" * 64]
        assert fleet_node.ops.chunks_streamed == 5

    def test_nested_batch_rejected_per_slot(self, fleet_node):
        host, port = fleet_node.address
        with FleetNodeClient(host, port, backoff=0.01) as c:
            results = c.batch_call([
                (P.OP_PING, b""),
                (P.OP_BATCH, W.encode_ops([])),
            ])
            assert results[0][0] == P.OP_OK
            assert results[1][0] == P.OP_ERR
            err = P.decode_json(results[1][1])
            assert "not allowed inside BATCH" in err["message"]

    def test_housekeeping_ops(self, fleet_node):
        host, port = fleet_node.address
        with FleetNodeClient(host, port, backoff=0.01) as c:
            assert c.epoch() == 0
            c.put_chunk(b"doomed")
            report = c.sweep([])
            assert report["removed"] == 1
            assert c.epoch() == 1
            assert c.del_manifest("ghost", 1) is False

    def test_error_payload_matches_v1_shape(self):
        err = P.decode_json(W.error_payload(StoreNotFoundError("gone")))
        assert err == {"error": "StoreNotFoundError", "message": "gone"}
        generic = P.decode_json(W.error_payload(ValueError("boom")))
        assert generic["error"] == "StoreError"
        assert "boom" in generic["message"]


# ---------------------------------------------------------------------------
# Mid-conversation downgrade: the peer changes revision under the client
# ---------------------------------------------------------------------------

import socket
import threading


class _ForwardingPeer:
    """Base: a listener whose later connections proxy to a v1 daemon."""

    def __init__(self, v1_addr: tuple[str, int]) -> None:
        self.v1_addr = v1_addr
        self.connections = 0
        self._listen = socket.socket()
        self._listen.bind(("127.0.0.1", 0))
        self._listen.listen(8)
        self.address = self._listen.getsockname()
        self._stop = threading.Event()
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listen.accept()
            except OSError:
                return
            self.connections += 1
            handler = (
                self._first if self.connections == 1 else self._forward
            )
            threading.Thread(
                target=handler, args=(conn,), daemon=True
            ).start()

    def _first(self, conn: socket.socket) -> None:  # overridden
        conn.close()

    def _forward(self, conn: socket.socket) -> None:
        up = socket.create_connection(self.v1_addr)

        def pump(src, dst):
            try:
                while True:
                    data = src.recv(65536)
                    if not data:
                        break
                    dst.sendall(data)
            except OSError:
                pass
            finally:
                for s in (src, dst):
                    try:
                        s.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass

        threading.Thread(target=pump, args=(up, conn), daemon=True).start()
        pump(conn, up)

    def close(self) -> None:
        self._stop.set()
        self._listen.close()


class MidHelloDeathPeer(_ForwardingPeer):
    """Reads half the HELLO frame header, then drops the connection."""

    def _first(self, conn: socket.socket) -> None:
        try:
            conn.recv(8)
        finally:
            conn.close()


class MidBatchDeathPeer(_ForwardingPeer):
    """Negotiates RSTP/2, answers PINGs, then dies mid-frame in its
    first BATCH response — the node was replaced by a rolled-back
    revision-1 build while the client's session was live."""

    def _first(self, conn: socket.socket) -> None:
        try:
            while True:
                op, _payload = P.recv_frame(conn)
                if op == P.OP_HELLO:
                    P.send_frame(
                        conn,
                        P.OP_OK,
                        P.encode_json(
                            {"version": P.RSTP2, "node_id": "dying"}
                        ),
                        P.RSTP2,
                    )
                elif op == P.OP_PING:
                    P.send_frame(conn, P.OP_OK, b"pong", P.RSTP2)
                elif op == P.OP_BATCH:
                    torn = P.encode_frame(P.OP_OK, b"x" * 64, P.RSTP2)
                    conn.sendall(torn[: len(torn) // 2])
                    return
                else:
                    return
        except (OSError, StoreProtocolError):
            pass
        finally:
            conn.close()


class TestMidConversationDowngrade:
    def test_peer_dies_mid_hello_client_lands_on_v1(self, v1_server):
        """The very first negotiation is cut mid-HELLO; the retry
        reaches a revision-1 daemon and the client settles on v1."""
        peer = MidHelloDeathPeer(v1_server.address)
        try:
            with FleetNodeClient(
                *peer.address, backoff=0.01, retries=4
            ) as c:
                assert not c.speaks_rstp2
                assert c.negotiated == P.VERSION
                assert c.retries_used >= 1
                data = b"survived a mid-HELLO death"
                assert c.put_chunks([data]) == 1
                found, missing = c.get_many([chunk_key(data), "ee" * 32])
                assert found == {chunk_key(data): data}
                assert missing == ["ee" * 32]
        finally:
            peer.close()
        assert peer.connections >= 2  # the kill, then the real session

    def test_peer_dies_mid_batch_client_degrades_to_sequential(
        self, v1_server
    ):
        """An RSTP/2 session loses its peer mid-BATCH; the reconnect
        lands on a v1 daemon, and the in-flight batch_call completes
        sequentially with per-op results in order."""
        present = b"present before the death"
        with StoreClient(*v1_server.address, backoff=0.01) as seeder:
            seeder.put_chunk(present)
        peer = MidBatchDeathPeer(v1_server.address)
        try:
            with FleetNodeClient(
                *peer.address, backoff=0.01, retries=4
            ) as c:
                assert c.speaks_rstp2  # negotiated with the dying peer
                fresh = b"lands through the v1 fallback"
                results = c.batch_call([
                    (P.OP_HAS_CHUNK, bytes.fromhex(chunk_key(present))),
                    (
                        P.OP_PUT_CHUNK,
                        P.encode_chunk(
                            bytes.fromhex(chunk_key(fresh)), fresh
                        ),
                    ),
                    (P.OP_GET_CHUNK, bytes.fromhex("ab" * 32)),
                ])
                # The downgrade happened mid-call and stuck.
                assert c.negotiated == P.VERSION
                assert not c.speaks_rstp2
                assert results[0] == (P.OP_OK, b"\x01")
                assert results[1][0] == P.OP_OK
                assert results[2][0] == P.OP_ERR
                err = P.decode_json(results[2][1])
                assert err["error"] == "StoreNotFoundError"
                # The put really landed on the v1 daemon.
                assert c.has_chunk(chunk_key(fresh))
        finally:
            peer.close()
