"""Tests for heap compaction."""

from __future__ import annotations

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)

RODRIGO = get_platform("rodrigo")

# Builds a large structure, drops most of it, keeping a sparse survivor
# set scattered across many chunks.
FRAGMENTING = """
let keep = ref [];;
let () =
  for i = 1 to 400 do
    let a = Array.make 300 i in
    if i mod 40 = 0 then keep := a :: !keep
  done;;
let rec count l = match l with [] -> 0 | _ :: t -> 1 + count t;;
"""


def build_fragmented_vm():
    code = compile_source(
        FRAGMENTING + "print_int (count !keep)", name="frag"
    )
    vm = VirtualMachine(
        RODRIGO, code, VMConfig(chkpt_state="disable", chunk_words=8192)
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.stdout == b"10"
    return vm


class TestCompaction:
    def test_compaction_shrinks_heap(self):
        vm = build_fragmented_vm()
        stats = vm.gc.compact()
        assert stats.words_after < stats.words_before
        assert stats.chunks_after < stats.chunks_before
        assert stats.blocks_moved >= 10
        vm.mem.heap.check_integrity()

    def test_live_data_intact_after_compaction(self):
        vm = build_fragmented_vm()
        vm.gc.compact()
        # Walk the kept list through the *relocated* pointers.
        head = vm.mem.field(vm.global_data, vm_global(vm, "keep"))
        lst = vm.mem.field(head, 0)  # !keep
        v = vm.mem.values
        seen = []
        while v.is_block(lst) and not vm.mem.atoms.contains(lst):
            arr = vm.mem.field(lst, 0)
            seen.append(v.int_val(vm.mem.field(arr, 0)))
            lst = vm.mem.field(lst, 1)
        assert sorted(seen) == [40 * k for k in range(1, 11)]

    def test_gc_sound_after_compaction(self):
        vm = build_fragmented_vm()
        vm.gc.compact()
        vm.gc.full_major()
        vm.mem.heap.check_integrity()

    def test_compaction_via_prim(self):
        src = FRAGMENTING + """
        let before = Gc.stat ();;
        Gc.compact ();;
        let after = Gc.stat ();;
        (* heap_words shrank, live data still reachable *)
        if after.(3) < before.(3) then print_string "smaller ";;
        print_int (count !keep)
        """
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_state="disable", chunk_words=8192)
        )
        result = vm.run(max_instructions=20_000_000)
        assert result.stdout == b"smaller 10"

    def test_checkpoint_after_compaction_is_smaller(self, tmp_path):
        """The A5 ablation's claim, asserted at unit level."""
        src = FRAGMENTING + """
        checkpoint ();;
        Gc.compact ();;
        checkpoint ();;
        print_int (count !keep)
        """
        code = compile_source(src)
        path = str(tmp_path / "c.hckp")
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking",
                     chunk_words=8192),
        )
        sizes = []
        orig = vm.perform_checkpoint

        def recording():
            orig()
            sizes.append(vm.last_checkpoint_stats.file_bytes)

        vm.perform_checkpoint = recording  # type: ignore[method-assign]
        result = vm.run(max_instructions=20_000_000)
        assert result.status == "stopped"
        assert vm.checkpoints_taken == 2
        assert sizes[1] < sizes[0]  # the compacted heap dumps smaller
        # The file on disk is the compacted one; verify restartability.
        vm2, _ = restart_vm(get_platform("sp2148"), code, path)
        assert vm2.run(max_instructions=20_000_000).stdout == b"10"

    def test_compaction_with_threads_and_traps(self):
        src = """
        let m = mutex_create ();;
        let keep = ref [];;
        let () = for i = 1 to 200 do
          (if i mod 50 = 0 then keep := (Array.make 300 i) :: !keep)
        done;;
        let t = thread_create (fun () ->
          begin mutex_lock m; Gc.compact (); mutex_unlock m end);;
        thread_join t;;
        try
          begin
            Gc.compact ();
            raise "ok"
          end
        with e -> print_string e
        """
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code,
            VMConfig(chkpt_state="disable", chunk_words=8192, quantum=50),
        )
        result = vm.run(max_instructions=20_000_000)
        assert result.stdout == b"ok"
        vm.mem.heap.check_integrity()


def vm_global(vm, name: str) -> int:
    """Global slot index of a top-level name (test helper)."""
    from repro.minilang import parse_program
    from repro.minilang.stdlib import PRELUDE_SOURCE

    # Recompute the compiler's global numbering.
    prog = parse_program(PRELUDE_SOURCE + "\n" + FRAGMENTING + "print_int 0")
    names = []
    from repro.minilang import ast_nodes as A

    for item in prog.items:
        if isinstance(item, A.TopLet) and item.name != "_":
            if item.name not in names:
                names.append(item.name)
    return names.index(name)
