"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import main

PROGRAM = """
let x = 6 * 7;;
checkpoint ();;
print_int x
"""


@pytest.fixture
def prog_path(tmp_path):
    p = tmp_path / "prog.ml"
    p.write_text(PROGRAM)
    return str(p)


class TestCompileDisasm:
    def test_compile_writes_byc(self, prog_path, tmp_path, capsys):
        out = str(tmp_path / "prog.byc")
        assert main(["compile", prog_path, "-o", out]) == 0
        assert os.path.exists(out)
        assert "units" in capsys.readouterr().out

    def test_disasm_lists_instructions(self, prog_path, capsys):
        assert main(["disasm", prog_path]) == 0
        text = capsys.readouterr().out
        assert "MULINT" in text and "STOP" in text

    def test_compiled_image_runs(self, prog_path, tmp_path, capsys):
        out = str(tmp_path / "prog.byc")
        main(["compile", prog_path, "-o", out])
        capsys.readouterr()
        ck = str(tmp_path / "a.hckp")
        assert main(["run", out, "--checkpoint", ck]) == 0
        assert "42" in capsys.readouterr().out


class TestRunRestart:
    def test_run_and_restart_roundtrip(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "cli.hckp")
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking"]) == 0
        captured = capsys.readouterr()
        assert "42" in captured.out
        assert os.path.exists(ck)
        assert main(["restart", prog_path, ck, "--platform", "sp2148"]) == 0
        captured = capsys.readouterr()
        assert "42" in captured.out
        assert "word size" in captured.err

    def test_budget_exit_code(self, prog_path, tmp_path, capsys):
        rc = main(["run", prog_path, "--max-instructions", "3",
                   "--checkpoint", str(tmp_path / "x.hckp")])
        assert rc == 75

    def test_platforms_lists_table1(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("rodrigo", "csd", "sp2148", "pc8"):
            assert name in out

    def test_info_describes_checkpoint(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "i.hckp")
        main(["run", prog_path, "--checkpoint", ck, "--mode", "blocking"])
        capsys.readouterr()
        assert main(["info", ck]) == 0
        out = capsys.readouterr().out
        assert "rodrigo" in out
        assert "32-bit little-endian" in out
        assert "single-threaded" in out
