"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import main

PROGRAM = """
let x = 6 * 7;;
checkpoint ();;
print_int x
"""


@pytest.fixture
def prog_path(tmp_path):
    p = tmp_path / "prog.ml"
    p.write_text(PROGRAM)
    return str(p)


class TestCompileDisasm:
    def test_compile_writes_byc(self, prog_path, tmp_path, capsys):
        out = str(tmp_path / "prog.byc")
        assert main(["compile", prog_path, "-o", out]) == 0
        assert os.path.exists(out)
        assert "units" in capsys.readouterr().out

    def test_disasm_lists_instructions(self, prog_path, capsys):
        assert main(["disasm", prog_path]) == 0
        text = capsys.readouterr().out
        assert "MULINT" in text and "STOP" in text

    def test_compiled_image_runs(self, prog_path, tmp_path, capsys):
        out = str(tmp_path / "prog.byc")
        main(["compile", prog_path, "-o", out])
        capsys.readouterr()
        ck = str(tmp_path / "a.hckp")
        assert main(["run", out, "--checkpoint", ck]) == 0
        assert "42" in capsys.readouterr().out


class TestRunRestart:
    def test_run_and_restart_roundtrip(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "cli.hckp")
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking"]) == 0
        captured = capsys.readouterr()
        assert "42" in captured.out
        assert os.path.exists(ck)
        assert main(["restart", prog_path, ck, "--platform", "sp2148"]) == 0
        captured = capsys.readouterr()
        assert "42" in captured.out
        assert "word size" in captured.err

    def test_budget_exit_code(self, prog_path, tmp_path, capsys):
        rc = main(["run", prog_path, "--max-instructions", "3",
                   "--checkpoint", str(tmp_path / "x.hckp")])
        assert rc == 75

    def test_platforms_lists_table1(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("rodrigo", "csd", "sp2148", "pc8"):
            assert name in out

    def test_info_describes_checkpoint(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "i.hckp")
        main(["run", prog_path, "--checkpoint", ck, "--mode", "blocking"])
        capsys.readouterr()
        assert main(["info", ck]) == 0
        out = capsys.readouterr().out
        assert "rodrigo" in out
        assert "32-bit little-endian" in out
        assert "single-threaded" in out

    def test_info_json_is_machine_readable(self, prog_path, tmp_path, capsys):
        import json

        ck = str(tmp_path / "j.hckp")
        main(["run", prog_path, "--checkpoint", ck, "--mode", "blocking"])
        capsys.readouterr()
        assert main(["info", ck, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["platform"] == "rodrigo"
        assert doc["word_bits"] == 32
        assert doc["endianness"] == "little"
        assert doc["path"] == ck
        assert doc["heap"]["chunks"] >= 1
        assert doc["threads"][0]["tid"] == 0
        assert "problems" not in doc  # only --deep validates

    def test_info_json_deep_validates(self, prog_path, tmp_path, capsys):
        import json

        ck = str(tmp_path / "jd.hckp")
        main(["run", prog_path, "--checkpoint", ck, "--mode", "blocking"])
        capsys.readouterr()
        assert main(["info", ck, "--json", "--deep"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["problems"] == []
        assert doc["blocks_by_class"]


class TestRestoreErrorContext:
    """Restore errors must say which file and what format it claims."""

    def _checkpoint(self, prog_path, tmp_path):
        ck = str(tmp_path / "ctx.hckp")
        main(["run", prog_path, "--checkpoint", ck, "--mode", "blocking"])
        return ck

    def test_corrupt_file_error_names_path_and_version(
        self, prog_path, tmp_path, capsys
    ):
        from repro.errors import CheckpointFormatError

        ck = self._checkpoint(prog_path, tmp_path)
        capsys.readouterr()
        data = bytearray(open(ck, "rb").read())
        data[len(data) // 2] ^= 0xFF  # body corruption; magic intact
        open(ck, "wb").write(bytes(data))
        with pytest.raises(CheckpointFormatError) as exc:
            main(["restart", prog_path, ck])
        msg = str(exc.value)
        assert ck in msg
        assert "format v" in msg
        assert exc.value.path == ck

    def test_garbage_file_reports_undetectable_version(
        self, prog_path, tmp_path
    ):
        from repro.errors import RestartError

        bad = str(tmp_path / "garbage.hckp")
        open(bad, "wb").write(b"this is not a checkpoint at all")
        with pytest.raises(RestartError) as exc:
            main(["restart", prog_path, bad])
        msg = str(exc.value)
        assert bad in msg
        assert "format version undetectable" in msg

    def test_annotation_applied_once(self, prog_path, tmp_path):
        from repro.checkpoint.format import annotate_restore_error
        from repro.errors import RestartError

        ck = self._checkpoint(prog_path, tmp_path)
        err = annotate_restore_error(RestartError("boom"), ck)
        again = annotate_restore_error(err, "/somewhere/else")
        assert again is err
        assert str(err).count(ck) == 1


class TestStoreCLI:
    @pytest.fixture
    def service(self, tmp_path):
        from repro.store import ChunkStore, StoreServer

        server = StoreServer(ChunkStore(str(tmp_path / "store")))
        host, port = server.start()
        yield server, f"{host}:{port}"
        server.stop()

    @pytest.fixture
    def ckpt(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "s.hckp")
        main(["run", prog_path, "--checkpoint", ck, "--mode", "blocking"])
        capsys.readouterr()
        return ck

    def test_put_get_ls_roundtrip(self, service, ckpt, tmp_path, capsys):
        _, addr = service
        assert main(["store", "put", "app", ckpt, "--addr", addr]) == 0
        assert "gen 1" in capsys.readouterr().out
        assert main(["store", "ls", "--addr", addr]) == 0
        assert "app gen 1" in capsys.readouterr().out
        out = str(tmp_path / "fetched.hckp")
        assert main(["store", "get", "app", out, "--addr", addr]) == 0
        assert "verified" in capsys.readouterr().out
        assert open(out, "rb").read() == open(ckpt, "rb").read()
        # the fetched checkpoint restarts fine on another platform
        assert main(["restart", str(tmp_path / "prog.ml"), out,
                     "--platform", "ultra64"]) == 0

    def test_gc_stat_audit(self, service, ckpt, capsys):
        import json

        _, addr = service
        main(["store", "put", "app", ckpt, "--addr", addr])
        capsys.readouterr()
        assert main(["store", "gc", "--addr", addr]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert main(["store", "stat", "--addr", addr]) == 0
        assert json.loads(capsys.readouterr().out)["objects"] > 0
        assert main(["store", "audit", "--deep", "--addr", addr]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"]
        assert report["checkpoints"]["app"]["platform"] == "rodrigo"

    def test_bad_addr_rejected(self, ckpt):
        with pytest.raises(SystemExit):
            main(["store", "ls", "--addr", "nonsense"])


class TestHACLI:
    def test_ha_run_json(self, tmp_path, capsys):
        import json

        from repro.store import ChunkStore, StoreServer

        prog = tmp_path / "work.ml"
        prog.write_text("""
            let i = ref 0;;
            while !i < 20000 do i := !i + 1 done;;
            print_string "n=";;
            print_int !i
        """)
        server = StoreServer(ChunkStore(str(tmp_path / "store")))
        host, port = server.start()
        try:
            rc = main(["ha", "run", str(prog), "--vm-id", "cli-ha",
                       "--addr", f"{host}:{port}",
                       "--checkpoint-every", "10000",
                       "--fault-min", "15000", "--fault-max", "40000",
                       "--max-faults", "1", "--json"])
        finally:
            server.stop()
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["completed"]
        assert doc["stdout"] == "n=20000"
        assert doc["faults_injected"] == 1
        assert len(doc["platforms_visited"]) >= 2


class TestFsckCLI:
    def _checkpoint(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "fsck.hckp")
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking"]) == 0
        capsys.readouterr()
        return ck

    def test_healthy_file_exits_zero(self, prog_path, tmp_path, capsys):
        ck = self._checkpoint(prog_path, tmp_path, capsys)
        assert main(["fsck", ck]) == 0
        assert "OK" in capsys.readouterr().out

    def test_damaged_file_exits_nonzero(self, prog_path, tmp_path, capsys):
        ck = self._checkpoint(prog_path, tmp_path, capsys)
        data = bytearray(open(ck, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(ck, "wb").write(bytes(data))
        assert main(["fsck", ck]) != 0

    def test_json_report(self, prog_path, tmp_path, capsys):
        import json as json_mod

        ck = self._checkpoint(prog_path, tmp_path, capsys)
        assert main(["fsck", ck, "--json"]) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["ok"] and doc["path"] == ck

    def test_repair_from_store_root(self, prog_path, tmp_path, capsys):
        from repro.store import ChunkStore

        ck = self._checkpoint(prog_path, tmp_path, capsys)
        healthy = open(ck, "rb").read()
        root = str(tmp_path / "store")
        ChunkStore(root).put_checkpoint("vm", healthy)
        data = bytearray(healthy)
        data[len(data) // 2] ^= 0xFF
        open(ck, "wb").write(bytes(data))
        assert main(["fsck", ck, "--repair", "--store-root", root,
                     "--vm-id", "vm"]) == 0
        assert open(ck, "rb").read() == healthy


class TestFaultsCLI:
    def _checkpoint(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "faults.hckp")
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking"]) == 0
        capsys.readouterr()
        return ck

    def test_plan_lists_mutations(self, prog_path, tmp_path, capsys):
        ck = self._checkpoint(prog_path, tmp_path, capsys)
        assert main(["faults", "plan", ck, "--seed", "5",
                     "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert len([l for l in out.splitlines() if l.strip()]) >= 4

    def test_inject_writes_corrupt_copy(self, prog_path, tmp_path, capsys):
        ck = self._checkpoint(prog_path, tmp_path, capsys)
        out_path = str(tmp_path / "bad.hckp")
        assert main(["faults", "inject", ck, "--seed", "5",
                     "--index", "1", "-o", out_path]) == 0
        original = open(ck, "rb").read()
        damaged = open(out_path, "rb").read()
        assert damaged != original
        assert main(["fsck", out_path]) != 0  # detected as corrupt

    def test_fuzz_small_matrix(self, prog_path, tmp_path, capsys):
        import json as json_mod

        assert main(["faults", "fuzz", "--seed", "3", "--mutations", "4",
                     "--platforms", "rodrigo", "--json"]) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["ok"] and doc["mutations"] == 4


class TestRestartFallbackCLI:
    def test_corrupt_head_falls_back_to_retained(
        self, prog_path, tmp_path, capsys
    ):
        ck = str(tmp_path / "gen.hckp")
        # Two runs with --retain 1: second commit rotates the first to .1
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking", "--retain", "1"]) == 0
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking", "--retain", "1"]) == 0
        capsys.readouterr()
        assert os.path.exists(ck + ".1")
        data = bytearray(open(ck, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(ck, "wb").write(bytes(data))
        assert main(["restart", prog_path, ck]) == 0
        captured = capsys.readouterr()
        assert "42" in captured.out
        assert "fell back" in captured.err

    def test_no_fallback_flag_fails_hard(self, prog_path, tmp_path, capsys):
        ck = str(tmp_path / "gen2.hckp")
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking", "--retain", "1"]) == 0
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking", "--retain", "1"]) == 0
        capsys.readouterr()
        data = bytearray(open(ck, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(ck, "wb").write(bytes(data))
        from repro.errors import CheckpointFormatError

        with pytest.raises(CheckpointFormatError):
            main(["restart", prog_path, ck, "--no-fallback"])

    def test_info_reports_integrity_counters(self, prog_path, tmp_path,
                                             capsys):
        import json as json_mod

        ck = str(tmp_path / "info.hckp")
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking"]) == 0
        capsys.readouterr()
        assert main(["info", ck, "--json"]) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["integrity_verified"] is True
        assert "integrity_counters" in doc
        assert doc["sections"]

    def test_info_json_surfaces_fallback_reason(self, prog_path, tmp_path,
                                                capsys):
        """After a degraded restore, ``info --json`` must say *why* the
        head generation was skipped — which file won, which failed, and
        with what error — so the rot is diagnosable after the fact."""
        import json as json_mod

        from repro.metrics import INTEGRITY

        ck = str(tmp_path / "why.hckp")
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking", "--retain", "1"]) == 0
        assert main(["run", prog_path, "--checkpoint", ck,
                     "--mode", "blocking", "--retain", "1"]) == 0
        capsys.readouterr()
        data = bytearray(open(ck, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(ck, "wb").write(bytes(data))
        INTEGRITY.reset()
        assert main(["restart", prog_path, ck]) == 0
        capsys.readouterr()
        assert main(["info", ck + ".1", "--json"]) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        fb = doc["integrity_counters"]["last_fallback"]
        assert fb["requested"] == ck
        assert fb["restored"] == ck + ".1"
        assert fb["generations_skipped"] == 1
        (failure,) = fb["failures"]
        assert failure["path"] == ck
        assert failure["error_type"] and failure["error"]
        assert doc["integrity_counters"]["fallback_restores"] >= 1
        assert "replication_counters" in doc


INCREMENTAL_PROGRAM = """
let arr = Array.make 16 0;;
let () = for i = 0 to 15 do arr.(i) <- i * 3 done;;
checkpoint ();;
let () = for i = 0 to 15 do arr.(i) <- arr.(i) + 1 done;;
checkpoint ();;
let () = for i = 0 to 15 do arr.(i) <- arr.(i) + 2 done;;
checkpoint ();;
print_int arr.(9)
"""


class TestIncrementalCLI:
    @pytest.fixture
    def chain(self, tmp_path, capsys):
        prog = tmp_path / "inc.ml"
        prog.write_text(INCREMENTAL_PROGRAM)
        ck = str(tmp_path / "inc.hckp")
        assert main(["run", str(prog), "--checkpoint", ck,
                     "--mode", "blocking", "--incremental",
                     "--retain", "4"]) == 0
        capsys.readouterr()
        return str(prog), ck

    def test_info_shows_delta_kind_and_parent(self, chain, capsys):
        _, ck = chain
        assert main(["info", ck]) == 0
        out = capsys.readouterr().out
        assert "delta (chain depth 2" in out
        assert "parent   : body sha256" in out

    def test_info_deep_validates_merged_chain(self, chain, capsys):
        _, ck = chain
        assert main(["info", ck, "--deep"]) == 0
        out = capsys.readouterr().out
        assert "chain merged" in out
        assert "validation : OK" in out

    def test_info_json_carries_delta_block(self, chain, capsys):
        import json

        _, ck = chain
        assert main(["info", ck, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "delta"
        assert doc["delta"]["chain_depth"] == 2
        assert 0 < doc["delta"]["dirty_ratio"] < 1

    def test_fsck_chain_walks_all_links(self, chain, capsys):
        _, ck = chain
        assert main(["fsck", ck, "--chain"]) == 0
        out = capsys.readouterr().out
        assert f"{ck}: delta [ok]" in out
        assert f"{ck}.2: full [ok]" in out

    def test_fsck_chain_flags_damage(self, chain, capsys):
        _, ck = chain
        data = bytearray(open(ck + ".2", "rb").read())
        data[len(data) // 2] ^= 0x55
        with open(ck + ".2", "wb") as f:
            f.write(bytes(data))
        assert main(["fsck", ck, "--chain"]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out

    def test_restart_from_delta_head(self, chain, capsys):
        prog, ck = chain
        assert main(["restart", prog, ck, "--platform", "ultra64"]) == 0
        assert "30" in capsys.readouterr().out
