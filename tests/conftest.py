"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch import ARCH_32_BE, ARCH_32_LE, ARCH_64_BE, ARCH_64_LE
from repro.arch.platforms import PLATFORMS

ALL_ARCHS = [ARCH_32_LE, ARCH_32_BE, ARCH_64_LE, ARCH_64_BE]


@pytest.fixture(params=ALL_ARCHS, ids=lambda a: f"{a.bits}{a.endianness.value[0]}")
def arch(request):
    """Parametrized over all four architecture variants."""
    return request.param


@pytest.fixture(params=sorted(PLATFORMS), ids=str)
def platform(request):
    """Parametrized over all Table 1 platforms."""
    return PLATFORMS[request.param]
