"""Tests for the phase-timing instrumentation."""

from __future__ import annotations

import time

from repro.metrics import PhaseTimer


class TestPhaseTimer:
    def test_phases_accumulate(self):
        t = PhaseTimer()
        with t.phase("a"):
            pass
        with t.phase("a"):
            pass
        assert t.counts["a"] == 2
        assert t.seconds["a"] >= 0

    def test_add_external(self):
        t = PhaseTimer()
        t.add("x", 0.5)
        t.add("x", 0.25)
        assert t.seconds["x"] == 0.75
        assert t.total == 0.75

    def test_fractions_sum_to_one(self):
        t = PhaseTimer()
        t.add("a", 3.0)
        t.add("b", 1.0)
        f = t.fractions()
        assert abs(sum(f.values()) - 1.0) < 1e-9
        assert f["a"] == 0.75

    def test_fractions_empty(self):
        assert PhaseTimer().fractions() == {}

    def test_merge(self):
        a = PhaseTimer()
        a.add("x", 1.0)
        b = PhaseTimer()
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a.seconds == {"x": 3.0, "y": 1.0}

    def test_report_mentions_phases(self):
        t = PhaseTimer()
        t.add("heap_dump", 0.08)
        t.add("commit", 0.02)
        text = t.report("checkpoint")
        assert "checkpoint" in text
        assert "heap_dump" in text and "80.0%" in text

    def test_phase_times_something(self):
        t = PhaseTimer()
        with t.phase("sleep"):
            time.sleep(0.01)
        assert t.seconds["sleep"] >= 0.005

    def test_exception_still_recorded(self):
        t = PhaseTimer()
        try:
            with t.phase("boom"):
                raise ValueError()
        except ValueError:
            pass
        assert "boom" in t.seconds
