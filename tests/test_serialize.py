"""Tests for portable value marshaling."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.platforms import CSD, PLATFORMS, RODRIGO, SP2148
from repro.memory import MemoryManager
from repro.serialize import MarshalError, extern_value, intern_value


def value_of(mem, py):
    """Build a VM value from a Python object (int/str/float/list/tuple)."""
    v = mem.values
    if isinstance(py, bool):
        return v.val_bool(py)
    if isinstance(py, int):
        return v.val_int(py)
    if isinstance(py, float):
        return mem.make_float(py)
    if isinstance(py, bytes):
        return mem.make_string(py)
    if isinstance(py, list):  # ML list
        out = v.val_int(0)
        for item in reversed(py):
            out = mem.make_block(0, [value_of(mem, item), out])
        return out
    if isinstance(py, tuple):  # tuple = block tag 0
        return mem.make_block(0, [value_of(mem, f) for f in py]) if py else mem.atoms.atom(0)
    raise TypeError(py)


def python_of(mem, value):
    """Inverse of value_of for comparison (tuples for blocks)."""
    v = mem.values
    if v.is_int(value):
        return v.int_val(value)
    if mem.atoms.contains(value):
        return ()
    tag = mem.tag_of(value)
    from repro.memory.blocks import DOUBLE_TAG, STRING_TAG

    if tag == STRING_TAG:
        return mem.read_string(value)
    if tag == DOUBLE_TAG:
        return mem.read_float(value)
    return tuple(python_of(mem, mem.field(value, i)) for i in range(mem.size_of(value)))


PY_VALUES = st.recursive(
    st.one_of(
        st.integers(-(2**30), 2**30 - 1),
        st.binary(max_size=20),
        st.floats(allow_nan=False),
    ),
    lambda children: st.tuples(children, children)
    | st.tuples(children)
    | st.tuples(children, children, children),
    max_leaves=12,
)


class TestMarshalRoundtrip:
    def test_simple_values(self):
        mem = MemoryManager(RODRIGO)
        for py in (0, -1, 42, b"hello", 3.25, (1, 2), (1, (2, b"x")), [1, 2, 3]):
            v = value_of(mem, py)
            data = extern_value(mem, v)
            v2 = intern_value(mem, data)
            assert python_of(mem, v2) == python_of(mem, v)

    @given(PY_VALUES)
    def test_roundtrip_property(self, py):
        mem = MemoryManager(RODRIGO)
        v = value_of(mem, py)
        assert python_of(mem, intern_value(mem, extern_value(mem, v))) == \
            python_of(mem, v)

    @given(PY_VALUES)
    def test_cross_architecture_property(self, py):
        """Marshal on 32 LE, intern on 64 LE and 32 BE: same value."""
        src = MemoryManager(RODRIGO)
        v = value_of(src, py)
        data = extern_value(src, v)
        expected = python_of(src, v)
        for platform in (SP2148, CSD):
            dst = MemoryManager(platform)
            assert python_of(dst, intern_value(dst, data)) == expected

    def test_sharing_preserved(self):
        mem = MemoryManager(RODRIGO)
        shared = mem.make_block(0, [mem.values.val_int(9)])
        pair = mem.make_block(0, [shared, shared])
        v2 = intern_value(mem, extern_value(mem, pair))
        assert mem.field(v2, 0) == mem.field(v2, 1)  # still one object

    def test_cycle_preserved(self):
        mem = MemoryManager(RODRIGO)
        cell = mem.make_block(0, [mem.values.val_int(1), mem.values.val_int(0)])
        mem.set_field(cell, 1, cell)  # self-cycle
        v2 = intern_value(mem, extern_value(mem, cell))
        assert mem.field(v2, 1) == v2
        assert mem.values.int_val(mem.field(v2, 0)) == 1

    def test_atoms(self):
        mem = MemoryManager(RODRIGO)
        data = extern_value(mem, mem.atoms.atom(5))
        assert intern_value(mem, data) == mem.atoms.atom(5)

    def test_closure_rejected(self):
        from repro import VirtualMachine, VMConfig, compile_source

        vm = VirtualMachine(
            RODRIGO, compile_source("let f x = x;; print_int 0"),
            VMConfig(chkpt_state="disable"),
        )
        vm.run(max_instructions=100_000)
        closure = vm.mem.field(vm.global_data, 0)
        with pytest.raises(MarshalError):
            extern_value(vm.mem, closure)

    def test_corrupt_data_rejected(self):
        mem = MemoryManager(RODRIGO)
        with pytest.raises(MarshalError):
            intern_value(mem, b"garbage")
        good = extern_value(mem, mem.values.val_int(1))
        with pytest.raises(MarshalError):
            intern_value(mem, good + b"\x00")
        with pytest.raises(MarshalError):
            intern_value(mem, good[:-1])
