"""Tests for the instruction tracer and the Gc.stat primitive."""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.tracing import BreakpointTracer, InstructionTracer

RODRIGO = get_platform("rodrigo")


def make_vm(src: str, **kw):
    return VirtualMachine(
        RODRIGO, compile_source(src), VMConfig(chkpt_state="disable", **kw)
    )


class TestInstructionTracer:
    def test_records_instructions(self):
        vm = make_vm("print_int (1 + 2)")
        tracer = InstructionTracer()
        vm.interp.trace_hook = tracer
        vm.run(max_instructions=100_000)
        assert tracer.total == vm.interp.instructions
        hist = tracer.opcode_histogram()
        assert "ADDINT" in hist
        assert "STOP" in hist and hist["STOP"] == 1

    def test_ring_is_bounded(self):
        vm = make_vm("for i = 1 to 500 do print_string \"\" done")
        tracer = InstructionTracer(limit=50)
        vm.interp.trace_hook = tracer
        vm.run(max_instructions=100_000)
        assert len(tracer.ring) == 50
        assert tracer.total > 50

    def test_format_tail_shows_stop(self):
        vm = make_vm("print_int 1")
        tracer = InstructionTracer()
        vm.interp.trace_hook = tracer
        vm.run(max_instructions=100_000)
        assert "STOP" in tracer.format_tail(3)

    def test_breakpoint_stops_vm(self):
        """The VM halts at the first safe point after the breakpoint."""
        src = "print_int 1;; print_int 2;; print_int 3"
        vm = make_vm(src)
        # Find the second C_CALL: trace a dry run first.
        probe = InstructionTracer()
        vm.interp.trace_hook = probe
        vm.run(max_instructions=100_000)
        from repro.bytecode.opcodes import Op

        c_calls = sorted(
            {pc for _, pc, op in probe.ring if op == int(Op.C_CALL)}
        )
        vm2 = make_vm(src)
        bp = BreakpointTracer({c_calls[1]})
        vm2.interp.trace_hook = bp
        result = vm2.run(max_instructions=100_000)
        assert bp.hit == c_calls[1]
        # The breakpointed call itself completes; the third never runs.
        assert result.stdout == b"12"

    def test_untraced_run_unaffected(self):
        vm = make_vm("print_int 7")
        assert vm.run(max_instructions=100_000).stdout == b"7"


class TestGcStat:
    def test_stat_block_fields(self):
        src = """
        let s = Gc.stat () in
        begin
          print_int (Array.length s);
          print_string " ";
          (* heap_words >= live_words >= 0 *)
          if s.(3) >= s.(4) then print_string "ok"
        end
        """
        vm = make_vm(src)
        assert vm.run(max_instructions=1_000_000).stdout == b"7 ok"

    def test_minor_collections_counted(self):
        src = """
        let rec churn n = if n = 0 then () else (let _ = [| n; n |] in churn (n - 1));;
        churn 3000;;
        let s = Gc.stat () in
        if s.(0) > 0 then print_string "collected"
        """
        vm = make_vm(src, minor_words=512)
        assert vm.run(max_instructions=5_000_000).stdout == b"collected"

    def test_python_level_stat(self):
        vm = make_vm("let rec go n = if n = 0 then () else (let _ = [n] in go (n-1));; go 2000;; print_int 1")
        vm.config.minor_words = None
        vm.run(max_instructions=5_000_000)
        stat = vm.gc.stat()
        assert stat["heap_words"] >= stat["live_words"]
        assert stat["heap_words"] == stat["live_words"] + stat["free_words"] or \
            stat["heap_words"] >= stat["live_words"] + stat["free_words"]
        assert stat["heap_chunks"] == len(vm.mem.heap.chunks)
