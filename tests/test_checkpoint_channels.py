"""Checkpoint/restart of open channels (paper §3.2.4, step 12 / step 10)."""

from __future__ import annotations

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)
from repro.errors import ChannelError

RODRIGO = get_platform("rodrigo")


def take_checkpoint(src, tmp_path, **cfg):
    path = str(tmp_path / "ch.hckp")
    code = compile_source(src)
    vm = VirtualMachine(
        RODRIGO, code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking", **cfg),
    )
    result = vm.run(max_instructions=2_000_000)
    assert result.status == "stopped"
    return code, path, result


class TestChannelCheckpoint:
    def test_sequential_write_resumes_at_position(self, tmp_path):
        """The paper's supported case: a sequentially written file is
        truncated back to the checkpointed position and writing resumes."""
        out_file = str(tmp_path / "data.txt")
        src = f"""
        let ch = open_out "{out_file}";;
        output_string ch "before\\n";;
        flush ch;;
        checkpoint ();;
        output_string ch "after\\n";;
        close_out ch
        """
        code, path, _ = take_checkpoint(src, tmp_path)
        assert open(out_file, "rb").read() == b"before\nafter\n"
        # Restart replays only the post-checkpoint writes.
        vm2, _ = restart_vm(RODRIGO, code, path)
        result = vm2.run(max_instructions=2_000_000)
        assert result.status == "stopped"
        assert open(out_file, "rb").read() == b"before\nafter\n"

    def test_unflushed_buffer_travels_in_checkpoint(self, tmp_path):
        out_file = str(tmp_path / "buf.txt")
        src = f"""
        let ch = open_out "{out_file}";;
        output_string ch "buffered";;
        checkpoint ();;
        close_out ch
        """
        code, path, _ = take_checkpoint(src, tmp_path)
        # Clobber the file to prove restart rewrites from its own buffer.
        with open(out_file, "wb") as f:
            f.write(b"")
        vm2, _ = restart_vm(RODRIGO, code, path)
        vm2.run(max_instructions=2_000_000)
        assert open(out_file, "rb").read() == b"buffered"

    def test_input_channel_seeks_back(self, tmp_path):
        in_file = str(tmp_path / "in.txt")
        with open(in_file, "wb") as f:
            f.write(b"alpha\nbeta\ngamma\n")
        src = f"""
        let ch = open_in "{in_file}";;
        print_string (input_line ch);;
        checkpoint ();;
        print_string "|";;
        print_string (input_line ch);;
        close_in ch
        """
        code, path, r1 = take_checkpoint(src, tmp_path)
        assert r1.stdout == b"alpha|beta"
        vm2, _ = restart_vm(RODRIGO, code, path)
        result = vm2.run(max_instructions=2_000_000)
        # "alpha" was still sitting in stdout's buffer at checkpoint time,
        # so it travels with the checkpoint; the input channel resumed
        # exactly after "alpha\n" (reading "beta", not "alpha" again).
        assert result.stdout == b"alpha|beta"

    def test_missing_file_on_restart_machine(self, tmp_path):
        """Paper: "we can recover file descriptors, but only if the same
        file is accessible from the restarting machine"."""
        out_file = str(tmp_path / "vanishes.txt")
        src = f"""
        let ch = open_out "{out_file}";;
        output_string ch "x";;
        flush ch;;
        checkpoint ();;
        close_out ch
        """
        code, path, _ = take_checkpoint(src, tmp_path)
        import os

        os.unlink(out_file)
        with pytest.raises(ChannelError):
            restart_vm(RODRIGO, code, path)

    def test_closed_channels_stay_closed(self, tmp_path):
        out_file = str(tmp_path / "closed.txt")
        src = f"""
        let ch = open_out "{out_file}";;
        output_string ch "done";;
        close_out ch;;
        checkpoint ();;
        print_string "ok"
        """
        code, path, _ = take_checkpoint(src, tmp_path)
        import os

        os.unlink(out_file)  # closed channels need no reopen
        vm2, _ = restart_vm(RODRIGO, code, path)
        result = vm2.run(max_instructions=2_000_000)
        assert result.stdout == b"ok"
        assert vm2.channels.get(3).closed

    def test_cross_platform_channel_restart(self, tmp_path):
        out_file = str(tmp_path / "x.txt")
        src = f"""
        let ch = open_out "{out_file}";;
        output_string ch "12345";;
        flush ch;;
        checkpoint ();;
        output_string ch "6789";;
        close_out ch
        """
        code, path, _ = take_checkpoint(src, tmp_path)
        vm2, _ = restart_vm(get_platform("ultra64"), code, path)
        vm2.run(max_instructions=2_000_000)
        assert open(out_file, "rb").read() == b"123456789"
