"""Format v3: per-section CRCs, integrity trailer, back-compat."""

from __future__ import annotations

import io
import zlib

import pytest

from repro import PLATFORMS, VirtualMachine, VMConfig, compile_source, get_platform
from repro.checkpoint.format import (
    CHECKPOINT_MAGIC_V1,
    CHECKPOINT_MAGIC_V2,
    CHECKPOINT_MAGIC_V3,
    TRAILER_MAGIC,
    read_checkpoint,
    read_section_table,
)
from repro.checkpoint.inspect import describe_snapshot, inspect_snapshot
from repro.checkpoint.reader import restart_vm
from repro.errors import CheckpointFormatError, CheckpointIntegrityError

RODRIGO = get_platform("rodrigo")

PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
let data = build 40 [];;
let s = "tag:" ^ string_of_int (sum data);;
let f = 0.5;;
checkpoint ();;
print_string s;;
print_float (f +. f);;
print_newline ();;
"""


def expected_output() -> bytes:
    code = compile_source(PROGRAM)
    vm = VirtualMachine(
        RODRIGO, code, VMConfig(chkpt_state="disable"), stdout=io.BytesIO()
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped"
    return result.stdout


def make_checkpoint(tmp_path, fmt: int = 3, platform=RODRIGO) -> tuple[str, bytes]:
    path = str(tmp_path / f"v{fmt}.hckp")
    code = compile_source(PROGRAM)
    vm = VirtualMachine(
        platform,
        code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking", chkpt_format=fmt),
        stdout=io.BytesIO(),
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped" and vm.checkpoints_taken == 1
    with open(path, "rb") as f:
        return path, f.read()


def run_restarted(path: str, platform=RODRIGO) -> bytes:
    code = compile_source(PROGRAM)
    vm, _stats = restart_vm(
        platform, code, path, VMConfig(chkpt_state="disable"),
        stdout=io.BytesIO(),
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped"
    return result.stdout


class TestV3Layout:
    def test_default_format_is_v3(self, tmp_path):
        _, data = make_checkpoint(tmp_path)
        assert data[:6] == CHECKPOINT_MAGIC_V3
        assert TRAILER_MAGIC in data

    def test_section_table_readable(self, tmp_path):
        _, data = make_checkpoint(tmp_path)
        table = read_section_table(data)
        assert table is not None and len(table) >= 3
        names = [s.name for s in table]
        assert "heap" in names
        # Entries tile the body contiguously and each CRC matches.
        for s in table:
            assert s.length >= 0
            assert zlib.crc32(data[s.offset : s.end]) == s.crc32

    @pytest.mark.parametrize("target", ["rodrigo", "csd", "sp2148", "ultra64"])
    def test_round_trip_restores(self, tmp_path, target):
        path, _ = make_checkpoint(tmp_path)
        out = run_restarted(path, platform=get_platform(target))
        assert out == expected_output()

    def test_inspect_reports_sections(self, tmp_path):
        path, _ = make_checkpoint(tmp_path)
        snap = read_checkpoint(path)
        desc = describe_snapshot(snap)
        assert desc["integrity_verified"] is True
        assert any(s["name"] == "heap" for s in desc["sections"])
        report = inspect_snapshot(snap)
        assert "integrity trailer" in report.render()


class TestV3Detection:
    def test_bitflip_names_section_and_offsets(self, tmp_path):
        path, data = make_checkpoint(tmp_path)
        table = read_section_table(data)
        heap = next(s for s in table if s.name == "heap")
        buf = bytearray(data)
        buf[heap.offset + heap.length // 2] ^= 0x01
        with open(path, "wb") as f:
            f.write(bytes(buf))
        with pytest.raises(CheckpointFormatError) as exc:
            read_checkpoint(path)
        msg = str(exc.value)
        assert "heap" in msg
        assert str(heap.offset) in msg
        assert exc.value.path == path

    def test_integrity_error_carries_crcs(self, tmp_path):
        path, data = make_checkpoint(tmp_path)
        table = read_section_table(data)
        target = max(table, key=lambda s: s.length)
        buf = bytearray(data)
        buf[target.offset] ^= 0xFF
        with open(path, "wb") as f:
            f.write(bytes(buf))
        with pytest.raises(CheckpointIntegrityError) as exc:
            read_checkpoint(path)
        assert exc.value.expected != exc.value.actual

    def test_damaged_trailer_detected(self, tmp_path):
        path, data = make_checkpoint(tmp_path)
        at = data.rindex(TRAILER_MAGIC)
        buf = bytearray(data)
        buf[at + len(TRAILER_MAGIC) + 4] ^= 0x10  # inside the table body
        with open(path, "wb") as f:
            f.write(bytes(buf))
        with pytest.raises(CheckpointFormatError):
            read_checkpoint(path)

    def test_mutation_counts_toward_integrity_metric(self, tmp_path):
        from repro.metrics import INTEGRITY

        path, data = make_checkpoint(tmp_path)
        buf = bytearray(data)
        buf[len(buf) // 2] ^= 0xFF
        with open(path, "wb") as f:
            f.write(bytes(buf))
        before = INTEGRITY.integrity_failures
        with pytest.raises(CheckpointFormatError):
            read_checkpoint(path)
        assert INTEGRITY.integrity_failures == before + 1


class TestEscapeHatchAndBackCompat:
    @pytest.mark.parametrize(
        "fmt,magic",
        [(1, CHECKPOINT_MAGIC_V1), (2, CHECKPOINT_MAGIC_V2)],
    )
    def test_older_formats_still_written_and_restored(
        self, tmp_path, fmt, magic
    ):
        path, data = make_checkpoint(tmp_path, fmt=fmt)
        assert data[:6] == magic
        assert TRAILER_MAGIC not in data
        assert read_section_table(data) is None
        assert run_restarted(path) == expected_output()

    def test_v2_cross_arch_restore(self, tmp_path):
        path, _ = make_checkpoint(tmp_path, fmt=2, platform=PLATFORMS["ultra64"])
        out = run_restarted(path, platform=PLATFORMS["rodrigo"])
        assert out == expected_output()

    def test_older_formats_not_integrity_verified(self, tmp_path):
        path, _ = make_checkpoint(tmp_path, fmt=2)
        snap = read_checkpoint(path)
        desc = describe_snapshot(snap)
        assert desc["integrity_verified"] is False

    def test_format_env_parsing(self):
        assert VMConfig.from_env({"CHKPT_FORMAT": "v2"}).chkpt_format == 2
        assert VMConfig.from_env({"CHKPT_FORMAT": "3"}).chkpt_format == 3
        assert VMConfig.from_env({"CHKPT_RETAIN": "2"}).chkpt_retain == 2
