"""Consistent-hash ring: determinism, balance, bounded movement."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.store.fleet.ring import DEFAULT_VNODES, HashRing

NODES = [f"10.0.0.{i}:7430" for i in range(1, 6)]
KEYS = [f"{i:064x}" for i in range(2000)]


class TestRingBasics:
    def test_deterministic_across_instances(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))  # order must not matter
        assert a.nodes == b.nodes
        assert all(a.node_for(k) == b.node_for(k) for k in KEYS[:200])

    def test_duplicate_nodes_collapse(self):
        assert HashRing(NODES + NODES).nodes == tuple(sorted(NODES))

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo:1"])
        assert all(ring.chunk_node(k) == "solo:1" for k in KEYS[:50])
        assert ring.ownership() == {"solo:1": pytest.approx(1.0)}

    def test_empty_ring_rejected(self):
        with pytest.raises(StoreError, match="at least one node"):
            HashRing([])

    def test_nonpositive_vnodes_rejected(self):
        with pytest.raises(StoreError, match="vnodes"):
            HashRing(NODES, vnodes=0)

    def test_chunk_and_manifest_namespaces_differ(self):
        ring = HashRing(NODES)
        # same raw string, different prefix: placements are independent
        sample = "a" * 64
        owners = {ring.chunk_node(sample), ring.manifest_node(sample)}
        # not asserting inequality (they may collide), but both are valid
        assert owners <= set(NODES)

    def test_manifest_placement_is_per_vm(self):
        ring = HashRing(NODES)
        # every generation of a vm shares one owner by construction:
        # placement keys off the vm id alone
        assert ring.manifest_node("vm-alpha") == ring.manifest_node("vm-alpha")


class TestBalance:
    def test_ownership_sums_to_one(self):
        own = HashRing(NODES).ownership()
        assert sum(own.values()) == pytest.approx(1.0)
        assert set(own) == set(NODES)

    def test_ownership_reasonably_even(self):
        own = HashRing(NODES, vnodes=DEFAULT_VNODES).ownership()
        fair = 1.0 / len(NODES)
        for node, frac in own.items():
            assert fair / 3 < frac < fair * 3, (node, frac)

    def test_key_distribution_tracks_ownership(self):
        ring = HashRing(NODES)
        counts = {n: 0 for n in NODES}
        for k in KEYS:
            counts[ring.chunk_node(k)] += 1
        own = ring.ownership()
        for node in NODES:
            # 2000 samples: expect within a few points of the arc share
            assert counts[node] / len(KEYS) == pytest.approx(
                own[node], abs=0.05
            )

    def test_ranges_cover_the_space(self):
        ring = HashRing(NODES, vnodes=8)
        ranges = ring.ranges()
        assert len(ranges) == len(NODES) * 8
        # arcs chain: each range starts where the previous ended
        for prev, cur in zip(ranges, ranges[1:]):
            assert prev["end"] == cur["start"]
        # and the final (wrap) arc closes the circle
        assert ranges[-1]["end"] == ranges[0]["start"]


class TestMovement:
    def test_join_moves_about_one_nth(self):
        before = HashRing(NODES)
        after = before.with_node("10.0.0.9:7430")
        moved = sum(
            1 for k in KEYS if before.chunk_node(k) != after.chunk_node(k)
        )
        share = moved / len(KEYS)
        # the joiner should take roughly 1/6th; allow generous slack
        assert 0.05 < share < 0.35, share
        # and every moved key lands on the new node
        assert all(
            after.chunk_node(k) == "10.0.0.9:7430"
            for k in KEYS
            if before.chunk_node(k) != after.chunk_node(k)
        )

    def test_leave_moves_only_the_leavers_keys(self):
        before = HashRing(NODES)
        after = before.without_node(NODES[0])
        for k in KEYS:
            if before.chunk_node(k) != NODES[0]:
                assert after.chunk_node(k) == before.chunk_node(k)

    def test_join_then_leave_is_identity(self):
        ring = HashRing(NODES)
        roundtrip = ring.with_node("x:1").without_node("x:1")
        assert all(
            ring.chunk_node(k) == roundtrip.chunk_node(k) for k in KEYS[:300]
        )
