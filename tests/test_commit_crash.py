"""Crash simulation: the commit protocol at every interruptible point.

The invariant (paper step 13, strengthened): a crash at *any* commit
point leaves either the previous generation or the new one fully
restorable — never a torn file presented as the newest generation.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.checkpoint.commit import (
    COMMIT_POINTS,
    atomic_commit,
    generation_chain,
    journal_path,
    recover_commit,
    tmp_path as commit_tmp_path,
)
from repro.checkpoint.reader import restart_vm_with_fallback
from repro.errors import CheckpointError, RestartError
from repro.faults.injectors import (
    CrashHooks,
    FailFsyncHooks,
    SimulatedCrashError,
    TornRenameHooks,
)

RODRIGO = get_platform("rodrigo")

OLD = b"previous generation payload " * 64
NEW = b"the replacement generation.. " * 64

#: Points at which the new payload is already durable (journal + complete
#: temp file), so recovery must roll *forward*; before these it must
#: leave the old generation newest.
ROLL_FORWARD_FROM = COMMIT_POINTS.index("tmp_written")


def read(path: str) -> bytes:
    with open(path, "rb") as f:
        return f.read()


class TestCrashAtEveryPoint:
    @pytest.mark.parametrize("point", COMMIT_POINTS)
    @pytest.mark.parametrize("retain", [0, 1, 2])
    def test_previous_or_new_generation_survives(self, tmp_path, point, retain):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD, retain=retain)
        hooks = CrashHooks(point)
        with pytest.raises(SimulatedCrashError):
            atomic_commit(path, NEW, retain=retain, hooks=hooks)
        assert hooks.reached[-1] == point

        outcome = recover_commit(path)
        chain = generation_chain(path)
        assert chain, "crash must never wipe out every generation"
        newest = read(chain[0])
        if COMMIT_POINTS.index(point) >= ROLL_FORWARD_FROM:
            assert newest == NEW, f"{point}: complete commit must roll forward"
        else:
            assert newest == OLD, f"{point}: incomplete commit must roll back"
        # No debris survives recovery, and recovery is idempotent.
        assert not os.path.exists(journal_path(path))
        assert not os.path.exists(commit_tmp_path(path))
        assert recover_commit(path) == "clean"
        assert outcome in (
            "clean", "rolled_back", "rolled_forward",
            "already_committed", "discarded_tmp",
        )

    @pytest.mark.parametrize("point", COMMIT_POINTS)
    def test_retained_generation_untouched_by_crash(self, tmp_path, point):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, b"gen-A" * 100, retain=2)
        atomic_commit(path, OLD, retain=2)
        with pytest.raises(SimulatedCrashError):
            atomic_commit(path, NEW, retain=2, hooks=CrashHooks(point))
        recover_commit(path)
        chain = generation_chain(path)
        contents = [read(p) for p in chain]
        # Both pre-crash generations still exist somewhere in the chain.
        assert OLD in contents
        assert b"gen-A" * 100 in contents


class TestRecoverCommitStates:
    def test_clean_noop(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        assert recover_commit(path) == "clean"
        assert read(path) == OLD

    def test_stray_tmp_discarded(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        with open(commit_tmp_path(path), "wb") as f:
            f.write(b"half-written garbage")
        assert recover_commit(path) == "discarded_tmp"
        assert read(path) == OLD

    def test_complete_tmp_rolls_forward(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        with pytest.raises(SimulatedCrashError):
            atomic_commit(path, NEW, hooks=CrashHooks("tmp_synced"))
        assert recover_commit(path) == "rolled_forward"
        assert read(path) == NEW

    def test_torn_tmp_rolls_back(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        with pytest.raises(SimulatedCrashError):
            atomic_commit(path, NEW, hooks=CrashHooks("tmp_partial"))
        assert recover_commit(path) == "rolled_back"
        assert read(path) == OLD

    def test_post_rename_journal_cleaned(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        with pytest.raises(SimulatedCrashError):
            atomic_commit(path, NEW, hooks=CrashHooks("dir_synced"))
        assert recover_commit(path) == "already_committed"
        assert read(path) == NEW

    def test_garbage_journal_rolls_back(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        with open(journal_path(path), "wb") as f:
            f.write(b"{not json")
        with open(commit_tmp_path(path), "wb") as f:
            f.write(b"whatever")
        assert recover_commit(path) == "rolled_back"
        assert read(path) == OLD

    def test_journal_mismatched_tmp_rolls_back(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        with open(journal_path(path), "w") as f:
            json.dump(
                {"path": "ck.bin", "size": 3, "sha256": "0" * 64}, f
            )
        with open(commit_tmp_path(path), "wb") as f:
            f.write(b"xyz")  # right size, wrong hash
        assert recover_commit(path) == "rolled_back"
        assert read(path) == OLD


class TestInjectedIOFailures:
    def test_failing_fsync_aborts_and_preserves_old(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD, retain=1)
        with pytest.raises(CheckpointError):
            atomic_commit(
                path, NEW, retain=1,
                hooks=FailFsyncHooks(fail_on=2, crash_after=False),
            )
        # Abort cleaned up after itself; the old head is untouched.
        assert read(path) == OLD
        assert not os.path.exists(commit_tmp_path(path))
        assert not os.path.exists(journal_path(path))

    def test_failing_fsync_as_crash(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD)
        with pytest.raises(SimulatedCrashError):
            atomic_commit(path, NEW, hooks=FailFsyncHooks(fail_on=1))
        recover_commit(path)
        assert read(generation_chain(path)[0]) == OLD

    def test_torn_rename_detected_by_recovery(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        atomic_commit(path, OLD, retain=1)
        with pytest.raises(SimulatedCrashError):
            atomic_commit(
                path, NEW, retain=1, hooks=TornRenameHooks(keep_fraction=0.5)
            )
        # The head is the torn artifact; recovery removes the journal and
        # the generation chain still holds the old payload at path.1.
        assert recover_commit(path) == "rolled_back"
        chain = generation_chain(path)
        assert OLD in [read(p) for p in chain]


#: Two checkpoints: the second commit is the one the crash interrupts,
#: so path.1 always holds a complete, restorable first checkpoint.
CRASH_PROGRAM = """
let x = ref 0;;
x := 11;;
checkpoint ();;
x := !x * 4;;
checkpoint ();;
print_string "x=";;
print_int !x;;
"""


class TestVMCheckpointCrash:
    @pytest.mark.parametrize("point", COMMIT_POINTS[:-1])
    def test_restore_after_midwrite_crash(self, tmp_path, point):
        """A VM whose *second* checkpoint commit dies at ``point`` must
        still be restorable: either from the completed second checkpoint
        (roll-forward) or the retained first one."""
        path = str(tmp_path / "ck.hckp")
        code = compile_source(CRASH_PROGRAM)
        vm2 = VirtualMachine(
            RODRIGO,
            code,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking", chkpt_retain=1),
            stdout=io.BytesIO(),
        )

        class ArmSecond(CrashHooks):
            """Let the first commit through, kill the second."""

            def __init__(self, crash_at: str) -> None:
                super().__init__(crash_at)
                self.commits_seen = 0

            def point(self, name: str) -> None:
                if name == "begin":
                    self.commits_seen += 1
                if self.commits_seen < 2:
                    return
                super().point(name)

        vm2.config.commit_hooks = ArmSecond(point)
        with pytest.raises(SimulatedCrashError):
            vm2.run(max_instructions=20_000_000)

        out = io.BytesIO()
        vm3, stats = restart_vm_with_fallback(
            RODRIGO, code, path, VMConfig(chkpt_state="disable"), stdout=out
        )
        r = vm3.run(max_instructions=20_000_000)
        assert r.status == "stopped"
        # Restored from the second checkpoint → x was already 44;
        # restored from the first → the multiply re-executes.  Both give
        # the uninterrupted answer.
        assert r.stdout == b"x=44"

    def test_chain_exhausted_is_typed(self, tmp_path):
        path = str(tmp_path / "none.hckp")
        code = compile_source(CRASH_PROGRAM)
        with pytest.raises(RestartError):
            restart_vm_with_fallback(RODRIGO, code, path)
