"""Model-based (stateful) testing of the heap allocator and GC.

A hypothesis rule machine mirrors the VM heap with a Python-side model:
allocations, frees, mutations and full collections must always leave
the chunk coverage intact, the freelist consistent, and every value
stored in a live block readable back unchanged.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.arch.platforms import RODRIGO
from repro.gc import GCController
from repro.gc.roots import AttrSlot
from repro.memory import MemoryManager


class _Roots:
    """Root provider over a fixed array of slots."""

    N = 8

    def __init__(self, mem):
        self.mem = mem
        self.slots = [mem.values.val_unit] * self.N

    def iter_roots(self):
        for i in range(self.N):
            yield _Slot(self.slots, i)


class _Slot:
    __slots__ = ("lst", "i")

    def __init__(self, lst, i):
        self.lst = lst
        self.i = i

    def load(self):
        return self.lst[self.i]

    def store(self, v):
        self.lst[self.i] = v


class HeapMachine(RuleBasedStateMachine):
    """Drives the real heap against a Python model of live contents."""

    def __init__(self):
        super().__init__()
        self.mem = MemoryManager(RODRIGO, minor_words=256, chunk_words=2048)
        self.roots = _Roots(self.mem)
        self.gc = GCController(self.mem, self.roots)
        #: model: root slot index -> list of ints it should contain
        self.model: dict[int, list[int]] = {}
        self._counter = 0

    slots = Bundle("slots")

    @rule(target=slots, size=st.integers(1, 12), slot=st.integers(0, 7))
    def allocate_rooted(self, size, slot):
        """Allocate a block of ints and root it."""
        self._counter += 1
        values = [self._counter * 100 + i for i in range(size)]
        block = self.mem.make_block(
            0, [self.mem.values.val_int(x) for x in values]
        )
        self.roots.slots[slot] = block
        self.model[slot] = values
        return slot

    @rule(slot=slots)
    def drop_root(self, slot):
        """Unroot a block (it may be reclaimed)."""
        self.roots.slots[slot] = self.mem.values.val_unit
        self.model.pop(slot, None)

    @rule(slot=slots, index=st.integers(0, 11), value=st.integers(-1000, 1000))
    def mutate(self, slot, index, value):
        """Overwrite one field through the write barrier."""
        if slot not in self.model:
            return
        values = self.model[slot]
        index %= len(values)
        block = self.roots.slots[slot]
        self.mem.set_field(block, index, self.mem.values.val_int(value))
        values[index] = value

    @rule(n=st.integers(1, 30))
    def churn(self, n):
        """Allocate unrooted garbage."""
        for i in range(n):
            self.mem.make_block(0, [self.mem.values.val_int(i)] * 3)

    @rule()
    def minor(self):
        self.gc.minor_collection()

    @rule()
    def full_major(self):
        self.gc.full_major()

    @invariant()
    def live_contents_intact(self):
        v = self.mem.values
        for slot, values in self.model.items():
            block = self.roots.slots[slot]
            assert self.mem.size_of(block) == len(values)
            for i, expected in enumerate(values):
                assert v.int_val(self.mem.field(block, i)) == expected

    @invariant()
    def heap_structurally_sound(self):
        self.mem.heap.check_integrity()


HeapMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
TestHeapMachine = HeapMachine.TestCase
