"""Stress: GC pressure + threads + repeated heterogeneous C/R at once."""

from __future__ import annotations

import pytest

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)

# Two worker threads churn the heap under a mutex while the main thread
# takes repeated checkpoints; GC runs constantly (tiny minor heap).
SOURCE = """
let m = mutex_create ();;
let shared = ref [];;
let finished = ref 0;;
let rec take l k = if k = 0 then l else (match l with [] -> [] | _ :: t -> take t (k - 1));;
let rec length l = match l with [] -> 0 | _ :: t -> 1 + length t;;
let worker seed () =
  begin
    for i = 1 to 120 do
      mutex_lock m;
      shared := (i * seed) :: !shared;
      (if length !shared > 40 then shared := take !shared 20);
      mutex_unlock m;
      (if i mod 30 = 0 then thread_yield ())
    done;
    mutex_lock m;
    finished := !finished + 1;
    mutex_unlock m
  end;;
let t1 = thread_create (worker 3);;
let t2 = thread_create (worker 7);;
checkpoint ();;
thread_join t1;;
checkpoint ();;
thread_join t2;;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
print_int !finished;;
print_string ":";;
print_int (length !shared)
"""


@pytest.mark.parametrize("hops", [["sp2148", "csd", "rodrigo"]])
def test_gc_threads_and_migration_chain(hops, tmp_path):
    path = str(tmp_path / "stress.hckp")
    code = compile_source(SOURCE)
    cfg = dict(minor_words=512, quantum=23, chunk_words=2048)
    vm = VirtualMachine(
        get_platform("rodrigo"), code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking", **cfg),
    )
    reference = vm.run(max_instructions=20_000_000)
    assert reference.status == "stopped"
    assert vm.checkpoints_taken == 2
    vm.mem.heap.check_integrity()

    # Chain the final checkpoint through three architectures; at each hop
    # run a slice, re-checkpoint, and verify the heap stays sound.
    out = b""
    for hop in hops:
        vm, _ = restart_vm(
            get_platform(hop), code, path,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking", **cfg),
        )
        result = vm.run(max_instructions=20_000_000)
        assert result.status == "stopped"
        vm.mem.heap.check_integrity()
        vm.gc.full_major()
        vm.mem.heap.check_integrity()
        out = result.stdout
    assert out == reference.stdout


def test_many_sequential_checkpoints_same_file(tmp_path):
    """50 checkpoints into one file: the commit protocol never leaves a
    corrupt file behind, and the last one always wins."""
    src = """
    let r = ref 0;;
    while !r < 50 do
      r := !r + 1;
      checkpoint ()
    done;;
    print_int !r
    """
    path = str(tmp_path / "many.hckp")
    code = compile_source(src)
    vm = VirtualMachine(
        get_platform("rodrigo"), code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
    )
    result = vm.run(max_instructions=10_000_000)
    assert result.stdout == b"50"
    assert vm.checkpoints_taken == 50
    vm2, _ = restart_vm(get_platform("ultra64"), code, path)
    assert vm2.run(max_instructions=10_000_000).stdout == b"50"


def test_background_checkpoints_overlap_execution(tmp_path):
    """Background writers from successive checkpoints never corrupt one
    another (each checkpoint joins the previous writer first)."""
    src = """
    let big = Array.make 20000 1;;
    let r = ref 0;;
    while !r < 6 do
      r := !r + 1;
      big.(!r) <- !r;
      checkpoint ()
    done;;
    print_int big.(3)
    """
    path = str(tmp_path / "bg.hckp")
    code = compile_source(src)
    vm = VirtualMachine(
        get_platform("rodrigo"), code,
        VMConfig(chkpt_filename=path, chkpt_mode="background"),
    )
    result = vm.run(max_instructions=10_000_000)
    assert result.stdout == b"3"
    assert vm.checkpoints_taken == 6
    vm2, _ = restart_vm(get_platform("rodrigo"), code, path)
    assert vm2.run(max_instructions=10_000_000).stdout == b"3"
