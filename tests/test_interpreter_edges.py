"""Edge-case and error-path tests for the interpreter."""

from __future__ import annotations

import pytest

from repro.arch.platforms import RODRIGO, SP2148
from repro.bytecode import Assembler, CodeImage, Op
from repro.errors import BytecodeError, VMRuntimeError
from repro.interpreter.primitives import STANDARD_PRIMITIVES
from repro.vm import VirtualMachine, VMConfig


def run_asm(build, platform=RODRIGO, max_instructions=100_000, **kw):
    asm = Assembler("edge")
    build(asm)
    vm = VirtualMachine(platform, asm.assemble(), VMConfig(**kw))
    return vm, vm.run(max_instructions=max_instructions)


class TestDispatchErrors:
    def test_illegal_opcode(self):
        vm = VirtualMachine(RODRIGO, CodeImage([119, 0]), VMConfig())
        with pytest.raises(BytecodeError, match="illegal opcode"):
            vm.run(max_instructions=10)

    def test_c_call_arity_mismatch(self):
        def build(a):
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.C_CALL, 2, STANDARD_PRIMITIVES.by_name("print_int").pid)
            a.emit(Op.STOP)

        with pytest.raises(BytecodeError, match="expects 1"):
            run_asm(build)

    def test_unknown_primitive_id(self):
        def build(a):
            a.emit(Op.CONSTINT, 0)
            a.emit(Op.C_CALL, 1, 9999)
            a.emit(Op.STOP)

        with pytest.raises(BytecodeError, match="unknown primitive"):
            run_asm(build)

    def test_bad_code_address_in_apply(self):
        def build(a):
            # Apply an "closure" whose code pointer is garbage (a block
            # holding an immediate).
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.MAKEBLOCK, 1, 250)
            a.emit(Op.APPLY, 1)
            a.emit(Op.STOP)

        with pytest.raises(VMRuntimeError, match="bad code address"):
            run_asm(build)

    def test_budget_stops_between_instructions(self):
        def build(a):
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 2)
            a.emit(Op.STOP)

        vm, result = run_asm(build, max_instructions=2)
        assert result.status == "budget"
        assert vm.interp.instructions == 2
        # Resuming with a fresh budget completes the program.
        assert vm.run(max_instructions=10).status == "stopped"


class TestStackDiscipline:
    def test_appterm_moves_arguments(self):
        # f x = g (x+1) as a tail call; g y = y*2.
        def build(a):
            g = a.label()
            f = a.label()
            ret = a.label()
            a.emit(Op.CLOSURE, 0, f)
            a.emit(Op.PUSH)
            a.emit(Op.PUSH_RETADDR, ret)
            a.emit(Op.CONSTINT, 20)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 4)
            a.emit(Op.APPLY, 1)
            a.place(ret)
            a.emit(Op.C_CALL, 1, STANDARD_PRIMITIVES.by_name("print_int").pid)
            a.emit(Op.POP, 1)
            a.emit(Op.STOP)
            a.place(f)
            a.emit(Op.ACC, 0)
            a.emit(Op.OFFSETINT, 1)
            a.emit(Op.PUSH)
            a.emit(Op.CLOSURE, 0, g)
            a.emit(Op.APPTERM, 1, 2)   # replaces f's frame
            a.place(g)
            a.emit(Op.CONSTINT, 2)
            a.emit(Op.PUSH)
            a.emit(Op.ACC, 1)
            a.emit(Op.MULINT)
            a.emit(Op.RETURN, 1)

        vm, result = run_asm(build)
        assert result.stdout == b"42"
        assert vm.main_stack.used_words == 0

    def test_stack_balanced_after_program(self):
        from repro import compile_source

        code = compile_source("""
        let rec f n = if n = 0 then 0 else f (n - 1);;
        let _ = f 100;;
        let l = List.map (fun x -> x) [1;2;3];;
        print_int (List.length l)
        """)
        vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        result = vm.run(max_instructions=1_000_000)
        assert result.stdout == b"3"
        assert vm.main_stack.used_words == 0

    def test_restart_op_outside_grab_context(self):
        # RESTART with env = a closure of size 2 pushes zero args.
        def build(a):
            body = a.label()
            a.emit(Op.CLOSURE, 1, body)  # env with one captured var
            a.emit(Op.STOP)
            a.place(body)
            a.emit(Op.STOP)

        vm, result = run_asm(build)
        assert result.status == "stopped"


class TestRegisterSnapshot:
    def test_snapshot_registers_roundtrip(self):
        from repro import compile_source

        code = compile_source("let x = [1; 2] in (checkpoint (); print_int 1)")
        vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        vm.run(max_instructions=50)
        regs = vm.interp.snapshot_registers()
        assert regs.pc == vm.code_base + 4 * vm.interp.pc
        assert regs.sp == vm.main_stack.sp

    def test_code_index_validation(self):
        from repro import compile_source

        code = compile_source("print_int 1")
        vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
        with pytest.raises(VMRuntimeError):
            vm.interp.code_index(vm.code_base + 2)  # misaligned
        with pytest.raises(VMRuntimeError):
            vm.interp.code_index(vm.code_base - 4)  # out of range


class TestArchSensitiveOps:
    @pytest.mark.parametrize("platform", [RODRIGO, SP2148], ids=["32", "64"])
    def test_shift_masking(self, platform):
        # Shifting by >= word size is masked like hardware.
        def build(a):
            a.emit(Op.CONSTINT, platform.arch.bits + 1)
            a.emit(Op.PUSH)
            a.emit(Op.CONSTINT, 1)
            a.emit(Op.LSLINT)
            a.emit(Op.C_CALL, 1, STANDARD_PRIMITIVES.by_name("print_int").pid)
            a.emit(Op.STOP)

        vm, result = run_asm(build, platform=platform)
        # 1 << ((bits+1) & (bits-1)) == 1 << 1 on both word sizes.
        assert result.stdout == b"2"

    def test_boolnot_only_flips_false(self):
        def build(a):
            a.emit(Op.CONSTINT, 5)  # truthy non-1 value
            a.emit(Op.BOOLNOT)
            a.emit(Op.C_CALL, 1, STANDARD_PRIMITIVES.by_name("print_int").pid)
            a.emit(Op.STOP)

        _, result = run_asm(build)
        assert result.stdout == b"0"
