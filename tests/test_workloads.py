"""Tests for the paper's workload generators."""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform, restart_vm
from repro.workloads import (
    alloc_expected,
    alloc_source,
    insertion_sort_expected,
    insertion_sort_source,
    matmul_expected,
    matmul_source,
)

RODRIGO = get_platform("rodrigo")


def run_plain(src, max_instructions=50_000_000):
    code = compile_source(src)
    vm = VirtualMachine(RODRIGO, code, VMConfig(chkpt_state="disable"))
    result = vm.run(max_instructions=max_instructions)
    assert result.status == "stopped"
    return result


class TestMatmul:
    @pytest.mark.parametrize("n", [1, 2, 5, 12])
    def test_result_correct(self, n):
        assert run_plain(matmul_source(n, checkpoint=False)).stdout == matmul_expected(n)

    def test_heap_grows_quadratically(self):
        def live(vm):
            return vm.mem.minor.used_words + vm.mem.heap.live_words()

        small = run_plain(matmul_source(4, checkpoint=False)).vm
        big = run_plain(matmul_source(16, checkpoint=False)).vm
        assert live(big) > live(small) * 4

    def test_checkpoint_mid_computation_restarts(self, tmp_path):
        path = str(tmp_path / "mm.hckp")
        src = matmul_source(8)
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        assert vm.run(max_instructions=50_000_000).stdout == matmul_expected(8)
        vm2, _ = restart_vm(get_platform("sp2148"), code, path)
        assert vm2.run(max_instructions=50_000_000).stdout == matmul_expected(8)


class TestInsertionSort:
    @pytest.mark.parametrize("n", [1, 10, 50])
    def test_sorts(self, n):
        out = run_plain(insertion_sort_source(n, checkpoint=False)).stdout
        assert out == insertion_sort_expected(n)

    def test_stack_grows_with_n(self):
        """The paper's point: this workload is stack-bound."""
        code = compile_source(insertion_sort_source(400, checkpoint=False))
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_state="disable", stack_words=512)
        )
        result = vm.run(max_instructions=50_000_000)
        assert result.status == "stopped"
        assert vm.main_stack.realloc_count >= 1

    def test_checkpoint_at_deepest_recursion_restarts(self, tmp_path):
        path = str(tmp_path / "is.hckp")
        src = insertion_sort_source(120)
        code = compile_source(src)
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        assert vm.run(max_instructions=50_000_000).stdout == insertion_sort_expected(120)
        assert vm.checkpoints_taken == 1
        # The checkpoint captured a deep recursion tower; restarting on a
        # big-endian machine unwinds it correctly.
        vm2, _ = restart_vm(get_platform("csd"), code, path)
        assert vm2.run(max_instructions=50_000_000).stdout == insertion_sort_expected(120)

    def test_checkpointed_stack_is_deep(self, tmp_path):
        from repro.checkpoint.format import read_checkpoint

        path = str(tmp_path / "deep.hckp")
        n = 150
        code = compile_source(insertion_sort_source(n))
        vm = VirtualMachine(
            RODRIGO, code, VMConfig(chkpt_filename=path, chkpt_mode="blocking")
        )
        vm.run(max_instructions=50_000_000)
        snap = read_checkpoint(path)
        main = next(t for t in snap.threads if t.tid == 0)
        # ~4 words per frame x n frames, at least.
        assert len(main.stack_words) > 3 * n


class TestAlloc:
    def test_fills_heap(self, tmp_path):
        total = 64 * 1024
        result = run_plain(alloc_source(total, checkpoint=False))
        assert result.stdout == alloc_expected(total)
        assert result.vm.mem.heap.live_words() >= total

    def test_checkpoint_size_tracks_parameter(self, tmp_path):
        sizes = {}
        for total in (32 * 1024, 128 * 1024):
            path = str(tmp_path / f"a{total}.hckp")
            code = compile_source(alloc_source(total))
            vm = VirtualMachine(
                RODRIGO, code,
                VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
            )
            assert vm.run(max_instructions=50_000_000).stdout == alloc_expected(total)
            sizes[total] = vm.last_checkpoint_stats.file_bytes
        # Chunks are dumped whole (free space included, as in the paper),
        # so the ratio is a bit below the 4x of the live data.
        assert sizes[128 * 1024] > 2 * sizes[32 * 1024]
