"""Tests for the VM stack, minor heap, atoms, C-globals and manager."""

from __future__ import annotations

import pytest

from repro.arch.platforms import RODRIGO, SP2148
from repro.errors import VMRuntimeError
from repro.memory import AddressSpace, MemoryManager, VMStack
from repro.memory.atoms import AtomTable
from repro.memory.blocks import STRING_TAG, DOUBLE_TAG
from repro.memory.minor_heap import MAX_YOUNG_WOSIZE, MinorHeap


def fresh_stack(n_words=8):
    space = AddressSpace(RODRIGO.arch)
    return VMStack(space, RODRIGO.arch, RODRIGO.layout.stack_base, n_words)


class TestVMStack:
    def test_push_pop(self):
        s = fresh_stack()
        s.push(1)
        s.push(2)
        assert s.used_words == 2
        assert s.pop() == 2
        assert s.pop() == 1
        assert s.used_words == 0

    def test_underflow(self):
        s = fresh_stack()
        with pytest.raises(VMRuntimeError):
            s.pop()

    def test_peek_poke(self):
        s = fresh_stack()
        for v in (10, 20, 30):
            s.push(v)
        assert s.peek(0) == 30
        assert s.peek(2) == 10
        s.poke(1, 99)
        assert s.peek(1) == 99

    def test_grows_by_doubling(self):
        s = fresh_stack(n_words=4)
        high = s.stack_high
        for i in range(20):
            s.push(i)
        assert s.n_words >= 20
        assert s.realloc_count >= 2
        assert s.stack_high == high  # the high end never moves
        # Contents survive the reallocations.
        assert [s.pop() for _ in range(20)] == list(range(19, -1, -1))

    def test_sp_is_stable_across_growth(self):
        s = fresh_stack(n_words=4)
        for i in range(4):
            s.push(i)
        sp_before = s.sp
        s.push(4)  # triggers growth
        assert s.sp == sp_before - 4

    def test_overflow_limit(self):
        s = fresh_stack(n_words=4)
        s.max_words = 8
        with pytest.raises(VMRuntimeError):
            for i in range(100):
                s.push(i)

    def test_used_slice_top_first(self):
        s = fresh_stack()
        s.push(1)
        s.push(2)
        assert s.used_slice() == [2, 1]


class TestMinorHeap:
    def test_bump_allocation(self):
        space = AddressSpace(RODRIGO.arch)
        m = MinorHeap(space, RODRIGO.arch, RODRIGO.layout.minor_base, 64)
        b1 = m.try_alloc(3, 0)
        b2 = m.try_alloc(3, 0)
        assert b2 == b1 + 4 * 4
        assert m.used_words == 8

    def test_full_returns_none(self):
        space = AddressSpace(RODRIGO.arch)
        m = MinorHeap(space, RODRIGO.arch, RODRIGO.layout.minor_base, 8)
        assert m.try_alloc(6, 0) is not None
        assert m.try_alloc(6, 0) is None

    def test_reset_empties(self):
        space = AddressSpace(RODRIGO.arch)
        m = MinorHeap(space, RODRIGO.arch, RODRIGO.layout.minor_base, 64)
        m.try_alloc(3, 0)
        assert not m.is_empty()
        m.reset()
        assert m.is_empty() and m.used_words == 0

    def test_contains(self):
        space = AddressSpace(RODRIGO.arch)
        m = MinorHeap(space, RODRIGO.arch, RODRIGO.layout.minor_base, 64)
        b = m.try_alloc(3, 0)
        assert m.contains(b)
        assert not m.contains(m.young_end)


class TestAtoms:
    def test_atoms_have_correct_tags(self):
        space = AddressSpace(RODRIGO.arch)
        atoms = AtomTable(space, RODRIGO.arch, RODRIGO.layout.atom_base)
        for t in (0, 1, 255):
            a = atoms.atom(t)
            assert atoms.contains(a)
            assert atoms.tag_of(a) == t
            # The header just before the atom pointer carries the tag.
            hd = space.load(a - 4)
            assert hd & 0xFF == t
            assert hd >> 10 == 0  # size 0

    def test_out_of_range(self):
        space = AddressSpace(RODRIGO.arch)
        atoms = AtomTable(space, RODRIGO.arch, RODRIGO.layout.atom_base)
        with pytest.raises(ValueError):
            atoms.atom(256)


class TestMemoryManager:
    def test_small_blocks_go_young(self):
        mem = MemoryManager(RODRIGO)
        b = mem.alloc(4, 0)
        assert mem.is_young(b)

    def test_large_blocks_go_major(self):
        mem = MemoryManager(RODRIGO)
        b = mem.alloc(MAX_YOUNG_WOSIZE + 1, 0)
        assert mem.is_in_heap(b)

    def test_zero_size_is_atom(self):
        mem = MemoryManager(RODRIGO)
        assert mem.alloc(0, 3) == mem.atoms.atom(3)

    def test_make_block_and_fields(self):
        mem = MemoryManager(RODRIGO)
        v = mem.values
        b = mem.make_block(0, [v.val_int(1), v.val_int(2)])
        assert mem.tag_of(b) == 0
        assert mem.size_of(b) == 2
        assert v.int_val(mem.field(b, 1)) == 2
        mem.set_field(b, 0, v.val_int(9))
        assert v.int_val(mem.field(b, 0)) == 9

    def test_strings_roundtrip(self, platform):
        mem = MemoryManager(platform)
        s = mem.make_string(b"heterogeneous")
        assert mem.tag_of(s) == STRING_TAG
        assert mem.read_string(s) == b"heterogeneous"
        assert mem.string_length(s) == 13
        assert mem.string_get(s, 0) == ord("h")
        mem.string_set(s, 0, ord("H"))
        assert mem.read_string(s) == b"Heterogeneous"

    def test_string_bounds_checked(self):
        mem = MemoryManager(RODRIGO)
        s = mem.make_string(b"ab")
        with pytest.raises(VMRuntimeError):
            mem.string_get(s, 2)
        with pytest.raises(VMRuntimeError):
            mem.string_set(s, -1, 0)

    def test_floats_roundtrip(self, platform):
        mem = MemoryManager(platform)
        f = mem.make_float(3.25)
        assert mem.tag_of(f) == DOUBLE_TAG
        assert mem.read_float(f) == 3.25

    def test_write_barrier_records_young_in_major(self):
        mem = MemoryManager(RODRIGO)
        big = mem.alloc(MAX_YOUNG_WOSIZE + 1, 0)  # major
        young = mem.alloc(2, 0)  # minor
        mem.set_field(big, 0, young)
        addr = big + 0 * 4
        assert addr in mem.reftable
        mem.set_field(big, 0, mem.values.val_int(0))
        assert addr not in mem.reftable

    def test_no_barrier_for_young_into_young(self):
        mem = MemoryManager(RODRIGO)
        a = mem.alloc(2, 0)
        b = mem.alloc(2, 0)
        mem.set_field(a, 0, b)
        assert not mem.reftable

    def test_minor_exhaustion_without_hook_raises(self):
        mem = MemoryManager(RODRIGO, minor_words=32)
        with pytest.raises(VMRuntimeError):
            for _ in range(20):
                mem.alloc(4, 0)

    def test_64bit_platform_geometry(self):
        mem = MemoryManager(SP2148)
        b = mem.make_block(0, [mem.values.val_int(5)])
        assert mem.field(b, 0) == 11  # (5 << 1) | 1
