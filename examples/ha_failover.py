#!/usr/bin/env python3
"""Store-backed high availability with heterogeneous auto-restart.

A checkpoint store daemon runs in the background; a workload VM pushes
periodic checkpoints to it (content-addressed, so consecutive
checkpoints of a slowly-changing heap dedup heavily).  A supervisor
kills the machine at random instruction budgets and restarts the
program from the store's latest manifest on a platform differing in
*both* endianness and word size — every recovery exercises the paper's
full heterogeneous conversion path — until the program completes with
output bit-identical to an uninterrupted run.

Run:  python examples/ha_failover.py
"""

from __future__ import annotations

import tempfile

from repro import VMConfig, VirtualMachine, compile_source, get_platform
from repro.store import ChunkStore, HASupervisor, StoreClient, StoreServer

# The same bounded-sum workload as periodic_fault_tolerance.py: enough
# iterations for several checkpoint intervals, small enough to stay
# within 31-bit ints on the 32-bit machines.
SOURCE = """
let limit = 40000;;
let total = ref 0;;
let i = ref 0;;
while !i < limit do
  i := !i + 1;
  total := !total + !i
done;;
print_string "sum = ";;
print_int !total
"""


def main() -> None:
    code = compile_source(SOURCE)

    # The reference: one uninterrupted run on the starting platform.
    vm = VirtualMachine(
        get_platform("rodrigo"), code, VMConfig(chkpt_state="disable")
    )
    expected = vm.run().stdout

    # A live store daemon on an ephemeral port, plus a client for it.
    server = StoreServer(ChunkStore(tempfile.mkdtemp(prefix="repro-store-")))
    host, port = server.start()
    try:
        with StoreClient(host, port) as client:
            supervisor = HASupervisor(
                code,
                client,
                "ha-demo",
                start_platform="rodrigo",
                checkpoint_every=20_000,
                fault_budgets=(30_000, 80_000),
                max_faults=3,
                seed=7,
            )
            report = supervisor.run()
    finally:
        server.stop()

    print(f"completed: {report.completed} (exit {report.exit_code})")
    print(f"faults injected : {report.faults_injected}")
    print(f"restarts        : {report.restarts} warm, "
          f"{report.cold_restarts} cold")
    print(f"platform path   : {' -> '.join(report.platforms_visited)}")
    print(f"checkpoints     : {report.checkpoints} "
          f"({len(report.generations)} generation(s) stored)")
    print(f"dedup ratio     : {report.upload_stats.dedup_ratio:.2f}x")
    print(f"work lost       : {report.work_lost_instructions} instructions")
    if report.restart_latencies:
        worst = max(report.restart_latencies) * 1e3
        print(f"restart latency : worst {worst:.1f} ms")
    print(f"output          : {report.stdout.decode()!r}")

    assert report.completed
    assert report.stdout == expected, "HA output diverged from reference"
    assert report.upload_stats.dedup_ratio > 2.0
    print("bit-identical to the uninterrupted run; no work repeated or lost.")


if __name__ == "__main__":
    main()
