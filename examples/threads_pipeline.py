#!/usr/bin/env python3
"""Checkpointing a multi-threaded application (paper §3.1.4 / §3.2.3).

A producer thread feeds a queue guarded by a mutex + condition
variable; two consumer threads drain it.  The checkpoint is taken while
the consumers are blocked on the condition variable — the hardest case
the paper discusses: restart must recreate every thread with its
private stack, registers and blocking state *before any of them runs*,
or wake-ups would be lost.

The restart happens on a 64-bit machine, so every thread stack is also
widened word by word.

Run:  python examples/threads_pipeline.py
"""

from __future__ import annotations

import tempfile

from repro import VirtualMachine, VMConfig, compile_source, get_platform, restart_vm
from repro.checkpoint.format import read_checkpoint

SOURCE = """
let m = mutex_create ();;
let c = condition_create ();;
let queue = ref [];;
let produced = ref 0;;
let consumed = ref 0;;
let done_flag = ref 0;;

let consumer () =
  let rec loop () =
    begin
      mutex_lock m;
      while (match !queue with [] -> !done_flag = 0 | _ :: _ -> false) do
        condition_wait c m
      done;
      match !queue with
      | [] -> mutex_unlock m   (* done_flag set and queue empty: exit *)
      | h :: t ->
        begin
          queue := t;
          consumed := !consumed + h;
          mutex_unlock m;
          loop ()
        end
    end
  in loop ();;

let c1 = thread_create consumer;;
let c2 = thread_create consumer;;
thread_yield ();;            (* let both consumers block on the condvar *)
checkpoint ();;              (* <- both consumers are BLOCKED right here *)

for i = 1 to 20 do
  mutex_lock m;
  queue := i :: !queue;
  produced := !produced + i;
  condition_signal c;
  mutex_unlock m;
  thread_yield ()
done;;
mutex_lock m;;
done_flag := 1;;
condition_broadcast c;;
mutex_unlock m;;
thread_join c1;;
thread_join c2;;
print_string "produced=";;
print_int !produced;;
print_string " consumed=";;
print_int !consumed
"""


def main() -> None:
    code = compile_source(SOURCE)
    ckpt = tempfile.mktemp(suffix=".hckp")

    origin = get_platform("rodrigo")
    vm = VirtualMachine(
        origin, code,
        VMConfig(chkpt_filename=ckpt, chkpt_mode="blocking", quantum=40),
    )
    result = vm.run()
    print(f"[{origin.name}] pipeline finished: {result.stdout.decode()!r} "
          f"({vm.sched.switches} context switches)")

    snap = read_checkpoint(ckpt)
    states = {t.tid: (t.state, t.block_kind) for t in snap.threads}
    print(f"checkpoint holds {len(snap.threads)} threads: {states}")
    blocked = [t for t in snap.threads if t.state == "blocked"]
    print(f"{len(blocked)} thread(s) were blocked on the condition variable "
          f"at checkpoint time")

    target = get_platform("sp2148")
    vm2, stats = restart_vm(
        target, code, ckpt, VMConfig(quantum=40)
    )
    result2 = vm2.run()
    print(f"[{target.name}] restarted (word-size conversion: "
          f"{stats.converted_word_size}); continued: {result2.stdout.decode()!r}")
    assert result2.stdout == b"produced=210 consumed=210"
    print("every queued item was consumed exactly once across the restart.")


if __name__ == "__main__":
    main()
