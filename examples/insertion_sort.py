#!/usr/bin/env python3
"""The paper's second test application: the recursive insertion sort
from the OCaml user's guide (Figure 9).

Unlike matmul, this workload's state lives on the *stack*: the sort is
not tail-recursive, so at the deepest point of the recursion the VM
stack holds one frame per list element.  The checkpoint is taken at
exactly that point, and the restart — on a big-endian machine —
rebuilds the whole recursion tower before unwinding it.

Run:  python examples/insertion_sort.py
"""

from __future__ import annotations

import tempfile

from repro import VirtualMachine, VMConfig, compile_source, get_platform, restart_vm
from repro.checkpoint.format import read_checkpoint
from repro.workloads import insertion_sort_expected, insertion_sort_source

N = 250


def main() -> None:
    code = compile_source(insertion_sort_source(N))
    ckpt = tempfile.mktemp(suffix=".hckp")

    origin = get_platform("rodrigo")
    vm = VirtualMachine(
        origin, code, VMConfig(chkpt_filename=ckpt, chkpt_mode="blocking")
    )
    result = vm.run()
    print(f"[{origin.name}] sorted {N} pseudo-random ints: "
          f"{result.stdout.decode()!r}")

    snap = read_checkpoint(ckpt)
    main_thread = next(t for t in snap.threads if t.tid == 0)
    print(f"checkpoint captured {len(main_thread.stack_words)} stack words "
          f"(~{len(main_thread.stack_words) // N} per recursion frame) and "
          f"{sum(len(w) for _, w in snap.heap_chunks)} heap words")

    target = get_platform("csd")  # UltraSparc/Solaris: big-endian
    vm2, stats = restart_vm(target, code, ckpt)
    print(f"[{target.name}] restarted with endianness conversion "
          f"in {stats.total_seconds * 1e3:.1f} ms "
          f"(pointer fixing + payload repacking included)")
    result2 = vm2.run()
    print(f"[{target.name}] unwound the recursion: {result2.stdout.decode()!r}")
    assert result2.stdout == insertion_sort_expected(N)
    print("sorted output verified on the restarting machine.")


if __name__ == "__main__":
    main()
