#!/usr/bin/env python3
"""Quickstart: compile a MiniML program, run it, checkpoint it on one
simulated machine and restart it on a machine with a different
architecture — the paper's headline capability in ~40 lines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import (
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)

SOURCE = """
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);;
let precomputed = fib 18;;
checkpoint ();;   (* <- state saved here, in native representation *)
print_string "fib 18 = ";;
print_int precomputed;;
print_string ", and fib 10 computed after restart = ";;
print_int (fib 10)
"""


def main() -> None:
    code = compile_source(SOURCE)
    ckpt = tempfile.mktemp(suffix=".hckp")

    # rodrigo is the paper's checkpointing machine: 32-bit little-endian
    # Intel Pentium II running Linux.
    origin = get_platform("rodrigo")
    vm = VirtualMachine(origin, code, VMConfig(chkpt_filename=ckpt))
    result = vm.run()
    print(f"[{origin.name}] ran to completion: {result.stdout.decode()!r}")
    print(f"[{origin.name}] checkpoint file: {ckpt} "
          f"({vm.last_checkpoint_stats.file_bytes} bytes, "
          f"mode={vm.last_checkpoint_stats.mode})")

    # sp2148 is the paper's Alpha: 64-bit.  Every word of the checkpoint
    # is widened during restart; pointers are re-based; execution then
    # continues from the instruction after `checkpoint ()`.
    target = get_platform("sp2148")
    vm2, stats = restart_vm(target, code, ckpt)
    print(f"[{target.name}] restart converted: "
          f"endianness={stats.converted_endianness}, "
          f"word_size={stats.converted_word_size} "
          f"(in {stats.total_seconds * 1e3:.1f} ms)")
    result2 = vm2.run()
    print(f"[{target.name}] continued run:     {result2.stdout.decode()!r}")

    assert result.stdout == result2.stdout
    print("outputs identical — the migration was transparent.")


if __name__ == "__main__":
    main()
