#!/usr/bin/env python3
"""System-initiated periodic checkpointing (paper §4.1, CHKPT_INTERVAL).

A long computation runs with a checkpoint timer.  We repeatedly "crash"
the machine at arbitrary points (by cutting its instruction budget) and
restart from the latest checkpoint file on a randomly chosen platform
from Table 1 — losing at most one checkpoint interval of work each
time, never the whole computation.

The VM is configured through the same environment-variable convention
the paper's OCVM uses: CHKPT_STATE / CHKPT_FILENAME / CHKPT_INTERVAL.

Run:  python examples/periodic_fault_tolerance.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro import (
    PLATFORMS,
    VirtualMachine,
    VMConfig,
    compile_source,
    get_platform,
    restart_vm,
)

# Sums the first 40k integers in a deliberately slow loop — several
# checkpoint intervals of work.  (The limit keeps the sum below 2^30:
# the migration path crosses 32-bit machines, whose ints are 31 bits
# wide — the paper's documented lossy case for larger values.)
SOURCE = """
let limit = 40000;;
let total = ref 0;;
let i = ref 0;;
while !i < limit do
  i := !i + 1;
  total := !total + !i
done;;
print_string "sum = ";;
print_int !total
"""


def main() -> None:
    rng = random.Random(2002)  # the paper's year; deterministic demo
    code = compile_source(SOURCE)
    ckpt = tempfile.mktemp(suffix=".hckp")

    # The paper's interface: environment variables.
    env = {
        "CHKPT_STATE": "enable",
        "CHKPT_FILENAME": ckpt,
        "CHKPT_INTERVAL": "0.05",
    }
    config = VMConfig.from_env(env)
    config.chkpt_mode = "blocking"

    vm = VirtualMachine(get_platform("rodrigo"), code, config)
    crashes = 0
    result = vm.run(max_instructions=rng.randint(40_000, 100_000))
    while result.status == "budget":
        crashes += 1
        taken = vm.checkpoints_taken
        if not os.path.exists(ckpt):
            # Crashed before the first checkpoint: start from scratch.
            print(f"crash #{crashes}: no checkpoint yet, restarting cold")
            vm = VirtualMachine(get_platform("rodrigo"), code, config)
        else:
            target = rng.choice(sorted(PLATFORMS))
            vm, _ = restart_vm(PLATFORMS[target], code, ckpt, config)
            print(f"crash #{crashes}: resumed on {target} from the latest "
                  f"of {taken} checkpoint(s)")
        result = vm.run(max_instructions=rng.randint(40_000, 100_000))

    print(f"finished after {crashes} simulated failures: "
          f"{result.stdout.decode()!r}")
    expected = f"sum = {40000 * 40001 // 2}".encode()
    assert result.stdout == expected
    print("the sum is exact: no iteration was lost or repeated.")


if __name__ == "__main__":
    main()
