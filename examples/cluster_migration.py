#!/usr/bin/env python3
"""Coordinated C/R of a parallel message-passing application — the
paper's stated future work ("we intend to provide heterogeneous C/R for
parallel message-passing applications, by integrating this work with
our Starfish system"), built on the same checkpoint mechanism.

Four VM nodes cooperate on a block-sum: workers receive ranges from
rank 0, compute partial sums, send them back.  Mid-computation the
coordinator takes a *coordinated checkpoint* — every node plus every
in-flight marshaled message — and the whole application is then
restarted with all four nodes migrated to different architectures.

Run:  python examples/cluster_migration.py
"""

from __future__ import annotations

import tempfile

from repro import compile_source
from repro.cluster import Cluster, restart_cluster

SOURCE = """
let me = cluster_rank ();;
let n = cluster_size ();;
let chunks = 12;;

let rec sum_range lo hi acc = if lo > hi then acc else sum_range (lo + 1) hi (acc + lo);;

let () =
  if me = 0 then
    begin
      (* deal out `chunks` ranges of 100 numbers, round-robin *)
      for c = 0 to chunks - 1 do
        let dest = 1 + (c mod (n - 1)) in
        cluster_send dest [c * 100 + 1; c * 100 + 100]
      done;
      (* then send everyone a stop marker *)
      for w = 1 to n - 1 do cluster_send w [] done;
      (* gather partials *)
      let rec gather k acc =
        if k = 0 then acc
        else match cluster_recv () with
             | [] -> gather k acc
             | p :: _ -> gather (k - 1) (acc + p)
      in
      let total = gather (n - 1) 0 in
      begin print_string "grand total = "; print_int total end
    end
  else
    begin
      let rec work acc =
        match cluster_recv () with
        | [] -> cluster_send 0 [acc]
        | lo :: rest ->
          (match rest with
           | [] -> work acc
           | hi :: _ -> work (acc + sum_range lo hi 0))
      in work 0
    end
"""


def main() -> None:
    code = compile_source(SOURCE)
    before = ["rodrigo", "rodrigo", "pc8", "csd"]
    after = ["sp2148", "ultra64", "rodrigo", "rs6000"]

    cluster = Cluster(code, before, slice_instructions=300)
    for _ in range(5):  # run a while, mid-computation
        if cluster.finished:
            break
        cluster.step()
    in_flight = sum(len(node.mailbox) for node in cluster.nodes)
    states = {n.rank: n.state for n in cluster.nodes}
    print(f"ran {cluster.steps} coordinator steps on {before}")
    print(f"taking a coordinated checkpoint: node states {states}, "
          f"{in_flight} in-flight message(s)")

    ckpt_dir = tempfile.mkdtemp(suffix="_cluster")
    cluster.checkpoint(ckpt_dir)

    print(f"restarting every node on new machines: {after}")
    cluster2 = restart_cluster(code, ckpt_dir, after, slice_instructions=300)
    cluster2.run()
    out = cluster2.stdout(0).decode()
    print(f"rank 0 says: {out!r}")

    expected = sum(range(1, 1201))
    assert out == f"grand total = {expected}"
    print(f"verified: sum of 1..1200 = {expected}, computed across a "
          f"checkpoint that moved all four nodes.")


if __name__ == "__main__":
    main()
