#!/usr/bin/env python3
"""The paper's matrix-multiplication workload (Figure 8), checkpointed
mid-computation and migrated across *every* simulated platform in turn:

    rodrigo (32 LE, Linux) -> csd (32 BE, Solaris)
                           -> sp2148 (64 LE, Linux)
                           -> ultra64 (64 BE, Solaris)
                           -> pc8 (32 LE, Windows NT)

Each hop restarts the previous hop's checkpoint, multiplies a few more
rows, checkpoints again, and hands the file over.  Endianness and word
size change at almost every hop.

Run:  python examples/matmul_migration.py
"""

from __future__ import annotations

import tempfile

from repro import VirtualMachine, VMConfig, compile_source, get_platform, restart_vm

N = 16
HOPS = ["rodrigo", "csd", "sp2148", "ultra64", "pc8"]

# One checkpoint after each quarter of the rows; the multiply therefore
# spans several machines.
SOURCE = f"""
let n = {N};;
let make_matrix rows cols init =
  let m = Array.make rows [||] in
  begin
    for i = 0 to rows - 1 do m.(i) <- Array.make cols init done;
    m
  end;;
let mat1 = make_matrix n n 1;;
let mat2 = make_matrix n n 2;;
let mat3 = make_matrix n n 0;;
let multiply_rows lo hi =
  for i = lo to hi do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        mat3.(i).(j) <- mat3.(i).(j) + (mat1.(i).(k) * mat2.(k).(j))
      done
    done
  done;;
let q = n / 4;;
multiply_rows 0 (q - 1);;         checkpoint ();;
multiply_rows q (2 * q - 1);;     checkpoint ();;
multiply_rows (2 * q) (3 * q - 1);; checkpoint ();;
multiply_rows (3 * q) (n - 1);;   checkpoint ();;
print_string "mat3[0][0] = ";;
print_int mat3.(0).(0);;
print_string ", mat3[n-1][n-1] = ";;
print_int mat3.(n - 1).(n - 1)
"""


def main() -> None:
    code = compile_source(SOURCE)
    ckpt = tempfile.mktemp(suffix=".hckp")

    # Calibrate: how many instructions does the whole job take?  Each
    # simulated machine then gets a budget of roughly a third of the
    # work before it "fails".
    calib = VirtualMachine(
        get_platform(HOPS[0]), code, VMConfig(chkpt_state="disable")
    )
    total = calib.run().instructions
    budget = total // 3 + 1000

    first = get_platform(HOPS[0])
    vm = VirtualMachine(
        first, code, VMConfig(chkpt_filename=ckpt, chkpt_mode="blocking")
    )
    # Run only until shortly after the first checkpoint, then "fail".
    vm.run(max_instructions=budget)
    print(f"[{first.name}] computed the first rows, checkpointed "
          f"({vm.checkpoints_taken} checkpoint), machine 'fails' now")

    final_output = b""
    for hop in HOPS[1:]:
        platform = get_platform(hop)
        vm, stats = restart_vm(
            platform, code, ckpt,
            VMConfig(chkpt_filename=ckpt, chkpt_mode="blocking"),
        )
        conv = []
        if stats.converted_endianness:
            conv.append("endian swap")
        if stats.converted_word_size:
            conv.append("word-size change")
        result = vm.run(max_instructions=budget)
        done = result.status == "stopped"
        print(f"[{platform.name}] restarted "
              f"({', '.join(conv) if conv else 'no conversion'}); "
              f"{'finished: ' + result.stdout.decode() if done else 'worked, checkpointed, failing over...'}")
        final_output = result.stdout
        if done:
            break

    expected = f"mat3[0][0] = {2 * N}, mat3[n-1][n-1] = {2 * N}".encode()
    assert final_output == expected, (final_output, expected)
    print(f"result verified: every entry equals 2n = {2 * N}.")


if __name__ == "__main__":
    main()
