#!/usr/bin/env python
"""Fail if hand-rolled format-version ladders reappear outside the schema.

The whole point of the section-codec registry is that exactly one place
— ``src/repro/checkpoint/schema/`` — knows what each format version
means.  Anywhere else, code must branch on profile capabilities
(``profile.integrity_trailer``, ``profile.delta`` ...) obtained from
:class:`repro.checkpoint.schema.FormatProfile`, never on the version
number itself.  This lint keeps it that way: it greps the source tree
for comparisons between a version-ish name and an integer literal and
exits non-zero when it finds one outside the schema package.

Run from the repo root::

    python scripts/check_no_version_ladders.py

Exit status 0 = clean, 1 = ladders found (each printed as
``path:line: offending source``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
ALLOWED = SRC / "repro" / "checkpoint" / "schema"

_CMP = r"(?:==|!=|<=|>=|<|>)"
_NAME = r"(?:format_version|chkpt_format|version)"
# name <op> literal, or literal <op> name — either spelling of a ladder.
LADDER = re.compile(
    rf"\b{_NAME}\s*{_CMP}\s*\d|\b\d\s*{_CMP}\s*{_NAME}\b"
)


def find_ladders() -> list[tuple[pathlib.Path, int, str]]:
    hits: list[tuple[pathlib.Path, int, str]] = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            code = line.split("#", 1)[0]
            if LADDER.search(code):
                hits.append((path, lineno, line.strip()))
    return hits


def main() -> int:
    hits = find_ladders()
    for path, lineno, line in hits:
        rel = path.relative_to(ROOT)
        print(f"{rel}:{lineno}: version ladder outside checkpoint/schema: "
              f"{line}")
    if hits:
        print(f"\n{len(hits)} version comparison(s) found. Branch on "
              f"FormatProfile capabilities instead.", file=sys.stderr)
        return 1
    print("no version ladders outside src/repro/checkpoint/schema — OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
