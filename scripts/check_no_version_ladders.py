#!/usr/bin/env python
"""Fail if hand-rolled format-version ladders reappear outside the schema.

The whole point of the section-codec registry is that exactly one place
— ``src/repro/checkpoint/schema/`` — knows what each format version
means.  Anywhere else, code must branch on profile capabilities
(``profile.integrity_trailer``, ``profile.delta`` ...) obtained from
:class:`repro.checkpoint.schema.FormatProfile`, never on the version
number itself.  This lint keeps it that way: it greps the source tree
for comparisons between a version-ish name and an integer literal and
exits non-zero when it finds one outside the schema package.

A second check guards the section-handle refactor the same way: the
whole-body parse/verify primitives (``_parse_checkpoint``,
``_verify_v3_payload``, ``_parse_body`` ...) are implementation details
of :class:`repro.checkpoint.schema.SnapshotSource` and the format
module that hosts them.  Every other consumer must go through
``SnapshotSource`` / ``read_checkpoint`` so reads stay section-scoped
and the lazy accounting stays truthful — a direct call anywhere else
fails the lint.

Run from the repo root::

    python scripts/check_no_version_ladders.py

Exit status 0 = clean, 1 = ladders found (each printed as
``path:line: offending source``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
ALLOWED = SRC / "repro" / "checkpoint" / "schema"

_CMP = r"(?:==|!=|<=|>=|<|>)"
_NAME = r"(?:format_version|chkpt_format|version)"
# name <op> literal, or literal <op> name — either spelling of a ladder.
LADDER = re.compile(
    rf"\b{_NAME}\s*{_CMP}\s*\d|\b\d\s*{_CMP}\s*{_NAME}\b"
)


#: Whole-body parse/verify primitives private to the schema package and
#: the format module.  Callers elsewhere must use SnapshotSource (or the
#: read_checkpoint / load_snapshot_chain wrappers built on it).
WHOLE_BODY = re.compile(
    r"\b(?:_parse_checkpoint|_verify_v3_payload|_parse_body"
    r"|_parse_body_sections|_locate_parse_end)\s*\("
)

#: Files allowed to call the whole-body primitives: the schema package
#: (SnapshotSource's delegation paths) and the format module that
#: defines them.
WHOLE_BODY_ALLOWED = (SRC / "repro" / "checkpoint" / "format.py",)


def find_ladders() -> list[tuple[pathlib.Path, int, str]]:
    hits: list[tuple[pathlib.Path, int, str]] = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            code = line.split("#", 1)[0]
            if LADDER.search(code):
                hits.append((path, lineno, line.strip()))
    return hits


def find_whole_body_reads() -> list[tuple[pathlib.Path, int, str]]:
    hits: list[tuple[pathlib.Path, int, str]] = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents or path in WHOLE_BODY_ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            code = line.split("#", 1)[0]
            if WHOLE_BODY.search(code):
                hits.append((path, lineno, line.strip()))
    return hits


def main() -> int:
    hits = find_ladders()
    for path, lineno, line in hits:
        rel = path.relative_to(ROOT)
        print(f"{rel}:{lineno}: version ladder outside checkpoint/schema: "
              f"{line}")
    body_hits = find_whole_body_reads()
    for path, lineno, line in body_hits:
        rel = path.relative_to(ROOT)
        print(f"{rel}:{lineno}: whole-body parse outside checkpoint/schema: "
              f"{line}")
    status = 0
    if hits:
        print(f"\n{len(hits)} version comparison(s) found. Branch on "
              f"FormatProfile capabilities instead.", file=sys.stderr)
        status = 1
    if body_hits:
        print(f"\n{len(body_hits)} direct whole-body read(s) found. Go "
              f"through SnapshotSource instead.", file=sys.stderr)
        status = 1
    if status == 0:
        print("no version ladders or whole-body reads outside "
              "src/repro/checkpoint/schema — OK")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
