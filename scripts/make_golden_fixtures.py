#!/usr/bin/env python
"""Generate the golden checkpoint fixtures under tests/fixtures/golden/.

The fixtures pin the exact bytes the checkpoint writer produces for
every format version (v1-v3 fulls, a v4 delta chain) on every simulated
platform.  They were generated from the pre-schema-registry writer and
are the proof obligation of the registry refactor: the schema-driven
writer must reproduce them bit for bit (tests/test_schema.py compares).

Regenerate (only when the format itself legitimately changes) with:

    PYTHONPATH=src python scripts/make_golden_fixtures.py

The programs write only to stdout, so the checkpoint bytes carry no
host-specific paths and the fixtures are reproducible everywhere.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.arch.platforms import PLATFORMS  # noqa: E402
from repro.minilang import compile_source  # noqa: E402
from repro.vm import VMConfig, VirtualMachine  # noqa: E402

#: One checkpoint mid-computation; the state spans a cons list, an
#: array, a string, a float, and a closure-carrying deep stack.
FULL_PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
let data = build 40 [];;
let arr = Array.make 8 0;;
let () = for i = 0 to 7 do arr.(i) <- i * 7 done;;
let tag = "g:" ^ string_of_int (sum data);;
let f = 2.25;;
checkpoint ();;
print_string tag;;
print_string " a=";;
print_int (arr.(2) + arr.(6));;
print_string " f=";;
print_float (f *. 2.0);;
print_newline ();;
"""

#: Three checkpoints with small mutations in between: under
#: ``chkpt_incremental`` with ``retain=2`` the head is a depth-2 delta,
#: ``.1`` a depth-1 delta and ``.2`` the full base.
DELTA_PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let keep = build 60 [];;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
let arr = Array.make 12 0;;
let () = for i = 0 to 11 do arr.(i) <- i * 5 done;;
checkpoint ();;
let () = for i = 0 to 11 do arr.(i) <- arr.(i) + 1 done;;
print_int arr.(3);;
print_string ";";;
checkpoint ();;
let () = for i = 0 to 11 do arr.(i) <- arr.(i) + 2 done;;
print_int arr.(9);;
print_string ";";;
checkpoint ();;
print_int (sum keep + arr.(5));;
print_newline ();;
"""

#: Full-checkpoint format versions the writer can emit.
FULL_VERSIONS = (1, 2, 3)


def run_full(platform_name: str, path: str, version: int,
             vectorize: bool = True) -> bytes:
    """Run FULL_PROGRAM with one blocking checkpoint; returns stdout."""
    code = compile_source(FULL_PROGRAM)
    vm = VirtualMachine(
        PLATFORMS[platform_name],
        code,
        VMConfig(
            chkpt_filename=path,
            chkpt_mode="blocking",
            chkpt_format=version,
            vectorize=vectorize,
        ),
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped" and vm.checkpoints_taken == 1
    return result.stdout


def run_delta_chain(platform_name: str, path: str) -> bytes:
    """Run DELTA_PROGRAM building a delta chain at ``path``; stdout."""
    code = compile_source(DELTA_PROGRAM)
    vm = VirtualMachine(
        PLATFORMS[platform_name],
        code,
        VMConfig(
            chkpt_filename=path,
            chkpt_mode="blocking",
            chkpt_retain=2,
            chkpt_incremental=True,
        ),
    )
    result = vm.run(max_instructions=20_000_000)
    assert result.status == "stopped" and vm.checkpoints_taken == 3
    return result.stdout


def generate(root: str) -> dict:
    """Write every fixture under ``root``; returns the manifest dict."""
    manifest: dict = {"programs": {"full": FULL_PROGRAM, "delta": DELTA_PROGRAM},
                      "platforms": {}}
    for name in sorted(PLATFORMS):
        pdir = os.path.join(root, name)
        os.makedirs(pdir, exist_ok=True)
        entry: dict = {"files": {}, "stdout": {}}
        for version in FULL_VERSIONS:
            path = os.path.join(pdir, f"full_v{version}.hckp")
            out = run_full(name, path, version)
            entry["files"][f"full_v{version}.hckp"] = _sha(path)
            entry["stdout"]["full"] = out.decode()
        # The scalar reference writer (no block-extent index, list-backed
        # serialization) must also stay byte-stable.
        path = os.path.join(pdir, "full_v3_scalar.hckp")
        run_full(name, path, 3, vectorize=False)
        entry["files"]["full_v3_scalar.hckp"] = _sha(path)
        head = os.path.join(pdir, "delta.hckp")
        out = run_delta_chain(name, head)
        for fname in ("delta.hckp", "delta.hckp.1", "delta.hckp.2"):
            entry["files"][fname] = _sha(os.path.join(pdir, fname))
        entry["stdout"]["delta"] = out.decode()
        manifest["platforms"][name] = entry
    return manifest


def _sha(path: str) -> str:
    with open(path, "rb") as f:
        return hashlib.sha256(f.read()).hexdigest()


def main() -> int:
    root = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "..", "tests", "fixtures", "golden",
    )
    root = os.path.normpath(root)
    manifest = generate(root)
    with open(os.path.join(root, "MANIFEST.json"), "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    n = sum(len(e["files"]) for e in manifest["platforms"].values())
    print(f"wrote {n} fixture file(s) under {root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
