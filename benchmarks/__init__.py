"""Benchmarks regenerating every table and figure of the paper's §5.2."""
