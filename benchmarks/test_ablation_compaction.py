"""Ablation A5: compaction before checkpoint shrinks the file.

The paper dumps heap chunks whole — free space included (step 8) — so a
fragmented heap inflates the checkpoint.  Compacting first (Gc.compact,
built from the same relocation machinery as cross-word-size restart)
recovers the paper's "smaller checkpoint files" advantage even after
heavy fragmentation.
"""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform

FRAGMENTING = """
let keep = ref [];;
let () =
  for i = 1 to {iterations} do
    let a = Array.make 300 i in
    if i mod 40 = 0 then keep := a :: !keep
  done;;
let rec count l = match l with [] -> 0 | _ :: t -> 1 + count t;;
{compact}
checkpoint ();;
print_int (count !keep)
"""


@pytest.mark.parametrize("compact", [False, True], ids=["plain", "compacted"])
@pytest.mark.parametrize("iterations", [400, 1200])
def test_checkpoint_size_with_compaction(
    iterations, compact, tmp_path, benchmark, get_report
):
    rep = get_report(
        "Ablation A5",
        "checkpoint file size: fragmented heap vs Gc.compact first",
        ["garbage iters", "compacted", "heap words", "ckpt MB"],
    )
    src = FRAGMENTING.format(
        iterations=iterations,
        compact="Gc.compact ();;" if compact else "",
    )
    code = compile_source(src)
    path = str(tmp_path / "a5.hckp")

    def run():
        vm = VirtualMachine(
            get_platform("rodrigo"), code,
            VMConfig(chkpt_filename=path, chkpt_mode="blocking",
                     chunk_words=8192),
        )
        result = vm.run()
        assert result.status == "stopped"
        return vm

    vm = benchmark.pedantic(run, rounds=1, iterations=1)
    size = vm.last_checkpoint_stats.file_bytes
    rep.row(
        iterations, "yes" if compact else "no",
        vm.mem.heap.total_words(), f"{size / 1e6:.2f}",
    )
    key = (iterations,)
    _SIZES.setdefault(key, {})[compact] = size
    if len(_SIZES[key]) == 2:
        assert _SIZES[key][True] < _SIZES[key][False] / 2
    if compact and iterations == 1200:
        rep.note(
            "chunks are dumped whole (paper step 8); compaction removes "
            "the dead space before it reaches the file"
        )


_SIZES: dict = {}
