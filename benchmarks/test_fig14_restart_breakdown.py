"""Figure 14: timing the substantial parts of restart.

The paper: "During restart, the substantial parts are restoring the
heap and fixing pointer values inside it ... these substantial parts
take more than 90 percent of restart."
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro import get_platform, restart_vm
from repro.workloads import alloc_source

SIZES_WORDS = [64 * 1024, 256 * 1024, 640 * 1024]

HEAP_PHASES = ("heap_restore", "heap_rebuild", "pointer_fix", "read_file")


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_restart_phase_breakdown(size, tmp_path, benchmark, get_report):
    rep = get_report(
        "Figure 14",
        "restart time breakdown vs checkpointed data size (rodrigo->rodrigo)",
        ["ckpt MB", "total ms", "heap restore+fix %", "stack %", "other %"],
    )
    path = str(tmp_path / "bd.hckp")
    code, vm = make_checkpoint(alloc_source(size), path)
    file_mb = vm.last_checkpoint_stats.file_bytes / 1e6

    def restart():
        return restart_vm(get_platform("rodrigo"), code, path)

    vm2, stats = benchmark.pedantic(restart, rounds=1, iterations=1)
    fractions = stats.phases.fractions()
    heap = sum(fractions.get(p, 0.0) for p in HEAP_PHASES)
    stack = fractions.get("stack_restore", 0.0) + fractions.get("threads", 0.0)
    other = 1.0 - heap - stack
    rep.row(
        f"{file_mb:.2f}",
        f"{stats.phases.total * 1e3:.1f}",
        f"{100 * heap:.1f}",
        f"{100 * stack:.1f}",
        f"{100 * other:.1f}",
    )
    if size == SIZES_WORDS[-1]:
        rep.note(
            "paper shape: restoring the heap and fixing its pointers take "
            "more than 90% of restart"
        )
    assert heap > 0.7
