"""Figure 14: timing the substantial parts of restart.

The paper: "During restart, the substantial parts are restoring the
heap and fixing pointer values inside it ... these substantial parts
take more than 90 percent of restart."

Both the vectorized reader and the ``--no-vectorize`` scalar reference
restore the same file, interleaved min-of-N, so the comparison sees the
same disk cache and machine noise.  The PR's acceptance number — the
largest restart at least 3x faster end-to-end vectorized — is asserted
here and recorded in ``results/BENCH_restart.json``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro import VMConfig, get_platform, restart_vm
from repro.workloads import alloc_source

SIZES_WORDS = [64 * 1024, 256 * 1024, 640 * 1024]

HEAP_PHASES = ("heap_restore", "heap_rebuild", "pointer_fix", "read_file")

#: Interleaved measurement rounds per path (min is reported).
ROUNDS = 5

#: Acceptance floor for the vectorized restart at the largest size.
MIN_SPEEDUP = 3.0


def _restart(code, path: str, vectorize: bool):
    vm, stats = restart_vm(
        get_platform("rodrigo"), code, path, VMConfig(vectorize=vectorize)
    )
    return stats


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_restart_phase_breakdown(size, tmp_path, benchmark, get_report,
                                 bench_json):
    rep = get_report(
        "Figure 14",
        "restart time breakdown vs checkpointed data size (rodrigo->rodrigo)",
        ["path", "ckpt MB", "total ms", "heap restore+fix %", "stack %",
         "other %"],
    )
    path = str(tmp_path / "bd.hckp")
    code, vm = make_checkpoint(alloc_source(size), path)
    file_mb = vm.last_checkpoint_stats.file_bytes / 1e6

    def restart():
        return restart_vm(get_platform("rodrigo"), code, path)

    benchmark.pedantic(restart, rounds=1, iterations=1)

    best = {}
    for vectorize in (True, False):  # warm both paths once
        _restart(code, path, vectorize)
    for _ in range(ROUNDS):
        for vectorize in (True, False):
            stats = _restart(code, path, vectorize)
            prev = best.get(vectorize)
            if prev is None or stats.phases.total < prev.phases.total:
                best[vectorize] = stats

    record = bench_json("BENCH_restart").setdefault("sizes", {})
    entry = record.setdefault(str(size), {})
    for vectorize in (False, True):
        stats = best[vectorize]
        fractions = stats.phases.fractions()
        heap = sum(fractions.get(p, 0.0) for p in HEAP_PHASES)
        stack = fractions.get("stack_restore", 0.0) + fractions.get(
            "threads", 0.0
        )
        other = 1.0 - heap - stack
        label = "vectorized" if vectorize else "scalar"
        rep.row(
            label,
            f"{file_mb:.2f}",
            f"{stats.phases.total * 1e3:.1f}",
            f"{100 * heap:.1f}",
            f"{100 * stack:.1f}",
            f"{100 * other:.1f}",
        )
        entry[label] = {
            "total_ms": round(stats.phases.total * 1e3, 3),
            "phases_ms": {
                k: round(v * 1e3, 3)
                for k, v in stats.phases.seconds.items()
            },
            "kernels_ms": {
                k: round(v * 1e3, 3)
                for k, v in stats.phases.kernel_seconds.items()
            },
        }
        # The paper's shape: heap restore + pointer fixing dominate.
        assert heap > 0.7

    speedup = best[False].phases.total / best[True].phases.total
    entry["restart_speedup"] = round(speedup, 3)
    if size == SIZES_WORDS[-1]:
        rep.note(
            "paper shape: restoring the heap and fixing its pointers take "
            "more than 90% of restart"
        )
        rep.note(
            f"vectorized restart at {size} words: {speedup:.2f}x faster "
            f"than the scalar reference (min of {ROUNDS} interleaved rounds)"
        )
        assert speedup >= MIN_SPEEDUP