"""Supporting measurement: interpreter dispatch rate.

Not a paper artefact, but context for its §5.1 discussion ("byte-code
usually executes much slower than native code"): the absolute numbers
everywhere else in this reproduction are scaled by this dispatch rate,
which is what separates our Python substrate from the authors' C
interpreter on 1999 hardware.
"""

from __future__ import annotations

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform

LOOP = """
let r = ref 0;;
while !r < 60000 do r := !r + 1 done;;
print_int !r
"""


@pytest.mark.parametrize("platform_name", ["rodrigo", "sp2148"])
def test_instruction_dispatch_rate(
    platform_name, benchmark, get_report, bench_json
):
    rep = get_report(
        "Dispatch rate",
        "interpreter speed (context for the paper's byte-code remarks)",
        ["platform", "instructions", "seconds", "Minstr/s"],
    )
    code = compile_source(LOOP)

    def run():
        vm = VirtualMachine(
            get_platform(platform_name), code, VMConfig(chkpt_state="disable")
        )
        result = vm.run()
        assert result.stdout == b"60000"
        return result.instructions

    instructions = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean
    rep.row(
        platform_name, instructions, f"{seconds:.3f}",
        f"{instructions / seconds / 1e6:.2f}",
    )
    # Machine context for the BENCH_* records: the dispatch rate scales
    # every absolute time in this reproduction.
    for stem in ("BENCH_checkpoint", "BENCH_restart"):
        bench_json(stem).setdefault("dispatch_minstr_per_s", {})[
            platform_name
        ] = round(instructions / seconds / 1e6, 3)
