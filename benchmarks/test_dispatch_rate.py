"""Supporting measurement: interpreter dispatch rate, by tier.

Not a paper artefact, but context for its §5.1 discussion ("byte-code
usually executes much slower than native code"): the absolute numbers
everywhere else in this reproduction are scaled by this dispatch rate,
which is what separates our Python substrate from the authors' C
interpreter on 1999 hardware.

Measures both dispatch tiers (``VMConfig.dispatch``): the canonical
``"reference"`` fetch/decode/execute loop and the ``"fast"`` tier
(decode-once closures + superinstruction fusion + batched counted-loop
kernels; see docs/DISPATCH.md), and records the trend into
``results/BENCH_dispatch.json``.  The fast tier must beat reference by
at least 2x on this loop workload — that is the CI smoke floor; the
recorded numbers are typically far higher because the loop batches.
"""

from __future__ import annotations

import time

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform

LOOP = """
let r = ref 0;;
while !r < 60000 do r := !r + 1 done;;
print_int !r
"""

#: CI smoke floor for fast/reference on the loop workload.
MIN_SPEEDUP = 2.0


@pytest.mark.parametrize("platform_name", ["rodrigo", "sp2148"])
def test_instruction_dispatch_rate(
    platform_name, benchmark, get_report, bench_json
):
    rep = get_report(
        "Dispatch rate",
        "interpreter speed by tier (context for the paper's byte-code "
        "remarks)",
        ["platform", "tier", "instructions", "seconds", "Minstr/s"],
    )
    code = compile_source(LOOP)

    def run_tier(tier: str) -> tuple[int, float]:
        vm = VirtualMachine(
            get_platform(platform_name),
            code,
            VMConfig(chkpt_state="disable", dispatch=tier),
        )
        t0 = time.perf_counter()
        result = vm.run()
        seconds = time.perf_counter() - t0
        assert result.stdout == b"60000"
        return result.instructions, seconds

    ref_instructions, ref_seconds = run_tier("reference")

    instructions = benchmark.pedantic(
        lambda: run_tier("fast")[0], rounds=1, iterations=1
    )
    fast_seconds = benchmark.stats.stats.mean
    assert instructions == ref_instructions  # canonical accounting

    ref_rate = ref_instructions / ref_seconds / 1e6
    fast_rate = instructions / fast_seconds / 1e6
    speedup = fast_rate / ref_rate
    rep.row(platform_name, "reference", ref_instructions,
            f"{ref_seconds:.3f}", f"{ref_rate:.2f}")
    rep.row(platform_name, "fast", instructions,
            f"{fast_seconds:.3f}", f"{fast_rate:.2f} ({speedup:.1f}x)")

    bench_json("BENCH_dispatch").setdefault("loop_minstr_per_s", {})[
        platform_name
    ] = {
        "reference": round(ref_rate, 3),
        "fast": round(fast_rate, 3),
        "speedup": round(speedup, 2),
    }
    # Machine context for the BENCH_* records: the (fast-tier) dispatch
    # rate scales every absolute time in this reproduction.
    for stem in ("BENCH_checkpoint", "BENCH_restart"):
        bench_json(stem).setdefault("dispatch_minstr_per_s", {})[
            platform_name
        ] = round(fast_rate, 3)

    assert speedup >= MIN_SPEEDUP, (
        f"fast tier only {speedup:.2f}x reference on {platform_name} "
        f"(floor {MIN_SPEEDUP}x)"
    )
