"""Ablation A1: fork-style (background) vs blocking checkpoints.

The paper (§4.1 step 1): forking a child to write the checkpoint
"greatly reduces the impact of checkpointing on the running time of the
application.  On the other hand, Windows NT does not support fork ...
so the overhead on NT is higher."

We measure the time the *application* is blocked per checkpoint in both
modes.  In background (fork-equivalent) mode only the in-memory
snapshot blocks the app; in blocking (NT) mode, serialization, disk
write and commit all do.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.workloads import alloc_source

SIZE_WORDS = 512 * 1024


@pytest.mark.parametrize("mode,platform_name", [
    ("background", "rodrigo"),   # POSIX: fork-style
    ("blocking", "pc8"),         # Windows NT: no fork
])
def test_application_blocking_time(mode, platform_name, tmp_path, benchmark,
                                   get_report):
    rep = get_report(
        "Ablation A1",
        "application-visible checkpoint cost: fork-style vs blocking",
        ["platform", "mode", "ckpt MB", "app blocked ms", "writer total ms"],
    )
    path = str(tmp_path / "m.hckp")
    code = compile_source(alloc_source(SIZE_WORDS))

    def run():
        vm = VirtualMachine(
            get_platform(platform_name), code,
            VMConfig(chkpt_filename=path, chkpt_mode=mode),
        )
        result = vm.run()
        assert result.status == "stopped"
        return vm

    vm = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = vm.last_checkpoint_stats
    rep.row(
        platform_name,
        stats.mode,
        f"{stats.file_bytes / 1e6:.2f}",
        f"{stats.blocking_seconds * 1e3:.1f}",
        f"{stats.writer_seconds * 1e3:.1f}",
    )
    if mode == "blocking":
        rep.note(
            "paper shape: the forked (background) checkpoint blocks the "
            "application far less than the NT blocking checkpoint"
        )
    # Record for the cross-mode assertion.
    _blocked.setdefault(mode, stats.blocking_seconds)
    if len(_blocked) == 2:
        assert _blocked["background"] < _blocked["blocking"]


_blocked: dict[str, float] = {}
