"""Ablation A2: checkpoint file size — VM-level vs core dump.

The paper (§5.1): "since we only dump the heap, stack(s), the used
parts of the data segments, and abstract registers, the overall size of
the checkpoint file is smaller than in implementations that dump the
entire core."
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro import HomogeneousCheckpointer
from repro.workloads import alloc_source

SIZES_WORDS = [32 * 1024, 128 * 1024, 512 * 1024]


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_file_size_vs_core_dump(size, tmp_path, benchmark, get_report):
    rep = get_report(
        "Ablation A2",
        "checkpoint file size: heterogeneous (VM-level) vs core dump",
        ["live words", "VM ckpt MB", "core dump MB", "core/VM ratio"],
    )
    path = str(tmp_path / "h.hckp")
    code, vm = make_checkpoint(alloc_source(size), path)
    hetero = vm.last_checkpoint_stats.file_bytes

    core_path = str(tmp_path / "core.dump")

    def dump_core():
        return HomogeneousCheckpointer(vm).save(core_path)

    core = benchmark.pedantic(dump_core, rounds=1, iterations=1)
    rep.row(
        size, f"{hetero / 1e6:.2f}", f"{core / 1e6:.2f}",
        f"{core / hetero:.2f}x",
    )
    if size == SIZES_WORDS[-1]:
        rep.note(
            "the core dump carries the empty young generation, full stack "
            "capacities and the text segment; the VM checkpoint does not"
        )
    assert core > hetero
