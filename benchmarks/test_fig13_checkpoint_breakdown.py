"""Figure 13: timing the substantial parts of checkpointing.

The paper: "more than 80 percent of the checkpoint time is spent in
saving the heap ... the bigger the checkpoint file becomes, so does the
time for committing it ... other parts take less than 5 percent"
(minor GC, registers, stack).

Our heap-saving cost is split across three instrumented phases —
``heap_dump`` (copying the chunks at the safe point), ``serialize``
(native encoding) and ``write`` (disk I/O) — which together play the
role of the paper's "saving the heap" bar.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro.workloads import alloc_source

SIZES_WORDS = [64 * 1024, 256 * 1024, 640 * 1024]

HEAP_PHASES = ("heap_dump", "serialize", "write")
SMALL_PHASES = ("minor_gc", "registers", "boundaries", "stack", "channels")


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_checkpoint_phase_breakdown(size, tmp_path, benchmark, get_report):
    rep = get_report(
        "Figure 13",
        "checkpoint time breakdown vs checkpointed data size (rodrigo)",
        ["ckpt MB", "total ms", "heap-save %", "commit %", "other %"],
    )
    path = str(tmp_path / "bd.hckp")

    def checkpointed_run():
        return make_checkpoint(alloc_source(size), path)

    code, vm = benchmark.pedantic(checkpointed_run, rounds=1, iterations=1)
    stats = vm.last_checkpoint_stats
    fractions = stats.phases.fractions()
    heap_save = sum(fractions.get(p, 0.0) for p in HEAP_PHASES)
    commit = fractions.get("commit", 0.0)
    other = 1.0 - heap_save - commit
    rep.row(
        f"{stats.file_bytes / 1e6:.2f}",
        f"{stats.phases.total * 1e3:.1f}",
        f"{100 * heap_save:.1f}",
        f"{100 * commit:.1f}",
        f"{100 * other:.1f}",
    )
    if size == SIZES_WORDS[-1]:
        rep.note(
            "paper shape: saving the heap > 80%, commit grows with file "
            "size, minor GC + registers + stack < 5%"
        )
    # The paper's dominant-phase claim.
    assert heap_save > 0.5
    small = sum(fractions.get(p, 0.0) for p in SMALL_PHASES)
    assert small < 0.3
