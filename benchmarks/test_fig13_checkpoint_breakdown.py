"""Figure 13: timing the substantial parts of checkpointing.

The paper: "more than 80 percent of the checkpoint time is spent in
saving the heap ... the bigger the checkpoint file becomes, so does the
time for committing it ... other parts take less than 5 percent"
(minor GC, registers, stack).

Our heap-saving cost is split across three instrumented phases —
``heap_dump`` (copying the chunks at the safe point), ``serialize``
(native encoding) and ``write`` (disk I/O) — which together play the
role of the paper's "saving the heap" bar.

Both the vectorized fast path and the ``--no-vectorize`` scalar
reference are measured on the *same* VM (the flag is flipped between
interleaved rounds, min-of-N per path, so the comparison sees identical
heap contents and identical machine noise).  The PR's acceptance number
— heap save at the largest size at least 2x faster vectorized — is
asserted here and recorded in ``results/BENCH_checkpoint.json``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro.checkpoint.writer import CheckpointWriter
from repro.workloads import alloc_source

SIZES_WORDS = [64 * 1024, 256 * 1024, 640 * 1024]

HEAP_PHASES = ("heap_dump", "serialize", "write")
SMALL_PHASES = ("minor_gc", "registers", "boundaries", "stack", "channels")

#: Interleaved measurement rounds per path (min is reported).
ROUNDS = 5

#: Acceptance floor for the vectorized heap save at the largest size.
MIN_SPEEDUP = 2.0


def _measure(vm, path: str, vectorize: bool):
    """One checkpoint via the writer; returns its stats."""
    vm.config.vectorize = vectorize
    return CheckpointWriter(vm).checkpoint(path)


def _heap_save_seconds(stats) -> float:
    return sum(stats.phases.seconds.get(p, 0.0) for p in HEAP_PHASES)


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_checkpoint_phase_breakdown(size, tmp_path, benchmark, get_report,
                                    bench_json):
    rep = get_report(
        "Figure 13",
        "checkpoint time breakdown vs checkpointed data size (rodrigo)",
        ["path", "ckpt MB", "total ms", "heap-save ms",
         "heap-save %", "commit %", "other %"],
    )
    path = str(tmp_path / "bd.hckp")

    # One VM run provides the heap; the measured checkpoints re-save it.
    def first_checkpoint():
        return make_checkpoint(alloc_source(size), path)

    code, vm = benchmark.pedantic(first_checkpoint, rounds=1, iterations=1)

    best = {}
    for vectorize in (True, False):  # warm both paths once
        _measure(vm, path, vectorize)
    for _ in range(ROUNDS):
        for vectorize in (True, False):
            stats = _measure(vm, path, vectorize)
            prev = best.get(vectorize)
            if prev is None or _heap_save_seconds(stats) < (
                _heap_save_seconds(prev)
            ):
                best[vectorize] = stats

    record = bench_json("BENCH_checkpoint").setdefault("sizes", {})
    entry = record.setdefault(str(size), {})
    for vectorize in (False, True):
        stats = best[vectorize]
        fractions = stats.phases.fractions()
        heap_save = sum(fractions.get(p, 0.0) for p in HEAP_PHASES)
        commit = fractions.get("commit", 0.0)
        other = 1.0 - heap_save - commit
        label = "vectorized" if vectorize else "scalar"
        rep.row(
            label,
            f"{stats.file_bytes / 1e6:.2f}",
            f"{stats.phases.total * 1e3:.1f}",
            f"{_heap_save_seconds(stats) * 1e3:.2f}",
            f"{100 * heap_save:.1f}",
            f"{100 * commit:.1f}",
            f"{100 * other:.1f}",
        )
        entry[label] = {
            "file_bytes": stats.file_bytes,
            "heap_words": stats.heap_words,
            "total_ms": round(stats.phases.total * 1e3, 3),
            "heap_save_ms": round(_heap_save_seconds(stats) * 1e3, 3),
            "phases_ms": {
                k: round(v * 1e3, 3)
                for k, v in stats.phases.seconds.items()
            },
            "kernels_ms": {
                k: round(v * 1e3, 3)
                for k, v in stats.phases.kernel_seconds.items()
            },
        }
        # The paper's dominant-phase shape is asserted on the scalar
        # reference — that is the implementation the paper describes.
        # (The vectorized path compresses heap save so far that at the
        # smallest size the fsync in "commit" overtakes it.)
        if not vectorize:
            assert heap_save > 0.5
        small = sum(fractions.get(p, 0.0) for p in SMALL_PHASES)
        assert small < 0.3

    speedup = _heap_save_seconds(best[False]) / _heap_save_seconds(best[True])
    entry["heap_save_speedup"] = round(speedup, 3)
    if size == SIZES_WORDS[-1]:
        rep.note(
            "paper shape: saving the heap > 80%, commit grows with file "
            "size, minor GC + registers + stack < 5%"
        )
        rep.note(
            f"vectorized heap save at {size} words: {speedup:.2f}x faster "
            f"than the scalar reference (min of {ROUNDS} interleaved rounds)"
        )
        assert speedup >= MIN_SPEEDUP