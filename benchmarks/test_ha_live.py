"""Warm takeover vs cold restore-from-store.

The warm standby's pitch is that failover cost is O(lease claim): the
resident VM is already spliced and converted, so promotion does no
restore work at all.  This benchmark prices that claim against the
alternative the store-backed HA supervisor offers — a cold restore that
downloads the newest generation (plus its delta parents) from the
store, splices the chain, and converts to the successor's architecture.

Setup: a 640k-word heap on ``rodrigo`` (32-bit LE), mutated ~5% per
generation, replicated over the acked channel to a resident standby on
``ultra64`` (64-bit BE) while every generation is also mirrored to the
store.  Both takeover paths therefore start from the *same* committed
frontier and land on the *same* heterogeneous platform.

Acceptance gate (recorded in ``results/BENCH_ha_live.json``): warm
takeover p50 at least ``MIN_TAKEOVER_SPEEDUP``x faster than cold
restore p50.
"""

from __future__ import annotations

import base64
import statistics

from repro import VMConfig, VirtualMachine, compile_source, get_platform
from repro.checkpoint.format import detect_format_version
from repro.replication import (
    CommitTailer,
    EpochLease,
    ReplicationSender,
    StandbyServer,
    cold_restore_from_store,
)
from repro.store import ChunkStore, StoreClient, StoreServer

HEAP_WORDS = 640 * 1024
MUTATION_PCT = 5
PHASES = 6
ROW_WORDS = 4096

WARM_ROUNDS = 10
COLD_ROUNDS = 5
MIN_TAKEOVER_SPEEDUP = 5.0

VM_ID = "bench-ha-live"

#: The build loop is ~15k instructions, each churn phase ~5k; one
#: capture lands after the build (the full) and one per phase after.
BUILD_BUDGET = 15_000
PHASE_BUDGET = 5_000


def churn_source(total_words: int, pct: int, phases: int) -> str:
    """Build a ~``total_words`` heap of live rows, then mutate ``pct``%
    of the rows per phase (one word per touched row dirties the whole
    row for the incremental writer)."""
    rows = max(total_words // ROW_WORDS, 1)
    stride = max(100 // pct, 1)
    return f"""
let rows = {rows};;
let keep = ref [];;
let () =
  for i = 1 to rows do
    let a = Array.make {ROW_WORDS} i in
    keep := a :: !keep
  done;;
let rec touch l i p =
  match l with
  | [] -> 0
  | h :: t ->
    ((if (i + p) mod {stride} = 0 then h.(0) <- h.(0) + p);
     touch t (i + 1) p);;
let phase = ref 0;;
let junk = ref 0;;
while !phase < {phases} do
  phase := !phase + 1;
  junk := touch !keep 0 !phase
done;;
print_int !phase; print_string " "; print_int rows
"""


def _p50(samples: list[float]) -> float:
    return statistics.median(samples)


def _p95(samples: list[float]) -> float:
    s = sorted(samples)
    return s[min(len(s) - 1, round(0.95 * (len(s) - 1)))]


def _config(path: str) -> VMConfig:
    return VMConfig(
        chkpt_state="enable",
        chkpt_filename=path,
        chkpt_mode="blocking",
        chkpt_interval=None,
        chkpt_incremental=True,
        chkpt_retain=24,
    )


def _mirror(client: StoreClient, rec, path: str) -> None:
    meta = {
        "platform": "rodrigo",
        "instructions": rec.instructions,
        "stdout_b64": base64.b64encode(rec.stdout).decode(),
        "kind": rec.kind,
        "body_sha256": rec.body_sha256,
        "format_version": detect_format_version(path),
    }
    if rec.kind == "delta":
        meta["parent_sha256"] = rec.parent_sha256
        meta["chain_depth"] = rec.chain_depth
    client.put_checkpoint(VM_ID, rec.data, meta=meta)


def test_warm_takeover_beats_cold_restore(tmp_path, get_report, bench_json):
    code = compile_source(churn_source(HEAP_WORDS, MUTATION_PCT, PHASES))
    store = StoreServer(ChunkStore(str(tmp_path / "store")))
    store.start()
    client = StoreClient(*store.address, backoff=0.01)
    lease_client = StoreClient(*store.address, backoff=0.01)
    standby = StandbyServer(
        code,
        "ultra64",
        node_id="standby",
        chain_path=str(tmp_path / "standby.hckp"),
        lease=EpochLease(lease_client, VM_ID, "standby"),
        config=_config(str(tmp_path / "standby.hckp")),
    )
    sender = None
    try:
        host, port = standby.start()
        sender = ReplicationSender.connect(
            host, port, node_id="primary",
            ack_timeout=60.0, max_retransmits=1,
        )
        sender.hello(code.digest().hex(), 0, "rodrigo")

        primary_path = str(tmp_path / "primary.hckp")
        vm = VirtualMachine(
            get_platform("rodrigo"), code, _config(primary_path)
        )
        tailer = CommitTailer(vm, primary_path)
        gens = deltas = 0
        for budget in [BUILD_BUDGET] + [PHASE_BUDGET] * (PHASES + 2):
            result = vm.run(max_instructions=budget)
            if result.status in ("stopped", "exited"):
                break
            rec = tailer.capture()
            _mirror(client, rec, primary_path)
            sender.ship(rec)
            gens += 1
            deltas += rec.kind == "delta"
        assert gens >= 4 and deltas >= 3, (
            f"replication frontier too shallow: {gens} gens, "
            f"{deltas} deltas"
        )
        assert standby.applied_seq == gens

        warm = []
        for _ in range(WARM_ROUNDS):
            promoted = standby.promote()
            assert promoted is standby.resident_vm
            warm.append(standby.takeover_seconds)

        cold = []
        cold_vm = None
        for i in range(COLD_ROUNDS):
            cold_vm, elapsed = cold_restore_from_store(
                client, VM_ID, code, "ultra64",
                str(tmp_path / f"cold-{i}.hckp"),
            )
            cold.append(elapsed)
        # Both paths restore the same frontier: finishing the cold VM
        # must produce the program's exact final output.
        assert cold_vm.run().status in ("stopped", "exited")
        rows = HEAP_WORDS // ROW_WORDS
        assert cold_vm.channels.stdout_bytes() == f"{PHASES} {rows}".encode()
    finally:
        if sender is not None:
            sender.close()
        standby.stop()
        client.close()
        lease_client.close()
        store.stop()

    speedup = _p50(cold) / _p50(warm)
    rep = get_report(
        "HA live",
        "warm takeover vs cold restore-from-store "
        f"({HEAP_WORDS // 1024}k words, {MUTATION_PCT}% mutation, "
        "rodrigo -> ultra64)",
        ["path", "p50 ms", "p95 ms"],
    )
    rep.row("warm takeover", f"{_p50(warm) * 1e3:.2f}",
            f"{_p95(warm) * 1e3:.2f}")
    rep.row("cold restore", f"{_p50(cold) * 1e3:.2f}",
            f"{_p95(cold) * 1e3:.2f}")
    rep.note(
        f"speedup {speedup:.1f}x over {gens} generations "
        f"({deltas} deltas); floor {MIN_TAKEOVER_SPEEDUP:.0f}x"
    )
    bench_json("BENCH_ha_live").update({
        "heap_words": HEAP_WORDS,
        "mutation_pct": MUTATION_PCT,
        "generations": gens,
        "deltas": deltas,
        "primary_platform": "rodrigo",
        "standby_platform": "ultra64",
        "warm_takeover_ms": {
            "p50": round(_p50(warm) * 1e3, 3),
            "p95": round(_p95(warm) * 1e3, 3),
        },
        "cold_restore_ms": {
            "p50": round(_p50(cold) * 1e3, 3),
            "p95": round(_p95(cold) * 1e3, 3),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_TAKEOVER_SPEEDUP,
    })
    assert speedup >= MIN_TAKEOVER_SPEEDUP, (
        f"warm takeover only {speedup:.1f}x faster than cold restore "
        f"(floor {MIN_TAKEOVER_SPEEDUP}x)"
    )
