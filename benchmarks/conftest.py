"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper's
§5.2 evaluation.  Rows are collected into a session-wide report that is
printed in the terminal summary (so it survives pytest's output
capture) and written under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORTS: "OrderedDict[str, dict]" = OrderedDict()

#: Machine-readable benchmark records, keyed by output file stem
#: (``BENCH_checkpoint`` -> ``results/BENCH_checkpoint.json``).  The
#: vectorized-vs-scalar acceptance numbers live here so a driver can
#: check them without scraping the text reports.
_BENCH: "OrderedDict[str, dict]" = OrderedDict()


class Report:
    """Collects rows for one figure/table."""

    def __init__(self, figure: str, title: str, columns: list[str]) -> None:
        self.figure = figure
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []
        self.notes: list[str] = []

    def row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError("row width mismatch")
        self.rows.append([str(v) for v in values])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@pytest.fixture(scope="session")
def report_registry():
    return _REPORTS


@pytest.fixture(scope="session")
def bench_json():
    """``bench_json(stem)`` -> mutable dict serialized to
    ``results/<stem>.json`` at session end."""

    def _get(stem: str) -> dict:
        return _BENCH.setdefault(stem, {})

    return _get


@pytest.fixture(scope="session")
def get_report(report_registry):
    """``get_report(figure, title, columns)`` -> shared Report."""

    def _get(figure: str, title: str, columns: list[str]) -> Report:
        if figure not in report_registry:
            report_registry[figure] = Report(figure, title, columns)
        rep = report_registry[figure]
        return rep

    return _get


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _BENCH:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        for stem, data in _BENCH.items():
            with open(os.path.join(RESULTS_DIR, f"{stem}.json"), "w") as f:
                json.dump(data, f, indent=2, sort_keys=True)
                f.write("\n")
    if not _REPORTS:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "================ paper reproduction results ================"
    )
    for rep in _REPORTS.values():
        text = rep.render()
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
        with open(
            os.path.join(RESULTS_DIR, f"{rep.figure.lower().replace(' ', '_')}.txt"),
            "w",
        ) as f:
            f.write(text + "\n")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def run_plain(src: str, platform_name: str = "rodrigo", **cfg) -> tuple[float, VirtualMachine]:
    """Run without checkpointing; returns (seconds, vm)."""
    code = compile_source(src)
    vm = VirtualMachine(
        get_platform(platform_name), code, VMConfig(chkpt_state="disable", **cfg)
    )
    t0 = time.perf_counter()
    result = vm.run()
    dt = time.perf_counter() - t0
    assert result.status == "stopped"
    return dt, vm


def run_with_checkpoint(
    src: str,
    path: str,
    platform_name: str = "rodrigo",
    mode: str = "background",
    **cfg,
) -> tuple[float, VirtualMachine]:
    """Run with checkpointing enabled; returns (seconds, vm).

    The measured time includes whatever the checkpoint cost the
    *application* (snapshot in background mode, everything in blocking
    mode) — the paper's Figures 10/11 overhead definition.
    """
    code = compile_source(src)
    vm = VirtualMachine(
        get_platform(platform_name),
        code,
        VMConfig(chkpt_filename=path, chkpt_mode=mode, **cfg),
    )
    t0 = time.perf_counter()
    result = vm.run()
    dt = time.perf_counter() - t0
    assert result.status == "stopped"
    assert vm.checkpoints_taken >= 1
    return dt, vm


def make_checkpoint(src: str, path: str, platform_name: str = "rodrigo", **cfg):
    """Produce a checkpoint file; returns the origin VM."""
    code = compile_source(src)
    vm = VirtualMachine(
        get_platform(platform_name),
        code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking", **cfg),
    )
    result = vm.run()
    assert result.status == "stopped"
    assert vm.checkpoints_taken >= 1
    return code, vm
