"""Ablation A4: overhead vs checkpoint frequency (§3.1.1).

"Checkpoints are performed periodically during the execution of an
application ... The overhead imposed by checkpoints should therefore be
minimal, otherwise it would not be worth using this mechanism."

This ablation quantifies the trade-off the paper motivates: the shorter
the CHKPT_INTERVAL, the more checkpoints a run takes and the higher the
total overhead — while the work lost to a failure shrinks.
"""

from __future__ import annotations

import time

import pytest

from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.workloads import matmul_expected, matmul_source

N = 24
INTERVALS = [None, 0.4, 0.1, 0.03]


@pytest.mark.parametrize("interval", INTERVALS, ids=lambda v: f"interval={v}")
def test_overhead_vs_interval(interval, tmp_path, benchmark, get_report):
    rep = get_report(
        "Ablation A4",
        "runtime overhead vs periodic checkpoint interval (matmul n=24)",
        ["interval s", "checkpoints", "runtime s", "overhead %"],
    )
    path = str(tmp_path / "iv.hckp")
    code = compile_source(matmul_source(N, checkpoint=False))

    def run():
        vm = VirtualMachine(
            get_platform("rodrigo"), code,
            VMConfig(
                chkpt_filename=path,
                chkpt_interval=interval,
                chkpt_mode="blocking",
            ),
        )
        t0 = time.perf_counter()
        result = vm.run()
        dt = time.perf_counter() - t0
        assert result.status == "stopped"
        assert result.stdout == matmul_expected(N)
        return dt, vm.checkpoints_taken

    (dt, taken) = benchmark.pedantic(run, rounds=1, iterations=1)
    if interval is None:
        _BASELINE["t"] = dt
        rep.row("never", taken, f"{dt:.3f}", "baseline")
    else:
        baseline = _BASELINE.get("t")
        overhead = (dt - baseline) / baseline if baseline else float("nan")
        rep.row(f"{interval}", taken, f"{dt:.3f}", f"{100 * overhead:+.1f}")
        assert taken >= 1
    if interval == INTERVALS[-1]:
        rep.note(
            "shorter intervals take more checkpoints and cost more total "
            "overhead, buying a smaller recovery window — the trade-off "
            "the paper's §3.1.1 motivates"
        )


_BASELINE: dict = {}
