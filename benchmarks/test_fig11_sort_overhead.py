"""Figure 11: insertion sort — runtime with vs without one checkpoint.

The paper's stack-bound counterpart to Figure 10: "since the insertion
sort application is implemented recursively, the stack grows during
runtime due to many recursive calls."  The checkpoint fires at the
deepest recursion point, so the saved state includes the whole frame
tower; overhead must nevertheless stay small.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_plain, run_with_checkpoint
from repro.workloads import insertion_sort_expected, insertion_sort_source

SIZES = [60, 120, 200, 280]

MAX_OVERHEAD_FRACTION = 0.40


@pytest.mark.parametrize("n", SIZES)
def test_sort_checkpoint_overhead(n, tmp_path, benchmark, get_report):
    rep = get_report(
        "Figure 11",
        "insertion-sort runtime with and without one checkpoint (rodrigo)",
        ["n", "ckpt KB", "stack words", "plain s", "with ckpt s", "overhead %"],
    )
    path = str(tmp_path / "is.hckp")
    plain_s, _ = run_plain(insertion_sort_source(n, checkpoint=False))

    def checkpointed():
        return run_with_checkpoint(insertion_sort_source(n), path)

    ckpt_s, vm = benchmark.pedantic(checkpointed, rounds=1, iterations=1)
    assert vm.channels.stdout_bytes() == insertion_sort_expected(n)

    from repro.checkpoint.format import read_checkpoint

    vm.join_background_checkpoint()
    snap = read_checkpoint(path)
    stack_words = len(next(t for t in snap.threads if t.tid == 0).stack_words)
    size_kb = vm.last_checkpoint_stats.file_bytes / 1024
    overhead = (ckpt_s - plain_s) / plain_s
    rep.row(n, f"{size_kb:.0f}", stack_words, f"{plain_s:.3f}",
            f"{ckpt_s:.3f}", f"{100 * overhead:+.1f}")
    if n == SIZES[-1]:
        rep.note(
            "stack words grow ~linearly with n (the checkpoint captures "
            "the recursion tower); paper shape: overhead stays negligible"
        )
    assert overhead < MAX_OVERHEAD_FRACTION
    assert stack_words > 3 * n
