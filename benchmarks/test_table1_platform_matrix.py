"""Table 1: the platform matrix.

The paper lists the machines used for heterogeneous C/R and reports
having "performed C/R across these distinct platforms".  This benchmark
regenerates that claim exhaustively: a checkpoint taken on every
platform is restarted on every platform (36 pairs), and the continued
run must produce the reference output each time.
"""

from __future__ import annotations

import pytest

from repro import PLATFORMS, VirtualMachine, VMConfig, compile_source, restart_vm

SOURCE = """
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);;
let v = fib 12;;
let s = "portable " ^ string_of_int v;;
let f = 2.5 *. float_of_int v;;
checkpoint ();;
print_string s;;
print_string " ";;
print_float f
"""
EXPECTED = b"portable 144 360.0"


@pytest.mark.parametrize("origin", sorted(PLATFORMS))
def test_checkpoint_everywhere_restart_everywhere(
    origin, tmp_path, benchmark, get_report
):
    rep = get_report(
        "Table 1",
        "platform matrix — checkpoint on row platform, restart on all",
        ["origin (arch, os)", "restarts verified"],
    )
    code = compile_source(SOURCE)
    path = str(tmp_path / f"{origin}.hckp")
    vm = VirtualMachine(
        PLATFORMS[origin], code,
        VMConfig(chkpt_filename=path, chkpt_mode="blocking"),
    )
    result = vm.run()
    assert result.stdout == EXPECTED

    def restart_on_all():
        verified = []
        for target in sorted(PLATFORMS):
            vm2, _ = restart_vm(PLATFORMS[target], code, path)
            out = vm2.run().stdout
            assert out == EXPECTED, (origin, target, out)
            verified.append(target)
        return verified

    verified = benchmark.pedantic(restart_on_all, rounds=1, iterations=1)
    p = PLATFORMS[origin]
    rep.row(
        f"{origin} ({p.arch.bits}-bit {p.arch.endianness.value[:1].upper()}E, "
        f"{p.os.value})",
        " ".join(verified),
    )
