"""Deferred-section restore: time-to-first-output vs eager, with the
byte ledger.

PR 10 moved the lazy-restore blocking floor down a layer: a lazy
restart no longer reads + CRCs + parses the whole file up front — it
opens a deferred :class:`~repro.checkpoint.schema.SnapshotSource`,
resolves only the framing and the non-heap sections (a few KB), and
leaves the heap payload (~99.8% of a big checkpoint) on disk behind
chunk slices until first touch.  This bench gates that claim:

* TTFO at the largest size at least ``MIN_TTFO_SPEEDUP``x faster than
  eager (target ~5x — the old whole-file floor capped it at ~2.5-3x),
* completed lazy restore within ``MAX_COMPLETION_RATIO``x of eager,
* the deferral is real: most of the file's bytes are deferred at
  restart and the demand path reads only a small fraction.

Interleaved min-of-N, rodrigo -> ultra64 (endianness *and* word size),
recorded in ``results/BENCH_lazy_sections.json``.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import make_checkpoint
from repro import VMConfig, get_platform, restart_vm

SIZES_WORDS = [256 * 1024, 640 * 1024]

CHUNK_WORDS = 32 * 1024

ROUNDS = 5

#: CI gate on time-to-first-output at the largest size (target: ~5x).
MIN_TTFO_SPEEDUP = 4.0

#: Completed (drained + late-verified) lazy restore may cost at most
#: this much more than eager.
MAX_COMPLETION_RATIO = 1.3

#: At restart, at least this share of the file's bytes must still be
#: unread/unverified — the deferral the speedup comes from.
MIN_DEFERRED_FRACTION = 0.90


def _head_touch_source(total_words: int) -> str:
    rows = max(total_words // 4096, 1)
    return f"""
let rows = {rows};;
let keep = ref [];;
let () =
  for i = 1 to rows do
    let a = Array.make 4096 i in
    keep := a :: !keep
  done;;
checkpoint ();;
let rec first l = match l with [] -> 0 | h :: _ -> h.(0);;
print_int (first !keep)
"""


def _restart(code, path: str, lazy: bool):
    return restart_vm(
        get_platform("ultra64"), code, path,
        VMConfig(chunk_words=CHUNK_WORDS, lazy_restore=lazy),
    )


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_lazy_sections_ttfo(size, tmp_path, benchmark, get_report,
                            bench_json):
    rep = get_report(
        "Deferred sections",
        "restart byte ledger + TTFO: eager vs deferred-section lazy "
        "(rodrigo->ultra64)",
        ["path", "TTFO ms", "completed ms", "bytes read", "bytes deferred"],
    )
    path = str(tmp_path / "lazy.hckp")
    code, _ = make_checkpoint(
        _head_touch_source(size), path, chunk_words=CHUNK_WORDS
    )
    file_bytes = os.path.getsize(path)

    benchmark.pedantic(
        lambda: _restart(code, path, lazy=True), rounds=1, iterations=1
    )

    for lazy in (True, False):  # warm both paths once
        _restart(code, path, lazy)

    best = {}
    best_completion = {}
    ledger = None
    expected = None
    for _ in range(ROUNDS):
        for lazy in (True, False):
            vm, stats = _restart(code, path, lazy)
            if lazy:
                # The deferral must be structural, not incidental: the
                # heap section's bytes are unverified at restart.
                assert stats.sections_deferred >= 1
                assert stats.bytes_deferred >= (
                    file_bytes * MIN_DEFERRED_FRACTION
                )
                sources = getattr(vm, "lazy_restore").sources
                ledger = {
                    "file_bytes": file_bytes,
                    "bytes_read_at_restart": sum(
                        s.stats()["bytes_read"] for s in sources
                    ),
                    "bytes_verified_at_restart": stats.bytes_verified,
                    "bytes_deferred": stats.bytes_deferred,
                    "sections_deferred": stats.sections_deferred,
                }
            out = vm.run()
            assert out.status == "stopped"
            if expected is None:
                expected = out.stdout
            assert out.stdout == expected
            if lazy:
                vm.finish_lazy_restore()
            prev = best.get(lazy)
            if prev is None or stats.total_seconds < prev.total_seconds:
                best[lazy] = stats
            best_completion[lazy] = min(
                best_completion.get(lazy, float("inf")),
                stats.completion_seconds,
            )

    eager, lazy_stats = best[False], best[True]
    ttfo_speedup = eager.total_seconds / lazy_stats.total_seconds
    completion_ratio = best_completion[True] / best_completion[False]

    entry = bench_json("BENCH_lazy_sections").setdefault("sizes", {})
    entry[str(size)] = dict(
        ledger,
        eager_ttfo_ms=round(eager.total_seconds * 1e3, 3),
        lazy_ttfo_ms=round(lazy_stats.total_seconds * 1e3, 3),
        eager_completed_ms=round(best_completion[False] * 1e3, 3),
        lazy_completed_ms=round(best_completion[True] * 1e3, 3),
        ttfo_speedup=round(ttfo_speedup, 3),
        completion_ratio=round(completion_ratio, 3),
    )

    for label, lazy in (("eager", False), ("lazy", True)):
        stats = best[lazy]
        rep.row(
            label,
            f"{stats.total_seconds * 1e3:.1f}",
            f"{best_completion[lazy] * 1e3:.1f}",
            f"{ledger['bytes_read_at_restart']}" if lazy else file_bytes,
            f"{ledger['bytes_deferred']}" if lazy else 0,
        )

    if size == SIZES_WORDS[-1]:
        rep.note(
            f"TTFO {ttfo_speedup:.2f}x faster lazy (min of {ROUNDS} "
            f"interleaved rounds); completed {completion_ratio:.2f}x "
            f"eager; {ledger['bytes_deferred']}/{file_bytes} bytes "
            f"deferred at restart"
        )
        assert ttfo_speedup >= MIN_TTFO_SPEEDUP
        assert completion_ratio <= MAX_COMPLETION_RATIO
