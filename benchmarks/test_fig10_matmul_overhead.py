"""Figure 10: matrix multiplication — runtime with vs without one
checkpoint, on rodrigo.

The paper's claim: "the runtime with one checkpoint is mostly equal to
the original runtime ... the checkpoint overhead is at most one
percent."  Our substrate is a Python interpreter rather than a C one,
so absolute times differ; the *shape* to reproduce is that the
fork-style (background) checkpoint adds only a small relative overhead
that does not blow up as the checkpointed data grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_plain, run_with_checkpoint
from repro.workloads import matmul_expected, matmul_source

SIZES = [8, 16, 24, 32]

#: Generous bound for the background (fork-equivalent) overhead; the
#: paper reports <= 1% on bare metal, we allow interpreter noise.
MAX_OVERHEAD_FRACTION = 0.40


@pytest.mark.parametrize("n", SIZES)
def test_matmul_checkpoint_overhead(n, tmp_path, benchmark, get_report):
    rep = get_report(
        "Figure 10",
        "matmul runtime with and without one checkpoint (rodrigo)",
        ["n", "ckpt KB", "plain s", "with ckpt s", "overhead %"],
    )
    path = str(tmp_path / "mm.hckp")
    plain_s, vm_plain = run_plain(matmul_source(n, checkpoint=False))

    def checkpointed():
        return run_with_checkpoint(matmul_source(n), path)

    ckpt_s, vm = benchmark.pedantic(checkpointed, rounds=1, iterations=1)
    assert vm.channels.stdout_bytes() == matmul_expected(n)
    size_kb = vm.last_checkpoint_stats.file_bytes / 1024
    overhead = (ckpt_s - plain_s) / plain_s
    rep.row(n, f"{size_kb:.0f}", f"{plain_s:.3f}", f"{ckpt_s:.3f}",
            f"{100 * overhead:+.1f}")
    if n == SIZES[-1]:
        rep.note(
            "paper: overhead <= 1% on hardware; shape to check: overhead "
            "stays small and flat as n (and the checkpoint) grows"
        )
    assert overhead < MAX_OVERHEAD_FRACTION
