"""Ablation A3: lazy (restart-time) conversion.

The paper's design choice (§3.2.1): "we prefer to save data in its
native representation.  During restart, data is restored according to
the machine it is being restarted on" — conversion cost is paid only
when a mismatched restart actually happens, never at checkpoint time.

This benchmark verifies the laziness empirically: the checkpoint cost
is identical regardless of the eventual restart target, a same-arch
restart performs *zero* conversion work (the payload-conversion phase
never runs), and the conversion phases appear only on mismatched
restarts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro import get_platform, restart_vm
from repro.workloads import string_heavy_source

SIZE_WORDS = 256 * 1024

CASES = [
    ("rodrigo", "none"),
    ("csd", "endianness"),
    ("sp2148", "word size"),
]


@pytest.mark.parametrize("target,conversion", CASES)
def test_conversion_cost_paid_only_on_mismatch(
    target, conversion, tmp_path, benchmark, get_report
):
    rep = get_report(
        "Ablation A3",
        "lazy conversion: work appears only on mismatched restarts",
        ["target", "conversion", "restart s", "convert phases present"],
    )
    path = str(tmp_path / "lazy.hckp")
    code, vm = make_checkpoint(string_heavy_source(SIZE_WORDS), path)

    def restart():
        return restart_vm(get_platform(target), code, path)

    vm2, stats = benchmark.pedantic(restart, rounds=1, iterations=1)
    phases = set(stats.phases.seconds)
    convert_phases = sorted(
        phases & {"convert_payloads", "heap_rebuild"}
    )
    rep.row(
        target, conversion, f"{stats.total_seconds:.3f}",
        ", ".join(convert_phases) if convert_phases else "none",
    )
    if conversion == "none":
        assert not convert_phases
        assert not stats.converted_endianness
        assert not stats.converted_word_size
    elif conversion == "endianness":
        assert "convert_payloads" in phases
        assert stats.converted_endianness
    else:
        assert "heap_rebuild" in phases
        assert stats.converted_word_size
    if conversion == "word size":
        rep.note(
            "an eager design would pay conversion at every checkpoint; "
            "the lazy design pays once, and only when heterogeneity is real"
        )
