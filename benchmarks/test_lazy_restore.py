"""Lazy first-touch restore: time-to-first-output vs eager.

The eager restore converts the whole heap before the first instruction
runs; ``--lazy-restore`` returns as soon as metadata and roots are in
place and converts chunks on first touch (plus one chunk per quantum in
the background).  For a continuation that touches a small fraction of
the heap, time-to-first-output should drop well below the eager
restore while total conversion work stays comparable.

Interleaved min-of-N, rodrigo -> ultra64 (endianness *and* word size:
the most expensive conversion, so the deferred per-chunk work is
largest relative to the blocking floor — which is dominated by reading
the file itself).  Acceptance, recorded in
``results/BENCH_lazy_restore.json``:

* TTFO at the largest size at least ``MIN_TTFO_SPEEDUP``x faster than
  eager (target 5x),
* completed lazy restore within ``MAX_COMPLETION_RATIO``x of eager.

Measured headroom note: the observed speedup is ~2.5-3.3x, not the 5x
target.  The lazy blocking floor is dominated by whole-file read +
per-section integrity verification + body parse + eager block-metadata
classification, all of which scale with file size just like the eager
conversion does — so the ratio plateaus instead of growing with heap
size.  Pushing further means deferring per-*section* parse/verify to
first touch, a format-layer change recorded as future work in
``docs/LAZY_RESTORE.md``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_checkpoint
from repro import VMConfig, get_platform, restart_vm

SIZES_WORDS = [256 * 1024, 640 * 1024]

#: Small chunks so the heap spans many conversion units and the
#: continuation's working set is a small fraction of them — but not so
#: small that per-thunk call overhead (~0.2 ms/chunk) inflates the
#: completed-restore ratio.
CHUNK_WORDS = 32 * 1024

ROUNDS = 5

#: CI gate on time-to-first-output at the largest size (target: 5x).
MIN_TTFO_SPEEDUP = 2.0

#: Completed (drained) lazy restore may cost at most this much more
#: than eager — first-touch must not multiply total conversion work.
MAX_COMPLETION_RATIO = 1.3


def _head_touch_source(total_words: int) -> str:
    """Fill ~``total_words`` of heap, checkpoint, then read only the
    list head — the continuation's working set is a few chunks."""
    rows = max(total_words // 4096, 1)
    return f"""
let rows = {rows};;
let keep = ref [];;
let () =
  for i = 1 to rows do
    let a = Array.make 4096 i in
    keep := a :: !keep
  done;;
checkpoint ();;
let rec first l = match l with [] -> 0 | h :: _ -> h.(0);;
print_int (first !keep)
"""


def _restart(code, path: str, lazy: bool):
    vm, stats = restart_vm(
        get_platform("ultra64"), code, path,
        VMConfig(chunk_words=CHUNK_WORDS, lazy_restore=lazy),
    )
    return vm, stats


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_lazy_restore_ttfo(size, tmp_path, benchmark, get_report,
                           bench_json):
    rep = get_report(
        "Lazy restore",
        "time-to-first-output: eager vs first-touch (rodrigo->ultra64)",
        ["path", "heap chunks", "TTFO ms", "completed ms",
         "demand-converted %"],
    )
    path = str(tmp_path / "lazy.hckp")
    code, _ = make_checkpoint(
        _head_touch_source(size), path, chunk_words=CHUNK_WORDS
    )

    benchmark.pedantic(
        lambda: _restart(code, path, lazy=True), rounds=1, iterations=1
    )

    for lazy in (True, False):  # warm both paths once
        _restart(code, path, lazy)

    best = {}
    best_completion = {}
    touched_fraction = 1.0
    expected = None
    for _ in range(ROUNDS):
        for lazy in (True, False):
            vm, stats = _restart(code, path, lazy)
            out = vm.run()
            assert out.status == "stopped"
            if expected is None:
                expected = out.stdout
            assert out.stdout == expected
            if lazy:
                # The short continuation ran few quanta, so what is
                # converted now is demand faults plus a thin drain.
                assert stats.lazy_chunks_total >= 8
                touched_fraction = min(
                    touched_fraction,
                    stats.lazy_chunks_converted / stats.lazy_chunks_total,
                )
                # The head-only continuation's working set is O(1)
                # chunks (globals + list head + head array), plus at
                # most a few background-drained ones.
                assert stats.lazy_chunks_converted <= 4
                vm.finish_lazy_restore()
            prev = best.get(lazy)
            if prev is None or stats.total_seconds < prev.total_seconds:
                best[lazy] = stats
            # Min completion is tracked independently of min TTFO so
            # one noisy thunk in the TTFO-best round cannot skew the
            # completion ratio.
            best_completion[lazy] = min(
                best_completion.get(lazy, float("inf")),
                stats.completion_seconds,
            )

    eager, lazy_stats = best[False], best[True]
    ttfo_speedup = eager.total_seconds / lazy_stats.total_seconds
    completion_ratio = best_completion[True] / best_completion[False]

    entry = bench_json("BENCH_lazy_restore").setdefault("sizes", {})
    entry[str(size)] = {
        "chunks": lazy_stats.lazy_chunks_total,
        "eager_ttfo_ms": round(eager.total_seconds * 1e3, 3),
        "lazy_ttfo_ms": round(lazy_stats.total_seconds * 1e3, 3),
        "eager_completed_ms": round(best_completion[False] * 1e3, 3),
        "lazy_completed_ms": round(best_completion[True] * 1e3, 3),
        "ttfo_speedup": round(ttfo_speedup, 3),
        "completion_ratio": round(completion_ratio, 3),
        "demand_converted_fraction": round(touched_fraction, 4),
    }

    for label, lazy in (("eager", False), ("lazy", True)):
        stats = best[lazy]
        rep.row(
            label,
            stats.lazy_chunks_total if lazy else "-",
            f"{stats.total_seconds * 1e3:.1f}",
            f"{best_completion[lazy] * 1e3:.1f}",
            f"{100 * touched_fraction:.0f}" if lazy else "-",
        )

    if size == SIZES_WORDS[-1]:
        # At the headline size the demand-converted share must be a
        # small fraction of the heap (the "touches <=10% of the heap"
        # regime; chunk granularity rounds the true ~1% word footprint
        # up to a few chunks).
        assert touched_fraction <= 0.15
        rep.note(
            f"TTFO {ttfo_speedup:.2f}x faster lazy (min of {ROUNDS} "
            f"interleaved rounds); completed lazy restore is "
            f"{completion_ratio:.2f}x eager"
        )
        assert ttfo_speedup >= MIN_TTFO_SPEEDUP
        assert completion_ratio <= MAX_COMPLETION_RATIO
