"""Figure 12: restart time on different platforms vs checkpoint size.

The workload is string/float-heavy: byte-oriented payloads are what the
endianness conversion must repack, so the csd gap the paper shows is
visible (an integer-only heap converts almost for free here, since the
file decode already yields correct word values).

Checkpoints are taken on rodrigo (32-bit little-endian Linux) and
restarted on:

* rodrigo — the original machine (baseline),
* pc8     — same architecture, different OS (expected ~equal time),
* csd     — big-endian (adds endianness conversion),
* sp2148  — 64-bit (adds word-size conversion, the most expensive).

The paper's shape: restart time grows with checkpoint size on every
platform; pc8 tracks rodrigo; csd sits above them; sp2148 highest.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import make_checkpoint
from repro import get_platform, restart_vm
from repro.workloads import string_heavy_expected, string_heavy_source

SIZES_WORDS = [64 * 1024, 192 * 1024, 448 * 1024]
TARGETS = ["rodrigo", "pc8", "csd", "sp2148"]

_checkpoints: dict[int, tuple] = {}
_restart_seconds: dict[tuple[int, str], float] = {}


def _checkpoint_for(size, tmp_path_factory):
    if size not in _checkpoints:
        tmp = tmp_path_factory.mktemp(f"fig12_{size}")
        path = str(tmp / "a.hckp")
        code, vm = make_checkpoint(string_heavy_source(size), path)
        _checkpoints[size] = (code, path, vm.last_checkpoint_stats.file_bytes)
    return _checkpoints[size]


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("size", SIZES_WORDS)
def test_restart_time_by_platform(
    size, target, tmp_path_factory, benchmark, get_report
):
    rep = get_report(
        "Figure 12",
        "restart time by platform and checkpoint size (origin: rodrigo)",
        ["ckpt MB", "target", "conversion", "restart s"],
    )
    code, path, file_bytes = _checkpoint_for(size, tmp_path_factory)

    def restart():
        return restart_vm(get_platform(target), code, path)

    vm2, stats = benchmark.pedantic(restart, rounds=1, iterations=1)
    result = vm2.run()
    assert result.stdout == string_heavy_expected(size)
    conv = (
        "word size" if stats.converted_word_size
        else "endianness" if stats.converted_endianness
        else "none"
    )
    rep.row(
        f"{file_bytes / 1e6:.2f}", target, conv,
        f"{stats.total_seconds:.3f}",
    )
    _restart_seconds[(size, target)] = stats.total_seconds
    if size == SIZES_WORDS[-1] and target == TARGETS[-1]:
        # The paper's cost ordering at the largest size: same-arch
        # restart < endianness swap < word-size conversion.
        same_arch = _restart_seconds[(size, "rodrigo")]
        endian = _restart_seconds[(size, "csd")]
        word_size = _restart_seconds[(size, "sp2148")]
        assert same_arch < endian < word_size
        rep.note(
            "paper shape: pc8 ~= rodrigo (same arch, other OS); csd adds "
            "an endianness-conversion gap; sp2148 (64-bit) is costliest"
        )
