"""Incremental delta checkpointing: latency and bytes vs full checkpoints.

The paper's checkpoint cost is dominated by saving the heap; when only a
small fraction of the heap mutated since the previous checkpoint, a
format-v4 delta saves just the dirty regions.  This benchmark pins the
win down: a large live heap is mutated by a controlled percentage
between checkpoints, and the same mutation schedule is measured under a
full-checkpoint config and an incremental config (min of interleaved
rounds, identical heaps, identical machine noise).

Acceptance gates (recorded in ``results/BENCH_incremental.json``):

* at the largest heap with 5% mutation, delta checkpoint latency is at
  least ``MIN_LATENCY_SPEEDUP``x better and the delta file at least
  ``MIN_BYTES_RATIO``x smaller than a full checkpoint,
* the dirty-tracking write barrier costs at most
  ``MAX_BARRIER_OVERHEAD`` of a store-heavy workload's runtime.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import make_checkpoint
from repro import VirtualMachine, VMConfig, compile_source, get_platform
from repro.checkpoint.writer import CheckpointWriter
from repro.memory.blocks import Color, HeaderCodec
from repro.workloads import alloc_source, insertion_sort_source

SIZES_WORDS = [256 * 1024, 640 * 1024]
MUTATION_PCTS = [1, 5, 20]

#: Interleaved measurement rounds per (size, pct); min is reported.
ROUNDS = 5

#: Acceptance floors at the largest size with 5% mutation.
MIN_LATENCY_SPEEDUP = 3.0
MIN_BYTES_RATIO = 5.0

#: Acceptance ceiling for the dirty-tracking write barrier.
MAX_BARRIER_OVERHEAD = 0.10

#: alloc_source builds the heap out of rows this big.
ROW_WORDS = 4096


def _row_pointers(vm) -> list[int]:
    """Block pointers of every live ROW_WORDS array in the major heap."""
    arch = vm.platform.arch
    headers = HeaderCodec(arch)
    wb = arch.word_bytes
    rows = []
    for chunk in vm.mem.heap.chunks:
        words = chunk.area.words
        base = chunk.base
        i, n = 0, len(words)
        while i < n:
            hd = words[i]
            size = headers.size(hd)
            if i + 1 + size > n:
                break
            if headers.color(hd) is not Color.BLUE and size == ROW_WORDS:
                rows.append(base + (i + 1) * wb)
            i += 1 + size
    return rows


def _mutate_rows(vm, rows: list[int], pct: int, salt: int) -> None:
    """Dirty ~``pct`` percent of the heap through the write barrier.

    One barriered store per dirty-tracking region covers a whole row, so
    mutating ``pct``% of the rows dirties ``pct``% of the heap at region
    granularity — the same signal real application stores produce.
    """
    step = max(1, round(100 / pct))
    region = vm.config.chkpt_region_words
    for k in range(salt % step, len(rows), step):
        row = rows[k]
        for j in range(0, ROW_WORDS, region):
            vm.mem.set_field(row, j, ((salt + j) << 1) | 1)


@pytest.mark.parametrize("size", SIZES_WORDS)
def test_delta_vs_full_checkpoint(size, tmp_path, get_report, bench_json):
    rep = get_report(
        "Incremental",
        "delta vs full checkpoint cost by heap mutation rate (rodrigo)",
        ["heap words", "mutated %", "full ms", "delta ms", "speedup",
         "full KB", "delta KB", "bytes ratio"],
    )
    path_f = str(tmp_path / "full.hckp")
    path_d = str(tmp_path / "delta.hckp")
    _, vm_f = make_checkpoint(alloc_source(size), path_f)
    _, vm_d = make_checkpoint(
        alloc_source(size), path_d,
        chkpt_incremental=True, chkpt_retain=64, chkpt_full_every=0,
    )
    rows_f = _row_pointers(vm_f)
    rows_d = _row_pointers(vm_d)
    assert len(rows_f) == len(rows_d) == max(size // ROW_WORDS, 1)

    record = bench_json("BENCH_incremental").setdefault("sizes", {})
    entry = record.setdefault(str(size), {"rows": len(rows_d), "pcts": {}})
    salt = 1
    for pct in MUTATION_PCTS:
        best = {"full": None, "delta": None}
        for _ in range(ROUNDS):
            salt += 1
            _mutate_rows(vm_f, rows_f, pct, salt)
            _mutate_rows(vm_d, rows_d, pct, salt)
            stats_f = CheckpointWriter(vm_f).checkpoint(path_f)
            stats_d = CheckpointWriter(vm_d).checkpoint(path_d)
            assert stats_f.kind == "full"
            assert stats_d.kind == "delta", "mutation rate left delta range"
            for label, stats in (("full", stats_f), ("delta", stats_d)):
                prev = best[label]
                if prev is None or stats.blocking_seconds < prev.blocking_seconds:
                    best[label] = stats
        f, d = best["full"], best["delta"]
        speedup = f.blocking_seconds / d.blocking_seconds
        bytes_ratio = f.file_bytes / d.file_bytes
        rep.row(
            size, pct,
            f"{f.blocking_seconds * 1e3:.2f}",
            f"{d.blocking_seconds * 1e3:.2f}",
            f"{speedup:.1f}x",
            f"{f.file_bytes / 1024:.0f}",
            f"{d.file_bytes / 1024:.0f}",
            f"{bytes_ratio:.1f}x",
        )
        entry["pcts"][str(pct)] = {
            "full_ms": round(f.blocking_seconds * 1e3, 3),
            "delta_ms": round(d.blocking_seconds * 1e3, 3),
            "full_bytes": f.file_bytes,
            "delta_bytes": d.file_bytes,
            "dirty_words": d.dirty_words,
            "dirty_ratio": round(d.dirty_words / d.total_words, 4),
            "latency_speedup": round(speedup, 3),
            "bytes_ratio": round(bytes_ratio, 3),
        }
        if size == SIZES_WORDS[-1] and pct == 5:
            rep.note(
                f"acceptance at {size} words / 5% mutation: "
                f"{speedup:.1f}x latency (floor {MIN_LATENCY_SPEEDUP}x), "
                f"{bytes_ratio:.1f}x bytes (floor {MIN_BYTES_RATIO}x), "
                f"min of {ROUNDS} interleaved rounds"
            )
            assert speedup >= MIN_LATENCY_SPEEDUP
            assert bytes_ratio >= MIN_BYTES_RATIO


def test_write_barrier_overhead(get_report, bench_json):
    """The dirty tracker rides the existing GC write barrier; its cost
    on a store-heavy workload must stay under MAX_BARRIER_OVERHEAD."""
    src = insertion_sort_source(400, checkpoint=False)
    code = compile_source(src)

    def run_once(track: bool) -> float:
        vm = VirtualMachine(
            get_platform("rodrigo"), code, VMConfig(chkpt_state="disable")
        )
        if not track:
            # Disarm the per-store hook the barrier calls; bulk paths
            # (promotion copies) are not what this gate measures.
            vm.mem._dirty_add = lambda region: None
        t0 = time.perf_counter()
        result = vm.run()
        dt = time.perf_counter() - t0
        assert result.status == "stopped"
        return dt

    for track in (True, False):  # warm both paths
        run_once(track)
    tracked = min(run_once(True) for _ in range(ROUNDS))
    untracked = min(run_once(False) for _ in range(ROUNDS))
    overhead = max(0.0, tracked / untracked - 1.0)

    rep = get_report(
        "Incremental",
        "delta vs full checkpoint cost by heap mutation rate (rodrigo)",
        ["heap words", "mutated %", "full ms", "delta ms", "speedup",
         "full KB", "delta KB", "bytes ratio"],
    )
    rep.note(
        f"write barrier: {tracked * 1e3:.0f} ms tracked vs "
        f"{untracked * 1e3:.0f} ms untracked on a store-heavy sort "
        f"({overhead * 100:.1f}% overhead, ceiling "
        f"{MAX_BARRIER_OVERHEAD * 100:.0f}%)"
    )
    bench_json("BENCH_incremental")["write_barrier"] = {
        "tracked_seconds": round(tracked, 4),
        "untracked_seconds": round(untracked, 4),
        "overhead": round(overhead, 4),
    }
    assert overhead <= MAX_BARRIER_OVERHEAD
