"""Store fleet throughput: RSTP/2 batched + cached vs v1 per-op uploads.

Eight concurrent supervisors push periodic checkpoint generations —
512 KiB payloads in 8 KiB chunks, half the chunks mutated between
generations, the store-traffic shape HA supervision produces.  The same
workload runs twice:

* **v1**: one threaded ``StoreServer``, plain ``StoreClient`` — one
  HAS_MANY per window plus one PUT_CHUNK round trip per absent chunk;
* **fleet**: three ``FleetNode`` shards behind ``FleetClient`` — RSTP/2
  BATCH frames carry all of a shard's puts in one round trip, and the
  presence cache answers unchanged chunks with no round trip at all.

Loopback round trips cost microseconds, which would hide exactly the
thing the protocol revision buys, so every connection runs through a
``LatencyProxy`` that charges ``RTT_MS`` per response — the shape of a
real network, where the per-chunk PUT conversation is what hurts.

Acceptance gate (recorded in ``results/BENCH_store_fleet.json``): the
fleet's upload throughput is at least ``MIN_SPEEDUP``x the v1 single
node's on the identical workload, with p50/p95/p99 upload latencies
recorded for both.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.store import ChunkStore, StoreClient, StoreServer
from repro.store.fleet import FleetClient, FleetNode

N_WORKERS = 8
GENERATIONS = 6
CHUNK_SIZE = 8 * 1024
PAYLOAD_CHUNKS = 64  # 512 KiB per generation
MUTATE_EVERY = 2  # every other chunk changes per generation

RTT_MS = 15.0  # simulated network round-trip charged per response
MIN_SPEEDUP = 2.0


class LatencyProxy:
    """A transparent TCP proxy that sleeps ``rtt`` before relaying each
    server-to-client burst.  For a sequential request/response protocol
    that charges one round trip per operation, which is precisely the
    cost structure loopback benchmarking erases."""

    def __init__(self, upstream: tuple[str, int], rtt: float) -> None:
        self.upstream = upstream
        self.rtt = rtt
        self._listen = socket.socket()
        self._listen.bind(("127.0.0.1", 0))
        self._listen.listen(32)
        self.address = self._listen.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._listen.accept()
            except OSError:
                return
            threading.Thread(
                target=self._forward, args=(conn,), daemon=True
            ).start()

    def _forward(self, conn: socket.socket) -> None:
        up = socket.create_connection(self.upstream)

        def pump(src, dst, lag):
            try:
                while True:
                    data = src.recv(65536)
                    if not data:
                        break
                    if lag:
                        time.sleep(lag)
                    dst.sendall(data)
            except OSError:
                pass
            finally:
                for s in (src, dst):
                    try:
                        s.close()
                    except OSError:
                        pass

        threading.Thread(
            target=pump, args=(conn, up, 0.0), daemon=True
        ).start()
        pump(up, conn, self.rtt)

    def stop(self) -> None:
        try:
            self._listen.close()
        except OSError:
            pass


def _payload(worker: int, generation: int) -> bytes:
    """One worker's checkpoint at one generation.

    Chunk ``i`` is stable across generations unless ``i`` falls on the
    mutation stride — the dedup shape of a periodic heap checkpoint.
    """
    parts = []
    for i in range(PAYLOAD_CHUNKS):
        gen_mark = generation if i % MUTATE_EVERY == 0 else 0
        stamp = b"%04d/%04d/%08d" % (worker, i, gen_mark)
        parts.append(stamp + bytes(CHUNK_SIZE - len(stamp)))
    return b"".join(parts)


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _drive(make_client) -> dict:
    """Run the workload; returns latency percentiles and throughput."""
    latencies: list[float] = []
    lock = threading.Lock()
    errors: list[Exception] = []
    bytes_total = [0]

    def worker(idx: int) -> None:
        try:
            with make_client() as client:
                for gen in range(GENERATIONS):
                    payload = _payload(idx, gen)
                    t0 = time.perf_counter()
                    client.put_checkpoint(f"bench-vm-{idx}", payload)
                    dt = time.perf_counter() - t0
                    with lock:
                        latencies.append(dt)
                        bytes_total[0] += len(payload)
        except Exception as e:  # pragma: no cover - surfaced below
            errors.append(e)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_WORKERS)
    ]
    wall0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall0
    assert not errors, errors
    latencies.sort()
    mib = bytes_total[0] / (1024 * 1024)
    return {
        "uploads": len(latencies),
        "payload_mib": round(mib, 2),
        "wall_seconds": round(wall, 4),
        "throughput_mib_s": round(mib / wall, 2),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


def test_fleet_vs_v1_throughput(tmp_path, bench_json, get_report):
    rtt = RTT_MS / 1e3

    # -- v1 baseline: one threaded daemon, per-op round trips ------------
    v1_server = StoreServer(ChunkStore(str(tmp_path / "v1")))
    v1_server.start()
    v1_proxy = LatencyProxy(v1_server.address, rtt)
    try:
        host, port = v1_proxy.address
        v1 = _drive(
            lambda: StoreClient(host, port, backoff=0.01,
                                chunk_size=CHUNK_SIZE)
        )
    finally:
        v1_proxy.stop()
        v1_server.stop()

    # -- 3-shard fleet: batched RSTP/2 + presence cache ------------------
    nodes = [
        FleetNode(ChunkStore(str(tmp_path / f"shard-{i}")), node_id=f"s{i}")
        for i in range(3)
    ]
    proxies = []
    for node in nodes:
        node.start()
        proxies.append(LatencyProxy(node.address, rtt))
    addrs = [proxy.address for proxy in proxies]
    try:
        fleet = _drive(
            lambda: FleetClient(addrs, backoff=0.01, chunk_size=CHUNK_SIZE)
        )
    finally:
        for proxy in proxies:
            proxy.stop()
        for node in nodes:
            node.stop()

    speedup = fleet["throughput_mib_s"] / max(v1["throughput_mib_s"], 1e-9)

    rep = get_report(
        "store fleet",
        f"{N_WORKERS} supervisors x {GENERATIONS} generations, "
        f"{PAYLOAD_CHUNKS} x {CHUNK_SIZE // 1024} KiB chunks, "
        f"{RTT_MS:g} ms simulated RTT",
        ["backend", "MiB/s", "p50 ms", "p95 ms", "p99 ms"],
    )
    rep.row("v1 single node", v1["throughput_mib_s"], v1["p50_ms"],
            v1["p95_ms"], v1["p99_ms"])
    rep.row("RSTP/2 3-shard fleet", fleet["throughput_mib_s"],
            fleet["p50_ms"], fleet["p95_ms"], fleet["p99_ms"])
    rep.note(f"fleet speedup {speedup:.2f}x (gate: >= {MIN_SPEEDUP}x)")

    doc = bench_json("BENCH_store_fleet")
    doc["workload"] = {
        "workers": N_WORKERS,
        "generations": GENERATIONS,
        "chunk_size": CHUNK_SIZE,
        "chunks_per_payload": PAYLOAD_CHUNKS,
        "mutated_per_generation": PAYLOAD_CHUNKS // MUTATE_EVERY,
        "simulated_rtt_ms": RTT_MS,
    }
    doc["v1"] = v1
    doc["fleet"] = fleet
    doc["speedup"] = round(speedup, 2)
    doc["min_speedup"] = MIN_SPEEDUP

    assert speedup >= MIN_SPEEDUP, (
        f"fleet {fleet['throughput_mib_s']} MiB/s vs "
        f"v1 {v1['throughput_mib_s']} MiB/s = {speedup:.2f}x "
        f"(need {MIN_SPEEDUP}x)"
    )
