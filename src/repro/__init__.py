"""Virtual-machine based heterogeneous checkpointing.

A full reproduction of Agbaria & Friedman, *Virtual Machine Based
Heterogeneous Checkpointing* (IPPS 2002): an OCaml-VM-style byte-code
virtual machine (tagged values, generational GC, ZINC interpreter,
green threads, channels) running on simulated heterogeneous platforms
(32/64-bit, little/big-endian, with/without ``fork``), plus the paper's
checkpoint/restart mechanism that saves state in native representation
and converts it lazily on restart.

Quickstart::

    from repro import VirtualMachine, compile_source, get_platform, restart_vm

    code = compile_source('''
        let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);;
        checkpoint ();;
        print_int (fib 20)
    ''')
    vm = VirtualMachine(get_platform("rodrigo"), code)
    vm.config.chkpt_filename = "app.ckpt"
    print(vm.run().stdout)

    # ... later, on a different architecture:
    vm2, stats = restart_vm(get_platform("sp2148"), code, "app.ckpt")
    print(vm2.run().stdout)
"""

from repro.arch import (
    Architecture,
    Endianness,
    OSFamily,
    Platform,
    PLATFORMS,
    get_platform,
)
from repro.bytecode import CodeImage, disassemble
from repro.checkpoint import (
    CheckpointStats,
    CheckpointWriter,
    HomogeneousCheckpointer,
    RestartStats,
    read_checkpoint,
    restart_vm,
)
from repro.errors import (
    CheckpointError,
    CheckpointFormatError,
    CompileError,
    ReproError,
    RestartError,
    StoreError,
    VMRuntimeError,
)
from repro.minilang import compile_source
from repro.vm import RunResult, VirtualMachine, VMConfig

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "Endianness",
    "OSFamily",
    "Platform",
    "PLATFORMS",
    "get_platform",
    "CodeImage",
    "disassemble",
    "CheckpointStats",
    "CheckpointWriter",
    "HomogeneousCheckpointer",
    "RestartStats",
    "read_checkpoint",
    "restart_vm",
    "CheckpointError",
    "CheckpointFormatError",
    "CompileError",
    "ReproError",
    "RestartError",
    "StoreError",
    "VMRuntimeError",
    "compile_source",
    "RunResult",
    "VirtualMachine",
    "VMConfig",
    "__version__",
]
