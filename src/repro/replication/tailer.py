"""The primary-side tailer: committed generations become GEN records.

The tailer sits between the VM's checkpoint machinery and the
replication channel.  It drives each checkpoint through the existing
atomic-commit protocol with a :class:`TailHooks` observer riding the
commit points, and only packages a generation for shipping once the
``committed`` point was actually reached — a crash injected anywhere
inside the protocol (the PR 3 fault windows) leaves nothing half-shipped,
because nothing is shipped at all.

What gets packaged is exactly what landed on disk: the committed file
bytes, its chain identity (``body_sha256`` for the next delta to bind
to, ``parent_sha256`` it bound to), and the cumulative stdout at the
safe point — the flush-before-checkpoint trick, so the file itself
carries an empty output buffer and the standby prefills its sink
instead of replaying writes.
"""

from __future__ import annotations

from typing import Optional

from repro.checkpoint.commit import CommitHooks
from repro.checkpoint.format import detect_format_version
from repro.errors import ReplicationError
from repro.replication.wire import GenRecord


class TailHooks(CommitHooks):
    """Observe the commit protocol, optionally wrapping inner hooks.

    Composes: fault injectors (``CrashHooks`` and friends) still work
    when the tailer is active — their behavior passes through, and the
    tailer's record of reached points tells whether the commit made it
    to the end.
    """

    def __init__(self, inner: Optional[CommitHooks] = None) -> None:
        self.inner = inner
        self.reached: list[str] = []

    def point(self, name: str) -> None:
        self.reached.append(name)
        if self.inner is not None:
            self.inner.point(name)

    def fsync(self, fd: int) -> None:
        if self.inner is not None:
            self.inner.fsync(fd)
        else:
            super().fsync(fd)

    def replace(self, src: str, dst: str) -> None:
        if self.inner is not None:
            self.inner.replace(src, dst)
        else:
            super().replace(src, dst)

    @property
    def committed(self) -> bool:
        return "committed" in self.reached


class CommitTailer:
    """Turns each committed checkpoint of one VM into a GenRecord."""

    def __init__(self, vm, path: str) -> None:
        self.vm = vm
        self.path = path
        self.seq = 0

    def capture(self, inner_hooks: Optional[CommitHooks] = None) -> GenRecord:
        """Checkpoint now and package the committed generation.

        ``inner_hooks`` lets a fault schedule crash the commit protocol
        mid-write; the crash propagates (like a real power cut) and no
        record is produced.  Raises :class:`ReplicationError` if the
        commit protocol finished without reaching its ``committed``
        point — a torn commit must never reach the wire.
        """
        vm = self.vm
        # Flush first: the file carries an empty output buffer, the
        # record the cumulative output (the coordinator's prefill trick).
        vm.channels.stdout.flush()
        stdout_so_far = vm.channels.stdout_bytes()
        parent_sha = vm.delta_parent_sha  # what a delta will bind to
        hooks = TailHooks(inner_hooks)
        saved_hooks = vm.config.commit_hooks
        vm.config.commit_hooks = hooks
        try:
            vm.perform_checkpoint()
        finally:
            vm.config.commit_hooks = saved_hooks
        if not hooks.committed:
            raise ReplicationError(
                f"checkpoint of {self.path} never reached its commit "
                f"point; refusing to replicate a torn generation"
            )
        stats = vm.last_checkpoint_stats
        with open(self.path, "rb") as f:
            data = f.read()
        self.seq += 1
        kind = stats.kind if stats is not None else "full"
        body_sha = vm.delta_parent_sha  # the writer just updated it
        return GenRecord(
            seq=self.seq,
            kind=kind,
            body_sha256=body_sha.hex() if body_sha else "",
            parent_sha256=(
                parent_sha.hex() if (kind == "delta" and parent_sha) else ""
            ),
            chain_depth=(
                stats.chain_depth if (stats and kind == "delta") else 0
            ),
            format_version=detect_format_version(self.path),
            instructions=vm.interp.instructions,
            stdout=stdout_so_far,
            data=data,
        )
