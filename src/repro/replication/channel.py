"""The primary's end of the replication channel.

One TCP connection to the standby, used synchronously: ``ship`` sends a
GEN frame and blocks until the cumulative ACK covers it, retransmitting
on timeout.  The standby applies before acking, so a returned ``ship``
means the generation is spliced into the resident VM — takeover-ready —
and the caller may release stdout up to that generation's coverage.

Retransmits are safe by construction: GEN frames are idempotent (the
standby drops already-applied sequence numbers and re-acks), and ACKs
are cumulative, so a lost ACK is healed by the retransmit of the GEN it
acknowledged.  A channel that stays quiet through the whole retransmit
budget raises :class:`~repro.errors.StandbyUnreachableError`; deciding
what that *means* (dead standby? partition? am I still primary?) is the
caller's job, with the epoch lease as the tiebreaker.
"""

from __future__ import annotations

import socket
from typing import Callable, Optional

from repro.errors import (
    ReplicationError,
    ReplicationProtocolError,
    StandbyUnreachableError,
)
from repro.metrics import REPLICATION
from repro.replication import wire
from repro.replication.wire import GenRecord


class ReplicationSender:
    """Ships committed generations to one standby and tracks acks."""

    def __init__(
        self,
        sock,
        node_id: str,
        ack_timeout: float = 2.0,
        max_retransmits: int = 3,
    ) -> None:
        self.sock = sock
        self.node_id = node_id
        self.ack_timeout = ack_timeout
        self.max_retransmits = max_retransmits
        self.acked_seq = 0
        self.sent_seq = 0
        self.standby_node: Optional[str] = None
        self._unacked_bytes = 0

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        node_id: str,
        wrap: Optional[Callable] = None,
        **kwargs,
    ) -> "ReplicationSender":
        """Dial the standby.  ``wrap`` (e.g. a FlakySocket factory) is
        applied to the raw socket before any frame moves — fault
        injection sees the whole conversation."""
        sock = socket.create_connection((host, port), timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if wrap is not None:
            sock = wrap(sock)
        return cls(sock, node_id, **kwargs)

    # -- handshake ---------------------------------------------------------

    def hello(self, code_digest: str, epoch: int, platform: str) -> dict:
        """Announce ourselves; learn the standby's applied frontier."""
        self.sock.settimeout(self.ack_timeout)
        wire.send_frame(
            self.sock,
            wire.OP_HELLO,
            wire.encode_json(
                {
                    "node": self.node_id,
                    "code_digest": code_digest,
                    "epoch": epoch,
                    "platform": platform,
                }
            ),
        )
        frame = wire.recv_frame(self.sock)
        if frame is None:
            raise ReplicationProtocolError("standby closed during HELLO")
        op, payload = frame
        if op == wire.OP_ERR:
            doc = wire.decode_json(payload)
            raise ReplicationError(
                f"standby rejected HELLO: {doc.get('error', repr(payload))}"
            )
        if op != wire.OP_OK:
            raise ReplicationProtocolError(
                f"unexpected HELLO response opcode 0x{op:02x}"
            )
        info = wire.decode_json(payload)
        self.standby_node = info.get("node")
        self.acked_seq = int(info.get("applied", 0))
        self.sent_seq = max(self.sent_seq, self.acked_seq)
        return info

    # -- the acked data path -----------------------------------------------

    def ship(self, rec: GenRecord) -> int:
        """Send one generation; block until the ack covers it.

        Returns the standby's applied frontier.  Raises
        :class:`StandbyUnreachableError` after the retransmit budget is
        spent with no covering ack.
        """
        payload = wire.encode_gen(rec)
        self.sock.settimeout(self.ack_timeout)
        attempts = 0
        while True:
            try:
                wire.send_frame(self.sock, wire.OP_GEN, payload)
                if attempts == 0:
                    self.sent_seq = max(self.sent_seq, rec.seq)
                    self._unacked_bytes += len(payload)
                    REPLICATION.generations_sent += 1
                    REPLICATION.bytes_sent += len(payload)
                else:
                    REPLICATION.retransmits += 1
                self._gauge()
                if self._await_ack(rec.seq):
                    self._unacked_bytes = 0
                    self._gauge()
                    return self.acked_seq
            except (socket.timeout, TimeoutError):
                pass
            except OSError as e:
                raise StandbyUnreachableError(
                    f"replication channel to {self.standby_node or '?'} "
                    f"failed: {e}"
                ) from e
            attempts += 1
            if attempts > self.max_retransmits:
                raise StandbyUnreachableError(
                    f"generation {rec.seq} unacknowledged after "
                    f"{attempts} attempts"
                )

    def _await_ack(self, seq: int) -> bool:
        """Drain frames until an ACK covering ``seq`` (True) or a
        timeout (False).  Anything else on the wire is either benign
        (PONG, stale ACK) or a protocol violation."""
        while True:
            try:
                frame = wire.recv_frame(self.sock)
            except (socket.timeout, TimeoutError):
                return False
            except ReplicationProtocolError as e:
                # The standby hung up mid-frame (e.g. it promoted and
                # closed the channel).  From this side that is simply an
                # unreachable standby; the lease decides what it means.
                raise StandbyUnreachableError(
                    f"standby closed the replication channel: {e}"
                ) from e
            if frame is None:
                raise StandbyUnreachableError(
                    "standby closed the replication channel"
                )
            op, payload = frame
            if op == wire.OP_ACK:
                _seq, applied = wire.decode_ack(payload)
                if applied > self.acked_seq:
                    self.acked_seq = applied
                    REPLICATION.acks += 1
                if self.acked_seq >= seq:
                    return True
            elif op in (wire.OP_PONG, wire.OP_OK):
                # Stale heartbeat answer, or the response to a HELLO the
                # channel duplicated — benign on an at-least-once link.
                continue
            elif op == wire.OP_ERR:
                doc = wire.decode_json(payload)
                raise ReplicationError(
                    f"standby rejected generation: "
                    f"{doc.get('error', repr(payload))}"
                )
            else:
                raise ReplicationProtocolError(
                    f"unexpected frame 0x{op:02x} while awaiting ack"
                )

    def ping(self) -> bool:
        """One heartbeat round trip; False on timeout."""
        try:
            self.sock.settimeout(self.ack_timeout)
            wire.send_frame(self.sock, wire.OP_PING)
            while True:
                frame = wire.recv_frame(self.sock)
                if frame is None:
                    return False
                op, payload = frame
                if op == wire.OP_PONG:
                    return True
                if op == wire.OP_ACK:  # stale ack racing a retransmit
                    _seq, applied = wire.decode_ack(payload)
                    self.acked_seq = max(self.acked_seq, applied)
                    continue
                if op == wire.OP_OK:  # duplicated HELLO response
                    continue
                return False
        except (
            socket.timeout,
            TimeoutError,
            OSError,
            ReplicationProtocolError,
        ):
            # Timeout, reset, or a mid-frame hangup (a standby that
            # promoted away): the heartbeat simply failed.
            return False

    def _gauge(self) -> None:
        REPLICATION.lag_generations = self.sent_seq - self.acked_seq
        REPLICATION.lag_bytes = self._unacked_bytes

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
