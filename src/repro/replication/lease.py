"""The primary-epoch lease: the split-brain guard, persisted in the store.

The store's generation counter is the fencing token.  Lease claims for
``<vm_id>.lease`` are committed *without* an explicit generation, so the
store assigns ``latest + 1`` under its commit lock — a serialized,
monotonic allocation.  Every claim records which epoch it *expected* to
succeed; a claim is **valid** — actually holds the lease — only if its
expectation matches the newest valid claim before it.  The epoch of a
valid claim IS its assigned generation:

* To **acquire** (promote), a node commits a claim expecting the newest
  valid epoch ``e`` it has observed.  The commit lock serializes
  claims, so at most one claim expecting ``e`` can land before a claim
  expecting something newer — exactly one winner per epoch.  A claim
  that lands after an intervening valid claim carries a stale
  expectation, is invalid, and raises
  :class:`~repro.errors.LeaseLostError`.  The losing record stays in
  the history — harmless (invalid claims never hold the lease, never
  fence anyone) and useful: the audit trail shows exactly who contended
  and when.
* To **fence**, any node compares the newest *valid* epoch against its
  own.  A revived primary that slept through a takeover sees a higher
  valid epoch held by someone else and must demote — it can never win
  an argument with the store, because valid epochs only move forward.

Claims carry a per-node nonce in the payload so the store's
identical-payload dedup (a retry convenience for checkpoints) can never
collapse two distinct claims into one generation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import LeaseLostError

#: Suffix appended to the workload's vm id to name its lease object.
LEASE_SUFFIX = ".lease"


@dataclass(frozen=True)
class LeaseState:
    """One observation of the lease: who validly holds which epoch."""

    epoch: int
    holder: str

    @property
    def exists(self) -> bool:
        return self.epoch > 0


@dataclass(frozen=True)
class LeaseClaim:
    """One historical claim — valid (held the lease) or a loser."""

    epoch: int  # the store generation this claim was assigned
    holder: str
    expected: int  # the valid epoch the claimant thought was newest
    valid: bool


class EpochLease:
    """A node's handle on the primary-epoch lease for one workload."""

    def __init__(self, client, vm_id: str, node_id: str) -> None:
        self.client = client
        self.lease_id = vm_id + LEASE_SUFFIX
        self.node_id = node_id
        self._nonce = 0

    # -- observation --------------------------------------------------------

    def history(self) -> list[LeaseClaim]:
        """Every claim ever made, oldest first, validity resolved.

        Validity is a pure fold over the serialized history: a claim is
        valid iff its recorded expectation equals the epoch of the
        newest valid claim before it.  Any node reading the store
        computes the same answer — there is no ambiguity to split a
        brain over.
        """
        listing = self.client.ls()["vms"].get(self.lease_id, [])
        claims = []
        valid_head = 0
        for entry in sorted(listing, key=lambda g: g["generation"]):
            meta = entry.get("meta", {})
            expected = int(meta.get("expected_epoch", -1))
            valid = expected == valid_head
            if valid:
                valid_head = entry["generation"]
            claims.append(
                LeaseClaim(
                    epoch=entry["generation"],
                    holder=str(meta.get("holder", "")),
                    expected=expected,
                    valid=valid,
                )
            )
        return claims

    def read(self) -> LeaseState:
        """The newest *valid* claim (epoch 0 / empty holder if none)."""
        for claim in reversed(self.history()):
            if claim.valid:
                return LeaseState(epoch=claim.epoch, holder=claim.holder)
        return LeaseState(epoch=0, holder="")

    # -- acquisition and fencing -------------------------------------------

    def claim(self, expected: int) -> int:
        """Acquire the lease, expecting ``expected`` to be the newest
        valid epoch; returns the new epoch on success.

        Raises :class:`LeaseLostError` if the expectation was stale —
        another node's valid claim intervened, so this one recorded an
        expectation that does not match and can never hold the lease.
        """
        self._nonce += 1
        payload = json.dumps(
            {
                "holder": self.node_id,
                "expected": expected,
                "nonce": self._nonce,
            },
            sort_keys=True,
        ).encode()
        generation, _stats = self.client.put_checkpoint(
            self.lease_id,
            payload,
            meta={"holder": self.node_id, "expected_epoch": expected},
        )
        mine = next(
            (c for c in self.history() if c.epoch == generation), None
        )
        if mine is None or not mine.valid:
            current = self.read()
            raise LeaseLostError(
                f"{self.node_id} claimed expecting epoch {expected} but "
                f"{current.holder!r} validly holds epoch {current.epoch}",
                epoch=current.epoch,
                holder=current.holder,
            )
        return generation

    def check(self, my_epoch: int) -> LeaseState:
        """Fencing probe: raises :class:`LeaseLostError` if a higher
        *valid* epoch exists and someone else holds it."""
        state = self.read()
        if state.epoch > my_epoch and state.holder != self.node_id:
            raise LeaseLostError(
                f"{self.node_id} (epoch {my_epoch}) is fenced: "
                f"{state.holder!r} holds epoch {state.epoch}",
                epoch=state.epoch,
                holder=state.holder,
            )
        return state
