"""The replication channel wire protocol: acked, length-prefixed frames.

Same framing discipline as the store's RSTP (one ``sendall`` per frame,
a fixed header carrying magic/version/opcode/length) but a separate
protocol: the replication channel is a long-lived, ordered, *stateful*
stream between exactly two nodes, not a request/response service.

::

    +------+---------+--------+------------+---------------+
    | RPLC | version | opcode | length u32 | payload bytes |
    +------+---------+--------+------------+---------------+
      4B       u8       u8    little-endian    <length>

Frames:

* ``HELLO`` / ``OK`` — one negotiation round trip.  The primary
  announces its node id, code digest, platform, and epoch; the standby
  answers with its node id and the highest generation it has applied,
  so a reconnecting primary knows where to resume.
* ``GEN`` — one committed checkpoint generation: a JSON header
  (sequence number, kind, chain identity, digests, instruction count)
  followed by the raw committed file bytes and the cumulative stdout
  the generation covers.  Idempotent: the standby drops duplicates by
  sequence number and re-acks, so retransmits are always safe.
* ``ACK`` — cumulative: acknowledges every generation up to ``seq``.
  Receipt means *applied*: the standby has spliced the generation into
  its resident VM, so an acked generation is takeover-ready.
* ``PING`` / ``PONG`` — heartbeats; either side treats a quiet channel
  (no frames inside its timeout window) as a suspected peer.
* ``ERR`` — a JSON diagnosis of why the receiver rejected a frame.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReplicationProtocolError

MAGIC = b"RPLC"
VERSION = 1
HEADER = struct.Struct("<4sBBI")

#: Upper bound on one frame's payload; a generation (delta or full) of
#: any workload this VM runs fits far below this.
MAX_FRAME = 256 * 1024 * 1024

OP_HELLO = 0x01
OP_GEN = 0x02
OP_ACK = 0x03
OP_PING = 0x04
OP_PONG = 0x05
OP_OK = 0x80
OP_ERR = 0x81

OP_NAMES = {
    OP_HELLO: "HELLO",
    OP_GEN: "GEN",
    OP_ACK: "ACK",
    OP_PING: "PING",
    OP_PONG: "PONG",
    OP_OK: "OK",
    OP_ERR: "ERR",
}

_GEN_HEAD = struct.Struct("<I")  # length of the JSON meta block


@dataclass(frozen=True)
class GenRecord:
    """One committed checkpoint generation, ready to ship.

    ``data`` is the committed file byte-for-byte; ``stdout`` is the
    cumulative program output at the safe point the generation was
    taken (the file itself carries an empty output buffer — the
    flush-before-checkpoint trick the HA supervisor already uses).
    """

    seq: int
    kind: str  # "full" | "delta"
    body_sha256: str  # what the *next* delta will bind to
    parent_sha256: str  # "" for a full
    chain_depth: int
    format_version: Optional[int]
    instructions: int
    stdout: bytes = field(repr=False)
    data: bytes = field(repr=False)

    @property
    def data_sha256(self) -> str:
        return hashlib.sha256(self.data).hexdigest()


def encode_frame(op: int, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_FRAME:
        raise ReplicationProtocolError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME"
        )
    return HEADER.pack(MAGIC, VERSION, op, len(payload)) + payload


def send_frame(sock, op: int, payload: bytes = b"") -> None:
    sock.sendall(encode_frame(op, payload))


def _recv_exact(sock, n: int, allow_eof: bool = False) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < n:
        try:
            part = sock.recv(n - len(buf))
        except ConnectionResetError:
            part = b""
        if not part:
            if allow_eof and not buf:
                return None
            raise ReplicationProtocolError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)"
            )
        buf += part
    return bytes(buf)


def recv_frame(sock, allow_eof: bool = False) -> Optional[tuple[int, bytes]]:
    """Read one frame; ``None`` on clean EOF (when ``allow_eof``).

    A socket timeout propagates as :class:`socket.timeout` — the
    failure detectors are built on exactly that signal.
    """
    head = _recv_exact(sock, HEADER.size, allow_eof=allow_eof)
    if head is None:
        return None
    magic, version, op, length = HEADER.unpack(head)
    if magic != MAGIC:
        raise ReplicationProtocolError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise ReplicationProtocolError(
            f"unsupported replication protocol version {version}"
        )
    if length > MAX_FRAME:
        raise ReplicationProtocolError(
            f"frame length {length} exceeds MAX_FRAME"
        )
    payload = _recv_exact(sock, length) if length else b""
    return op, payload


def encode_json(obj) -> bytes:
    return json.dumps(obj, sort_keys=True).encode()


def decode_json(payload: bytes):
    try:
        return json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise ReplicationProtocolError(f"malformed JSON payload: {e}") from e


def encode_gen(rec: GenRecord) -> bytes:
    """GEN payload: u32 meta length, JSON meta, file bytes, stdout bytes."""
    meta = encode_json(
        {
            "seq": rec.seq,
            "kind": rec.kind,
            "body_sha256": rec.body_sha256,
            "parent_sha256": rec.parent_sha256,
            "chain_depth": rec.chain_depth,
            "format_version": rec.format_version,
            "instructions": rec.instructions,
            "data_len": len(rec.data),
            "data_sha256": rec.data_sha256,
            "stdout_len": len(rec.stdout),
        }
    )
    return _GEN_HEAD.pack(len(meta)) + meta + rec.data + rec.stdout


def decode_gen(payload: bytes) -> GenRecord:
    """Parse and *verify* a GEN payload (lengths and file digest)."""
    if len(payload) < _GEN_HEAD.size:
        raise ReplicationProtocolError("GEN payload shorter than its header")
    (meta_len,) = _GEN_HEAD.unpack_from(payload)
    body = payload[_GEN_HEAD.size:]
    if meta_len > len(body):
        raise ReplicationProtocolError("GEN meta length overruns payload")
    meta = decode_json(body[:meta_len])
    rest = body[meta_len:]
    try:
        seq = int(meta["seq"])
        data_len = int(meta["data_len"])
        stdout_len = int(meta["stdout_len"])
        kind = str(meta["kind"])
    except (KeyError, TypeError, ValueError) as e:
        raise ReplicationProtocolError(f"GEN meta incomplete: {e}") from e
    if data_len + stdout_len != len(rest):
        raise ReplicationProtocolError(
            f"GEN sizes lie: meta claims {data_len}+{stdout_len}, "
            f"frame carries {len(rest)}"
        )
    data, stdout = rest[:data_len], rest[data_len:]
    digest = hashlib.sha256(data).hexdigest()
    if digest != meta.get("data_sha256"):
        raise ReplicationProtocolError(
            f"GEN seq {seq}: file digest mismatch (wire corruption?)"
        )
    fmt = meta.get("format_version")
    return GenRecord(
        seq=seq,
        kind=kind,
        body_sha256=str(meta.get("body_sha256", "")),
        parent_sha256=str(meta.get("parent_sha256", "")),
        chain_depth=int(meta.get("chain_depth", 0)),
        format_version=int(fmt) if fmt is not None else None,
        instructions=int(meta.get("instructions", 0)),
        stdout=stdout,
        data=data,
    )


def encode_ack(seq: int, applied: int) -> bytes:
    return encode_json({"seq": seq, "applied": applied})


def decode_ack(payload: bytes) -> tuple[int, int]:
    doc = decode_json(payload)
    try:
        return int(doc["seq"]), int(doc["applied"])
    except (KeyError, TypeError, ValueError) as e:
        raise ReplicationProtocolError(f"malformed ACK: {e}") from e
