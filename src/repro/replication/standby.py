"""The standby daemon: a resident VM kept ≤1 generation behind.

One TCP listener, one primary at a time.  Every GEN frame is verified
(wire digest, sequence contiguity), durably committed into the
standby's *local* generation chain through the same atomic-commit
protocol the primary used, and then spliced into a **resident VM** by
restoring the chain head — full heterogeneous conversion included, so
the resident VM already lives on the standby's platform (different
endianness, different word size) before any failover happens.  Only
then is the ACK sent: an acked generation is takeover-ready by
definition, which is what lets the primary release stdout up to it.

Failure detection rides the channel itself: any frame resets the miss
counter; ``heartbeat_misses`` consecutive quiet windows (or an abrupt
EOF — a crashed primary's kernel sending FIN/RST) marks the primary
suspect.  With ``auto_promote``, suspicion triggers promotion: the
standby acquires epoch+1 through the store lease (the split-brain
guard — if the store says no, someone else leads and we stay down),
and the resident VM plus its stdout prefill become the new primary.
Takeover applies only the un-acked tail — which is empty, because
apply-before-ack means the resident VM is already *at* the acked
frontier.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional

from repro.arch.platforms import Platform, get_platform
from repro.checkpoint.commit import atomic_commit
from repro.checkpoint.reader import restart_vm
from repro.errors import (
    LeaseLostError,
    ReplicationError,
    ReplicationProtocolError,
    RestartError,
)
from repro.metrics import REPLICATION
from repro.replication import wire
from repro.replication.lease import EpochLease
from repro.vm import VMConfig, VirtualMachine

#: Generations kept in the standby's local chain — comfortably above the
#: deepest delta chain the writer produces (``chkpt_full_every`` bounds
#: it), so the head is always restorable from local files alone.
DEFAULT_RETAIN = 24


class StandbyServer:
    """Receives, verifies, splices, acks; promotes when the lease says so."""

    def __init__(
        self,
        code,
        platform: Platform | str,
        node_id: str,
        chain_path: str,
        lease: Optional[EpochLease] = None,
        config: Optional[VMConfig] = None,
        heartbeat_timeout: float = 0.25,
        heartbeat_misses: int = 3,
        auto_promote: bool = False,
        retain: int = DEFAULT_RETAIN,
    ) -> None:
        self.code = code
        self.platform = (
            get_platform(platform) if isinstance(platform, str) else platform
        )
        self.node_id = node_id
        self.chain_path = chain_path
        self.lease = lease
        self.config = config
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_misses = heartbeat_misses
        self.auto_promote = auto_promote
        self.retain = retain

        self.applied_seq = 0
        self.applied_instructions = 0
        self.last_body_sha = ""
        self.resident_vm: Optional[VirtualMachine] = None
        self.prefill = b""
        self.primary_node: Optional[str] = None
        self.primary_epoch = 0
        self.epoch = 0
        self.takeover_seconds: Optional[float] = None
        #: Why the failure detector fired ("eof", "timeout"), if it did.
        self.suspicion_reason = ""

        self.suspect_event = threading.Event()
        self.promoted_event = threading.Event()
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self._listener.settimeout(0.1)
        self._thread = threading.Thread(
            target=self._serve, name=f"standby-{self.node_id}", daemon=True
        )
        self._thread.start()
        return self._listener.getsockname()

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- the serving loop --------------------------------------------------

    def _serve(self) -> None:
        while not self._stopping.is_set() and not self.promoted_event.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._speak(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _speak(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(self.heartbeat_timeout)
        missed = 0
        greeted = False
        while not self._stopping.is_set() and not self.promoted_event.is_set():
            try:
                frame = wire.recv_frame(conn, allow_eof=True)
            except (socket.timeout, TimeoutError):
                if not greeted:
                    continue  # nobody to suspect yet
                missed += 1
                REPLICATION.heartbeats_missed += 1
                if missed >= self.heartbeat_misses:
                    self._suspect("timeout")
                continue
            except (ReplicationProtocolError, OSError):
                if greeted:
                    self._suspect("eof")
                return
            if frame is None:  # clean EOF — the primary's host died
                if greeted:
                    self._suspect("eof")
                return
            missed = 0
            op, payload = frame
            try:
                if op == wire.OP_HELLO:
                    self._on_hello(conn, payload)
                    greeted = True
                elif op == wire.OP_GEN:
                    self._on_gen(conn, payload)
                elif op == wire.OP_PING:
                    wire.send_frame(conn, wire.OP_PONG)
                else:
                    self._err(conn, f"unexpected opcode 0x{op:02x}")
            except (ReplicationProtocolError, ReplicationError) as e:
                self._err(conn, str(e))
            except OSError:
                if greeted:
                    self._suspect("eof")
                return

    def _err(self, conn, message: str) -> None:
        try:
            wire.send_frame(
                conn, wire.OP_ERR, wire.encode_json({"error": message})
            )
        except OSError:
            pass

    def _on_hello(self, conn, payload: bytes) -> None:
        info = wire.decode_json(payload)
        if info.get("code_digest") != self.code.digest().hex():
            raise ReplicationError(
                "primary runs a different program (code digest mismatch)"
            )
        self.primary_node = info.get("node")
        self.primary_epoch = int(info.get("epoch", 0))
        wire.send_frame(
            conn,
            wire.OP_OK,
            wire.encode_json(
                {"node": self.node_id, "applied": self.applied_seq}
            ),
        )

    def _on_gen(self, conn, payload: bytes) -> None:
        rec = wire.decode_gen(payload)  # verifies sizes + file digest
        if rec.seq <= self.applied_seq:
            REPLICATION.duplicates_dropped += 1
            self._ack(conn, rec.seq)
            return
        if rec.seq != self.applied_seq + 1:
            # A gap cannot happen under the 1-in-flight discipline; if
            # it somehow does, the cumulative ack tells the primary
            # where we really are.
            self._ack(conn, rec.seq)
            return
        if rec.kind == "delta" and rec.parent_sha256 != self.last_body_sha:
            raise ReplicationError(
                f"generation {rec.seq} binds to parent "
                f"{rec.parent_sha256[:16]}..., standby chain head is "
                f"{self.last_body_sha[:16] or '(none)'}..."
            )
        self._splice(rec)
        self._ack(conn, rec.seq)

    def _ack(self, conn, seq: int) -> None:
        wire.send_frame(
            conn, wire.OP_ACK, wire.encode_ack(seq, self.applied_seq)
        )

    # -- splicing ----------------------------------------------------------

    def _splice(self, rec: wire.GenRecord) -> None:
        """Commit the generation locally and fold it into the resident VM.

        The local commit uses the same journal/rotate/rename protocol as
        the primary's checkpoint, so the standby's chain is itself
        crash-consistent; the restore then re-verifies every chain
        binding and converts to the standby's architecture.  Apply
        happens *before* the ack — the output rule depends on it.
        """
        atomic_commit(self.chain_path, rec.data, retain=self.retain)
        try:
            vm, _stats = restart_vm(
                self.platform, self.code, self.chain_path, self.config
            )
        except RestartError as e:
            raise ReplicationError(
                f"generation {rec.seq} failed to splice: {e}"
            ) from e
        with self._lock:
            self.resident_vm = vm
            self.prefill = rec.stdout
            self.applied_seq = rec.seq
            self.applied_instructions = rec.instructions
            self.last_body_sha = rec.body_sha256
        REPLICATION.generations_applied += 1

    # -- failure detection and promotion -----------------------------------

    def _suspect(self, reason: str) -> None:
        if not self.suspect_event.is_set():
            self.suspicion_reason = reason
        self.suspect_event.set()
        if self.auto_promote and not self.promoted_event.is_set():
            try:
                self.promote()
            except (LeaseLostError, ReplicationError):
                # Someone else leads (or no lease is configured): we
                # stay a standby and keep listening.
                pass

    def promote(self) -> VirtualMachine:
        """Acquire epoch+1 and hand over the resident VM.

        Only the lease can say yes: a standby whose claim loses (another
        node already took a higher epoch) raises
        :class:`~repro.errors.LeaseLostError` and must stay down.  The
        un-acked tail is applied first — under the synchronous apply
        discipline it is always empty, making takeover O(lease claim).
        """
        if self.lease is None:
            raise ReplicationError("no lease configured; cannot promote")
        with self._lock:
            if self.resident_vm is None:
                raise ReplicationError(
                    "nothing replicated yet; cold-start instead"
                )
        t0 = time.perf_counter()
        observed = self.lease.read().epoch
        self.epoch = self.lease.claim(expected=observed)
        # Confirm we hold the newest epoch (claim raced nobody).
        self.lease.check(self.epoch)
        self.takeover_seconds = time.perf_counter() - t0
        REPLICATION.promotions += 1
        self.promoted_event.set()
        with self._lock:
            vm = self.resident_vm
            if self.prefill:
                vm.channels._stdout.write(self.prefill)
        return vm

    # -- introspection -----------------------------------------------------

    def await_suspect(self, timeout: float) -> bool:
        return self.suspect_event.wait(timeout)

    def await_promoted(self, timeout: float) -> bool:
        return self.promoted_event.wait(timeout)

    def describe(self) -> dict:
        with self._lock:
            return {
                "node": self.node_id,
                "platform": self.platform.name,
                "applied_seq": self.applied_seq,
                "applied_instructions": self.applied_instructions,
                "chain_head_sha": self.last_body_sha,
                "primary": self.primary_node,
                "suspect": self.suspect_event.is_set(),
                "suspicion_reason": self.suspicion_reason,
                "promoted": self.promoted_event.is_set(),
                "epoch": self.epoch,
                "takeover_seconds": self.takeover_seconds,
            }
