"""Warm-standby continuous replication with live handoff.

The paper's checkpoint files make a stopped program portable across
architectures; this package makes a *running* one highly available.  A
primary streams every committed checkpoint generation — format-v4
deltas after the first full — over an acked channel to a standby that
keeps a resident VM spliced up to date on a different platform, while
an output gate (the VMware-FT output rule) holds client-visible stdout
until the covering generation is acknowledged and a store-backed epoch
lease arbitrates who may lead after a crash or partition.

Layout:

``wire``     framing and the GEN record codec
``gate``     the output rule (hold / release / resume)
``lease``    the primary-epoch lease and fencing (split-brain guard)
``tailer``   commit-point observer packaging committed generations
``channel``  the primary's acked sender (retransmit, cumulative acks)
``standby``  the standby daemon (apply-before-ack, failure detector,
             promotion)
``live``     the end-to-end driver and seeded fault schedules
"""

from repro.replication.channel import ReplicationSender
from repro.replication.gate import OutputGate
from repro.replication.lease import (
    EpochLease,
    LeaseClaim,
    LeaseState,
    LEASE_SUFFIX,
)
from repro.replication.live import (
    LiveHA,
    LiveReport,
    SCHEDULES,
    cold_restore_from_store,
)
from repro.replication.standby import StandbyServer
from repro.replication.tailer import CommitTailer, TailHooks
from repro.replication.wire import GenRecord

__all__ = [
    "CommitTailer",
    "EpochLease",
    "GenRecord",
    "LEASE_SUFFIX",
    "LeaseClaim",
    "LeaseState",
    "LiveHA",
    "LiveReport",
    "OutputGate",
    "ReplicationSender",
    "SCHEDULES",
    "StandbyServer",
    "TailHooks",
    "cold_restore_from_store",
]
