"""Live warm-standby replication: the end-to-end failover driver.

This is where the pieces meet.  A primary VM runs the workload on one
platform, checkpointing every ``checkpoint_every`` instructions through
the :class:`~repro.replication.tailer.CommitTailer`; each committed
generation is shipped over the acked channel to a
:class:`~repro.replication.standby.StandbyServer` that keeps a resident
VM on a *different* platform — different endianness, different word
size — so takeover needs no conversion work at all.  Client-visible
stdout flows through the :class:`~repro.replication.gate.OutputGate`:
held until the covering generation is acked, per the output rule.

Three seeded fault schedules:

``none``
    Crash-free run — the oracle the others must match bit-for-bit.
``crash``
    The primary dies at a seeded point: either mid-run (work since the
    last generation is lost and re-executed) or mid-commit (a
    ``CrashHooks`` power-cut inside the atomic-commit protocol — killed
    mid-generation).  The standby sees the channel drop, suspects,
    acquires epoch+1, and its resident VM finishes the program.
``partition``
    The channel blackholes at a seeded point.  The isolated primary
    *keeps running*, believing it leads — but the gate holds everything
    it produces, so nothing escapes.  The standby times out, promotes
    through the lease, and finishes.  When the old primary finally
    reaches the store again, it finds a higher epoch held by someone
    else, fences, and demotes; its held output is discarded, exactly
    the bytes the successor re-produced.

In every schedule the concatenated client-observed stdout is
bit-identical to the crash-free run, and the lease history shows
exactly one holder per epoch.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.platforms import Platform, get_platform
from repro.bytecode.image import CodeImage
from repro.checkpoint.commit import COMMIT_POINTS
from repro.checkpoint.format import detect_format_version
from repro.checkpoint.reader import restart_vm
from repro.errors import (
    LeaseLostError,
    ReplicationError,
    ReproError,
    StandbyUnreachableError,
)
from repro.faults.injectors import CrashHooks, FlakySocket, SimulatedCrashError
from repro.metrics import REPLICATION
from repro.replication.channel import ReplicationSender
from repro.replication.gate import OutputGate
from repro.replication.lease import EpochLease
from repro.replication.standby import StandbyServer
from repro.replication.tailer import CommitTailer
from repro.replication.wire import GenRecord
from repro.store.client import StoreClient
from repro.store.ha import fetch_chain, restart_candidates
from repro.vm import VMConfig, VirtualMachine

import base64

#: Fault schedules the driver understands.
SCHEDULES = ("none", "crash", "partition")


@dataclass
class LiveReport:
    """What one live-replicated run did, for audit and comparison."""

    completed: bool = False
    exit_code: int = 0
    #: The client-observed stream: every span the gate released, in
    #: order, across both reigns.  The correctness invariant is that
    #: this equals the crash-free run's stdout byte for byte.
    client_stdout: bytes = b""
    schedule: str = "none"
    fault_slice: int = 0
    fault_style: str = ""
    generations_shipped: int = 0
    generations_discarded: int = 0
    promotions: int = 0
    fenced_demotions: int = 0
    #: Bytes the old primary produced but the gate never released
    #: (discarded on fence/crash; re-produced by the successor).
    held_discarded_bytes: int = 0
    takeover_seconds: Optional[float] = None
    primary_platform: str = ""
    standby_platform: str = ""
    epochs: list[int] = field(default_factory=list)
    #: Every lease claim ever made: ``[(epoch, holder, valid), ...]``.
    #: Valid claims held the lease; invalid ones are losing contenders
    #: kept for the split-brain audit.
    lease_history: list[tuple[int, str, bool]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "completed": self.completed,
            "exit_code": self.exit_code,
            "client_stdout": self.client_stdout.decode(errors="replace"),
            "schedule": self.schedule,
            "fault_slice": self.fault_slice,
            "fault_style": self.fault_style,
            "generations_shipped": self.generations_shipped,
            "generations_discarded": self.generations_discarded,
            "promotions": self.promotions,
            "fenced_demotions": self.fenced_demotions,
            "held_discarded_bytes": self.held_discarded_bytes,
            "takeover_seconds": self.takeover_seconds,
            "primary_platform": self.primary_platform,
            "standby_platform": self.standby_platform,
            "epochs": self.epochs,
            "lease_history": [list(t) for t in self.lease_history],
        }


class LiveHA:
    """Primary + warm standby + lease, under one seeded fault schedule."""

    def __init__(
        self,
        code: CodeImage,
        store_addr: tuple[str, int],
        vm_id: str,
        primary_platform: Platform | str = "rodrigo",
        standby_platform: Optional[Platform | str] = None,
        checkpoint_every: int = 20_000,
        schedule: str = "crash",
        seed: int = 2002,
        config: Optional[VMConfig] = None,
        max_slices: int = 10_000,
        mirror_to_store: bool = False,
        heartbeat_timeout: float = 0.2,
        heartbeat_misses: int = 3,
        ack_timeout: float = 0.5,
        max_retransmits: int = 2,
        channel_faults: Optional[dict] = None,
    ) -> None:
        if schedule not in SCHEDULES:
            raise ReproError(f"unknown fault schedule {schedule!r}")
        if checkpoint_every <= 0:
            raise ReproError("checkpoint_every must be positive")
        self.code = code
        self.store_addr = store_addr
        self.vm_id = vm_id
        self.primary_platform = (
            get_platform(primary_platform)
            if isinstance(primary_platform, str)
            else primary_platform
        )
        if standby_platform is None:
            # Deterministic default: the first fully-heterogeneous peer.
            standby_platform = restart_candidates(self.primary_platform)[0]
        self.standby_platform = (
            get_platform(standby_platform)
            if isinstance(standby_platform, str)
            else standby_platform
        )
        self.checkpoint_every = checkpoint_every
        self.schedule = schedule
        self.seed = seed
        self.max_slices = max_slices
        self.mirror_to_store = mirror_to_store
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_misses = heartbeat_misses
        self.ack_timeout = ack_timeout
        self.max_retransmits = max_retransmits
        #: Instructions between keepalive PINGs inside a slice, so a
        #: long computation never looks like a dead primary.
        self.keepalive_every = max(1_000, checkpoint_every // 4)
        #: Optional drop/delay/duplicate/reorder probabilities applied to
        #: the replication channel for the whole run (FlakySocket knobs).
        self.channel_faults = dict(channel_faults or {})
        self._rng = random.Random(seed)
        self._base_config = config

    # -- configuration helpers ---------------------------------------------

    def _config(self, path: str) -> VMConfig:
        base = self._base_config
        cfg = VMConfig() if base is None else VMConfig(**vars(base))
        cfg.chkpt_state = "enable"
        cfg.chkpt_filename = path
        cfg.chkpt_mode = "blocking"  # the tailer reads the committed file
        cfg.chkpt_interval = None  # the driver owns the cadence
        # Delta replication is the point: after the first full
        # checkpoint, each shipped generation carries only dirty runs.
        cfg.chkpt_incremental = True
        cfg.chkpt_retain = max(cfg.chkpt_retain, 8)
        return cfg

    def _mirror(self, client: StoreClient, rec: GenRecord, path: str) -> None:
        """Upload the generation to the store the way the crash-restart
        supervisor would — the cold-restore baseline the benchmark
        measures warm takeover against."""
        meta = {
            "platform": self.primary_platform.name,
            "instructions": rec.instructions,
            "stdout_b64": base64.b64encode(rec.stdout).decode(),
            "kind": rec.kind,
            "body_sha256": rec.body_sha256,
            "format_version": detect_format_version(path),
        }
        if rec.kind == "delta":
            meta["parent_sha256"] = rec.parent_sha256
            meta["chain_depth"] = rec.chain_depth
        client.put_checkpoint(self.vm_id, rec.data, meta=meta)

    # -- the run ------------------------------------------------------------

    def run(self) -> LiveReport:
        report = LiveReport(
            schedule=self.schedule,
            primary_platform=self.primary_platform.name,
            standby_platform=self.standby_platform.name,
        )
        tmpdir = tempfile.mkdtemp(prefix="repro-live-")
        primary_path = os.path.join(tmpdir, "primary.hckp")
        standby_path = os.path.join(tmpdir, "standby.hckp")

        host, port = self.store_addr
        primary_client = StoreClient(host, port, backoff=0.01)
        standby_client = StoreClient(host, port, backoff=0.01)
        primary_lease = EpochLease(primary_client, self.vm_id, "primary")
        standby_lease = EpochLease(standby_client, self.vm_id, "standby")

        standby = StandbyServer(
            self.code,
            self.standby_platform,
            node_id="standby",
            chain_path=standby_path,
            lease=standby_lease,
            config=self._config(standby_path),
            heartbeat_timeout=self.heartbeat_timeout,
            heartbeat_misses=self.heartbeat_misses,
            auto_promote=True,
        )
        sender: Optional[ReplicationSender] = None
        try:
            epoch = primary_lease.claim(
                expected=primary_lease.read().epoch
            )
            report.epochs.append(epoch)
            s_host, s_port = standby.start()
            flaky_holder: list[FlakySocket] = []

            def wrap(sock):
                fs = FlakySocket(
                    sock, seed=self.seed, **self.channel_faults
                )
                flaky_holder.append(fs)
                return fs

            sender = ReplicationSender.connect(
                s_host,
                s_port,
                node_id="primary",
                wrap=wrap,
                ack_timeout=self.ack_timeout,
                max_retransmits=self.max_retransmits,
            )
            sender.hello(
                self.code.digest().hex(), epoch, self.primary_platform.name
            )
            flaky = flaky_holder[0]

            self._reign(
                report, primary_client, primary_lease, epoch,
                sender, flaky, standby, primary_path,
            )
            report.promotions = 1 if standby.promoted_event.is_set() else 0
            report.takeover_seconds = standby.takeover_seconds
            report.lease_history = [
                (c.epoch, c.holder, c.valid)
                for c in primary_lease.history()
            ]
            return report
        finally:
            if sender is not None:
                sender.close()
            standby.stop()
            primary_client.close()
            standby_client.close()
            for name in sorted(os.listdir(tmpdir)):
                os.unlink(os.path.join(tmpdir, name))
            os.rmdir(tmpdir)

    # -- the primary's reign and its ends -----------------------------------

    def _reign(
        self,
        report: LiveReport,
        client: StoreClient,
        lease: EpochLease,
        epoch: int,
        sender: ReplicationSender,
        flaky: FlakySocket,
        standby: StandbyServer,
        path: str,
    ) -> None:
        vm = VirtualMachine(
            self.primary_platform, self.code, self._config(path)
        )
        gate = OutputGate()
        tailer = CommitTailer(vm, path)
        chunks: list[bytes] = []

        fault_slice = 0
        fault_style = ""
        if self.schedule == "crash":
            fault_slice = self._rng.randint(2, 5)
            fault_style = self._rng.choice(["mid-run", "mid-commit"])
        elif self.schedule == "partition":
            fault_slice = self._rng.randint(2, 5)
            fault_style = "blackhole"
        report.fault_slice = fault_slice
        report.fault_style = fault_style

        for slice_idx in range(1, self.max_slices + 1):
            fault_now = fault_slice and slice_idx == fault_slice
            budget = self.checkpoint_every
            if fault_now and fault_style == "mid-run":
                # Die at a seeded instruction budget inside the slice.
                budget = self._rng.randint(1, self.checkpoint_every)
            result = self._run_slice(vm, sender, budget)
            if result.status in ("stopped", "exited"):
                # Clean completion: exit is the final event; there is no
                # divergent re-execution left to protect against.
                vm.channels.stdout.flush()
                gate.feed(vm.channels.stdout_bytes())
                gate.release_all()
                chunks.append(gate.take())
                report.completed = True
                report.exit_code = result.exit_code
                report.client_stdout = b"".join(chunks)
                return

            if fault_now and fault_style == "mid-run":
                self._die(report, gate, chunks, sender, standby)
                self._succeed(report, standby, chunks)
                return
            if fault_now and fault_style == "blackhole":
                flaky.partition(True)

            try:
                if fault_now and fault_style == "mid-commit":
                    # A power cut strikes the atomic-commit protocol
                    # partway through: killed mid-generation.
                    point = self._rng.choice(COMMIT_POINTS[:-1])
                    tailer.capture(inner_hooks=CrashHooks(point))
                    raise ReproError("CrashHooks did not fire")
                rec = tailer.capture()
            except SimulatedCrashError:
                self._die(report, gate, chunks, sender, standby)
                self._succeed(report, standby, chunks)
                return

            if self.mirror_to_store:
                self._mirror(client, rec, path)
            try:
                sender.ship(rec)
            except StandbyUnreachableError:
                # Channel dead but we still run: the isolated-primary
                # case.  Keep producing (held), let the lease decide.
                self._isolated(
                    report, vm, tailer, gate, chunks, lease,
                    epoch, standby, pending=rec,
                )
                self._succeed(report, standby, chunks)
                return
            report.generations_shipped += 1
            gate.feed(rec.stdout)
            gate.release_to(len(rec.stdout))
            chunks.append(gate.take())
        raise ReproError("live replication exceeded max_slices")

    def _run_slice(self, vm: VirtualMachine, sender: ReplicationSender, budget: int):
        """Run up to ``budget`` instructions, with keepalive PINGs
        between chunks so the standby's failure detector never mistakes
        a long computation (or a loaded host) for a dead primary."""
        remaining = budget
        while True:
            before = vm.interp.instructions
            result = vm.run(
                max_instructions=min(self.keepalive_every, remaining)
            )
            remaining -= max(vm.interp.instructions - before, 1)
            if result.status in ("stopped", "exited") or remaining <= 0:
                return result
            sender.ping()

    def _die(
        self,
        report: LiveReport,
        gate: OutputGate,
        chunks: list[bytes],
        sender: ReplicationSender,
        standby: StandbyServer,
    ) -> None:
        """The primary's host dies: the channel drops (the standby sees
        EOF and suspects immediately), held output is lost."""
        report.held_discarded_bytes += gate.held_bytes
        sender.close()
        if not standby.await_promoted(
            timeout=30 * self.heartbeat_timeout * self.heartbeat_misses + 10
        ):
            raise ReplicationError(
                "standby never promoted after primary death"
            )

    def _isolated(
        self,
        report: LiveReport,
        vm: VirtualMachine,
        tailer: CommitTailer,
        gate: OutputGate,
        chunks: list[bytes],
        lease: EpochLease,
        epoch: int,
        standby: StandbyServer,
        pending: GenRecord,
    ) -> None:
        """The partitioned primary keeps running, believing it leads.

        Every byte it produces stays held — the gate has no acks to
        release against — so nothing divergent can escape.  When it
        finally reaches the store again it finds the standby's higher
        epoch, fences, and demotes; the held bytes are discarded, and
        the successor re-produces exactly them.
        """
        report.generations_discarded += 1  # the unacked ship
        gate.feed(pending.stdout)  # produced, NOT released: no ack came
        isolated_slices = 0
        while not standby.await_promoted(timeout=0.02):
            if isolated_slices >= self.max_slices:
                raise ReplicationError(
                    "standby never promoted during partition"
                )
            result = vm.run(max_instructions=self.checkpoint_every)
            vm.channels.stdout.flush()
            gate.feed(vm.channels.stdout_bytes())
            if result.status in ("stopped", "exited"):
                break  # finished in isolation; output still held
            try:
                rec = tailer.capture()
                gate.feed(rec.stdout)
                report.generations_discarded += 1
            except SimulatedCrashError:  # pragma: no cover - not seeded
                break
            isolated_slices += 1
        if not standby.await_promoted(
            timeout=30 * self.heartbeat_timeout * self.heartbeat_misses + 10
        ):
            raise ReplicationError(
                "standby never promoted during partition"
            )
        # The partition heals: the primary reaches the store again and
        # runs its fencing probe.  It must lose.
        try:
            lease.check(epoch)
        except LeaseLostError:
            REPLICATION.fenced_demotions += 1
            report.fenced_demotions += 1
            report.held_discarded_bytes += gate.held_bytes
        else:
            raise ReplicationError(
                "old primary was not fenced after the standby promoted"
            )

    def _succeed(
        self,
        report: LiveReport,
        standby: StandbyServer,
        chunks: list[bytes],
    ) -> None:
        """The promoted standby's resident VM finishes the program.

        Its gate resumes from the prefill (acked coverage, released by
        construction) and the client's delivered offset, so the handoff
        neither repeats nor drops a byte."""
        vm = standby.resident_vm  # prefill already written by promote()
        if vm is None:
            raise ReplicationError("promoted standby has no resident VM")
        report.epochs.append(standby.epoch)
        delivered = sum(len(c) for c in chunks)
        gate = OutputGate.resume(
            prefill=standby.prefill, delivered=delivered
        )
        chunks.append(gate.take())  # released prefill the client lacks
        for _ in range(self.max_slices):
            result = vm.run(max_instructions=self.checkpoint_every)
            vm.channels.stdout.flush()
            gate.feed(vm.channels.stdout_bytes())
            # The successor reigns unprotected (no standby of its own);
            # degraded mode releases as it produces.
            gate.release_all()
            chunks.append(gate.take())
            if result.status in ("stopped", "exited"):
                report.completed = True
                report.exit_code = result.exit_code
                report.client_stdout = b"".join(chunks)
                return
        raise ReproError("successor exceeded max_slices")


def cold_restore_from_store(
    client: StoreClient,
    vm_id: str,
    code: CodeImage,
    platform: Platform | str,
    path: str,
    config: Optional[VMConfig] = None,
) -> tuple[VirtualMachine, float]:
    """The baseline a warm standby competes with: download the newest
    generation (and its delta parents) from the store, splice, restore,
    prefill.  Returns the restored VM and the elapsed seconds."""
    platform = (
        get_platform(platform) if isinstance(platform, str) else platform
    )
    t0 = time.perf_counter()
    manifest = fetch_chain(client, vm_id, path)
    vm, _stats = restart_vm(platform, code, path, config)
    prefill = base64.b64decode(manifest.meta.get("stdout_b64", ""))
    if prefill:
        vm.channels._stdout.write(prefill)
    return vm, time.perf_counter() - t0
