"""The corruption-matrix fuzz harness (CI job + ``repro faults fuzz``).

The invariant under test — the acceptance bar of this robustness layer:
for **every** seeded mutation of a checkpoint file, on **every**
platform pair, a restore attempt must either

* reproduce the exact baseline output (the mutation hit slack bytes —
  essentially impossible with the v3 trailer, but allowed), or
* raise a *typed* integrity/format error, and — because the harness
  always keeps one retained generation — fall back to a correct restore
  of the previous generation.

Anything else (an uncaught exception, a hang, or a restore that
"succeeds" with wrong output) is a harness failure, reported per
mutation.
"""

from __future__ import annotations

import io
import random
from typing import Callable, Optional

from repro.arch.platforms import PLATFORMS, Platform
from repro.checkpoint.format import read_section_table
from repro.checkpoint.reader import restart_vm, restart_vm_with_fallback
from repro.errors import RestartError
from repro.faults.injectors import Mutation, apply_mutation, plan_mutations
from repro.minilang import compile_source
from repro.vm import VMConfig, VirtualMachine

#: One platform per architecture class (32/64 bits x little/big endian);
#: the pairs of these four cover every conversion the restart path has.
ARCH_REPRESENTATIVES = ("rodrigo", "csd", "sp2148", "ultra64")

#: Checkpoints twice mid-computation: after the run, the head generation
#: holds the second checkpoint and ``path.1`` the first, so a damaged
#: head has a real, *different* generation to fall back to.  The state
#: spans heap (list, array, string, float), closures, and deep stack.
FUZZ_PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
let data = build 60 [];;
let arr = Array.make 8 0;;
let () = for i = 0 to 7 do arr.(i) <- i * i done;;
let tag = "s:" ^ string_of_int (sum data);;
let f = 1.5;;
checkpoint ();;
print_string tag;;
print_string " a=";;
print_int (arr.(3) + arr.(7));;
checkpoint ();;
print_string " f=";;
print_float (f *. 4.0);;
print_newline ();;
"""


def _run_restarted(
    platform: Platform, code, path: str, fallback: bool
) -> tuple[bytes, str]:
    """Restore at ``path`` (walking generations iff ``fallback``) and run
    to completion; returns (stdout, restored file path)."""
    out = io.BytesIO()
    restore = restart_vm_with_fallback if fallback else restart_vm
    # Restarted runs re-execute any later ``checkpoint ()`` calls; those
    # must not overwrite the file under test.
    vm, stats = restore(
        platform, code, path, VMConfig(chkpt_state="disable"), stdout=out
    )
    result = vm.run(max_instructions=20_000_000)
    if result.status != "stopped":
        raise RestartError(f"restarted VM did not stop: {result.status}")
    return result.stdout, stats.restored_path


def fuzz_matrix(
    seed: int = 2002,
    mutations: int = 200,
    platforms: Optional[list[str]] = None,
    program: str = FUZZ_PROGRAM,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the corruption matrix; returns a JSON-able report.

    ``mutations`` is the total budget, spread round-robin across all
    ordered (origin, target) platform pairs so every conversion path
    sees both early and late entries of the mutation plan.
    """
    import tempfile

    names = list(platforms or ARCH_REPRESENTATIVES)
    for n in names:
        if n not in PLATFORMS:
            raise ValueError(f"unknown platform {n!r}")
    code = compile_source(program)
    report: dict = {
        "seed": seed,
        "mutations": 0,
        "pairs": len(names) * len(names),
        "outcomes": {
            "detected_and_recovered": 0,
            "clean_restore": 0,
            "typed_failure_no_chain": 0,
        },
        "failures": [],
        "ok": True,
    }

    with tempfile.TemporaryDirectory() as td:
        # One origin checkpoint chain per origin platform.
        chains: dict[str, tuple[str, bytes, bytes]] = {}
        for origin in names:
            path = f"{td}/{origin}.hckp"
            vm = VirtualMachine(
                PLATFORMS[origin],
                code,
                VMConfig(
                    chkpt_filename=path,
                    chkpt_mode="blocking",
                    chkpt_retain=1,
                ),
                stdout=io.BytesIO(),
            )
            result = vm.run(max_instructions=20_000_000)
            assert result.status == "stopped" and vm.checkpoints_taken == 2
            with open(path, "rb") as f:
                head = f.read()
            with open(path + ".1", "rb") as f:
                prev = f.read()
            chains[origin] = (path, head, prev)

        # Per-pair baselines: expected output from head and from path.1.
        baselines: dict[tuple[str, str], tuple[bytes, bytes]] = {}
        for origin in names:
            path, _head, _prev = chains[origin]
            for target in names:
                out_head, _ = _run_restarted(
                    PLATFORMS[target], code, path, fallback=False
                )
                out_prev, _ = _run_restarted(
                    PLATFORMS[target], code, path + ".1", fallback=False
                )
                baselines[(origin, target)] = (out_head, out_prev)

        pairs = [(o, t) for o in names for t in names]
        per_pair = -(-mutations // len(pairs))
        for pair_idx, (origin, target) in enumerate(pairs):
            path, head, prev = chains[origin]
            plan = plan_mutations(
                len(head),
                seed=seed * 1000 + pair_idx,
                count=per_pair,
                section_table=read_section_table(head),
            )
            out_head, out_prev = baselines[(origin, target)]
            for m in plan:
                if report["mutations"] >= mutations:
                    break
                report["mutations"] += 1
                _fuzz_one(
                    report,
                    m,
                    PLATFORMS[target],
                    code,
                    path,
                    head,
                    prev,
                    out_head,
                    out_prev,
                    label=f"{origin}->{target}",
                )
            if progress is not None:
                progress(
                    f"{origin}->{target}: {report['mutations']} mutations, "
                    f"{len(report['failures'])} failures"
                )

    report["ok"] = not report["failures"]
    return report


def _fuzz_one(
    report: dict,
    m: Mutation,
    target: Platform,
    code,
    path: str,
    head: bytes,
    prev: bytes,
    out_head: bytes,
    out_prev: bytes,
    label: str,
) -> None:
    """Apply one mutation to the head generation and check the invariant."""
    damaged = apply_mutation(head, m)
    with open(path, "wb") as f:
        f.write(damaged)
    with open(path + ".1", "wb") as f:
        f.write(prev)
    try:
        out, restored = _run_restarted(target, code, path, fallback=True)
    except RestartError:
        # Typed failure with the whole chain exhausted would be a
        # violation here (a healthy path.1 always exists) *except* when
        # the mutation is a no-op on the parsed image; record it.
        report["outcomes"]["typed_failure_no_chain"] += 1
        report["failures"].append(
            {"pair": label, "mutation": m.describe(),
             "problem": "fallback chain exhausted despite healthy path.1"}
        )
        return
    except Exception as e:  # noqa: BLE001 — the invariant bans these
        report["failures"].append(
            {"pair": label, "mutation": m.describe(),
             "problem": f"uncaught {type(e).__name__}: {e}"}
        )
        return
    if restored == path:
        if out == out_head:
            report["outcomes"]["clean_restore"] += 1
        else:
            report["failures"].append(
                {"pair": label, "mutation": m.describe(),
                 "problem": "silently wrong restore from damaged head"}
            )
    else:
        if out == out_prev:
            report["outcomes"]["detected_and_recovered"] += 1
        else:
            report["failures"].append(
                {"pair": label, "mutation": m.describe(),
                 "problem": "fallback restore produced wrong output"}
            )


# ---------------------------------------------------------------------------
# Delta-chain corruption matrix
# ---------------------------------------------------------------------------

#: Six checkpoints under ``chkpt_incremental`` with ``full_every=3`` and
#: ``retain=5`` leave this chain on disk, newest first:
#: head = delta(depth 2), .1 = delta(depth 1), .2 = FULL, .3 = delta(2),
#: .4 = delta(1), .5 = FULL.  Every scenario below damages a specific
#: link of the head's chain; a healthy older generation always survives.
DELTA_FUZZ_PROGRAM = """
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc);;
let keep = build 120 [];;
let rec sum l = match l with [] -> 0 | h :: t -> h + sum t;;
let arr = Array.make 16 0;;
let () = for i = 0 to 15 do arr.(i) <- i * 3 done;;
checkpoint ();;
let () = for i = 0 to 15 do arr.(i) <- arr.(i) + 1 done;;
print_int arr.(5);;
print_string ";";;
checkpoint ();;
let () = for i = 0 to 15 do arr.(i) <- arr.(i) + 2 done;;
print_int arr.(7);;
print_string ";";;
checkpoint ();;
let () = for i = 0 to 15 do arr.(i) <- arr.(i) + 3 done;;
print_int arr.(11);;
print_string ";";;
checkpoint ();;
let () = for i = 0 to 15 do arr.(i) <- arr.(i) + 4 done;;
print_int arr.(13);;
print_string ";";;
checkpoint ();;
let () = for i = 0 to 15 do arr.(i) <- arr.(i) + 5 done;;
print_int (sum keep + arr.(2));;
print_string ";";;
checkpoint ();;
print_string "done";;
print_newline ();;
"""

#: The delta-chain scenarios; see :func:`fuzz_delta_chain`.
DELTA_SCENARIOS = ("control", "corrupt-base", "corrupt-middle", "swap-parent")


def _flip_bytes(path: str, rng: random.Random, n: int = 3) -> None:
    with open(path, "rb") as f:
        data = bytearray(f.read())
    for _ in range(n):
        i = rng.randrange(len(data))
        data[i] ^= rng.randrange(1, 256)
    with open(path, "wb") as f:
        f.write(bytes(data))


def fuzz_delta_chain(
    seed: int = 2002,
    platforms: Optional[list[str]] = None,
    program: str = DELTA_FUZZ_PROGRAM,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """The delta-chain corruption matrix (``repro faults fuzz --delta``).

    The invariant: damaging any link of a delta chain — the full base,
    a middle delta, or the head's parent binding (a valid but *wrong*
    file swapped into the parent slot) — must produce either the exact
    head output (the damage was a no-op) or a typed error plus a
    fallback restore whose output is bit-identical to that surviving
    generation's baseline.  Silently merging a delta onto the wrong
    base is the failure mode the parent-SHA binding exists to prevent.
    """
    import tempfile

    from repro.checkpoint.schema import FormatProfile

    delta_magic = FormatProfile.delta_profile().magic
    names = list(platforms or ARCH_REPRESENTATIVES)
    for n in names:
        if n not in PLATFORMS:
            raise ValueError(f"unknown platform {n!r}")
    code = compile_source(program)
    report: dict = {
        "seed": seed,
        "pairs": len(names) * len(names),
        "cases": 0,
        "outcomes": {"clean_restore": 0, "detected_and_recovered": 0},
        "failures": [],
        "ok": True,
    }

    with tempfile.TemporaryDirectory() as td:
        chains: dict[str, tuple[str, dict[str, bytes]]] = {}
        for origin in names:
            path = f"{td}/{origin}.hckp"
            vm = VirtualMachine(
                PLATFORMS[origin],
                code,
                VMConfig(
                    chkpt_filename=path,
                    chkpt_mode="blocking",
                    chkpt_retain=5,
                    chkpt_incremental=True,
                    chkpt_full_every=3,
                ),
                stdout=io.BytesIO(),
            )
            result = vm.run(max_instructions=20_000_000)
            assert result.status == "stopped" and vm.checkpoints_taken == 6
            gens = [path] + [f"{path}.{i}" for i in range(1, 6)]
            pristine: dict[str, bytes] = {}
            for g in gens:
                with open(g, "rb") as f:
                    pristine[g] = f.read()
            # The scenarios rely on this exact chain shape.
            kinds = [
                pristine[g][: len(delta_magic)] == delta_magic for g in gens
            ]
            assert kinds == [True, True, False, True, True, False], (
                f"{origin}: unexpected chain shape {kinds}"
            )
            chains[origin] = (path, pristine)

        for pair_idx, (origin, target) in enumerate(
            (o, t) for o in names for t in names
        ):
            path, pristine = chains[origin]

            def _reset() -> None:
                for g, data in pristine.items():
                    with open(g, "wb") as f:
                        f.write(data)

            _reset()
            baselines = {
                g: _run_restarted(
                    PLATFORMS[target], code, g, fallback=False
                )[0]
                for g in pristine
            }
            for si, scenario in enumerate(DELTA_SCENARIOS):
                report["cases"] += 1
                _reset()
                rng = random.Random(seed * 1000 + pair_idx * 10 + si)
                if scenario == "corrupt-base":
                    _flip_bytes(f"{path}.2", rng)
                elif scenario == "corrupt-middle":
                    _flip_bytes(f"{path}.1", rng)
                elif scenario == "swap-parent":
                    with open(f"{path}.1", "wb") as f:
                        f.write(pristine[f"{path}.2"])
                _fuzz_delta_one(
                    report, scenario, PLATFORMS[target], code, path,
                    baselines, label=f"{origin}->{target}",
                )
            if progress is not None:
                progress(
                    f"{origin}->{target}: {report['cases']} case(s), "
                    f"{len(report['failures'])} failure(s)"
                )

    report["ok"] = not report["failures"]
    return report


def _fuzz_delta_one(
    report: dict,
    scenario: str,
    target: Platform,
    code,
    path: str,
    baselines: dict[str, bytes],
    label: str,
) -> None:
    """Run one scenario's restore and check the chain invariant."""

    def fail(problem: str) -> None:
        report["failures"].append(
            {"pair": label, "scenario": scenario, "problem": problem}
        )

    try:
        out, restored = _run_restarted(target, code, path, fallback=True)
    except RestartError as e:
        fail(f"fallback chain exhausted despite healthy generations: {e}")
        return
    except Exception as e:  # noqa: BLE001 — the invariant bans these
        fail(f"uncaught {type(e).__name__}: {e}")
        return
    if scenario == "control":
        if restored != path or out != baselines[path]:
            fail("control restore was not a clean head restore")
        else:
            report["outcomes"]["clean_restore"] += 1
        return
    if scenario == "swap-parent":
        # The swapped-in parent is a valid FULL file with the wrong
        # identity: the binding check must reject the head, and the
        # fallback then restores that full directly.
        if restored == path:
            fail("parent-SHA binding mismatch went undetected")
        elif out != baselines[f"{path}.2"]:
            fail("fallback after binding mismatch gave wrong output")
        else:
            report["outcomes"]["detected_and_recovered"] += 1
        return
    # Byte-flip scenarios: whatever generation won must reproduce its
    # own pre-mutation baseline (head included, if the flips no-op'd).
    if out != baselines.get(restored):
        fail(
            f"restore from {restored} did not match its baseline "
            f"(scenario {scenario})"
        )
    elif restored == path:
        report["outcomes"]["clean_restore"] += 1
    else:
        report["outcomes"]["detected_and_recovered"] += 1
