"""Deterministic fault injection for the checkpoint stack.

Everything here is seedable and reproducible: the same seed yields the
same mutation plan, the same crash points, the same torn-rename
artifacts.  Used three ways:

* as pytest fixtures (``tests/test_commit_crash.py``,
  ``tests/test_corruption_fuzz.py``),
* by the HA supervisor to widen its crash windows into mid-write,
* from the CLI (``repro faults inject|plan|fuzz``) and the CI
  corruption-matrix job.
"""

from repro.faults.injectors import (
    CrashHooks,
    FailFsyncHooks,
    Mutation,
    SimulatedCrashError,
    TornRenameHooks,
    apply_mutation,
    mutate_bytes,
    plan_mutations,
)

__all__ = [
    "CrashHooks",
    "FailFsyncHooks",
    "Mutation",
    "SimulatedCrashError",
    "TornRenameHooks",
    "apply_mutation",
    "mutate_bytes",
    "plan_mutations",
    "fuzz_matrix",
]


def fuzz_matrix(*args, **kwargs):
    """Lazy re-export of :func:`repro.faults.fuzz.fuzz_matrix` (pulls in
    the VM/compiler stack, which plain injector users don't need)."""
    from repro.faults.fuzz import fuzz_matrix as _fuzz_matrix

    return _fuzz_matrix(*args, **kwargs)
