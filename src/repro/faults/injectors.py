"""Seedable corruption and crash injectors.

Three families:

* **Byte mutations** (:class:`Mutation`, :func:`plan_mutations`,
  :func:`apply_mutation`) damage a finished checkpoint file the way a
  dying disk or a buggy transport would: truncation, bit flips, and
  swapped section contents.
* **Commit-hook injectors** (:class:`CrashHooks`,
  :class:`FailFsyncHooks`, :class:`TornRenameHooks`) plug into
  :class:`repro.checkpoint.commit.CommitHooks` to kill the atomic
  commit protocol at a chosen step, fail its fsyncs, or tear its
  rename, the way a power cut would.
* **Transport injectors** (:class:`FlakySocket`) wrap a connected
  socket and damage the *message* stream the way a congested or
  partitioned network would: dropped, delayed, duplicated, and
  reordered sends, plus a switchable blackhole partition.  Both the
  store protocol and the replication channel write one frame per
  ``sendall`` call, so frame-level faults fall out of call-level ones.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.checkpoint.commit import CommitHooks


class SimulatedCrashError(Exception):
    """Raised by a crash injector at its trigger point.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a real crash
    is not a handleable library error, and nothing in the production
    code paths may catch it — tests and the HA supervisor catch it at
    the same scope a process boundary would.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at commit point '{point}'")
        self.point = point


class CrashHooks(CommitHooks):
    """Die (raise :class:`SimulatedCrashError`) at a named commit point."""

    def __init__(self, crash_at: str) -> None:
        self.crash_at = crash_at
        self.reached: list[str] = []

    def point(self, name: str) -> None:
        self.reached.append(name)
        if name == self.crash_at:
            raise SimulatedCrashError(name)


class FailFsyncHooks(CommitHooks):
    """Make the Nth fsync call fail with EIO, then crash.

    Models a disk that errors on flush: the kernel reported the write,
    the durability barrier failed.  ``crash_after=True`` (default)
    escalates to a simulated crash — the conservative model, since after
    an fsync EIO the page cache state is undefined.
    """

    def __init__(self, fail_on: int = 1, crash_after: bool = True) -> None:
        self.fail_on = fail_on
        self.crash_after = crash_after
        self.calls = 0

    def fsync(self, fd: int) -> None:
        self.calls += 1
        if self.calls == self.fail_on:
            if self.crash_after:
                raise SimulatedCrashError(f"fsync#{self.calls}")
            raise OSError(5, "Input/output error (injected)")
        os.fsync(fd)


class TornRenameHooks(CommitHooks):
    """Tear the final rename: leave a prefix of the new file at ``dst``.

    No POSIX rename actually does this, but a copy-based "rename" across
    filesystems (or a cheap NFS server) can — and it is the nastiest
    artifact a restore can meet: a *plausible* head generation that is
    silently short.  ``keep_fraction`` controls how much survives.
    """

    def __init__(self, keep_fraction: float = 0.5) -> None:
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        self.keep_fraction = keep_fraction
        self.torn = False

    def replace(self, src: str, dst: str) -> None:
        if self.torn or not src.endswith(".tmp"):
            os.replace(src, dst)
            return
        self.torn = True
        with open(src, "rb") as f:
            data = f.read()
        with open(dst, "wb") as f:
            f.write(data[: int(len(data) * self.keep_fraction)])
        os.unlink(src)
        raise SimulatedCrashError("torn_rename")


# ---------------------------------------------------------------------------
# Transport faults
# ---------------------------------------------------------------------------


class FlakySocket:
    """A seedable lossy wrapper around a connected socket.

    Every ``sendall`` call — one protocol frame, for both RSTP and the
    replication channel — is independently subjected to:

    * ``drop`` — silently discarded (the peer never sees it),
    * ``duplicate`` — sent twice back to back,
    * ``reorder`` — held back and emitted *after* the next send,
    * ``delay`` — sleep up to ``delay_max`` seconds before sending.

    Probabilities are evaluated in that order from one seeded RNG, so a
    given (seed, call sequence) misbehaves identically on every run.
    :meth:`partition` switches to a blackhole: sends vanish and reads
    starve (the caller's socket timeout is how a partition is *felt*),
    with no FIN/RST — exactly what a yanked cable looks like.

    Everything else (``recv``, ``settimeout``, ``close``, ...) passes
    through, so a ``FlakySocket`` drops in anywhere a socket is used.
    """

    def __init__(
        self,
        sock: socket.socket,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay: float = 0.0,
        delay_max: float = 0.005,
    ) -> None:
        for name, p in (("drop", drop), ("duplicate", duplicate),
                        ("reorder", reorder), ("delay", delay)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        self._sock = sock
        self._rng = random.Random(seed)
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.delay = delay
        self.delay_max = delay_max
        self._held: Optional[bytes] = None
        self._partitioned = threading.Event()
        #: Audit trail: what the wrapper did to each send, in order.
        self.events: list[str] = []

    # -- fault switchboard -------------------------------------------------

    def partition(self, on: bool = True) -> None:
        """Blackhole the link (both directions) until switched back."""
        if on:
            self._partitioned.set()
        else:
            self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    # -- the faulty data path ----------------------------------------------

    def sendall(self, data) -> None:
        data = bytes(data)
        if self._partitioned.is_set():
            self.events.append("blackhole")
            return  # swallowed: the kernel would buffer, the wire loses it
        roll = self._rng.random()
        if roll < self.drop:
            self.events.append("drop")
            self._flush_held()
            return
        if roll < self.drop + self.duplicate:
            self.events.append("duplicate")
            self._flush_held()
            self._sock.sendall(data + data)
            return
        if roll < self.drop + self.duplicate + self.reorder:
            # Hold this frame back; it goes out after the next one.
            self.events.append("hold")
            prev, self._held = self._held, data
            if prev is not None:
                self._sock.sendall(prev)
            return
        if roll < self.drop + self.duplicate + self.reorder + self.delay:
            self.events.append("delay")
            time.sleep(self._rng.uniform(0.0, self.delay_max))
        else:
            self.events.append("pass")
        self._sock.sendall(data)
        self._flush_held()

    def _flush_held(self) -> None:
        if self._held is not None:
            held, self._held = self._held, None
            self.events.append("release-held")
            self._sock.sendall(held)

    def recv(self, n: int) -> bytes:
        if self._partitioned.is_set():
            # Starve the reader the way a dead link would: honor the
            # socket timeout instead of returning EOF.
            timeout = self._sock.gettimeout()
            if timeout is None:
                while self._partitioned.is_set():
                    time.sleep(0.01)
                return self._sock.recv(n)
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if not self._partitioned.is_set():
                    return self._sock.recv(n)
                time.sleep(0.005)
            raise socket.timeout("partitioned")
        return self._sock.recv(n)

    # -- passthrough -------------------------------------------------------

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def gettimeout(self):
        return self._sock.gettimeout()

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def fileno(self) -> int:
        return self._sock.fileno()

    def shutdown(self, how: int) -> None:
        self._sock.shutdown(how)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "FlakySocket":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Byte mutations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mutation:
    """One deterministic corruption of a byte string.

    ``kind``:

    * ``"truncate"`` — drop everything from ``offset``.
    * ``"bitflip"`` — flip bit ``bit`` of the byte at ``offset``.
    * ``"section-swap"`` — exchange ``length`` bytes at ``offset`` with
      the ``length`` bytes at ``other`` (models sections written out of
      order, or two DMA buffers landing swapped).
    """

    kind: str
    offset: int
    bit: int = 0
    length: int = 0
    other: int = 0

    def describe(self) -> str:
        if self.kind == "truncate":
            return f"truncate at byte {self.offset}"
        if self.kind == "bitflip":
            return f"flip bit {self.bit} of byte {self.offset}"
        return (
            f"swap {self.length} bytes at {self.offset} with {self.other}"
        )


def apply_mutation(data: bytes, m: Mutation) -> bytes:
    """Return ``data`` with mutation ``m`` applied (input untouched)."""
    if m.kind == "truncate":
        return data[: m.offset]
    buf = bytearray(data)
    if m.kind == "bitflip":
        buf[m.offset] ^= 1 << m.bit
        return bytes(buf)
    if m.kind == "section-swap":
        a, b, n = m.offset, m.other, m.length
        buf[a : a + n], buf[b : b + n] = buf[b : b + n], buf[a : a + n]
        return bytes(buf)
    raise ValueError(f"unknown mutation kind {m.kind!r}")


def _swap_eligible_sections() -> set[str]:
    """Section names the schema marks safe to swap *detectably*.

    Derived from :meth:`FormatProfile.mutation_targets` over every
    registered profile: a swap between two CRC-protected sections must
    be caught by the integrity trailer, so those are the interesting
    targets.  Sections the schema does not know (e.g. a future trailer
    row) are excluded rather than guessed at.
    """
    from repro.checkpoint.schema import FormatProfile

    eligible: set[str] = set()
    for profile in FormatProfile.all():
        for target in profile.mutation_targets():
            if target["swap_eligible"]:
                eligible.add(target["section"])
    return eligible


def plan_mutations(
    size: int,
    seed: int,
    count: int,
    section_table: Optional[list] = None,
) -> list[Mutation]:
    """Deterministic plan of ``count`` mutations for a ``size``-byte file.

    Mixes the three kinds roughly 40/40/20.  When a v3 ``section_table``
    (list of :class:`~repro.checkpoint.format.SectionEntry`) is given,
    section swaps exchange the heads of two real sections — restricted
    to the sections the checkpoint schema marks ``swap_eligible`` — and
    a share of the truncations land exactly on section boundaries — the
    offsets the hardening satellite cares most about.
    """
    rng = random.Random(seed)
    plans: list[Mutation] = []
    sections = [s for s in (section_table or []) if s.length > 0]
    swappable = (
        [s for s in sections if s.name in _swap_eligible_sections()]
        if sections
        else []
    )
    for _ in range(count):
        roll = rng.random()
        if roll < 0.4:
            if sections and rng.random() < 0.5:
                s = rng.choice(sections)
                off = s.offset if rng.random() < 0.5 else s.end
                off = min(off, size - 1)
            else:
                off = rng.randrange(1, size)
            plans.append(Mutation("truncate", off))
        elif roll < 0.8 or len(swappable) < 2:
            off = rng.randrange(size)
            plans.append(Mutation("bitflip", off, bit=rng.randrange(8)))
        else:
            a, b = rng.sample(swappable, 2)
            n = min(a.length, b.length, 1 + rng.randrange(64))
            plans.append(
                Mutation("section-swap", a.offset, length=n, other=b.offset)
            )
    return plans


def mutate_bytes(data: bytes, seed: int, count: int = 1) -> list[bytes]:
    """Convenience: plan + apply against ``data`` (section-aware when the
    file carries a v3 trailer)."""
    from repro.checkpoint.format import read_section_table

    plans = plan_mutations(
        len(data), seed, count, section_table=read_section_table(data)
    )
    return [apply_mutation(data, m) for m in plans]
