"""Exception hierarchy for the repro VM and checkpoint subsystem."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MemoryError_(ReproError):
    """Bad access to a VM memory area (out of bounds, misaligned, ...)."""


class SegmentationFault(MemoryError_):
    """An address does not fall inside any mapped memory area."""


class AlignmentError(MemoryError_):
    """An address is not aligned to the platform word size."""


class HeapExhausted(MemoryError_):
    """The heap could not be grown to satisfy an allocation."""


class BytecodeError(ReproError):
    """Malformed byte-code (unknown opcode, bad operand count, ...)."""


class VMRuntimeError(ReproError):
    """A byte-code program performed an illegal operation at run time."""


class PrimitiveError(VMRuntimeError):
    """A C-call primitive was invoked with invalid arguments."""


class ThreadError(ReproError):
    """Illegal green-thread operation (double unlock, deadlock, ...)."""


class DeadlockError(ThreadError):
    """All live threads are blocked; the scheduler cannot make progress."""


class ChannelError(ReproError):
    """Illegal channel operation (closed channel, random write, ...)."""


class CheckpointError(ReproError):
    """Base of every checkpoint-subsystem failure (take or restore).

    Carries the context every diagnostic needs to be actionable: the
    checkpoint file ``path``, the ``format_version`` its magic claims,
    and the body ``section`` the failure was localized to — each None
    when unknown.  :func:`repro.checkpoint.format.annotate_restore_error`
    fills ``path``/``format_version`` on any error leaving the restart
    path, exactly once.
    """

    def __init__(
        self,
        message: str = "",
        *,
        path: str | None = None,
        format_version: int | None = None,
        section: str | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.format_version = format_version
        self.section = section


class RestartError(CheckpointError):
    """A checkpoint file could not be restored."""


class CheckpointFormatError(RestartError):
    """The checkpoint file is corrupt or has an unknown format.

    Where the failure can be localized, ``section`` names the file
    section and ``offset`` the byte offset at which it was detected.
    """

    def __init__(
        self,
        message: str = "",
        *,
        section: str | None = None,
        offset: int | None = None,
        path: str | None = None,
        format_version: int | None = None,
    ) -> None:
        super().__init__(
            message, path=path, format_version=format_version, section=section
        )
        self.offset = offset


class CheckpointIntegrityError(CheckpointFormatError):
    """A checkpoint failed an integrity check (CRC or digest mismatch).

    Subclasses :class:`CheckpointFormatError` so every existing corrupt-
    file handler keeps working; carries the damaged ``section``, its
    byte ``offset``, and the ``expected``/``actual`` checksum values so
    ``repro fsck`` can repair exactly the damaged byte range.
    """

    def __init__(
        self,
        message: str = "",
        *,
        section: str | None = None,
        offset: int | None = None,
        length: int | None = None,
        expected: object = None,
        actual: object = None,
        path: str | None = None,
        format_version: int | None = None,
    ) -> None:
        super().__init__(
            message,
            section=section,
            offset=offset,
            path=path,
            format_version=format_version,
        )
        self.length = length
        self.expected = expected
        self.actual = actual


class IncompatibleCheckpointError(RestartError):
    """The checkpoint cannot be restored on this platform (baseline only)."""


class StoreError(ReproError):
    """Base class for checkpoint-store failures."""


class StoreIntegrityError(StoreError):
    """A stored chunk or manifest failed its integrity check."""


class StoreProtocolError(StoreError):
    """A malformed or unexpected frame on the store wire protocol."""


class StoreConnectionError(StoreError):
    """The store daemon could not be reached (after all retries)."""


class StoreNotFoundError(StoreError):
    """A requested chunk, manifest, or VM id does not exist."""


class ReplicationError(ReproError):
    """Base class for warm-standby replication failures."""


class ReplicationProtocolError(ReplicationError):
    """A malformed or unexpected frame on the replication channel."""


class StandbyUnreachableError(ReplicationError):
    """The standby did not acknowledge within the retransmit budget."""


class LeaseLostError(ReplicationError):
    """A node observed a higher primary epoch than its own.

    The only correct reaction is to fence: stop emitting output, stop
    replicating, and demote — another node holds the lease now.
    """

    def __init__(self, message: str, *, epoch: int = 0, holder: str = "") -> None:
        super().__init__(message)
        #: The higher epoch that fenced this node.
        self.epoch = epoch
        #: Who holds it.
        self.holder = holder


class CompileError(ReproError):
    """MiniML source could not be compiled."""


class MiniMLSyntaxError(CompileError):
    """MiniML source failed to lex or parse."""
