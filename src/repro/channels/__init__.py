"""Channels: the VM's file-descriptor abstraction (paper §3.2.4).

"OCVM allocates a particular structure called channel for each opened
file descriptor ... in order to support file descriptors checkpointing,
we save all the channels as part of the checkpointed data and then use
their information for reopening the files in the restarted application."
"""

from repro.channels.channel import Channel, ChannelMode
from repro.channels.manager import ChannelManager, ChannelRecord

__all__ = ["Channel", "ChannelMode", "ChannelManager", "ChannelRecord"]
