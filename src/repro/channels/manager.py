"""The channel table: all open channels of a VM instance.

Checkpoint serializes the table into :class:`ChannelRecord` entries
(paper §4.1 step 12); restart rebuilds the table and reopens each file
(§4.2 step 10).  In-heap channel *values* are one-field blocks holding
the channel id as an immediate, so the heap side needs no special
conversion — ids stay valid across platforms.
"""

from __future__ import annotations

import io
import sys
from dataclasses import dataclass
from typing import BinaryIO, Optional

from repro.channels.channel import Channel, ChannelMode
from repro.errors import ChannelError


@dataclass(frozen=True)
class ChannelRecord:
    """The checkpointed description of one channel."""

    cid: int
    path: Optional[str]
    mode: str
    std_name: Optional[str]
    position: int
    out_buffer: bytes
    closed: bool


class ChannelManager:
    """Owns the channel table of one VM."""

    def __init__(
        self,
        stdout: Optional[BinaryIO] = None,
        stderr: Optional[BinaryIO] = None,
        stdin: Optional[BinaryIO] = None,
    ) -> None:
        self._stdout = stdout if stdout is not None else io.BytesIO()
        self._stderr = stderr if stderr is not None else io.BytesIO()
        self._stdin = stdin if stdin is not None else io.BytesIO()
        self.channels: dict[int, Channel] = {}
        self._next_cid = 3
        self.channels[0] = Channel(
            0, None, ChannelMode.READ, self._stdin, std_name="stdin"
        )
        self.channels[1] = Channel(
            1, None, ChannelMode.WRITE, self._stdout, std_name="stdout"
        )
        self.channels[2] = Channel(
            2, None, ChannelMode.WRITE, self._stderr, std_name="stderr"
        )

    # -- access ------------------------------------------------------------

    @property
    def stdout(self) -> Channel:
        """The standard output channel."""
        return self.channels[1]

    @property
    def stderr(self) -> Channel:
        """The standard error channel."""
        return self.channels[2]

    @property
    def stdin(self) -> Channel:
        """The standard input channel."""
        return self.channels[0]

    def get(self, cid: int) -> Channel:
        """Look up a channel by id."""
        try:
            return self.channels[cid]
        except KeyError:
            raise ChannelError(f"unknown channel id {cid}") from None

    def stdout_bytes(self) -> bytes:
        """Captured stdout contents (only for in-memory sinks)."""
        self.stdout.flush()
        if isinstance(self._stdout, io.BytesIO):
            return self._stdout.getvalue()
        raise ChannelError("stdout is not an in-memory sink")

    # -- opening -------------------------------------------------------------

    def open_out(self, path: str) -> int:
        """Open a file for (truncating) sequential write."""
        handle = open(path, "wb")
        cid = self._next_cid
        self._next_cid += 1
        self.channels[cid] = Channel(cid, path, ChannelMode.WRITE, handle)
        return cid

    def open_in(self, path: str) -> int:
        """Open a file for sequential read."""
        handle = open(path, "rb")
        cid = self._next_cid
        self._next_cid += 1
        self.channels[cid] = Channel(cid, path, ChannelMode.READ, handle)
        return cid

    def close(self, cid: int) -> None:
        """Close a channel."""
        self.get(cid).close()

    def flush_all(self) -> None:
        """Flush every output channel (checkpoint does not require this,
        since buffers are saved, but VM shutdown does)."""
        for ch in self.channels.values():
            if not ch.closed and ch.mode is not ChannelMode.READ:
                ch.flush()

    # -- checkpoint/restart ---------------------------------------------------

    def snapshot(self) -> list[ChannelRecord]:
        """Serialize the channel table for a checkpoint."""
        return [
            ChannelRecord(
                cid=ch.cid,
                path=ch.path,
                mode=ch.mode.value,
                std_name=ch.std_name,
                position=ch.position,
                out_buffer=bytes(ch.out_buffer),
                closed=ch.closed,
            )
            for ch in self.channels.values()
        ]

    def restore(self, records: list[ChannelRecord]) -> None:
        """Rebuild the channel table from checkpointed records."""
        std_handles = {
            "stdin": self._stdin,
            "stdout": self._stdout,
            "stderr": self._stderr,
        }
        self.channels.clear()
        max_cid = 2
        for rec in records:
            ch = Channel(
                rec.cid,
                rec.path,
                ChannelMode(rec.mode),
                handle=None,
                std_name=rec.std_name,
            )
            ch.position = rec.position
            ch.out_buffer = bytearray(rec.out_buffer)
            ch.closed = rec.closed
            if not rec.closed:
                ch.reopen(std_handles)
            self.channels[rec.cid] = ch
            max_cid = max(max_cid, rec.cid)
        self._next_cid = max_cid + 1
