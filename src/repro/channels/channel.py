"""One buffered channel over a host file.

Channels intercept every I/O operation the byte-code performs (paper
§3.2.4), tracking the logical position so a restarted application can
reopen the file and seek back to where it was.  Only sequential access
is exposed — the paper's stated restriction; random-access writes would
need a log, which the authors (and we) did not implement.
"""

from __future__ import annotations

import enum
import io
import os
from typing import BinaryIO, Optional

from repro.errors import ChannelError

#: Buffer size after which output is flushed to the host file.
BUFFER_LIMIT = 4096


class ChannelMode(enum.Enum):
    """Direction of a channel."""

    READ = "r"
    WRITE = "w"
    APPEND = "a"


class Channel:
    """A buffered, position-tracking channel."""

    def __init__(
        self,
        cid: int,
        path: Optional[str],
        mode: ChannelMode,
        handle: Optional[BinaryIO] = None,
        std_name: Optional[str] = None,
    ) -> None:
        self.cid = cid
        self.path = path
        self.mode = mode
        #: For std channels ("stdin"/"stdout"/"stderr") the handle is
        #: supplied by the VM and survives restart by re-binding, not
        #: reopening.
        self.std_name = std_name
        self._handle = handle
        #: Logical position: bytes consumed (READ) or durably written
        #: (WRITE/APPEND) — the paper's "seek the file to the position it
        #: had" restart datum.
        self.position = 0
        #: Pending output not yet flushed (WRITE side) — saved in the
        #: checkpoint so buffered bytes are not lost.
        self.out_buffer = bytearray()
        self.closed = False

    # -- classification ----------------------------------------------------

    @property
    def is_std(self) -> bool:
        """True for stdin/stdout/stderr channels."""
        return self.std_name is not None

    def _require_open(self) -> BinaryIO:
        if self.closed:
            raise ChannelError(f"channel {self.cid} is closed")
        if self._handle is None:
            raise ChannelError(f"channel {self.cid} has no backing file")
        return self._handle

    # -- output ------------------------------------------------------------

    def write(self, data: bytes) -> None:
        """Append bytes to the channel (sequential only)."""
        if self.mode is ChannelMode.READ:
            raise ChannelError("cannot write to an input channel")
        self._require_open()
        self.out_buffer.extend(data)
        if len(self.out_buffer) >= BUFFER_LIMIT:
            self.flush()

    def flush(self) -> None:
        """Flush buffered output to the host file."""
        if self.mode is ChannelMode.READ or not self.out_buffer:
            return
        handle = self._require_open()
        handle.write(bytes(self.out_buffer))
        handle.flush()
        self.position += len(self.out_buffer)
        self.out_buffer.clear()

    # -- input ---------------------------------------------------------------

    def read_byte(self) -> int:
        """Read one byte; -1 at end of file."""
        if self.mode is not ChannelMode.READ:
            raise ChannelError("cannot read from an output channel")
        handle = self._require_open()
        b = handle.read(1)
        if not b:
            return -1
        self.position += 1
        return b[0]

    def read_line(self) -> bytes:
        """Read up to and excluding a newline; raises at end of file."""
        out = bytearray()
        while True:
            b = self.read_byte()
            if b == -1:
                if not out:
                    raise ChannelError("end of file")
                break
            if b == ord("\n"):
                break
            out.append(b)
        return bytes(out)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the backing file (std channels stay open)."""
        if self.closed:
            return
        self.flush()
        if not self.is_std and self._handle is not None:
            self._handle.close()
        self.closed = True

    # -- restart support ---------------------------------------------------------

    def reopen(self, std_handles: dict[str, BinaryIO]) -> None:
        """Re-establish the backing file after a restart.

        Regular files are reopened by path and sought to the saved
        position; std channels are re-bound to the new VM's handles
        (paper §4.2 step 10).
        """
        if self.is_std:
            self._handle = std_handles[self.std_name]
            return
        if self.path is None:
            raise ChannelError(f"channel {self.cid} has no path to reopen")
        if self.mode is ChannelMode.READ:
            handle = open(self.path, "rb")
            handle.seek(self.position)
        else:
            if not os.path.exists(self.path):
                raise ChannelError(
                    f"file {self.path!r} is not accessible from the "
                    f"restarting machine"
                )
            handle = open(self.path, "r+b")
            handle.truncate(self.position)
            handle.seek(self.position)
        self._handle = handle
