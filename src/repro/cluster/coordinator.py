"""The cluster coordinator: node scheduling, messaging, coordinated C/R."""

from __future__ import annotations

import os
import struct
import zlib
from collections import deque
from typing import Optional, Sequence

from repro.arch.platforms import Platform, get_platform
from repro.bytecode.image import CodeImage
from repro.checkpoint.reader import restart_vm
from repro.errors import CheckpointFormatError, ReproError, RestartError
from repro.vm import VirtualMachine, VMConfig

_MANIFEST_MAGIC = b"RCLU\x01"


class ClusterDeadlock(ReproError):
    """Every unfinished node is waiting to receive and no message is in
    flight."""


class _Binding:
    """The per-VM view of the cluster (what the prims talk to)."""

    def __init__(self, cluster: "Cluster", rank: int) -> None:
        self._cluster = cluster
        self.rank = rank

    @property
    def size(self) -> int:
        return len(self._cluster.nodes)

    def send(self, dest: int, payload: bytes) -> None:
        self._cluster.deliver(self.rank, dest, payload)

    def recv(self) -> Optional[bytes]:
        mailbox = self._cluster.nodes[self.rank].mailbox
        if mailbox:
            return mailbox.popleft()
        return None


class ClusterNode:
    """One node: a VM plus its mailbox and run state."""

    def __init__(self, rank: int, vm: VirtualMachine) -> None:
        self.rank = rank
        self.vm = vm
        #: Marshaled messages awaiting receipt (portable bytes, so the
        #: sender's and receiver's architectures never have to match).
        self.mailbox: deque[bytes] = deque()
        #: "runnable" | "waiting" (yielded on empty mailbox) | "finished"
        self.state = "runnable"
        self.exit_status: Optional[str] = None

    def bind(self, cluster: "Cluster") -> None:
        self.vm.cluster = _Binding(cluster, self.rank)


class Cluster:
    """N message-passing VMs driven round-robin by one coordinator."""

    def __init__(
        self,
        code: CodeImage,
        platforms: Sequence[Platform | str],
        config: Optional[VMConfig] = None,
        slice_instructions: int = 20_000,
    ) -> None:
        self.code = code
        self.slice_instructions = slice_instructions
        self.nodes: list[ClusterNode] = []
        self._base_config = config or VMConfig(chkpt_state="disable")
        for rank, p in enumerate(platforms):
            platform = get_platform(p) if isinstance(p, str) else p
            vm = VirtualMachine(platform, code, self._node_config())
            node = ClusterNode(rank, vm)
            node.bind(self)
            self.nodes.append(node)
        self.steps = 0
        self.messages_sent = 0

    def _node_config(self) -> VMConfig:
        c = self._base_config
        return VMConfig(
            chkpt_state="disable",  # node checkpoints go via the coordinator
            minor_words=c.minor_words,
            chunk_words=c.chunk_words,
            stack_words=c.stack_words,
            quantum=c.quantum,
        )

    @classmethod
    def _adopt(cls, code: CodeImage, nodes: list[ClusterNode],
               slice_instructions: int) -> "Cluster":
        self = cls.__new__(cls)
        self.code = code
        self.slice_instructions = slice_instructions
        self.nodes = nodes
        self._base_config = VMConfig(chkpt_state="disable")
        for node in nodes:
            node.bind(self)
        self.steps = 0
        self.messages_sent = 0
        return self

    # -- messaging -----------------------------------------------------------

    def deliver(self, src: int, dest: int, payload: bytes) -> None:
        """Enqueue a marshaled message and wake the destination."""
        if not 0 <= dest < len(self.nodes):
            raise ReproError(f"send to unknown rank {dest}")
        node = self.nodes[dest]
        node.mailbox.append(payload)
        if node.state == "waiting":
            node.state = "runnable"
        self.messages_sent += 1

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Give every runnable node one slice; returns True if any ran."""
        self.steps += 1
        progressed = False
        for node in self.nodes:
            if node.state != "runnable":
                continue
            progressed = True
            result = node.vm.run(max_instructions=self.slice_instructions)
            if result.status in ("stopped", "exited"):
                node.state = "finished"
                node.exit_status = result.status
            elif result.status == "yielded":
                # recv on empty mailbox; a message may have landed during
                # the same slice, in which case it stays runnable.
                if not node.mailbox:
                    node.state = "waiting"
            # "budget": stays runnable.
        return progressed

    def run(self, max_steps: int = 100_000) -> None:
        """Drive all nodes to completion (raises on deadlock)."""
        for _ in range(max_steps):
            if all(n.state == "finished" for n in self.nodes):
                return
            if not self.step():
                waiting = [n.rank for n in self.nodes if n.state == "waiting"]
                raise ClusterDeadlock(
                    f"nodes {waiting} are all waiting to receive and no "
                    f"message is in flight"
                )
        raise ReproError("cluster run exceeded max_steps")

    @property
    def finished(self) -> bool:
        return all(n.state == "finished" for n in self.nodes)

    def stdout(self, rank: int) -> bytes:
        """Captured stdout of one node."""
        return self.nodes[rank].vm.channels.stdout_bytes()

    # -- coordinated checkpointing -----------------------------------------------

    def checkpoint(self, directory: str) -> None:
        """Coordinated checkpoint: every node + every in-flight message.

        All nodes are between slices, i.e. at safe points — the easy
        consistency the paper describes for multi-threaded programs
        ("stop all threads, take the checkpoint") lifted to whole VMs.
        In-flight messages live in the manifest as portable marshaled
        bytes, so no channel state can be lost or duplicated.
        """
        os.makedirs(directory, exist_ok=True)
        body = bytearray(_MANIFEST_MAGIC)
        body += struct.pack("<I", len(self.nodes))
        for node in self.nodes:
            vm = node.vm
            ckpt_name = f"node{node.rank}.hckp"
            # Flush stdout first, so the node checkpoint carries an empty
            # output buffer and the manifest carries the full output —
            # restart prefills the new sink, avoiding replay duplication.
            vm.channels.stdout.flush()
            if node.state == "finished":
                ckpt_name = ""
            else:
                vm.config.chkpt_state = "enable"
                vm.config.chkpt_filename = os.path.join(directory, ckpt_name)
                vm.config.chkpt_mode = "blocking"
                vm.perform_checkpoint()
                vm.config.chkpt_state = "disable"
            name_raw = ckpt_name.encode()
            state_raw = node.state.encode()
            stdout_raw = vm.channels.stdout_bytes()
            body += struct.pack("<I", node.rank)
            body += struct.pack("<I", len(name_raw)) + name_raw
            body += struct.pack("<I", len(state_raw)) + state_raw
            body += struct.pack("<I", len(stdout_raw)) + stdout_raw
            body += struct.pack("<I", len(node.mailbox))
            for msg in node.mailbox:
                body += struct.pack("<I", len(msg)) + msg
        body += struct.pack("<I", zlib.crc32(bytes(body)) & 0xFFFFFFFF)
        tmp = os.path.join(directory, "manifest.tmp")
        with open(tmp, "wb") as f:
            f.write(body)
        os.replace(tmp, os.path.join(directory, "manifest.rclu"))


def restart_cluster(
    code: CodeImage,
    directory: str,
    platforms: Sequence[Platform | str],
    slice_instructions: int = 20_000,
) -> Cluster:
    """Restore a coordinated checkpoint, re-placing every node.

    ``platforms[rank]`` names the machine node ``rank`` restarts on —
    it need not match the machine it was checkpointed on.
    """
    path = os.path.join(directory, "manifest.rclu")
    with open(path, "rb") as f:
        data = f.read()
    if data[: len(_MANIFEST_MAGIC)] != _MANIFEST_MAGIC:
        raise CheckpointFormatError("not a cluster manifest")
    (crc,) = struct.unpack_from("<I", data, len(data) - 4)
    if zlib.crc32(data[:-4]) & 0xFFFFFFFF != crc:
        raise CheckpointFormatError("cluster manifest CRC mismatch")
    off = len(_MANIFEST_MAGIC)
    (n_nodes,) = struct.unpack_from("<I", data, off)
    off += 4
    if len(platforms) != n_nodes:
        raise RestartError(
            f"checkpoint has {n_nodes} nodes, {len(platforms)} platforms given"
        )

    def take_lp() -> bytes:
        nonlocal off
        (n,) = struct.unpack_from("<I", data, off)
        off += 4
        out = data[off : off + n]
        off += n
        return out

    nodes: list[ClusterNode] = []
    for _ in range(n_nodes):
        (rank,) = struct.unpack_from("<I", data, off)
        off += 4
        ckpt_name = take_lp().decode()
        state = take_lp().decode()
        stdout_bytes = take_lp()
        (n_msgs,) = struct.unpack_from("<I", data, off)
        off += 4
        mailbox = deque(take_lp() for _ in range(n_msgs))
        p = platforms[rank]
        platform = get_platform(p) if isinstance(p, str) else p
        if ckpt_name:
            vm, _ = restart_vm(
                platform, code, os.path.join(directory, ckpt_name)
            )
        else:
            # The node had already finished; an idle VM stands in.
            vm = VirtualMachine(platform, code, VMConfig(chkpt_state="disable"))
        # Replay the output produced before the checkpoint, so the
        # cumulative per-node stdout survives the restart.
        vm.channels._stdout.write(stdout_bytes)
        node = ClusterNode(rank, vm)
        node.mailbox = mailbox
        node.state = "runnable" if state == "waiting" and mailbox else state
        if node.state == "waiting" and not mailbox:
            node.state = "waiting"
        nodes.append(node)
    return Cluster._adopt(code, nodes, slice_instructions)


# ---------------------------------------------------------------------------
# Checkpoint-store integration
# ---------------------------------------------------------------------------


def checkpoint_cluster_to_store(
    cluster: Cluster,
    client,
    cluster_id: str,
    directory: Optional[str] = None,
):
    """Coordinated checkpoint pushed to a checkpoint store.

    Takes a normal :meth:`Cluster.checkpoint` into ``directory`` (a
    temporary directory when omitted), packs the manifest plus every node
    checkpoint into one payload, and stores it as the next generation of
    ``cluster_id`` — so coordinated snapshots get the same dedup,
    replication and integrity guarantees as single-VM checkpoints.
    Returns ``(generation, PutStats)``.
    """
    import tempfile

    from repro.store.chunkstore import pack_files

    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-cluster-ck-")
    cluster.checkpoint(directory)
    files = {}
    for name in sorted(os.listdir(directory)):
        if name == "manifest.rclu" or name.endswith(".hckp"):
            with open(os.path.join(directory, name), "rb") as f:
                files[name] = f.read()
    payload = pack_files(files)
    meta = {"kind": "cluster", "nodes": len(cluster.nodes)}
    return client.put_checkpoint(cluster_id, payload, meta=meta)


def restart_cluster_from_store(
    code: CodeImage,
    client,
    cluster_id: str,
    platforms: Sequence[Platform | str],
    directory: Optional[str] = None,
    generation: Optional[int] = None,
    slice_instructions: int = 20_000,
) -> Cluster:
    """Fetch a stored coordinated checkpoint and restart every node.

    The inverse of :func:`checkpoint_cluster_to_store`: downloads and
    verifies the packed payload, unpacks it into ``directory`` (a
    temporary directory when omitted) and hands off to
    :func:`restart_cluster`.
    """
    import tempfile

    from repro.errors import StoreError
    from repro.store.chunkstore import unpack_files

    payload, _manifest = client.get_checkpoint(cluster_id, generation)
    try:
        files = unpack_files(payload)
    except StoreError as e:
        raise CheckpointFormatError(
            f"stored payload for {cluster_id!r} is not a cluster checkpoint: {e}"
        ) from e
    if "manifest.rclu" not in files:
        raise CheckpointFormatError(
            f"stored payload for {cluster_id!r} is not a cluster checkpoint"
        )
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-cluster-rs-")
    os.makedirs(directory, exist_ok=True)
    for name, data in files.items():
        with open(os.path.join(directory, os.path.basename(name)), "wb") as f:
            f.write(data)
    return restart_cluster(code, directory, platforms, slice_instructions)
