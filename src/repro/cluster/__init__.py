"""Coordinated heterogeneous C/R for message-passing programs.

The paper's stated future work (§5.1, §7): "we intend to provide
heterogeneous C/R for parallel message-passing applications, by
integrating this work with our Starfish system."  This package is that
integration in miniature: N virtual machines — possibly on *different*
simulated architectures — exchange marshaled values through mailboxes,
and a coordinator implements *coordinated checkpointing* (the first of
the two classical approaches the paper's §6 surveys): it stops every
node at a safe point, saves one per-node checkpoint plus the in-flight
messages, and can restart the whole application with every node placed
on a fresh (and possibly different) platform.
"""

from repro.cluster.coordinator import (
    Cluster,
    ClusterDeadlock,
    ClusterNode,
    checkpoint_cluster_to_store,
    restart_cluster,
    restart_cluster_from_store,
)

__all__ = [
    "Cluster",
    "ClusterDeadlock",
    "ClusterNode",
    "checkpoint_cluster_to_store",
    "restart_cluster",
    "restart_cluster_from_store",
]
