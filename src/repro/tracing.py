"""Execution tracing: observe the interpreter instruction by instruction.

Install a tracer before ``run()``::

    tracer = InstructionTracer(limit=1000)
    vm.interp.trace_hook = tracer
    vm.run()
    print(tracer.format_tail(20))

The hook costs one attribute test per dispatched instruction when
disabled; tracing itself is for debugging and tests, not benchmarks.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Optional

from repro.bytecode.opcodes import Op


class InstructionTracer:
    """Records executed instructions into a bounded ring buffer.

    Besides the per-opcode histogram, consecutive same-thread opcode
    *pairs* are counted — the profile the fast tier's superinstruction
    fusion table (:data:`repro.bytecode.decoded.FUSION_PATTERNS`) is
    chosen from.  A thread switch breaks the chain, so pairs never span
    two threads' instruction streams.
    """

    def __init__(self, limit: int = 10_000) -> None:
        #: (thread id, unit index, opcode) triples, oldest first.
        self.ring: deque[tuple[int, int, int]] = deque(maxlen=limit)
        self.counts: Counter[int] = Counter()
        #: Dynamic (opcode, following opcode) counts, same thread only.
        self.pair_counts: Counter[tuple[int, int]] = Counter()
        self.total = 0
        self._prev: tuple[int, int] | None = None  # (tid, op)

    def __call__(self, interp, pc: int, op: int) -> None:
        tid = interp.vm.sched.current.tid if interp.vm.sched.current else -1
        self.ring.append((tid, pc, op))
        self.counts[op] += 1
        prev = self._prev
        if prev is not None and prev[0] == tid:
            self.pair_counts[(prev[1], op)] += 1
        self._prev = (tid, op)
        self.total += 1

    def opcode_histogram(self) -> dict[str, int]:
        """Executed-instruction counts by mnemonic, most frequent first."""
        return {
            Op(op).name: n
            for op, n in self.counts.most_common()
        }

    def hot_pairs(self, n: int = 10) -> list[tuple[str, str, int]]:
        """The ``n`` most frequent consecutive opcode pairs.

        Returns ``(first mnemonic, second mnemonic, count)`` tuples,
        most frequent first — the raw material for picking new
        superinstructions (see docs/DISPATCH.md).
        """
        return [
            (Op(a).name, Op(b).name, count)
            for (a, b), count in self.pair_counts.most_common(n)
        ]

    def format_tail(self, n: int = 25) -> str:
        """The last ``n`` instructions, one per line."""
        lines = []
        for tid, pc, op in list(self.ring)[-n:]:
            lines.append(f"  t{tid} {pc:6d}  {Op(op).name}")
        return "\n".join(lines)


class BreakpointTracer(InstructionTracer):
    """A tracer that stops the VM when a code position is reached."""

    def __init__(self, break_at: set[int], limit: int = 10_000) -> None:
        super().__init__(limit)
        self.break_at = set(break_at)
        self.hit: Optional[int] = None

    def __call__(self, interp, pc: int, op: int) -> None:
        super().__call__(interp, pc, op)
        if pc in self.break_at:
            self.hit = pc
            interp.vm.pending.request_stop()
