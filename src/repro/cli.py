"""Command-line interface.

Mirrors how the paper's modified ``ocamlrun`` is driven: a program image
plus the CHKPT_* environment variables (also exposed as flags).

Commands::

    python -m repro compile prog.ml -o prog.byc
    python -m repro disasm prog.byc
    python -m repro run prog.ml  --platform rodrigo --checkpoint app.hckp
    python -m repro restart prog.ml app.hckp --platform sp2148
    python -m repro platforms
    python -m repro info app.hckp

``run`` and ``restart`` accept either MiniML source (``.ml``) or a
compiled image (``.byc``).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.arch.platforms import PLATFORMS, get_platform
from repro.bytecode.disassembler import disassemble
from repro.bytecode.image import CodeImage
from repro.checkpoint.format import read_checkpoint
from repro.checkpoint.reader import restart_vm
from repro.minilang import compile_source
from repro.vm import VirtualMachine, VMConfig


def _load_code(path: str) -> CodeImage:
    """Load a program: compile .ml sources, deserialize .byc images."""
    with open(path, "rb") as f:
        data = f.read()
    if path.endswith(".byc"):
        return CodeImage.from_bytes(data)
    return compile_source(data.decode(), name=os.path.basename(path))


def _config_from(args: argparse.Namespace) -> VMConfig:
    cfg = VMConfig.from_env(os.environ)
    if getattr(args, "checkpoint", None):
        cfg.chkpt_filename = args.checkpoint
    if getattr(args, "interval", None) is not None:
        cfg.chkpt_interval = args.interval
    if getattr(args, "mode", None):
        cfg.chkpt_mode = args.mode
    if getattr(args, "no_vectorize", False):
        cfg.vectorize = False
    return cfg


def cmd_compile(args: argparse.Namespace) -> int:
    code = _load_code(args.source)
    out = args.output or os.path.splitext(args.source)[0] + ".byc"
    with open(out, "wb") as f:
        f.write(code.to_bytes())
    print(f"wrote {out}: {len(code.units)} units, "
          f"{code.n_globals} globals, digest {code.digest().hex()[:16]}")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    print(disassemble(_load_code(args.source)))
    return 0


def cmd_platforms(_args: argparse.Namespace) -> int:
    for name in sorted(PLATFORMS):
        print(PLATFORMS[name].describe())
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    snap = read_checkpoint(args.checkpoint_file)
    h = snap.header
    print(f"checkpoint: {args.checkpoint_file}")
    if snap.chunk_index is None:
        index_note = "no block index (restart discovers blocks by walking)"
    else:
        n_blocks = sum(int(pos.size) for pos, _ in snap.chunk_index)
        index_note = f"block-extent index over {n_blocks} block(s)"
    print(f"  format   : v{h.format_version}, {index_note}")
    print(f"  taken on : {h.platform_name} ({h.word_bytes * 8}-bit "
          f"{h.endianness.value}-endian, {h.os_name})")
    print(f"  program  : {h.code_len} units, digest {h.code_digest.hex()[:16]}")
    print(f"  app type : {'multi' if h.multithreaded else 'single'}-threaded, "
          f"{len(snap.threads)} thread(s), current tid {h.current_tid}")
    heap_words = sum(len(w) for _, w in snap.heap_chunks)
    print(f"  heap     : {len(snap.heap_chunks)} chunk(s), {heap_words} words")
    for t in snap.threads:
        print(f"  thread {t.tid}: {t.state}, {len(t.stack_words)} stack words")
    print(f"  channels : {len(snap.channels)}")
    if args.deep:
        from repro.checkpoint.inspect import inspect_snapshot

        print("deep validation:")
        report = inspect_snapshot(snap)
        for line in report.render().splitlines():
            print(f"  {line}")
        return 0 if report.ok else 1
    return 0


def _finish(result) -> int:
    sys.stdout.buffer.write(result.vm.channels.stdout_bytes())
    sys.stdout.buffer.flush()
    if result.status == "budget":
        print("\n[budget exhausted]", file=sys.stderr)
        return 75
    return result.exit_code


def cmd_run(args: argparse.Namespace) -> int:
    code = _load_code(args.source)
    vm = VirtualMachine(get_platform(args.platform), code, _config_from(args))
    result = vm.run(max_instructions=args.max_instructions)
    if vm.checkpoints_taken:
        print(f"[{vm.checkpoints_taken} checkpoint(s) written to "
              f"{vm.config.chkpt_filename}]", file=sys.stderr)
    return _finish(result)


def cmd_restart(args: argparse.Namespace) -> int:
    code = _load_code(args.source)
    vm, stats = restart_vm(
        get_platform(args.platform), code, args.checkpoint_file,
        _config_from(args),
    )
    conv = []
    if stats.converted_endianness:
        conv.append("endianness")
    if stats.converted_word_size:
        conv.append("word size")
    print(f"[restarted on {args.platform}; converted: "
          f"{', '.join(conv) if conv else 'nothing'}; "
          f"{stats.total_seconds * 1e3:.1f} ms]", file=sys.stderr)
    result = vm.run(max_instructions=args.max_instructions)
    return _finish(result)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Virtual-machine based heterogeneous checkpointing",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compile", help="compile MiniML to a portable image")
    c.add_argument("source")
    c.add_argument("-o", "--output")
    c.set_defaults(fn=cmd_compile)

    d = sub.add_parser("disasm", help="disassemble a program")
    d.add_argument("source")
    d.set_defaults(fn=cmd_disasm)

    pl = sub.add_parser("platforms", help="list the simulated platforms")
    pl.set_defaults(fn=cmd_platforms)

    i = sub.add_parser("info", help="describe a checkpoint file")
    i.add_argument("checkpoint_file")
    i.add_argument("--deep", action="store_true",
                   help="walk and validate every heap block and stack word")
    i.set_defaults(fn=cmd_info)

    def common(sp):
        sp.add_argument("--platform", default="rodrigo",
                        choices=sorted(PLATFORMS))
        sp.add_argument("--checkpoint", help="checkpoint file (CHKPT_FILENAME)")
        sp.add_argument("--interval", type=float,
                        help="periodic checkpoint interval in seconds")
        sp.add_argument("--mode", choices=["auto", "background", "blocking"])
        sp.add_argument("--no-vectorize", action="store_true",
                        help="use the scalar reference C/R paths "
                             "(CHKPT_VECTORIZE=0)")
        sp.add_argument("--max-instructions", type=int, default=None)

    r = sub.add_parser("run", help="run a program on a simulated platform")
    r.add_argument("source")
    common(r)
    r.set_defaults(fn=cmd_run)

    rs = sub.add_parser("restart", help="restart a checkpoint")
    rs.add_argument("source")
    rs.add_argument("checkpoint_file")
    common(rs)
    rs.set_defaults(fn=cmd_restart)

    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
