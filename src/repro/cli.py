"""Command-line interface.

Mirrors how the paper's modified ``ocamlrun`` is driven: a program image
plus the CHKPT_* environment variables (also exposed as flags).

Commands::

    python -m repro compile prog.ml -o prog.byc
    python -m repro disasm prog.byc
    python -m repro run prog.ml  --platform rodrigo --checkpoint app.hckp
    python -m repro trace prog.ml [--top 15] [--json]
    python -m repro restart prog.ml app.hckp --platform sp2148
    python -m repro platforms
    python -m repro info app.hckp [--json] [--deep]
    python -m repro schema dump [--json | --markdown]
    python -m repro fsck app.hckp [--repair --addr host:port --vm-id myapp]
    python -m repro faults plan|inject|fuzz ...
    python -m repro store serve --root /var/ckpt --port 7420
    python -m repro store put|get|ls|gc|stat|audit --addr host:port ...
    python -m repro store fleet serve --root /var/fleet --shards 3
    python -m repro store fleet stat|rebalance|audit --addr a:p,b:p,c:p
    python -m repro ha run prog.ml --addr host:port --vm-id myapp

A comma-separated ``--addr`` list makes every store/ha command route
across the sharded fleet instead of one daemon.

``run`` and ``restart`` accept either MiniML source (``.ml``) or a
compiled image (``.byc``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.arch.platforms import PLATFORMS, get_platform
from repro.bytecode.disassembler import disassemble
from repro.bytecode.image import CodeImage
from repro.checkpoint.format import read_checkpoint
from repro.checkpoint.reader import restart_vm
from repro.minilang import compile_source
from repro.vm import VirtualMachine, VMConfig


def _load_code(path: str) -> CodeImage:
    """Load a program: compile .ml sources, deserialize .byc images."""
    with open(path, "rb") as f:
        data = f.read()
    if path.endswith(".byc"):
        return CodeImage.from_bytes(data)
    return compile_source(data.decode(), name=os.path.basename(path))


def _config_from(args: argparse.Namespace) -> VMConfig:
    cfg = VMConfig.from_env(os.environ)
    if getattr(args, "checkpoint", None):
        cfg.chkpt_filename = args.checkpoint
    if getattr(args, "interval", None) is not None:
        cfg.chkpt_interval = args.interval
    if getattr(args, "mode", None):
        cfg.chkpt_mode = args.mode
    if getattr(args, "no_vectorize", False):
        cfg.vectorize = False
    if getattr(args, "lazy_restore", False):
        cfg.lazy_restore = True
    if getattr(args, "dispatch", None):
        cfg.dispatch = args.dispatch
    if getattr(args, "format", None):
        cfg.chkpt_format = int(args.format.lstrip("v"))
    if getattr(args, "retain", None) is not None:
        cfg.chkpt_retain = args.retain
    if getattr(args, "incremental", False):
        cfg.chkpt_incremental = True
    if getattr(args, "full_every", None) is not None:
        cfg.chkpt_full_every = args.full_every
    if getattr(args, "dirty_threshold", None) is not None:
        cfg.chkpt_dirty_threshold = args.dirty_threshold
    if getattr(args, "region_words", None) is not None:
        cfg.chkpt_region_words = args.region_words
    return cfg


def cmd_compile(args: argparse.Namespace) -> int:
    code = _load_code(args.source)
    out = args.output or os.path.splitext(args.source)[0] + ".byc"
    with open(out, "wb") as f:
        f.write(code.to_bytes())
    print(f"wrote {out}: {len(code.units)} units, "
          f"{code.n_globals} globals, digest {code.digest().hex()[:16]}")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    print(disassemble(_load_code(args.source)))
    return 0


def cmd_platforms(_args: argparse.Namespace) -> int:
    for name in sorted(PLATFORMS):
        print(PLATFORMS[name].describe())
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    if args.json:
        from repro.checkpoint.inspect import describe_checkpoint
        from repro.metrics import (
            FLEET,
            INTEGRITY,
            REPLICATION,
            RESTART,
            STORE,
        )

        desc = describe_checkpoint(args.checkpoint_file, deep=args.deep)
        desc["integrity_counters"] = INTEGRITY.as_dict()
        desc["store_counters"] = STORE.as_dict()
        desc["fleet_counters"] = FLEET.as_dict()
        desc["replication_counters"] = REPLICATION.as_dict()
        desc["restart_counters"] = RESTART.as_dict()
        print(json.dumps(desc, indent=2, sort_keys=True))
        return 0 if desc.get("ok", True) else 1
    snap = read_checkpoint(args.checkpoint_file)
    h = snap.header
    print(f"checkpoint: {args.checkpoint_file}")
    if snap.delta is not None:
        d = snap.delta
        print(f"  kind     : delta (chain depth {d.chain_depth}, "
              f"{d.dirty_words}/{d.total_words} words dirty = "
              f"{d.dirty_ratio:.1%})")
        print(f"  parent   : body sha256 {d.parent_sha256.hex()[:16]}...")
    else:
        print("  kind     : full")
    if snap.chunk_index is None:
        index_note = "no block index (restart discovers blocks by walking)"
    else:
        n_blocks = sum(int(pos.size) for pos, _ in snap.chunk_index)
        index_note = f"block-extent index over {n_blocks} block(s)"
    print(f"  format   : v{h.format_version}, {index_note}")
    if snap.sections:
        print(f"  integrity: trailer verified "
              f"({len(snap.sections)} section CRCs + SHA-256)")
        for s in snap.sections:
            print(f"    {s.name:<10s} bytes {s.offset:>8d}..{s.end:<8d} "
                  f"crc32 {s.crc32:08x}")
    print(f"  taken on : {h.platform_name} ({h.word_bytes * 8}-bit "
          f"{h.endianness.value}-endian, {h.os_name})")
    print(f"  program  : {h.code_len} units, digest {h.code_digest.hex()[:16]}")
    print(f"  app type : {'multi' if h.multithreaded else 'single'}-threaded, "
          f"{len(snap.threads)} thread(s), current tid {h.current_tid}")
    heap_words = sum(len(w) for _, w in snap.heap_chunks)
    print(f"  heap     : {len(snap.heap_chunks)} chunk(s), {heap_words} words")
    for t in snap.threads:
        print(f"  thread {t.tid}: {t.state}, {len(t.stack_words)} stack words")
    print(f"  channels : {len(snap.channels)}")
    if args.deep:
        from repro.checkpoint.inspect import inspect_snapshot

        if snap.delta is not None:
            from repro.checkpoint.reader import load_snapshot_chain

            snap = load_snapshot_chain(args.checkpoint_file)
            print("deep validation (chain merged):")
        else:
            print("deep validation:")
        report = inspect_snapshot(snap)
        for line in report.render().splitlines():
            print(f"  {line}")
        return 0 if report.ok else 1
    return 0


def cmd_schema_dump(args: argparse.Namespace) -> int:
    from repro.checkpoint.schema import FormatProfile
    from repro.checkpoint.schema.render import render_markdown

    if args.markdown:
        sys.stdout.write(render_markdown())
    else:
        print(json.dumps(
            [p.describe() for p in FormatProfile.all()],
            indent=2, sort_keys=True,
        ))
    return 0


def _finish(result) -> int:
    sys.stdout.buffer.write(result.vm.channels.stdout_bytes())
    sys.stdout.buffer.flush()
    if result.status == "budget":
        print("\n[budget exhausted]", file=sys.stderr)
        return 75
    return result.exit_code


def cmd_run(args: argparse.Namespace) -> int:
    code = _load_code(args.source)
    vm = VirtualMachine(get_platform(args.platform), code, _config_from(args))
    result = vm.run(max_instructions=args.max_instructions)
    if vm.checkpoints_taken:
        print(f"[{vm.checkpoints_taken} checkpoint(s) written to "
              f"{vm.config.chkpt_filename}]", file=sys.stderr)
    return _finish(result)


def cmd_trace(args: argparse.Namespace) -> int:
    """Profile a program: opcode histogram + hot consecutive pairs.

    Runs under :class:`repro.tracing.InstructionTracer` (which forces
    the reference dispatch tier — the fast tier has no per-instruction
    hook).  The hot-pair table is the data the superinstruction fusion
    table in ``src/repro/bytecode/decoded.py`` is chosen from.
    """
    from repro.tracing import InstructionTracer

    code = _load_code(args.source)
    cfg = _config_from(args)
    # Profiling run: a `checkpoint ()` in the program must not abort it
    # (trace has no --checkpoint option, so no filename is configured).
    cfg.chkpt_state = "disable"
    vm = VirtualMachine(get_platform(args.platform), code, cfg)
    tracer = InstructionTracer(limit=args.ring)
    vm.interp.trace_hook = tracer
    result = vm.run(max_instructions=args.max_instructions)
    histogram = tracer.opcode_histogram()
    pairs = tracer.hot_pairs(args.top)
    if args.json:
        print(json.dumps({
            "program": args.source,
            "platform": args.platform,
            "status": result.status,
            "instructions": result.instructions,
            "opcode_histogram": histogram,
            "hot_pairs": [
                {"first": a, "second": b, "count": n} for a, b, n in pairs
            ],
        }, indent=2, sort_keys=True))
        return 0
    print(f"{args.source}: {result.instructions} instruction(s), "
          f"status {result.status}")
    print(f"\nopcode histogram (top {args.top}):")
    for name, n in list(histogram.items())[:args.top]:
        print(f"  {name:<16s} {n:>10d}  {100.0 * n / tracer.total:5.1f}%")
    print(f"\nhot opcode pairs (top {args.top}):")
    for a, b, n in pairs:
        print(f"  {a:<16s}+ {b:<16s} {n:>10d}")
    return 0


def cmd_restart(args: argparse.Namespace) -> int:
    from repro.checkpoint.reader import restart_vm_with_fallback

    code = _load_code(args.source)
    restore = restart_vm if args.no_fallback else restart_vm_with_fallback
    vm, stats = restore(
        get_platform(args.platform), code, args.checkpoint_file,
        _config_from(args),
    )
    conv = []
    if stats.converted_endianness:
        conv.append("endianness")
    if stats.converted_word_size:
        conv.append("word size")
    print(f"[restarted on {args.platform}; converted: "
          f"{', '.join(conv) if conv else 'nothing'}; "
          f"{stats.total_seconds * 1e3:.1f} ms]", file=sys.stderr)
    if stats.lazy:
        print(f"[lazy restore: {stats.lazy_chunks_converted}/"
              f"{stats.lazy_chunks_total} chunks converted eagerly; "
              f"time-to-first-output {stats.total_seconds * 1e3:.1f} ms]",
              file=sys.stderr)
    if stats.restored_path and stats.restored_path != args.checkpoint_file:
        print(f"[fell back to previous generation {stats.restored_path}]",
              file=sys.stderr)
    result = vm.run(max_instructions=args.max_instructions)
    return _finish(result)


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.checkpoint.fsck import (
        ClientSource,
        LocalStoreSource,
        fsck_chain,
        fsck_checkpoint,
    )

    source = None
    client = None
    if args.store_root:
        from repro.store import ChunkStore

        source = LocalStoreSource(ChunkStore(args.store_root))
    elif args.repair:
        from repro.store import StoreClient

        host, port = _parse_addr(args.addr)
        client = StoreClient(host, port, retries=args.retries)
        source = ClientSource(client)
    check = fsck_chain if args.chain else fsck_checkpoint
    try:
        report = check(
            args.checkpoint_file,
            repair=args.repair,
            source=source,
            vm_id=args.vm_id,
            generation=args.generation,
        )
    finally:
        if client is not None:
            client.close()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        status = "OK" if report["ok"] else "DAMAGED"
        print(f"{report['path']}: {status} (action: {report['action']})")
        for link in report.get("links", []):
            mark = "ok" if link["ok"] else "DAMAGED"
            print(f"  {link['path']}: {link['kind']} [{mark}]")
        for p in report["problems"]:
            print(f"  - {p.get('error', p)}")
        if report["sections_repaired"]:
            print(f"  repaired {report['sections_repaired']} section(s) "
                  f"({report['chunks_fetched']} chunk(s) fetched)")
    return 0 if report["ok"] else 1


def cmd_faults_plan(args: argparse.Namespace) -> int:
    from repro.checkpoint.format import read_section_table
    from repro.faults import plan_mutations

    with open(args.checkpoint_file, "rb") as f:
        data = f.read()
    plan = plan_mutations(
        len(data), args.seed, args.count,
        section_table=read_section_table(data),
    )
    for i, m in enumerate(plan):
        print(f"{i:4d}  {m.describe()}")
    return 0


def cmd_faults_inject(args: argparse.Namespace) -> int:
    from repro.checkpoint.format import read_section_table
    from repro.faults import apply_mutation, plan_mutations

    with open(args.checkpoint_file, "rb") as f:
        data = f.read()
    plan = plan_mutations(
        len(data), args.seed, args.index + 1,
        section_table=read_section_table(data),
    )
    m = plan[args.index]
    out = args.output or args.checkpoint_file + ".corrupt"
    with open(out, "wb") as f:
        f.write(apply_mutation(data, m))
    print(f"{out}: {m.describe()}")
    return 0


def cmd_faults_fuzz(args: argparse.Namespace) -> int:
    from repro.faults.fuzz import fuzz_delta_chain, fuzz_matrix

    platforms = args.platforms.split(",") if args.platforms else None
    progress = lambda msg: print(f"[{msg}]", file=sys.stderr)  # noqa: E731
    if args.delta:
        report = fuzz_delta_chain(
            seed=args.seed, platforms=platforms, progress=progress
        )
    else:
        report = fuzz_matrix(
            seed=args.seed,
            mutations=args.mutations,
            platforms=platforms,
            progress=progress,
        )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        o = report["outcomes"]
        total = report.get("mutations", report.get("cases", 0))
        what = "delta-chain case(s)" if args.delta else "mutation(s)"
        print(f"corruption matrix: {total} {what} over "
              f"{report['pairs']} platform pair(s)")
        print(f"  detected + recovered : {o['detected_and_recovered']}")
        print(f"  clean restores       : {o['clean_restore']}")
        print(f"  invariant violations : {len(report['failures'])}")
        for f in report["failures"]:
            what = f.get("mutation", f.get("scenario", "?"))
            print(f"  FAIL {f['pair']}: {what} -> {f['problem']}")
    return 0 if report["ok"] else 1


def _parse_addr(addr: str) -> tuple[str, int]:
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"repro: bad --addr {addr!r} (expected host:port)")
    return host, int(port)


def _store_client(args: argparse.Namespace):
    """Build the client ``--addr`` asks for.

    A single ``host:port`` gets the plain :class:`StoreClient`; a
    comma-separated list gets the sharded :class:`FleetClient` routing
    across every named node.
    """
    if "," in args.addr:
        return _fleet_client(args)
    from repro.store import StoreClient

    host, port = _parse_addr(args.addr)
    return StoreClient(host, port, retries=args.retries)


def _fleet_client(args: argparse.Namespace):
    from repro.store import FleetClient

    addrs = [_parse_addr(a) for a in args.addr.split(",") if a]
    if not addrs:
        raise SystemExit(f"repro: bad --addr {args.addr!r} (no addresses)")
    return FleetClient(addrs, retries=args.retries)


def cmd_store_serve(args: argparse.Namespace) -> int:
    from repro.store import ChunkStore, StoreServer

    replicas = [_parse_addr(a) for a in args.replica]
    server = StoreServer(
        ChunkStore(args.root),
        host=args.host,
        port=args.port,
        replicas=replicas,
        heartbeat_interval=args.heartbeat,
    )
    host, port = server.address
    print(f"store serving {args.root} on {host}:{port} "
          f"({len(replicas)} replica(s))", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


def cmd_store_put(args: argparse.Namespace) -> int:
    with _store_client(args) as client:
        generation, stats = client.put_checkpoint_file(args.vm_id, args.file)
    print(f"{args.vm_id} gen {generation}: "
          f"{stats.chunks_new}/{stats.chunks_total} new chunk(s), "
          f"dedup {stats.dedup_ratio:.2f}x")
    return 0


def cmd_store_get(args: argparse.Namespace) -> int:
    with _store_client(args) as client:
        manifest = client.get_checkpoint_file(
            args.vm_id, args.output, generation=args.generation
        )
    print(f"{args.vm_id} gen {manifest.generation} -> {args.output} "
          f"({manifest.payload_len} bytes, verified)")
    return 0


def cmd_store_ls(args: argparse.Namespace) -> int:
    with _store_client(args) as client:
        listing = client.ls()
    vms = listing.get("vms", {})
    for vm_id in sorted(vms):
        if args.vm_id and vm_id != args.vm_id:
            continue
        for entry in vms[vm_id]:
            print(f"{vm_id} gen {entry['generation']}: "
                  f"{entry['payload_len']} bytes, "
                  f"{entry['chunks']} chunk(s)")
    print(f"[{listing.get('objects', 0)} object(s) in store]", file=sys.stderr)
    return 0


def cmd_store_gc(args: argparse.Namespace) -> int:
    with _store_client(args) as client:
        result = client.gc()
    print(f"gc: removed {result['removed']} unreferenced chunk(s), "
          f"kept {result['kept']}, freed {result['bytes_freed']} bytes")
    return 0


def cmd_store_stat(args: argparse.Namespace) -> int:
    with _store_client(args) as client:
        stat = client.stat()
    if getattr(args, "json", False) or "shards" not in stat:
        print(json.dumps(stat, indent=2, sort_keys=True))
        return 0
    # Fleet without --json: a compact per-shard summary.
    for addr in sorted(stat["shards"]):
        shard = stat["shards"][addr]
        drain = " (draining)" if shard.get("draining") else ""
        vms = shard.get("vms", [])
        print(f"{addr} [{shard.get('node_id', '?')}]{drain}: "
              f"{shard.get('objects', 0)} object(s), "
              f"{len(vms)} vm(s), epoch {shard.get('epoch', 0)}")
    ring = stat.get("ring", {})
    own = ring.get("ownership", {})
    if own:
        arcs = ", ".join(f"{n}={own[n]:.2f}" for n in sorted(own))
        print(f"ring: {ring.get('vnodes')} vnode(s)/node, ownership {arcs}")
    caches = stat.get("caches") or {}
    for addr in sorted(caches):
        c = caches[addr]
        print(f"cache {addr}: {c['present_entries']}+{c['absent_entries']} "
              f"entries, hit rate {c['hit_rate']:.2f}")
    return 0


def cmd_store_fleet_serve(args: argparse.Namespace) -> int:
    import time

    from repro.store import ChunkStore
    from repro.store.fleet import FleetNode

    if args.shards < 1:
        raise SystemExit("repro: --shards must be >= 1")
    nodes = []
    for i in range(args.shards):
        shard_id = f"shard-{i:02d}"
        root = os.path.join(args.root, shard_id)
        port = args.port + i if args.port else 0
        nodes.append(
            FleetNode(ChunkStore(root), host=args.host, port=port,
                      node_id=shard_id)
        )
    addrs = [node.start() for node in nodes]
    joined = ",".join(f"{h}:{p}" for h, p in addrs)
    print(f"fleet serving {args.shards} shard(s) under {args.root} "
          f"on {joined}", file=sys.stderr)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        for node in nodes:
            node.stop()
    return 0


def cmd_store_fleet_stat(args: argparse.Namespace) -> int:
    with _fleet_client(args) as client:
        print(json.dumps(client.fleet_stat(), indent=2, sort_keys=True))
    return 0


def cmd_store_fleet_rebalance(args: argparse.Namespace) -> int:
    with _fleet_client(args) as client:
        result = client.rebalance()
    print(f"rebalance: moved {result['manifests_moved']} manifest(s) and "
          f"{result['chunks_moved']} chunk(s), removed {result['removed']} "
          f"chunk(s), freed {result['bytes_freed']} bytes")
    return 0


def cmd_store_fleet_audit(args: argparse.Namespace) -> int:
    with _fleet_client(args) as client:
        report = client.audit(deep=args.deep)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report.get("ok") else 1


def cmd_store_audit(args: argparse.Namespace) -> int:
    with _store_client(args) as client:
        report = client.audit(deep=args.deep)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report.get("ok") else 1


def cmd_ha_run(args: argparse.Namespace) -> int:
    from repro.store import HASupervisor

    code = _load_code(args.source)
    with _store_client(args) as client:
        supervisor = HASupervisor(
            code,
            client,
            args.vm_id,
            start_platform=args.platform,
            checkpoint_every=args.checkpoint_every,
            fault_budgets=(args.fault_min, args.fault_max),
            max_faults=args.max_faults,
            seed=args.seed,
        )
        report = supervisor.run()
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.buffer.write(report.stdout)
        sys.stdout.buffer.flush()
        print(f"[ha: {report.faults_injected} fault(s), "
              f"{report.restarts} restart(s), "
              f"{report.checkpoints} checkpoint(s), "
              f"platforms {' -> '.join(report.platforms_visited)}]",
              file=sys.stderr)
    return 0 if report.completed else 1


def cmd_ha_live(args: argparse.Namespace) -> int:
    from repro.replication import LiveHA

    code = _load_code(args.source)
    addr = _parse_addr(args.addr.split(",")[0])
    ha = LiveHA(
        code,
        addr,
        args.vm_id,
        primary_platform=args.primary,
        standby_platform=args.standby,
        checkpoint_every=args.checkpoint_every,
        schedule=args.fault,
        seed=args.seed,
    )
    report = ha.run()
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.buffer.write(report.client_stdout)
        sys.stdout.buffer.flush()
        takeover = (
            f", takeover {report.takeover_seconds * 1e3:.1f} ms"
            if report.takeover_seconds is not None
            else ""
        )
        print(f"[ha live: schedule {report.schedule}, "
              f"{report.generations_shipped} generation(s) replicated "
              f"{report.primary_platform} -> {report.standby_platform}, "
              f"{report.promotions} promotion(s), "
              f"{report.fenced_demotions} fenced demotion(s)"
              f"{takeover}]",
              file=sys.stderr)
    return 0 if report.completed else 1


def _writable_formats() -> list[str]:
    """``--format`` choices, from the schema: every full-capable profile.

    Delta profiles are excluded — they are selected by ``--incremental``,
    not by naming a version.
    """
    from repro.checkpoint.schema import FormatProfile

    full = [p.version for p in FormatProfile.all() if not p.delta]
    return [f"v{v}" for v in full] + [str(v) for v in full]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Virtual-machine based heterogeneous checkpointing",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compile", help="compile MiniML to a portable image")
    c.add_argument("source")
    c.add_argument("-o", "--output")
    c.set_defaults(fn=cmd_compile)

    d = sub.add_parser("disasm", help="disassemble a program")
    d.add_argument("source")
    d.set_defaults(fn=cmd_disasm)

    pl = sub.add_parser("platforms", help="list the simulated platforms")
    pl.set_defaults(fn=cmd_platforms)

    i = sub.add_parser("info", help="describe a checkpoint file")
    i.add_argument("checkpoint_file")
    i.add_argument("--deep", action="store_true",
                   help="walk and validate every heap block and stack word")
    i.add_argument("--json", action="store_true",
                   help="emit the description as machine-readable JSON")
    i.set_defaults(fn=cmd_info)

    sc = sub.add_parser(
        "schema", help="the declarative checkpoint section-codec registry")
    scsub = sc.add_subparsers(dest="schema_command", required=True)
    sd = scsub.add_parser(
        "dump", help="dump every format profile: sections, flags, layouts")
    sd.add_argument("--json", action="store_true",
                    help="emit the profiles as machine-readable JSON "
                         "(the default)")
    sd.add_argument("--markdown", action="store_true",
                    help="emit the markdown tables embedded in "
                         "docs/FILE_FORMAT.md")
    sd.set_defaults(fn=cmd_schema_dump)

    fk = sub.add_parser(
        "fsck", help="verify a checkpoint file; repair from a store replica")
    fk.add_argument("checkpoint_file")
    fk.add_argument("--repair", action="store_true",
                    help="re-fetch damaged sections from the store")
    fk.add_argument("--chain", action="store_true",
                    help="verify/repair the whole delta chain "
                         "(path.1, path.2, ... back to the full base)")
    fk.add_argument("--store-root", default=None,
                    help="repair from a local store directory instead of "
                         "a daemon")
    fk.add_argument("--addr", default="127.0.0.1:7420", metavar="HOST:PORT",
                    help="store daemon address (with --repair)")
    fk.add_argument("--retries", type=int, default=3,
                    help="transport retries per request")
    fk.add_argument("--vm-id", default=None,
                    help="store id holding the replica")
    fk.add_argument("--generation", type=int, default=None,
                    help="replica generation (default: latest)")
    fk.add_argument("--json", action="store_true",
                    help="emit the fsck report as JSON")
    fk.set_defaults(fn=cmd_fsck)

    fl = sub.add_parser(
        "faults", help="deterministic corruption/crash fault injection")
    flsub = fl.add_subparsers(dest="faults_command", required=True)

    fp = flsub.add_parser("plan", help="print the seeded mutation plan "
                                       "for a checkpoint file")
    fp.add_argument("checkpoint_file")
    fp.add_argument("--seed", type=int, default=2002)
    fp.add_argument("--count", type=int, default=20)
    fp.set_defaults(fn=cmd_faults_plan)

    fi = flsub.add_parser("inject", help="apply one planned mutation")
    fi.add_argument("checkpoint_file")
    fi.add_argument("--seed", type=int, default=2002)
    fi.add_argument("--index", type=int, default=0,
                    help="which mutation of the plan to apply")
    fi.add_argument("-o", "--output", default=None,
                    help="output file (default: <file>.corrupt)")
    fi.set_defaults(fn=cmd_faults_inject)

    ff = flsub.add_parser(
        "fuzz", help="run the corruption matrix: mutate checkpoints "
                     "across platform pairs and check every restore "
                     "detects or recovers")
    ff.add_argument("--seed", type=int, default=2002)
    ff.add_argument("--mutations", type=int, default=200)
    ff.add_argument("--delta", action="store_true",
                    help="run the delta-chain scenarios (corrupt base, "
                         "corrupt middle delta, swapped parent) instead "
                         "of the byte-mutation matrix")
    ff.add_argument("--platforms", default=None,
                    help="comma-separated platform names "
                         "(default: one per architecture class)")
    ff.add_argument("--json", action="store_true")
    ff.set_defaults(fn=cmd_faults_fuzz)

    st = sub.add_parser("store", help="checkpoint store daemon and client")
    stsub = st.add_subparsers(dest="store_command", required=True)

    sv = stsub.add_parser("serve", help="run a store daemon")
    sv.add_argument("--root", required=True, help="store directory")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=7420)
    sv.add_argument("--replica", action="append", default=[],
                    metavar="HOST:PORT",
                    help="follower store to replicate to (repeatable)")
    sv.add_argument("--heartbeat", type=float, default=2.0,
                    help="follower heartbeat interval in seconds")
    sv.set_defaults(fn=cmd_store_serve)

    def store_common(sp):
        sp.add_argument("--addr", default="127.0.0.1:7420",
                        metavar="HOST:PORT[,HOST:PORT...]",
                        help="store daemon address; a comma-separated list "
                             "routes across a sharded fleet")
        sp.add_argument("--retries", type=int, default=3,
                        help="transport retries per request")

    sp_put = stsub.add_parser("put", help="upload a checkpoint file")
    sp_put.add_argument("vm_id")
    sp_put.add_argument("file")
    store_common(sp_put)
    sp_put.set_defaults(fn=cmd_store_put)

    sp_get = stsub.add_parser("get", help="download a checkpoint file")
    sp_get.add_argument("vm_id")
    sp_get.add_argument("output")
    sp_get.add_argument("--generation", type=int, default=None,
                        help="generation to fetch (default: latest)")
    store_common(sp_get)
    sp_get.set_defaults(fn=cmd_store_get)

    sp_ls = stsub.add_parser("ls", help="list stored checkpoints")
    sp_ls.add_argument("vm_id", nargs="?", default=None)
    store_common(sp_ls)
    sp_ls.set_defaults(fn=cmd_store_ls)

    sp_gc = stsub.add_parser("gc", help="drop unreferenced chunks")
    store_common(sp_gc)
    sp_gc.set_defaults(fn=cmd_store_gc)

    sp_stat = stsub.add_parser("stat", help="daemon statistics as JSON")
    sp_stat.add_argument("--json", action="store_true",
                         help="full JSON detail (per-shard counts, ring "
                              "ownership ranges, cache hit rates for a "
                              "fleet --addr list)")
    store_common(sp_stat)
    sp_stat.set_defaults(fn=cmd_store_stat)

    sp_audit = stsub.add_parser("audit", help="verify store integrity")
    sp_audit.add_argument("--deep", action="store_true",
                          help="also validate reassembled checkpoints")
    store_common(sp_audit)
    sp_audit.set_defaults(fn=cmd_store_audit)

    fl = stsub.add_parser("fleet", help="sharded store fleet")
    flsub = fl.add_subparsers(dest="fleet_command", required=True)

    fl_serve = flsub.add_parser(
        "serve", help="run N shard daemons under one root")
    fl_serve.add_argument("--root", required=True,
                          help="fleet directory (one shard-XX/ per node)")
    fl_serve.add_argument("--shards", type=int, default=3,
                          help="number of shard daemons")
    fl_serve.add_argument("--host", default="127.0.0.1")
    fl_serve.add_argument("--port", type=int, default=7430,
                          help="first shard port; shard i listens on "
                               "port+i (0 = ephemeral)")
    fl_serve.set_defaults(fn=cmd_store_fleet_serve)

    fl_stat = flsub.add_parser("stat", help="fleet statistics as JSON")
    store_common(fl_stat)
    fl_stat.set_defaults(fn=cmd_store_fleet_stat)

    fl_reb = flsub.add_parser(
        "rebalance", help="move manifests/chunks to their ring owners")
    store_common(fl_reb)
    fl_reb.set_defaults(fn=cmd_store_fleet_rebalance)

    fl_audit = flsub.add_parser("audit", help="verify fleet-wide integrity")
    fl_audit.add_argument("--deep", action="store_true",
                          help="also validate reassembled checkpoints")
    store_common(fl_audit)
    fl_audit.set_defaults(fn=cmd_store_fleet_audit)

    ha = sub.add_parser("ha", help="high-availability supervision")
    hasub = ha.add_subparsers(dest="ha_command", required=True)

    hr = hasub.add_parser(
        "run", help="run a program under fault injection with store-backed "
                    "checkpoints and heterogeneous auto-restart")
    hr.add_argument("source")
    hr.add_argument("--vm-id", required=True, help="store id for checkpoints")
    hr.add_argument("--platform", default="rodrigo",
                    choices=sorted(PLATFORMS))
    hr.add_argument("--checkpoint-every", type=int, default=20_000,
                    help="instructions between checkpoints")
    hr.add_argument("--fault-min", type=int, default=30_000,
                    help="minimum instructions before an injected fault")
    hr.add_argument("--fault-max", type=int, default=120_000,
                    help="maximum instructions before an injected fault")
    hr.add_argument("--max-faults", type=int, default=3)
    hr.add_argument("--seed", type=int, default=2002)
    hr.add_argument("--json", action="store_true",
                    help="emit the full HA report as JSON")
    store_common(hr)
    hr.set_defaults(fn=cmd_ha_run)

    hl = hasub.add_parser(
        "live", help="run with warm-standby continuous replication: "
                     "committed delta generations stream to a resident "
                     "standby VM on another platform; failover is a lease "
                     "claim, not a restore")
    hl.add_argument("source")
    hl.add_argument("--vm-id", required=True,
                    help="store id for the epoch lease (split-brain guard)")
    hl.add_argument("--primary", default="rodrigo",
                    choices=sorted(PLATFORMS),
                    help="platform the primary runs on")
    hl.add_argument("--standby", default=None,
                    choices=sorted(PLATFORMS),
                    help="platform the standby keeps its resident VM on "
                         "(default: a fully-heterogeneous peer)")
    hl.add_argument("--checkpoint-every", type=int, default=20_000,
                    help="instructions between replicated generations")
    hl.add_argument("--fault", default="crash",
                    choices=["none", "crash", "partition"],
                    help="seeded fault schedule: none (oracle), crash "
                         "(primary dies; standby promotes), partition "
                         "(isolated primary is fenced by the lease)")
    hl.add_argument("--seed", type=int, default=2002)
    hl.add_argument("--json", action="store_true",
                    help="emit the full live-replication report as JSON")
    store_common(hl)
    hl.set_defaults(fn=cmd_ha_live)

    def common(sp):
        sp.add_argument("--platform", default="rodrigo",
                        choices=sorted(PLATFORMS))
        sp.add_argument("--checkpoint", help="checkpoint file (CHKPT_FILENAME)")
        sp.add_argument("--interval", type=float,
                        help="periodic checkpoint interval in seconds")
        sp.add_argument("--mode", choices=["auto", "background", "blocking"])
        sp.add_argument("--no-vectorize", action="store_true",
                        help="use the scalar reference C/R paths "
                             "(CHKPT_VECTORIZE=0)")
        sp.add_argument("--lazy-restore", action="store_true",
                        help="convert restored heap chunks lazily on "
                             "first touch instead of during restart "
                             "(CHKPT_LAZY; needs the vectorized path)")
        sp.add_argument("--dispatch", choices=["fast", "reference"],
                        default=None,
                        help="interpreter dispatch tier (CHKPT_DISPATCH; "
                             "default fast; reference = the canonical "
                             "fetch/decode/execute oracle loop)")
        sp.add_argument("--format", choices=_writable_formats(),
                        help="checkpoint format version to write "
                             "(CHKPT_FORMAT; default v3)")
        sp.add_argument("--retain", type=int, default=None, metavar="N",
                        help="keep N previous checkpoint generations as "
                             "path.1..path.N (CHKPT_RETAIN)")
        sp.add_argument("--incremental", action="store_true",
                        help="write format-v4 delta checkpoints of the "
                             "dirty regions since the previous generation "
                             "(CHKPT_INCREMENTAL)")
        sp.add_argument("--full-every", type=int, default=None, metavar="N",
                        help="force a full checkpoint every N generations "
                             "(CHKPT_FULL_EVERY; 0 = never)")
        sp.add_argument("--dirty-threshold", type=float, default=None,
                        metavar="R",
                        help="write a full checkpoint when more than this "
                             "fraction of the heap is dirty "
                             "(CHKPT_DIRTY_THRESHOLD)")
        sp.add_argument("--region-words", type=int, default=None,
                        metavar="W",
                        help="dirty-tracking region granularity in words "
                             "(CHKPT_REGION_WORDS)")
        sp.add_argument("--max-instructions", type=int, default=None)

    r = sub.add_parser("run", help="run a program on a simulated platform")
    r.add_argument("source")
    common(r)
    r.set_defaults(fn=cmd_run)

    t = sub.add_parser(
        "trace", help="profile a program: opcode histogram + hot pairs")
    t.add_argument("source")
    t.add_argument("--platform", default="rodrigo",
                   choices=sorted(PLATFORMS))
    t.add_argument("--top", type=int, default=15,
                   help="how many histogram rows / hot pairs to print")
    t.add_argument("--ring", type=int, default=10_000,
                   help="instruction ring-buffer size")
    t.add_argument("--max-instructions", type=int, default=None)
    t.add_argument("--json", action="store_true",
                   help="emit the profile as machine-readable JSON")
    t.set_defaults(fn=cmd_trace)

    rs = sub.add_parser("restart", help="restart a checkpoint")
    rs.add_argument("source")
    rs.add_argument("checkpoint_file")
    rs.add_argument("--no-fallback", action="store_true",
                    help="fail instead of walking the generation chain "
                         "when the newest checkpoint is damaged")
    common(rs)
    rs.set_defaults(fn=cmd_restart)

    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
