"""Portable value marshaling (the analogue of OCaml's ``Marshal``).

Turns a VM value graph — immediates, structured blocks, strings, boxed
doubles, with sharing and cycles — into an architecture-independent byte
string, and rebuilds it inside any VM, on any simulated platform.  The
cluster substrate uses this to pass messages between heterogeneous
nodes, and it is exactly the degenerate "eager conversion" alternative
to the paper's lazy checkpoint format: everything is converted to a
canonical form at *send* time.

Closures are not marshalable (their first field is a code pointer),
matching OCaml's default ``Marshal`` behaviour.
"""

from __future__ import annotations

import struct

from repro.errors import ReproError
from repro.memory.blocks import (
    CLOSURE_TAG,
    DOUBLE_TAG,
    NO_SCAN_TAG,
    STRING_TAG,
)
from repro.memory.manager import MemoryManager

_MAGIC = b"RMAR\x01"

_TAG_INT = 0x01
_TAG_BLOCK = 0x02
_TAG_STRING = 0x03
_TAG_DOUBLE = 0x04
_TAG_SHARED = 0x05
_TAG_ATOM = 0x06


class MarshalError(ReproError):
    """The value graph cannot be marshaled (e.g. it contains a closure)."""


def extern_value(mem: MemoryManager, root: int) -> bytes:
    """Marshal the value graph rooted at ``root`` into portable bytes."""
    out = bytearray(_MAGIC)
    # Preorder numbering of emitted blocks for sharing/cycles.
    seen: dict[int, int] = {}

    def emit(v: int) -> None:
        if mem.values.is_int(v):
            out.append(_TAG_INT)
            out.extend(struct.pack("<q", mem.values.int_val(v)))
            return
        # A pointer.  Atoms are zero-sized static blocks.
        if mem.atoms.contains(v):
            out.append(_TAG_ATOM)
            out.append(mem.atoms.tag_of(v))
            return
        if not mem.is_heap_block(v):
            raise MarshalError(
                f"value {v:#x} points outside the heap (a code or stack "
                f"address cannot be marshaled)"
            )
        if v in seen:
            out.append(_TAG_SHARED)
            out.extend(struct.pack("<I", seen[v]))
            return
        tag = mem.tag_of(v)
        size = mem.size_of(v)
        if tag == STRING_TAG:
            seen[v] = len(seen)
            data = mem.read_string(v)
            out.append(_TAG_STRING)
            out.extend(struct.pack("<I", len(data)))
            out.extend(data)
            return
        if tag == DOUBLE_TAG:
            seen[v] = len(seen)
            out.append(_TAG_DOUBLE)
            out.extend(struct.pack("<d", mem.read_float(v)))
            return
        if tag == CLOSURE_TAG:
            raise MarshalError("functional values cannot be marshaled")
        if tag >= NO_SCAN_TAG:
            raise MarshalError(f"abstract block (tag {tag}) cannot be marshaled")
        seen[v] = len(seen)
        out.append(_TAG_BLOCK)
        out.append(tag)
        out.extend(struct.pack("<I", size))
        for i in range(size):
            emit(mem.field(v, i))

    emit(root)
    return bytes(out)


def intern_value(mem: MemoryManager, data: bytes) -> int:
    """Rebuild a marshaled value graph inside ``mem``; returns the root.

    All blocks are allocated directly in the major heap, which never
    moves objects — so plain Python variables may hold block pointers
    across the allocations without extra rooting.
    """
    if data[: len(_MAGIC)] != _MAGIC:
        raise MarshalError("not a marshaled value (bad magic)")
    pos = len(_MAGIC)
    #: Blocks in preorder, for shared-reference resolution.
    blocks: list[int] = []

    def take(n: int) -> bytes:
        nonlocal pos
        if pos + n > len(data):
            raise MarshalError("truncated marshaled value")
        chunk = data[pos : pos + n]
        pos += n
        return chunk

    def read() -> int:
        code = take(1)[0]
        if code == _TAG_INT:
            (n,) = struct.unpack("<q", take(8))
            return mem.values.val_int(n)
        if code == _TAG_ATOM:
            return mem.atoms.atom(take(1)[0])
        if code == _TAG_SHARED:
            (idx,) = struct.unpack("<I", take(4))
            try:
                return blocks[idx]
            except IndexError:
                raise MarshalError("dangling shared reference") from None
        if code == _TAG_STRING:
            (n,) = struct.unpack("<I", take(4))
            payload = mem.strings.encode(take(n))
            block = mem.alloc_shr(len(payload), STRING_TAG)
            for i, w in enumerate(payload):
                mem.init_field(block, i, w)
            blocks.append(block)
            return block
        if code == _TAG_DOUBLE:
            (x,) = struct.unpack("<d", take(8))
            payload = mem.floats.encode(x)
            block = mem.alloc_shr(len(payload), DOUBLE_TAG)
            for i, w in enumerate(payload):
                mem.init_field(block, i, w)
            blocks.append(block)
            return block
        if code == _TAG_BLOCK:
            tag = take(1)[0]
            (size,) = struct.unpack("<I", take(4))
            if size == 0:
                return mem.atoms.atom(tag)
            block = mem.alloc_shr(size, tag)
            # Pre-register before reading fields so cycles resolve.
            blocks.append(block)
            for i in range(size):
                mem.init_field(block, i, mem.values.val_unit)
            for i in range(size):
                mem.init_field(block, i, read())
            return block
        raise MarshalError(f"unknown marshal tag {code:#x}")

    root = read()
    if pos != len(data):
        raise MarshalError("trailing bytes after marshaled value")
    return root
