"""The fleet shard daemon: one selectors event loop, many connections.

The threaded daemon spends a thread per connection; at fleet scale —
hundreds of supervisors holding persistent sockets — that is hundreds
of mostly-idle threads.  :class:`FleetNode` multiplexes every
connection on one ``selectors`` loop instead: non-blocking sockets,
per-connection in/out byte buffers, frames popped incrementally by
:func:`~repro.store.fleet.wire.pop_frame`.  The store work itself is
byte-shuffling and hashing, so one loop thread keeps up with many
clients and the accept path never queues behind a slow handler.

Opcode semantics are exactly the shared
:class:`~repro.store.server.StoreOpHandlers`; this module adds only the
RSTP/2 connection-layer ops:

- ``HELLO``    — version negotiation (one round trip);
- ``BATCH``    — run each sub-operation through the shared dispatch,
  answer one OK frame whose payload carries per-sub-op results;
- ``GET_MANY`` — stream one ``CHUNK`` frame per present key, then one
  ``END`` frame naming the missing ones.

Responses are framed with the *request's* wire revision, so a v1
client talking to a fleet node sees pure v1 traffic.
"""

from __future__ import annotations

import selectors
import socket
import threading
from typing import Optional

from repro.errors import StoreError, StoreProtocolError
from repro.store import protocol as P
from repro.store.chunkstore import ChunkStore
from repro.store.fleet import wire as W
from repro.store.server import StoreOpHandlers

#: recv() size per readable event.
_RECV_SIZE = 256 * 1024


class FleetOps(StoreOpHandlers):
    """Shared store handlers plus fleet-side accounting."""

    def __init__(self, store: ChunkStore, node_id: Optional[str] = None) -> None:
        super().__init__(store, node_id=node_id)
        self.batches_handled = 0
        self.batched_ops_handled = 0
        self.chunks_streamed = 0
        self.hellos = 0

    def stats(self) -> dict:
        out = super().stats()
        out["batches_handled"] = self.batches_handled
        out["batched_ops_handled"] = self.batched_ops_handled
        out["chunks_streamed"] = self.chunks_streamed
        out["hellos"] = self.hellos
        return out


class _Conn:
    """One multiplexed client connection."""

    __slots__ = ("sock", "inbuf", "outbuf")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()


class FleetNode:
    """One shard daemon: a chunk store behind a selectors event loop."""

    def __init__(
        self,
        store: ChunkStore,
        host: str = "127.0.0.1",
        port: int = 0,
        node_id: Optional[str] = None,
    ) -> None:
        self.ops = FleetOps(store, node_id=node_id)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        # A socketpair wakes the select() so stop() does not have to
        # wait out the poll timeout.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, "accept")
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._conns: dict[socket.socket, _Conn] = {}
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.connections_accepted = 0

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    @property
    def node_id(self) -> Optional[str]:
        return self.ops.node_id

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Run the event loop in a background thread; returns the address."""
        self._thread = threading.Thread(
            target=self._loop, name="fleet-node", daemon=True
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` (the CLI daemon loop)."""
        self._loop()

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        else:
            self._teardown()

    def _teardown(self) -> None:
        for sock in list(self._conns):
            self._drop(sock)
        for sock in (self._listener, self._wake_r, self._wake_w):
            try:
                self._sel.unregister(sock)
            except (KeyError, ValueError):
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._sel.close()

    # -- event loop --------------------------------------------------------

    def _loop(self) -> None:
        try:
            while not self._stopping.is_set():
                for key, mask in self._sel.select(timeout=0.5):
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        try:
                            self._wake_r.recv(4096)
                        except OSError:
                            pass
                    else:
                        conn: _Conn = key.data
                        if mask & selectors.EVENT_READ:
                            self._readable(conn)
                        if (
                            conn.sock in self._conns
                            and mask & selectors.EVENT_WRITE
                        ):
                            self._writable(conn)
        finally:
            self._teardown()

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            conn = _Conn(sock)
            self._conns[sock] = conn
            self._sel.register(sock, selectors.EVENT_READ, conn)
            self.connections_accepted += 1

    def _drop(self, sock: socket.socket) -> None:
        self._conns.pop(sock, None)
        try:
            self._sel.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _interest(self, conn: _Conn) -> None:
        events = selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        try:
            self._sel.modify(conn.sock, events, conn)
        except (KeyError, ValueError):
            pass

    def _readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._drop(conn.sock)
            return
        if not data:
            self._drop(conn.sock)
            return
        conn.inbuf += data
        while True:
            try:
                frame = W.pop_frame(conn.inbuf)
            except StoreProtocolError:
                # Garbage framing: drop the connection, like the
                # blocking daemon does.
                self._drop(conn.sock)
                return
            if frame is None:
                break
            wire_rev, op, payload = frame
            self._handle(conn, wire_rev, op, payload)
        self._interest(conn)

    def _writable(self, conn: _Conn) -> None:
        try:
            sent = conn.sock.send(conn.outbuf)
        except BlockingIOError:
            return
        except OSError:
            self._drop(conn.sock)
            return
        del conn.outbuf[:sent]
        self._interest(conn)

    # -- request handling --------------------------------------------------

    def _send(self, conn: _Conn, wire_rev: int, op: int, payload: bytes) -> None:
        conn.outbuf += P.encode_frame(op, payload, wire_rev)

    def _handle(
        self, conn: _Conn, wire_rev: int, op: int, payload: bytes
    ) -> None:
        try:
            if op == P.OP_HELLO:
                self._op_hello(conn, wire_rev, payload)
            elif op == P.OP_GET_MANY:
                self._op_get_many(conn, wire_rev, payload)
            elif op == P.OP_BATCH:
                self._op_batch(conn, wire_rev, payload)
            else:
                rop, rpayload = self.ops.dispatch(op, payload)
                self._send(conn, wire_rev, rop, rpayload)
        except Exception as e:  # never let a handler kill the loop
            self._send(conn, wire_rev, P.OP_ERR, W.error_payload(e))

    def _op_hello(self, conn: _Conn, wire_rev: int, payload: bytes) -> None:
        req = P.decode_json(payload) if payload else {}
        try:
            client_max = int(req.get("max_version", P.VERSION))
        except (TypeError, ValueError) as e:
            raise StoreProtocolError(f"malformed HELLO: {e}") from e
        agreed = min(client_max, P.RSTP2)
        if agreed not in P.SUPPORTED_VERSIONS:
            agreed = P.VERSION
        self.ops.hellos += 1
        self.ops.requests_served += 1
        self._send(
            conn,
            wire_rev,
            P.OP_OK,
            P.encode_json(
                {
                    "version": agreed,
                    "node_id": self.ops.node_id,
                    "epoch": self.ops.store.epoch,
                }
            ),
        )

    def _op_batch(self, conn: _Conn, wire_rev: int, payload: bytes) -> None:
        items = W.decode_ops(payload)
        results: list[tuple[int, bytes]] = []
        for sub_op, sub_payload in items:
            if sub_op in (P.OP_BATCH, P.OP_GET_MANY, P.OP_HELLO):
                # No nesting, no streams inside a single-frame answer.
                results.append(
                    (
                        P.OP_ERR,
                        W.error_payload(
                            StoreProtocolError(
                                f"opcode {P.OP_NAMES.get(sub_op, sub_op)} "
                                f"not allowed inside BATCH"
                            )
                        ),
                    )
                )
                continue
            try:
                results.append(self.ops.dispatch(sub_op, sub_payload))
            except StoreError as e:
                results.append((P.OP_ERR, W.error_payload(e)))
            except Exception as e:
                results.append((P.OP_ERR, W.error_payload(e)))
        self.ops.batches_handled += 1
        self.ops.batched_ops_handled += len(items)
        self._send(conn, wire_rev, P.OP_OK, W.encode_ops(results))

    def _op_get_many(self, conn: _Conn, wire_rev: int, payload: bytes) -> None:
        if len(payload) % 32:
            raise StoreProtocolError("GET_MANY payload is not whole digests")
        keys = [payload[i : i + 32] for i in range(0, len(payload), 32)]
        if len(keys) > W.MAX_GET_MANY:
            raise StoreProtocolError(
                f"GET_MANY of {len(keys)} exceeds MAX_GET_MANY "
                f"({W.MAX_GET_MANY})"
            )
        self.ops.requests_served += 1
        missing: list[str] = []
        sentc = 0
        for key_raw in keys:
            key = key_raw.hex()
            try:
                data = self.ops.store.get_object(key)
            except StoreError:
                missing.append(key)
                continue
            self._send(
                conn, wire_rev, P.OP_CHUNK, P.encode_chunk(key_raw, data)
            )
            sentc += 1
        self.ops.chunks_streamed += sentc
        self._send(
            conn,
            wire_rev,
            P.OP_END,
            P.encode_json({"count": sentc, "missing": missing}),
        )
