"""Fleet clients: one negotiated node connection, and the sharded router.

:class:`FleetNodeClient` extends the v1 :class:`StoreClient` with the
RSTP/2 surface — ``HELLO`` negotiation on connect, ``BATCH`` round
trips, streamed ``GET_MANY`` downloads, and the fleet housekeeping ops.
Negotiation is transparent: against a revision-1 daemon every RSTP/2
method silently degrades to sequential v1 operations, so one client
works across a mixed-revision fleet.

:class:`FleetClient` is what supervisors actually hold: it routes every
chunk to its ring owner, keeps a per-shard
:class:`~repro.store.fleet.cache.PresenceCache`, and exposes the same
checkpoint surface as ``StoreClient`` (``put_checkpoint_file``,
``get_checkpoint_file``, ``ls``, ``get_manifest``, ...) so
``HASupervisor`` plugs in unchanged.

Upload correctness under caching
--------------------------------

A positive cache entry lets an upload skip both the presence query and
the put for an unchanged chunk — that is the whole point — but it can
go stale if a gc sweeps the chunk between cache fill and commit.  The
defense is an epoch bracket: the client reads every shard's destruction
epoch before uploading (dropping caches if it moved) and re-reads it
after the commit.  If any epoch moved *during* the upload, every
referenced chunk is re-verified against its owner shard and the missing
ones are re-uploaded from the source stream (the "two-pass" path,
counted in ``FLEET.stale_cache_retries``).  Chunk puts are
content-addressed and manifest commits idempotent, so the recovery pass
is safe to repeat.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import (
    StoreConnectionError,
    StoreError,
    StoreNotFoundError,
    StoreProtocolError,
)
from repro.metrics import FLEET
from repro.store import protocol as P
from repro.store.chunkstore import (
    DEFAULT_CHUNK_SIZE,
    Manifest,
    PutStats,
    chunk_key,
)
from repro.store.client import _ERROR_CLASSES, StoreClient
from repro.store.fleet import wire as W
from repro.store.fleet.cache import PresenceCache
from repro.store.fleet.ring import DEFAULT_VNODES, HashRing

#: Per-node pending chunks before one presence-query + batched-put
#: round trip (bounds buffered upload memory per shard).
_FLEET_WINDOW = 128

#: Chunk positions fetched per download window (split per owner node,
#: each node request capped by wire.MAX_GET_MANY).
_DOWNLOAD_WINDOW = 256


def _raise_sub_error(rop: int, rpayload: bytes) -> bytes:
    """Unwrap one batch sub-result, raising the daemon's typed error."""
    if rop == P.OP_ERR:
        err = P.decode_json(rpayload)
        raise _ERROR_CLASSES.get(err.get("error"), StoreError)(
            err.get("message", "unknown store error")
        )
    if rop != P.OP_OK:
        raise StoreProtocolError(f"unexpected sub-response opcode 0x{rop:02x}")
    return rpayload


def _batched(seq: list, size: int) -> Iterator[list]:
    for i in range(0, len(seq), size):
        yield seq[i : i + size]


class FleetNodeClient(StoreClient):
    """A ``StoreClient`` that negotiates and speaks RSTP/2 when it can."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Protocol revision agreed with the daemon (set on connect).
        self.negotiated: Optional[int] = None
        self.remote_node_id: Optional[str] = None

    # -- negotiation -------------------------------------------------------

    def _connect(self):
        sock = super()._connect()
        # HELLO travels in revision-1 framing so a v1 daemon can parse
        # the header; it answers ERR (unknown opcode) and we stay on v1.
        P.send_frame(sock, P.OP_HELLO, P.encode_json({"max_version": P.RSTP2}))
        frame = P.recv_frame(sock)
        op, payload = frame
        if op == P.OP_OK:
            info = P.decode_json(payload)
            agreed = int(info.get("version", P.VERSION))
            if agreed not in P.SUPPORTED_VERSIONS:
                agreed = P.VERSION
            self.negotiated = agreed
            self.remote_node_id = info.get("node_id")
        elif op == P.OP_ERR:
            self.negotiated = P.VERSION
        else:
            raise StoreProtocolError(
                f"unexpected HELLO response opcode 0x{op:02x}"
            )
        self.wire_rev = (
            P.RSTP2 if self.negotiated == P.RSTP2 else P.VERSION
        )
        return sock

    def _ensure_session(self) -> None:
        if self._sock is None:
            # One cheap round trip forces connect + negotiation through
            # the normal retry machinery.
            self.ping()

    @property
    def speaks_rstp2(self) -> bool:
        self._ensure_session()
        return self.negotiated == P.RSTP2

    # -- RSTP/2 surface ----------------------------------------------------

    def batch_call(
        self, items: list[tuple[int, bytes]]
    ) -> list[tuple[int, bytes]]:
        """Run many sub-operations; one round trip per MAX_BATCH_OPS.

        Returns one ``(opcode, payload)`` per item, in order — callers
        unwrap with :func:`_raise_sub_error`.  Against a revision-1
        daemon this degrades to one round trip per item.
        """
        if not items:
            return []
        if self.speaks_rstp2:
            results: list[tuple[int, bytes]] = []
            groups = list(_batched(items, W.MAX_BATCH_OPS))
            for gi, group in enumerate(groups):
                try:
                    resp = self._call(P.OP_BATCH, W.encode_ops(group))
                except StoreConnectionError:
                    raise
                except StoreError:
                    if self.negotiated == P.RSTP2:
                        raise
                    # The peer died mid-BATCH and the reconnect landed on
                    # a revision-1 daemon (a rolled-back or replaced
                    # node): the retried BATCH opcode drew its typed
                    # "unknown opcode" error.  Degrade this group and
                    # every remaining one to sequential v1 calls — the
                    # sub-ops are idempotent, so replaying the whole
                    # group is safe even if the dead peer half-applied it.
                    for g in groups[gi:]:
                        results.extend(self._sequential_batch(g))
                    return results
                sub = W.decode_ops(resp)
                if len(sub) != len(group):
                    raise StoreProtocolError("BATCH answer count mismatch")
                FLEET.batches_sent += 1
                FLEET.batched_ops += len(group)
                results.extend(sub)
            return results
        return self._sequential_batch(items)

    def _sequential_batch(
        self, items: list[tuple[int, bytes]]
    ) -> list[tuple[int, bytes]]:
        """The v1 degradation: one round trip per sub-operation."""
        results: list[tuple[int, bytes]] = []
        for op, payload in items:
            try:
                results.append((P.OP_OK, self._call(op, payload)))
            except StoreConnectionError:
                raise
            except StoreError as e:
                results.append((P.OP_ERR, W.error_payload(e)))
        return results

    def put_chunks(self, chunks: list[bytes]) -> int:
        """Batched content-addressed puts; returns how many were new."""
        ops = [
            (P.OP_PUT_CHUNK, P.encode_chunk(bytes.fromhex(chunk_key(c)), c))
            for c in chunks
        ]
        new = 0
        for rop, rpayload in self.batch_call(ops):
            if _raise_sub_error(rop, rpayload) == b"\x01":
                new += 1
        return new

    def get_many(self, keys: list[str]) -> tuple[dict[str, bytes], list[str]]:
        """Fetch many chunks; returns ``(found, missing)``.

        RSTP/2: one streamed request per MAX_GET_MANY keys.  Revision 1:
        sequential GET_CHUNKs.  Every chunk is verified against its
        content address either way.
        """
        todo = list(dict.fromkeys(keys))
        out: dict[str, bytes] = {}
        missing: list[str] = []
        if not todo:
            return out, missing
        if not self.speaks_rstp2:
            for key in todo:
                try:
                    out[key] = self.get_chunk(key)
                except StoreNotFoundError:
                    missing.append(key)
            return out, missing
        for group in _batched(todo, W.MAX_GET_MANY):
            got, miss = self._get_many_stream(group)
            out.update(got)
            missing.extend(miss)
        return out, missing

    def _get_many_stream(
        self, keys: list[str]
    ) -> tuple[dict[str, bytes], list[str]]:
        """One GET_MANY exchange: CHUNK frames then END, with retry."""
        payload = b"".join(bytes.fromhex(k) for k in keys)
        wanted = set(keys)
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._note_retry()
                import time

                time.sleep(self._backoff_delay(attempt))
            try:
                if self._sock is None:
                    self._sock = self._connect()
                P.send_frame(self._sock, P.OP_GET_MANY, payload, self.wire_rev)
                got: dict[str, bytes] = {}
                while True:
                    op, rpayload = P.recv_frame(self._sock)
                    if op == P.OP_CHUNK:
                        key_raw, data = P.decode_chunk(rpayload)
                        key = key_raw.hex()
                        if key not in wanted or chunk_key(data) != key:
                            raise StoreProtocolError(
                                f"streamed chunk {key[:16]}... fails "
                                f"verification"
                            )
                        got[key] = data
                        FLEET.streamed_chunks += 1
                    elif op == P.OP_END:
                        info = P.decode_json(rpayload)
                        return got, [
                            k for k in info.get("missing", []) if k in wanted
                        ]
                    elif op == P.OP_ERR:
                        err = P.decode_json(rpayload)
                        raise _ERROR_CLASSES.get(
                            err.get("error"), StoreError
                        )(err.get("message", "unknown store error"))
                    else:
                        raise StoreProtocolError(
                            f"unexpected stream opcode 0x{op:02x}"
                        )
            except (OSError, StoreProtocolError) as e:
                self.close()
                last = e
                continue
        raise StoreConnectionError(
            f"store at {self.host}:{self.port} unreachable after "
            f"{self.retries + 1} attempt(s): {last}"
        )

    # -- fleet housekeeping ops --------------------------------------------

    def epoch(self) -> int:
        return int(P.decode_json(self._call(P.OP_EPOCH))["epoch"])

    def del_manifest(self, vm_id: str, generation: int) -> bool:
        resp = P.decode_json(
            self._call(
                P.OP_DEL_MANIFEST,
                P.encode_json({"vm_id": vm_id, "generation": generation}),
            )
        )
        return bool(resp["deleted"])

    def sweep(self, keep: Iterable[str]) -> dict:
        payload = b"".join(bytes.fromhex(k) for k in sorted(set(keep)))
        return P.decode_json(self._call(P.OP_SWEEP, payload))


class FleetClient:
    """Routes checkpoint traffic across a consistent-hash store fleet."""

    def __init__(
        self,
        addrs: list[tuple[str, int]] | list[str],
        connect_timeout: float = 5.0,
        io_timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache: bool = True,
        vnodes: int = DEFAULT_VNODES,
        drain: Iterable[str] | None = None,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if not addrs:
            raise StoreError("a fleet client needs at least one node address")
        self.nodes: dict[str, FleetNodeClient] = {}
        for addr in addrs:
            if isinstance(addr, str):
                host, _, port = addr.rpartition(":")
                addr = (host, int(port))
            host, port = addr
            self.nodes[f"{host}:{port}"] = FleetNodeClient(
                host,
                port,
                connect_timeout=connect_timeout,
                io_timeout=io_timeout,
                retries=retries,
                backoff=backoff,
                backoff_max=backoff_max,
                chunk_size=chunk_size,
                jitter_seed=jitter_seed,
            )
        #: Nodes being decommissioned: still consulted as sources (and
        #: drained by ``rebalance``) but own nothing on the ring.
        self.draining = {
            d if isinstance(d, str) else f"{d[0]}:{d[1]}"
            for d in (drain or [])
        }
        ring_nodes = [n for n in self.nodes if n not in self.draining]
        if not ring_nodes:
            raise StoreError("every fleet node is draining; none can own keys")
        self.ring = HashRing(ring_nodes, vnodes=vnodes)
        self.chunk_size = chunk_size
        self.caches: Optional[dict[str, PresenceCache]] = (
            {node: PresenceCache() for node in self.nodes} if cache else None
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for client in self.nodes.values():
            client.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def retries_used(self) -> int:
        return sum(c.retries_used for c in self.nodes.values())

    def ping(self) -> bool:
        return all(c.ping() for c in self.nodes.values())

    # -- placement ---------------------------------------------------------

    def chunk_node(self, key: str) -> str:
        return self.ring.chunk_node(key)

    def manifest_node(self, vm_id: str) -> str:
        return self.ring.manifest_node(vm_id)

    def _group_by_owner(self, keys: Iterable[str]) -> dict[str, list[str]]:
        grouped: dict[str, list[str]] = {}
        for key in keys:
            grouped.setdefault(self.ring.chunk_node(key), []).append(key)
        return grouped

    # -- presence-cache epochs ---------------------------------------------

    def _sync_epochs(self) -> dict[str, int]:
        """Read every shard's destruction epoch, dropping stale caches."""
        epochs: dict[str, int] = {}
        for node, client in self.nodes.items():
            epoch = client.epoch()
            epochs[node] = epoch
            if self.caches is not None:
                self.caches[node].sync_epoch(epoch)
        return epochs

    def _drop_caches(self) -> None:
        if self.caches is None:
            return
        for cache in self.caches.values():
            cache.clear()
            cache.epoch = None

    # -- upload ------------------------------------------------------------

    def put_checkpoint(
        self, vm_id: str, payload: bytes, meta: Optional[dict] = None
    ) -> tuple[int, PutStats]:
        def make_iter() -> Iterator[bytes]:
            cs = self.chunk_size
            for i in range(0, len(payload), cs):
                yield payload[i : i + cs]

        return self._put_stream(vm_id, make_iter, meta)

    def put_checkpoint_file(
        self, vm_id: str, path: str, meta: Optional[dict] = None
    ) -> tuple[int, PutStats]:
        def make_iter() -> Iterator[bytes]:
            with open(path, "rb") as f:
                while True:
                    chunk = f.read(self.chunk_size)
                    if not chunk:
                        return
                    yield chunk

        return self._put_stream(vm_id, make_iter, meta)

    def _put_stream(
        self,
        vm_id: str,
        make_iter: Callable[[], Iterator[bytes]],
        meta: Optional[dict],
    ) -> tuple[int, PutStats]:
        """Sharded dedup upload with the epoch-bracket staleness guard.

        ``make_iter`` must produce a *fresh* chunk iterator per call —
        the rare stale-cache recovery pass re-reads the source.
        """
        epochs_before = self._sync_epochs() if self.caches is not None else {}
        stats = PutStats()
        payload_sha = hashlib.sha256()
        keys: list[str] = []
        payload_len = 0
        seen: set[str] = set()
        # node -> [(key, chunk, cached_answer)] with cached in (False, None)
        pending: dict[str, list[tuple[str, bytes, Optional[bool]]]] = {}
        for chunk in make_iter():
            key = chunk_key(chunk)
            payload_sha.update(chunk)
            keys.append(key)
            payload_len += len(chunk)
            stats.chunks_total += 1
            stats.bytes_total += len(chunk)
            if key in seen:
                continue
            seen.add(key)
            node = self.ring.chunk_node(key)
            cached = (
                self.caches[node].lookup(key)
                if self.caches is not None
                else None
            )
            if cached is True:
                continue  # the cache says the owner already has it
            pending.setdefault(node, []).append((key, chunk, cached))
            if len(pending[node]) >= _FLEET_WINDOW:
                self._flush_window(node, pending.pop(node), stats)
        if not keys:  # an empty payload is one empty chunk
            key = chunk_key(b"")
            keys = [key]
            stats.chunks_total = 1
            node = self.ring.chunk_node(key)
            cached = (
                self.caches[node].lookup(key)
                if self.caches is not None
                else None
            )
            if cached is not True:
                pending.setdefault(node, []).append((key, b"", cached))
        for node, items in sorted(pending.items()):
            self._flush_window(node, items, stats)
        generation = self._commit(
            vm_id, keys, payload_len, payload_sha.hexdigest(), meta
        )
        if self.caches is not None:
            self._verify_after_commit(epochs_before, keys, make_iter)
        return generation, stats

    def _flush_window(
        self,
        node: str,
        items: list[tuple[str, bytes, Optional[bool]]],
        stats: PutStats,
    ) -> None:
        """One presence round trip + one batched-put round trip."""
        client = self.nodes[node]
        unknown = [key for key, _chunk, cached in items if cached is None]
        # A cached negative answer means: skip the query, go straight to
        # the put (content-addressed puts are idempotent anyway).
        present: dict[str, bool] = {
            key: False for key, _chunk, cached in items if cached is False
        }
        if unknown:
            present.update(zip(unknown, client.has_many(unknown)))
        to_put = [
            (key, chunk)
            for key, chunk, _cached in items
            if not present.get(key, False)
        ]
        if to_put:
            client.put_chunks([chunk for _key, chunk in to_put])
            for _key, chunk in to_put:
                stats.chunks_new += 1
                stats.bytes_new += len(chunk)
        if self.caches is not None:
            self.caches[node].note_present([key for key, _c, _a in items])

    def _commit(
        self,
        vm_id: str,
        keys: list[str],
        payload_len: int,
        payload_sha256: str,
        meta: Optional[dict],
        generation: Optional[int] = None,
    ) -> int:
        owner = self.ring.manifest_node(vm_id)
        return self.nodes[owner].put_manifest(
            vm_id,
            keys,
            payload_len=payload_len,
            payload_sha256=payload_sha256,
            meta=meta,
            chunk_size=self.chunk_size,
            generation=generation,
            check_chunks=False,
        )

    def _verify_after_commit(
        self,
        epochs_before: dict[str, int],
        keys: list[str],
        make_iter: Callable[[], Iterator[bytes]],
    ) -> None:
        """Close the epoch bracket; re-upload if a gc raced the upload.

        Any destructive op between the opening epoch read and now has
        moved some shard's epoch, which means a positive cache entry we
        trusted may have named a chunk that no longer exists.  Re-check
        every referenced key against its owner and re-send the missing
        ones from the source stream.
        """
        moved = [
            node
            for node, client in self.nodes.items()
            if client.epoch() != epochs_before.get(node)
        ]
        if not moved:
            return
        FLEET.stale_cache_retries += 1
        self._drop_caches()
        missing: set[str] = set()
        for node, group in self._group_by_owner(set(keys)).items():
            group = sorted(group)
            for key, have in zip(group, self.nodes[node].has_many(group)):
                if not have:
                    missing.add(key)
        if missing:
            resent: set[str] = set()
            for chunk in make_iter():
                key = chunk_key(chunk)
                if key in missing and key not in resent:
                    self.nodes[self.ring.chunk_node(key)].put_chunk(chunk)
                    resent.add(key)
            if resent != missing:
                raise StoreNotFoundError(
                    f"{len(missing - resent)} chunk(s) vanished during "
                    f"upload and are absent from the source stream"
                )
        self._sync_epochs()

    # -- download ----------------------------------------------------------

    def get_manifest(
        self, vm_id: str, generation: Optional[int] = None
    ) -> Manifest:
        if generation is None:
            # Pre-rebalance, a vm's generations may be split across
            # shards; "latest" must be the fleet-wide maximum.
            best: Optional[Manifest] = None
            for _node, client in sorted(self.nodes.items()):
                try:
                    m = client.get_manifest(vm_id)
                except StoreNotFoundError:
                    continue
                if best is None or m.generation > best.generation:
                    best = m
            if best is None:
                raise StoreNotFoundError(
                    f"no checkpoints stored for vm {vm_id!r}"
                )
            return best
        owner = self.ring.manifest_node(vm_id)
        order = [owner] + [n for n in sorted(self.nodes) if n != owner]
        last: Optional[StoreNotFoundError] = None
        for node in order:
            try:
                return self.nodes[node].get_manifest(vm_id, generation)
            except StoreNotFoundError as e:
                last = e
        raise last  # type: ignore[misc]

    def _hunt_chunk(self, key: str, exclude: str) -> bytes:
        """Last-resort read of a chunk that is not on its owner shard."""
        for node in sorted(self.nodes):
            if node == exclude:
                continue
            try:
                data = self.nodes[node].get_chunk(key)
            except StoreNotFoundError:
                continue
            FLEET.misplaced_fetches += 1
            return data
        raise StoreNotFoundError(f"chunk {key[:16]}... is on no fleet node")

    def _fetch_keys(self, keys: Iterable[str]) -> dict[str, bytes]:
        out: dict[str, bytes] = {}
        for node, group in self._group_by_owner(set(keys)).items():
            got, missing = self.nodes[node].get_many(sorted(group))
            out.update(got)
            for key in missing:
                out[key] = self._hunt_chunk(key, exclude=node)
        return out

    def get_checkpoint(
        self, vm_id: str, generation: Optional[int] = None
    ) -> tuple[bytes, Manifest]:
        manifest = self.get_manifest(vm_id, generation)
        parts: list[bytes] = []
        for window in _batched(list(manifest.chunks), _DOWNLOAD_WINDOW):
            data = self._fetch_keys(window)
            parts.extend(data[key] for key in window)
        payload = b"".join(parts)
        self._verify_payload(vm_id, manifest, len(payload),
                             hashlib.sha256(payload).hexdigest())
        return payload, manifest

    def get_checkpoint_file(
        self, vm_id: str, path: str, generation: Optional[int] = None
    ) -> Manifest:
        manifest = self.get_manifest(vm_id, generation)
        payload_sha = hashlib.sha256()
        written = 0
        with open(path, "wb") as f:
            for window in _batched(list(manifest.chunks), _DOWNLOAD_WINDOW):
                data = self._fetch_keys(window)
                for key in window:
                    chunk = data[key]
                    payload_sha.update(chunk)
                    written += len(chunk)
                    f.write(chunk)
        self._verify_payload(vm_id, manifest, written, payload_sha.hexdigest())
        return manifest

    @staticmethod
    def _verify_payload(
        vm_id: str, manifest: Manifest, length: int, sha256: str
    ) -> None:
        from repro.errors import StoreIntegrityError

        if length != manifest.payload_len or sha256 != manifest.payload_sha256:
            raise StoreIntegrityError(
                f"vm {vm_id!r} gen {manifest.generation}: downloaded payload "
                f"fails verification"
            )

    # -- listings and stats ------------------------------------------------

    def ls(self) -> dict:
        """Merged listing across every shard (generations deduped)."""
        vms: dict[str, dict[int, dict]] = {}
        objects = 0
        for _node, client in sorted(self.nodes.items()):
            listing = client.ls()
            objects += int(listing.get("objects", 0))
            for vm_id, gens in listing.get("vms", {}).items():
                merged = vms.setdefault(vm_id, {})
                for g in gens:
                    merged.setdefault(int(g["generation"]), g)
        return {
            "vms": {
                vm_id: [by_gen[g] for g in sorted(by_gen)]
                for vm_id, by_gen in sorted(vms.items())
            },
            "objects": objects,
        }

    def stat(self) -> dict:
        return self.fleet_stat()

    def fleet_stat(self) -> dict:
        """Per-shard stats, ring ownership, and this process's caches."""
        shards = {}
        for node, client in sorted(self.nodes.items()):
            s = client.stat()
            s["draining"] = node in self.draining
            shards[node] = s
        ownership = self.ring.ownership()
        return {
            "shards": shards,
            "ring": {
                "vnodes": self.ring.vnodes,
                "nodes": list(self.ring.nodes),
                "ownership": ownership,
                "ranges": self.ring.ranges(),
            },
            "caches": (
                {n: c.stats() for n, c in sorted(self.caches.items())}
                if self.caches is not None
                else None
            ),
            "fleet_counters": FLEET.as_dict(),
        }

    # -- housekeeping ------------------------------------------------------

    def _all_manifests(self) -> list[tuple[str, Manifest]]:
        """(holding node, manifest) for every manifest on every shard."""
        out: list[tuple[str, Manifest]] = []
        for node, client in sorted(self.nodes.items()):
            for vm_id, gens in client.ls().get("vms", {}).items():
                for g in gens:
                    out.append(
                        (node, client.get_manifest(vm_id, int(g["generation"])))
                    )
        return out

    def _ensure_placement(self, live: set[str]) -> int:
        """Copy every live chunk onto its owner shard; returns moves."""
        moves = 0
        for node, group in sorted(self._group_by_owner(live).items()):
            client = self.nodes[node]
            group = sorted(group)
            have = client.has_many(group)
            for key, present in zip(group, have):
                if present:
                    continue
                client.put_chunk(self._hunt_chunk(key, exclude=node))
                moves += 1
                FLEET.rebalance_moves += 1
        return moves

    def gc(self) -> dict:
        """Fleet-wide mark and sweep.

        A shard's local gc would be wrong here: its manifests say
        nothing about which of its chunks *other* shards' manifests
        reference.  Mark globally instead, self-heal placement (every
        live chunk onto its owner), then hand each shard the exact keep
        set for the keys it owns — a draining or non-owner shard keeps
        nothing.  Every sweep bumps shard epochs, so all presence
        caches drop on their next sync.
        """
        live: set[str] = set()
        for _node, manifest in self._all_manifests():
            live.update(manifest.chunks)
        moved = self._ensure_placement(live)
        owned: dict[str, set[str]] = {node: set() for node in self.nodes}
        for key in live:
            owned[self.ring.chunk_node(key)].add(key)
        removed = 0
        bytes_freed = 0
        for node, client in sorted(self.nodes.items()):
            report = client.sweep(owned[node])
            removed += int(report["removed"])
            bytes_freed += int(report["bytes_freed"])
        self._drop_caches()
        return {
            "removed": removed,
            "kept": len(live),
            "bytes_freed": bytes_freed,
            "chunks_moved": moved,
        }

    def rebalance(self) -> dict:
        """Re-home manifests and chunks after node join/leave.

        Consistent hashing bounds the movement to roughly the joining
        (or leaving) node's share of the keyspace.  Manifest moves are
        commit-then-delete — the copy lands on the owner before the old
        holder's copy goes away, so a reader never sees a gap — and the
        closing :meth:`gc` both copies chunks to their owners and
        sweeps the stale copies.
        """
        manifests_moved = 0
        for node, manifest in self._all_manifests():
            owner = self.ring.manifest_node(manifest.vm_id)
            if owner == node:
                continue
            self.nodes[owner].put_manifest(
                manifest.vm_id,
                list(manifest.chunks),
                payload_len=manifest.payload_len,
                payload_sha256=manifest.payload_sha256,
                meta=manifest.meta,
                chunk_size=manifest.chunk_size,
                generation=manifest.generation,
                check_chunks=False,
            )
            self.nodes[node].del_manifest(manifest.vm_id, manifest.generation)
            manifests_moved += 1
            FLEET.manifest_moves += 1
        swept = self.gc()
        return {
            "manifests_moved": manifests_moved,
            "chunks_moved": swept["chunks_moved"],
            "removed": swept["removed"],
            "kept": swept["kept"],
            "bytes_freed": swept["bytes_freed"],
        }

    def audit(self, deep: bool = False) -> dict:
        """Cross-shard integrity + placement audit.

        Each shard verifies its own objects and manifests
        (``check_refs=False`` — references legitimately cross shards);
        the fleet layer then checks the two placement invariants (every
        manifest on its vm's owner, every referenced chunk on its
        owner).  ``deep`` additionally reassembles and digest-verifies
        the latest generation of every vm through the fleet read path.
        """
        problems: list[str] = []
        shards = {}
        for node, client in sorted(self.nodes.items()):
            report = client.audit(check_refs=False)
            shards[node] = report
            problems.extend(f"{node}: {p}" for p in report["problems"])
        manifests = 0
        vms: set[str] = set()
        for node, manifest in self._all_manifests():
            manifests += 1
            vms.add(manifest.vm_id)
            owner = self.ring.manifest_node(manifest.vm_id)
            if owner != node:
                problems.append(
                    f"vm {manifest.vm_id!r} gen {manifest.generation}: "
                    f"manifest on {node}, belongs on {owner}"
                )
            for cnode, group in sorted(
                self._group_by_owner(set(manifest.chunks)).items()
            ):
                group = sorted(group)
                for key, present in zip(
                    group, self.nodes[cnode].has_many(group)
                ):
                    if not present:
                        problems.append(
                            f"vm {manifest.vm_id!r} gen "
                            f"{manifest.generation}: chunk {key[:16]}... "
                            f"missing on owner {cnode}"
                        )
        if deep:
            for vm_id in sorted(vms):
                try:
                    self.get_checkpoint(vm_id)
                except StoreError as e:
                    problems.append(f"vm {vm_id!r}: {e}")
        return {
            "shards": shards,
            "manifests": manifests,
            "problems": problems,
            "ok": not problems,
        }
