"""The sharded checkpoint-store fleet.

Scales the single-node store out to N shards:

- :mod:`~repro.store.fleet.wire` — the RSTP/2 payload codecs (frame
  batching, streamed chunk responses, version negotiation) layered on
  the revision-1 frame format;
- :class:`~repro.store.fleet.aserver.FleetNode` — one shard daemon: a
  selectors event loop multiplexing every connection instead of a
  thread per connection, reusing the shared op handlers;
- :class:`~repro.store.fleet.ring.HashRing` — deterministic
  consistent-hash placement of chunk keys and manifests across shards,
  with bounded movement on join/leave;
- :class:`~repro.store.fleet.cache.PresenceCache` — client-side
  positive+negative chunk-presence answers, invalidated by shard
  destruction epochs;
- :class:`~repro.store.fleet.client.FleetClient` — the router
  supervisors hold: per-key routing, batched dedup uploads, streamed
  downloads, fleet-wide gc/rebalance/audit.
"""

from repro.store.fleet.aserver import FleetNode, FleetOps
from repro.store.fleet.cache import PresenceCache
from repro.store.fleet.client import FleetClient, FleetNodeClient
from repro.store.fleet.ring import HashRing

__all__ = [
    "FleetNode",
    "FleetOps",
    "PresenceCache",
    "FleetClient",
    "FleetNodeClient",
    "HashRing",
]
