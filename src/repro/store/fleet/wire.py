"""RSTP/2 payload codecs and incremental frame decoding.

The frame *layout* is unchanged from revision 1 (see
:mod:`repro.store.protocol`); RSTP/2 is about what rides inside:

``BATCH``
    Many sub-operations in one frame, one round trip.  The payload is a
    u32 count followed by ``count`` sub-frames of ``u8 opcode / u32
    length / payload``.  The response is an ``OK`` frame whose payload
    uses the same encoding — one ``OK``/``ERR`` sub-frame per
    sub-operation, in order.  Sub-operation failures therefore do not
    fail the batch: callers check each slot.

``GET_MANY``
    A digest list up; a *stream* down — one ``CHUNK`` frame per present
    chunk, terminated by an ``END`` frame whose JSON carries the keys
    that were missing.  The server never buffers more than one chunk.

``HELLO``
    ``{"max_version": N}`` up; ``OK {"version": v, "node_id": ...,
    "epoch": e}`` down, where ``v`` is the highest revision both sides
    speak.  A revision-1 daemon answers ``ERR`` (unknown opcode), which
    a client treats as "speak revision 1".

The selectors server cannot block in ``recv``; :func:`pop_frame` is the
incremental decoder over its per-connection byte buffer.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import StoreProtocolError
from repro.store import protocol as P

#: Most sub-operations one BATCH frame may carry; bounds server-side
#: work per round trip the same way MAX_FRAME bounds memory.
MAX_BATCH_OPS = 256

#: Most digests one GET_MANY request may carry (the response streams,
#: so this bounds only the request frame and the server's key list).
MAX_GET_MANY = 512

_SUB_HEADER = struct.Struct("<BI")
_COUNT = struct.Struct("<I")


def encode_ops(items: list[tuple[int, bytes]]) -> bytes:
    """Pack (opcode, payload) pairs into one BATCH payload."""
    if len(items) > MAX_BATCH_OPS:
        raise StoreProtocolError(
            f"batch of {len(items)} exceeds MAX_BATCH_OPS ({MAX_BATCH_OPS})"
        )
    out = bytearray(_COUNT.pack(len(items)))
    for op, payload in items:
        out += _SUB_HEADER.pack(op, len(payload))
        out += payload
    if len(out) > P.MAX_FRAME:
        raise StoreProtocolError("batch payload exceeds MAX_FRAME")
    return bytes(out)


def decode_ops(payload: bytes) -> list[tuple[int, bytes]]:
    """Inverse of :func:`encode_ops`; validates counts and lengths."""
    if len(payload) < _COUNT.size:
        raise StoreProtocolError("batch payload shorter than its count")
    (count,) = _COUNT.unpack_from(payload)
    if count > MAX_BATCH_OPS:
        raise StoreProtocolError(
            f"batch of {count} exceeds MAX_BATCH_OPS ({MAX_BATCH_OPS})"
        )
    off = _COUNT.size
    items: list[tuple[int, bytes]] = []
    for _ in range(count):
        try:
            op, length = _SUB_HEADER.unpack_from(payload, off)
        except struct.error as e:
            raise StoreProtocolError(f"truncated batch sub-frame: {e}") from e
        off += _SUB_HEADER.size
        sub = payload[off : off + length]
        if len(sub) != length:
            raise StoreProtocolError("truncated batch sub-frame payload")
        off += length
        items.append((op, sub))
    if off != len(payload):
        raise StoreProtocolError(
            f"{len(payload) - off} trailing bytes after batch sub-frames"
        )
    return items


def pop_frame(buf: bytearray) -> Optional[tuple[int, int, bytes]]:
    """Pop one complete frame off a connection buffer, if present.

    Returns ``(wire_rev, opcode, payload)`` and consumes the bytes, or
    ``None`` when the buffer does not yet hold a whole frame.  Raises
    :class:`~repro.errors.StoreProtocolError` on garbage — the caller
    drops the connection, exactly like the blocking reader.
    """
    if len(buf) < P.HEADER.size:
        return None
    magic, wire_rev, op, length = P.HEADER.unpack_from(buf)
    if magic != P.MAGIC:
        raise StoreProtocolError(f"bad frame magic {bytes(magic)!r}")
    if wire_rev not in P.SUPPORTED_VERSIONS:
        raise StoreProtocolError(f"unsupported protocol version {wire_rev}")
    if length > P.MAX_FRAME:
        raise StoreProtocolError(f"frame length {length} exceeds MAX_FRAME")
    end = P.HEADER.size + length
    if len(buf) < end:
        return None
    payload = bytes(buf[P.HEADER.size : end])
    del buf[:end]
    return wire_rev, op, payload


def error_payload(exc: Exception) -> bytes:
    """The ERR-frame JSON for one exception, matching the v1 daemon."""
    from repro.errors import StoreError

    if isinstance(exc, StoreError):
        return P.encode_json(
            {"error": type(exc).__name__, "message": str(exc)}
        )
    return P.encode_json({"error": "StoreError", "message": f"internal: {exc}"})
