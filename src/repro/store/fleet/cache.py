"""Client-side chunk-presence cache, one per fleet node.

Content addressing makes presence *monotone*: once a shard has chunk
``k`` it has it forever — until something destructive (gc, prune,
sweep, manifest deletion) runs.  So a client may remember both answers:

- **positive** (``k`` is on the shard): a repeat delta upload skips the
  ``HAS_MANY`` round trip *and* the put for every unchanged chunk;
- **negative** (``k`` is absent): a fresh upload window skips the
  presence query and goes straight to the batched puts.

The escape hatch for the non-monotone part is the shard's *destruction
epoch* (:attr:`~repro.store.chunkstore.ChunkStore.epoch`): every
destructive op bumps it, and :meth:`PresenceCache.sync_epoch` drops the
whole cache when the number moves.  A stale positive entry that slips
through the window between epoch check and commit is caught by the
commit itself — the fleet client re-verifies and re-uploads, counting
``FLEET.stale_cache_retries``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.metrics import FLEET

#: Entries (positive + negative combined) before the cache resets
#: itself.  64-byte hex keys * 256k entries is ~16 MiB of strings —
#: bounded, and a reset only costs round trips, never correctness.
DEFAULT_MAX_ENTRIES = 256 * 1024


class PresenceCache:
    """Positive + negative presence answers for one shard."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self._present: set[str] = set()
        self._absent: set[str] = set()
        #: Last shard epoch observed; ``None`` until the first sync.
        self.epoch: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._present) + len(self._absent)

    def sync_epoch(self, epoch: int) -> bool:
        """Observe the shard's destruction epoch; drop on movement.

        Returns whether the cache was invalidated.
        """
        if self.epoch is None:
            self.epoch = epoch
            return False
        if epoch != self.epoch:
            self.clear()
            self.epoch = epoch
            self.invalidations += 1
            FLEET.cache_invalidations += 1
            return True
        return False

    def lookup(self, key: str) -> Optional[bool]:
        """``True``/``False`` from cache, ``None`` on a miss."""
        if key in self._present:
            self.hits += 1
            FLEET.cache_hits += 1
            return True
        if key in self._absent:
            self.hits += 1
            FLEET.cache_hits += 1
            return False
        self.misses += 1
        FLEET.cache_misses += 1
        return None

    def _bound(self) -> None:
        if len(self) > self.max_entries:
            self._present.clear()
            self._absent.clear()

    def note_present(self, keys: Iterable[str]) -> None:
        keys = set(keys)
        self._absent -= keys
        self._present |= keys
        self._bound()

    def note_absent(self, keys: Iterable[str]) -> None:
        keys = set(keys)
        self._present -= keys
        self._absent |= keys
        self._bound()

    def clear(self) -> None:
        self._present.clear()
        self._absent.clear()

    def stats(self) -> dict:
        looked = self.hits + self.misses
        return {
            "present_entries": len(self._present),
            "absent_entries": len(self._absent),
            "epoch": self.epoch,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / looked if looked else 0.0,
            "invalidations": self.invalidations,
        }
