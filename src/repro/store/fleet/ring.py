"""Consistent-hash placement of chunk keys and manifests across shards.

The classic ring: each node contributes ``vnodes`` points at
``sha256(f"{node}#{i}")``; an item lands on the first point clockwise
from its own hash.  Adding or removing one node therefore moves only
the arcs adjacent to that node's points — about ``1/n`` of the keyspace
— instead of reshuffling everything the way ``hash(key) % n`` would.

Placement rules (the whole fleet layout, in two lines):

- chunk ``k``    → ``node_for("c:" + k)``
- manifests for vm ``v`` (every generation) → ``node_for("m:" + v)``

Manifests are placed by vm id, not content, so one shard owns a vm's
entire generation chain and a latest-generation lookup is one node.
The ring is deterministic from the sorted node list alone — every
client with the same member set computes identical placement with no
coordination service.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.errors import StoreError

#: Points per node.  More points smooth ownership (stddev ~ 1/sqrt(v))
#: at the cost of a longer sorted array; 64 keeps the worst node within
#: ~2x of fair share, plenty for checkpoint traffic.
DEFAULT_VNODES = 64

_SPACE = 1 << 64


def _hash64(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over named nodes."""

    def __init__(self, nodes: list[str], vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise StoreError("a hash ring needs at least one node")
        if vnodes < 1:
            raise StoreError("vnodes must be positive")
        self.vnodes = vnodes
        self._nodes = tuple(sorted(set(nodes)))
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            for i in range(vnodes):
                points.append((_hash64(f"{node}#{i}".encode()), node))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    def node_for(self, item: str) -> str:
        """The node owning ``item`` (first ring point clockwise)."""
        h = _hash64(item.encode())
        idx = bisect_right(self._hashes, h) % len(self._points)
        return self._points[idx][1]

    def chunk_node(self, key: str) -> str:
        return self.node_for("c:" + key)

    def manifest_node(self, vm_id: str) -> str:
        return self.node_for("m:" + vm_id)

    def with_node(self, node: str) -> "HashRing":
        return HashRing(list(self._nodes) + [node], self.vnodes)

    def without_node(self, node: str) -> "HashRing":
        return HashRing(
            [n for n in self._nodes if n != node], self.vnodes
        )

    def ownership(self) -> dict[str, float]:
        """Fraction of the hash space each node owns (sums to 1.0)."""
        owned: dict[str, float] = {n: 0.0 for n in self._nodes}
        prev = 0
        for h, node in self._points:
            owned[node] += (h - prev) / _SPACE
            prev = h
        # The wrap-around arc belongs to the first point's node.
        owned[self._points[0][1]] += (_SPACE - prev) / _SPACE
        return owned

    def ranges(self) -> list[dict]:
        """Every owned arc as ``{start, end, node}`` (hex, end exclusive).

        The wrap-around arc is reported as the final entry with ``end``
        below ``start``.
        """
        out = []
        for i, (h, _node) in enumerate(self._points):
            nxt_h, nxt_node = self._points[(i + 1) % len(self._points)]
            out.append(
                {
                    "start": f"{h:016x}",
                    "end": f"{nxt_h:016x}",
                    "node": nxt_node,
                }
            )
        return out
