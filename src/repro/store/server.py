"""The checkpoint store daemon.

A threaded TCP server exposing one :class:`~repro.store.chunkstore.ChunkStore`
over the frame protocol in :mod:`repro.store.protocol`, in the spirit of
"checkpointing as a service": workload VMs push periodic checkpoints
here, restart supervisors pull the latest manifest from here.

The opcode handlers live in :class:`StoreOpHandlers` so the two daemons
— this thread-per-connection server and the selectors-based
:class:`~repro.store.fleet.aserver.FleetNode` — share one
implementation of every operation against the store.

Replication
-----------

The daemon can be given N follower stores (other daemons' addresses).
Replication is manifest-granular and self-healing: when a manifest
commits locally, the primary asks each *live* follower which referenced
chunks it is missing, streams exactly those over, then commits the same
manifest (same generation number) there.  A follower that was down and
comes back is therefore fully caught up by the next checkpoint that
lands — content addressing makes re-sends idempotent and cheap.

Liveness is tracked by heartbeats: a background thread pings every
follower each ``heartbeat_interval`` seconds; ``heartbeat_misses``
consecutive failures mark it dead (skipped by replication), one
successful ping revives it.  Dead followers keep being probed by the
same loop, and the probe that revives one immediately replays every
vm/generation it missed while it was out — a follower that was dead
across quiet vms does not stay stale until those vms happen to commit
again.
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import StoreError, StoreProtocolError
from repro.store import protocol as P
from repro.store.chunkstore import ChunkStore, Manifest, chunk_key


@dataclass
class FollowerState:
    """Liveness bookkeeping for one replication target."""

    host: str
    port: int
    alive: bool = True
    consecutive_failures: int = 0
    #: ``time.monotonic()`` of the last successful ping — monotonic on
    #: purpose: liveness must not move when NTP steps the wall clock
    #: (a backwards step would otherwise "age" a healthy follower, a
    #: forwards step would make a dead one look freshly seen).  0.0
    #: means never.
    last_ok: float = 0.0
    last_error: str = ""
    manifests_replicated: int = 0
    chunks_replicated: int = 0
    #: Pings sent to this follower while it was marked dead.
    reprobes: int = 0
    #: Dead->alive transitions that triggered a full catch-up replay.
    catchups: int = 0

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def seen_ago(self) -> Optional[float]:
        """Seconds since the last successful ping (None if never).

        Computed against the monotonic clock, so a wall-clock step
        (NTP, manual ``date``) cannot make a live follower look stale
        or a dead one look fresh.
        """
        if self.last_ok == 0.0:
            return None
        return max(0.0, time.monotonic() - self.last_ok)

    def describe(self) -> dict:
        return {
            "addr": self.addr,
            "alive": self.alive,
            "consecutive_failures": self.consecutive_failures,
            "last_ok_age_seconds": self.seen_ago(),
            "last_error": self.last_error,
            "manifests_replicated": self.manifests_replicated,
            "chunks_replicated": self.chunks_replicated,
            "reprobes": self.reprobes,
            "catchups": self.catchups,
        }


class StoreOpHandlers:
    """Every RSTP operation against one chunk store, transport-free.

    Both daemons delegate here; a handler returns ``(opcode, payload)``
    for the single response frame.  The fleet housekeeping ops
    (``EPOCH``/``DEL_MANIFEST``/``SWEEP``) are part of the shared table
    — a plain single-node daemon answers them too, which keeps
    presence-cache epochs usable against any server.  The RSTP/2
    connection-layer ops (``HELLO``/``BATCH``/``GET_MANY``) are *not*
    here: they are about framing, and only the fleet daemon speaks
    them.
    """

    def __init__(self, store: ChunkStore, node_id: str | None = None) -> None:
        self.store = store
        self.node_id = node_id
        self._commit_lock = threading.Lock()
        self._started = time.monotonic()
        self.requests_served = 0
        self._dispatch = {
            P.OP_PING: self._op_ping,
            P.OP_HAS_CHUNK: self._op_has_chunk,
            P.OP_HAS_MANY: self._op_has_many,
            P.OP_PUT_CHUNK: self._op_put_chunk,
            P.OP_GET_CHUNK: self._op_get_chunk,
            P.OP_PUT_MANIFEST: self._op_put_manifest,
            P.OP_GET_MANIFEST: self._op_get_manifest,
            P.OP_LS: self._op_ls,
            P.OP_GC: self._op_gc,
            P.OP_STAT: self._op_stat,
            P.OP_AUDIT: self._op_audit,
            P.OP_EPOCH: self._op_epoch,
            P.OP_DEL_MANIFEST: self._op_del_manifest,
            P.OP_SWEEP: self._op_sweep,
        }

    # -- request dispatch --------------------------------------------------

    def dispatch(self, op: int, payload: bytes) -> tuple[int, bytes]:
        handler = self._dispatch.get(op)
        if handler is None:
            raise StoreProtocolError(f"unknown opcode 0x{op:02x}")
        self.requests_served += 1
        return handler(payload)

    def _op_ping(self, _payload: bytes) -> tuple[int, bytes]:
        return P.OP_OK, b"pong"

    @staticmethod
    def _digest(payload: bytes) -> str:
        if len(payload) != 32:
            raise StoreProtocolError("expected a 32-byte chunk digest")
        return payload.hex()

    @staticmethod
    def _digests(payload: bytes, what: str) -> list[str]:
        if len(payload) % 32:
            raise StoreProtocolError(f"{what} payload is not whole digests")
        return [payload[i : i + 32].hex() for i in range(0, len(payload), 32)]

    def _op_has_chunk(self, payload: bytes) -> tuple[int, bytes]:
        key = self._digest(payload)
        return P.OP_OK, bytes([1 if self.store.has_object(key) else 0])

    def _op_has_many(self, payload: bytes) -> tuple[int, bytes]:
        out = bytearray()
        for key in self._digests(payload, "HAS_MANY"):
            out.append(1 if self.store.has_object(key) else 0)
        return P.OP_OK, bytes(out)

    def _op_put_chunk(self, payload: bytes) -> tuple[int, bytes]:
        key_raw, data = P.decode_chunk(payload)
        if chunk_key(data) != key_raw.hex():
            raise StoreProtocolError(
                "chunk content does not match its declared digest"
            )
        _, was_new = self.store.put_object(data)
        return P.OP_OK, bytes([1 if was_new else 0])

    def _op_get_chunk(self, payload: bytes) -> tuple[int, bytes]:
        key = self._digest(payload)
        data = self.store.get_object(key)
        return P.OP_OK, P.encode_chunk(payload, data)

    def _op_put_manifest(self, payload: bytes) -> tuple[int, bytes]:
        req = P.decode_json(payload)
        try:
            vm_id = req["vm_id"]
            chunks = list(req["chunks"])
            payload_len = int(req["payload_len"])
            payload_sha256 = req["payload_sha256"]
        except (KeyError, TypeError, ValueError) as e:
            raise StoreProtocolError(f"malformed PUT_MANIFEST: {e}") from e
        with self._commit_lock:
            manifest = self.store.commit_manifest(
                vm_id,
                chunks,
                payload_len=payload_len,
                payload_sha256=payload_sha256,
                meta=req.get("meta"),
                chunk_size=req.get("chunk_size"),
                generation=req.get("generation"),
                verify_chunks=bool(req.get("check_chunks", True)),
            )
        self._after_commit(manifest)
        return P.OP_OK, P.encode_json({"generation": manifest.generation})

    def _after_commit(self, manifest: Manifest) -> None:
        """Hook: the threaded daemon replicates here; the base does not."""

    def _op_get_manifest(self, payload: bytes) -> tuple[int, bytes]:
        req = P.decode_json(payload)
        manifest = self.store.read_manifest(
            req["vm_id"], req.get("generation")
        )
        return P.OP_OK, manifest.to_json().encode()

    def _op_ls(self, _payload: bytes) -> tuple[int, bytes]:
        return P.OP_OK, P.encode_json(self.store.ls())

    def _op_gc(self, _payload: bytes) -> tuple[int, bytes]:
        return P.OP_OK, P.encode_json(self.store.gc())

    def _op_stat(self, _payload: bytes) -> tuple[int, bytes]:
        return P.OP_OK, P.encode_json(self.stats())

    def _op_audit(self, payload: bytes) -> tuple[int, bytes]:
        req = P.decode_json(payload) if payload else {}
        return P.OP_OK, P.encode_json(
            self.store.audit(
                deep=bool(req.get("deep")),
                check_refs=bool(req.get("check_refs", True)),
            )
        )

    def _op_epoch(self, _payload: bytes) -> tuple[int, bytes]:
        return P.OP_OK, P.encode_json({"epoch": self.store.epoch})

    def _op_del_manifest(self, payload: bytes) -> tuple[int, bytes]:
        req = P.decode_json(payload)
        try:
            vm_id = req["vm_id"]
            generation = int(req["generation"])
        except (KeyError, TypeError, ValueError) as e:
            raise StoreProtocolError(f"malformed DEL_MANIFEST: {e}") from e
        with self._commit_lock:
            deleted = self.store.delete_manifest(vm_id, generation)
        return P.OP_OK, P.encode_json({"deleted": deleted})

    def _op_sweep(self, payload: bytes) -> tuple[int, bytes]:
        keep = set(self._digests(payload, "SWEEP"))
        with self._commit_lock:
            report = self.store.sweep_keep(keep)
        return P.OP_OK, P.encode_json(report)

    def stats(self) -> dict:
        out = {
            "uptime": time.monotonic() - self._started,
            "requests_served": self.requests_served,
            "objects": sum(1 for _ in self.store.iter_objects()),
            "vms": self.store.vm_ids(),
            "epoch": self.store.epoch,
        }
        if self.node_id is not None:
            out["node_id"] = self.node_id
        return out


class _Handler(socketserver.BaseRequestHandler):
    """One client connection: a sequence of request frames."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "StoreServer" = self.server.store_server  # type: ignore[attr-defined]
        sock = self.request
        while not server._stopping.is_set():
            try:
                frame = P.recv_frame(sock, allow_eof=True)
            except (StoreProtocolError, OSError):
                return
            if frame is None:
                return
            op, payload = frame
            try:
                rop, rpayload = server.dispatch(op, payload)
            except StoreError as e:
                rop = P.OP_ERR
                rpayload = P.encode_json(
                    {"error": type(e).__name__, "message": str(e)}
                )
            except Exception as e:  # never let a handler kill the daemon
                rop = P.OP_ERR
                rpayload = P.encode_json(
                    {"error": "StoreError", "message": f"internal: {e}"}
                )
            try:
                P.send_frame(sock, rop, rpayload)
            except OSError:
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class StoreServer(StoreOpHandlers):
    """The daemon: a chunk store behind a TCP frame protocol."""

    def __init__(
        self,
        store: ChunkStore,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: list[tuple[str, int]] | None = None,
        heartbeat_interval: float = 2.0,
        heartbeat_misses: int = 3,
    ) -> None:
        super().__init__(store)
        self.followers = [FollowerState(h, p) for h, p in (replicas or [])]
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.store_server = self  # type: ignore[attr-defined]
        self._stopping = threading.Event()
        self._serve_thread: threading.Thread | None = None
        self._heartbeat_thread: threading.Thread | None = None
        self.replication_failures = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is concrete even if 0 was asked."""
        return self._tcp.server_address[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Serve in background threads; returns the bound address."""
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, name="store-server", daemon=True
        )
        self._serve_thread.start()
        if self.followers:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, name="store-heartbeat", daemon=True
            )
            self._heartbeat_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` (the CLI daemon loop)."""
        if self.followers:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, name="store-heartbeat", daemon=True
            )
            self._heartbeat_thread.start()
        try:
            self._tcp.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self._stopping.set()
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
            self._serve_thread = None

    # -- replication -------------------------------------------------------

    def _after_commit(self, manifest: Manifest) -> None:
        self._replicate(manifest)

    def stats(self) -> dict:
        out = super().stats()
        out["followers"] = [f.describe() for f in self.followers]
        out["replication_failures"] = self.replication_failures
        return out

    def _follower_client(self, follower: FollowerState):
        from repro.store.client import StoreClient

        # Replication retries little: the heartbeat loop owns failure
        # detection; a slow follower must not stall the primary's reply.
        return StoreClient(
            follower.host, follower.port,
            connect_timeout=2.0, io_timeout=10.0, retries=1, backoff=0.05,
        )

    def _replicate(self, manifest: Manifest) -> None:
        for follower in self.followers:
            if not follower.alive:
                continue
            try:
                with self._follower_client(follower) as client:
                    # Ship every generation of this VM the follower lacks,
                    # not just the one that triggered us — this is what
                    # catches a recovered follower fully up.
                    have = {
                        g["generation"]
                        for g in client.ls().get("vms", {}).get(
                            manifest.vm_id, []
                        )
                    }
                    for gen in self.store.generations(manifest.vm_id):
                        if gen in have:
                            continue
                        self._replicate_one(
                            client,
                            follower,
                            self.store.read_manifest(manifest.vm_id, gen),
                        )
            except StoreError as e:
                self.replication_failures += 1
                self._mark_failure(follower, e)

    def _replicate_one(self, client, follower: FollowerState,
                       manifest: Manifest) -> None:
        keys = list(manifest.chunks)
        present = client.has_many(keys)
        for key, have in zip(keys, present):
            if have:
                continue
            client.put_chunk(self.store.get_object(key))
            follower.chunks_replicated += 1
        client.put_manifest(
            manifest.vm_id,
            keys,
            payload_len=manifest.payload_len,
            payload_sha256=manifest.payload_sha256,
            meta=manifest.meta,
            chunk_size=manifest.chunk_size,
            generation=manifest.generation,
        )
        follower.manifests_replicated += 1

    def _catch_up(self, follower: FollowerState) -> None:
        """Replay everything a just-revived follower missed.

        The commit-path replication only covers the vm being committed;
        a follower that died and came back while other vms were quiet
        would stay stale for those vms until they next commit.  Run the
        same ls-diff/ship loop over *every* vm instead, right when the
        heartbeat revives the follower.
        """
        with self._follower_client(follower) as client:
            listing = client.ls().get("vms", {})
            for vm_id in self.store.vm_ids():
                have = {g["generation"] for g in listing.get(vm_id, [])}
                for gen in self.store.generations(vm_id):
                    if gen in have:
                        continue
                    self._replicate_one(
                        client, follower, self.store.read_manifest(vm_id, gen)
                    )

    # -- heartbeats --------------------------------------------------------

    def _mark_failure(self, follower: FollowerState, error: Exception) -> None:
        follower.consecutive_failures += 1
        follower.last_error = str(error)
        if follower.consecutive_failures >= self.heartbeat_misses:
            follower.alive = False

    def heartbeat_once(self) -> None:
        """Ping every follower once, updating liveness.

        A dead follower is re-probed on the same cadence; the ping that
        revives it triggers a full catch-up so it rejoins replication
        with no generations missing.
        """
        for follower in self.followers:
            was_dead = not follower.alive
            if was_dead:
                follower.reprobes += 1
            try:
                with self._follower_client(follower) as client:
                    client.ping()
                if was_dead:
                    follower.catchups += 1
                    try:
                        self._catch_up(follower)
                    except StoreError as e:
                        self.replication_failures += 1
                        self._mark_failure(follower, e)
                        continue
                follower.alive = True
                follower.consecutive_failures = 0
                follower.last_ok = time.monotonic()
                follower.last_error = ""
            except StoreError as e:
                self._mark_failure(follower, e)

    def _heartbeat_loop(self) -> None:  # pragma: no cover - timing loop
        while not self._stopping.wait(self.heartbeat_interval):
            self.heartbeat_once()
