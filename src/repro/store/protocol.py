"""The store wire protocol: length-prefixed binary frames over TCP.

Every message is one frame::

    +------+---------+--------+-----------+---------------+
    | RSTP | version | opcode | length u32| payload bytes |
    +------+---------+--------+-----------+---------------+
      4B       u8       u8      little-endian   <length>

Requests carry an operation opcode; the server answers every request
with exactly one ``OK`` or ``ERR`` frame.  Chunk payloads are raw
(uncompressed) bytes prefixed by their 32-byte SHA-256, so both sides
can verify content addresses on the wire; structured payloads (manifest
operations, listings, stats) are UTF-8 JSON.

Uploads and downloads stream one chunk per frame — neither side ever
holds more than ``MAX_FRAME`` bytes of a checkpoint in a single message.

RSTP/2
------

Revision 2 keeps the frame layout byte-for-byte and adds opcodes on
top: ``HELLO`` (version negotiation), ``BATCH`` (many sub-operations in
one round trip), ``GET_MANY`` (a streamed multi-chunk response:
``CHUNK`` frames followed by one ``END``), plus the fleet housekeeping
ops (``EPOCH``/``DEL_MANIFEST``/``SWEEP``).  Negotiation is one round
trip: a client sends ``HELLO`` in revision-1 framing; a fleet daemon
answers ``OK`` with the agreed revision, a revision-1 daemon answers
``ERR`` (unknown opcode) and the client simply stays on revision 1.
Frame codecs for the new payloads live in
:mod:`repro.store.fleet.wire`.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import StoreProtocolError

MAGIC = b"RSTP"
VERSION = 1
#: Protocol revision 2 ("RSTP/2"): same frame layout, batched and
#: streamed opcodes on top, negotiated per connection via ``OP_HELLO``.
RSTP2 = 2
SUPPORTED_VERSIONS = (VERSION, RSTP2)
HEADER = struct.Struct("<4sBBI")

#: Upper bound on one frame's payload; protects both sides from a
#: corrupt or hostile length prefix.
MAX_FRAME = 64 * 1024 * 1024

# Request opcodes.
OP_PING = 0x01
OP_HAS_CHUNK = 0x02
OP_PUT_CHUNK = 0x03
OP_GET_CHUNK = 0x04
OP_PUT_MANIFEST = 0x05
OP_GET_MANIFEST = 0x06
OP_LS = 0x07
OP_GC = 0x08
OP_STAT = 0x09
OP_AUDIT = 0x0A
OP_HAS_MANY = 0x0B

# RSTP/2 request opcodes (a revision-1 daemon answers ERR "unknown
# opcode" to all of these; clients treat that as a downgrade signal).
OP_HELLO = 0x10
OP_BATCH = 0x11
OP_GET_MANY = 0x12
OP_EPOCH = 0x13
OP_DEL_MANIFEST = 0x14
OP_SWEEP = 0x15

# Response opcodes.
OP_OK = 0x80
OP_ERR = 0x81
# RSTP/2 streamed-response opcodes: a GET_MANY answer is zero or more
# CHUNK frames terminated by exactly one END frame.
OP_CHUNK = 0x82
OP_END = 0x83

OP_NAMES = {
    OP_PING: "PING",
    OP_HAS_CHUNK: "HAS_CHUNK",
    OP_PUT_CHUNK: "PUT_CHUNK",
    OP_GET_CHUNK: "GET_CHUNK",
    OP_PUT_MANIFEST: "PUT_MANIFEST",
    OP_GET_MANIFEST: "GET_MANIFEST",
    OP_LS: "LS",
    OP_GC: "GC",
    OP_STAT: "STAT",
    OP_AUDIT: "AUDIT",
    OP_HAS_MANY: "HAS_MANY",
    OP_HELLO: "HELLO",
    OP_BATCH: "BATCH",
    OP_GET_MANY: "GET_MANY",
    OP_EPOCH: "EPOCH",
    OP_DEL_MANIFEST: "DEL_MANIFEST",
    OP_SWEEP: "SWEEP",
    OP_OK: "OK",
    OP_ERR: "ERR",
    OP_CHUNK: "CHUNK",
    OP_END: "END",
}


def encode_frame(op: int, payload: bytes = b"", wire_rev: int = VERSION) -> bytes:
    """One complete frame, ready for ``sendall``."""
    if len(payload) > MAX_FRAME:
        raise StoreProtocolError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME"
        )
    if wire_rev not in SUPPORTED_VERSIONS:
        raise StoreProtocolError(f"unsupported protocol version {wire_rev}")
    return HEADER.pack(MAGIC, wire_rev, op, len(payload)) + payload


def send_frame(
    sock: socket.socket, op: int, payload: bytes = b"", wire_rev: int = VERSION
) -> None:
    sock.sendall(encode_frame(op, payload, wire_rev))


def _recv_exact(sock: socket.socket, n: int, allow_eof: bool = False) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < n:
        try:
            part = sock.recv(n - len(buf))
        except ConnectionResetError:
            part = b""
        if not part:
            if allow_eof and not buf:
                return None
            raise StoreProtocolError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)"
            )
        buf += part
    return bytes(buf)


def recv_frame(
    sock: socket.socket, allow_eof: bool = False
) -> Optional[tuple[int, bytes]]:
    """Read one frame; ``None`` on clean EOF (when ``allow_eof``)."""
    head = _recv_exact(sock, HEADER.size, allow_eof=allow_eof)
    if head is None:
        return None
    magic, wire_rev, op, length = HEADER.unpack(head)
    if magic != MAGIC:
        raise StoreProtocolError(f"bad frame magic {magic!r}")
    if wire_rev not in SUPPORTED_VERSIONS:
        raise StoreProtocolError(f"unsupported protocol version {wire_rev}")
    if length > MAX_FRAME:
        raise StoreProtocolError(f"frame length {length} exceeds MAX_FRAME")
    payload = _recv_exact(sock, length) if length else b""
    return op, payload


def encode_json(obj) -> bytes:
    return json.dumps(obj, sort_keys=True).encode()


def decode_json(payload: bytes):
    try:
        return json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise StoreProtocolError(f"malformed JSON payload: {e}") from e


def encode_chunk(key_raw: bytes, data: bytes) -> bytes:
    """A chunk frame payload: 32-byte digest then the raw chunk bytes."""
    if len(key_raw) != 32:
        raise StoreProtocolError("chunk key must be a 32-byte SHA-256 digest")
    return key_raw + data


def decode_chunk(payload: bytes) -> tuple[bytes, bytes]:
    if len(payload) < 32:
        raise StoreProtocolError("chunk payload shorter than its digest")
    return payload[:32], payload[32:]
