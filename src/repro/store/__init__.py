"""Checkpoint store & HA failover service.

The paper makes VM checkpoints *portable artifacts* that can restart on
a different machine; this package makes them *managed* artifacts.  It
provides:

- :class:`~repro.store.chunkstore.ChunkStore` — a content-addressed
  repository: checkpoint payloads are split into fixed-size chunks,
  keyed by SHA-256 and zlib-compressed, with a generation manifest per
  VM.  Successive periodic checkpoints dedup unchanged heap/stack
  chunks.
- :class:`~repro.store.server.StoreServer` /
  :class:`~repro.store.client.StoreClient` — a TCP daemon speaking a
  length-prefixed binary protocol, with N-way replication to follower
  stores and heartbeat liveness tracking; the client has configurable
  timeouts and bounded exponential-backoff retries.
- :class:`~repro.store.ha.HASupervisor` — runs a workload VM with
  periodic checkpoints pushed to the store, injects faults, and
  auto-restarts from the latest manifest on a *different* simulated
  platform, repeating until the program completes.
- :mod:`repro.store.fleet` — the sharded fleet: RSTP/2 batched
  protocol, selectors-based shard daemons
  (:class:`~repro.store.fleet.aserver.FleetNode`), consistent-hash
  placement, and the routing
  :class:`~repro.store.fleet.client.FleetClient` with client-side
  chunk-presence caching.
"""

from repro.store.chunkstore import ChunkStore, Manifest, PutStats
from repro.store.client import StoreClient
from repro.store.fleet import FleetClient, FleetNode
from repro.store.ha import HAReport, HASupervisor
from repro.store.server import StoreOpHandlers, StoreServer

__all__ = [
    "ChunkStore",
    "Manifest",
    "PutStats",
    "StoreClient",
    "StoreOpHandlers",
    "StoreServer",
    "FleetClient",
    "FleetNode",
    "HAReport",
    "HASupervisor",
]
