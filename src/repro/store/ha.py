"""High-availability supervision: checkpoint, crash, restart elsewhere.

The supervisor closes the loop the paper leaves open: it runs a workload
VM with periodic checkpoints pushed to a checkpoint store, kills the VM
at random instruction budgets (the same steps machinery the interpreter
uses for preemption), and auto-restarts from the store's latest manifest
on a *different* simulated platform — by default one differing in both
endianness and word size, forcing the heterogeneous conversion path —
repeating until the program completes.

Output continuity uses the cluster coordinator's protocol: stdout is
flushed before each checkpoint and the cumulative output rides in the
manifest meta, so the restarted VM's sink is prefilled and the final
output is bit-identical to an uninterrupted run.

Per-phase metrics (run, checkpoint, upload, restart) accumulate in a
:class:`~repro.metrics.PhaseTimer`; the report adds dedup ratio, work
lost to each fault, and per-restart latencies.
"""

from __future__ import annotations

import base64
import contextlib
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.platforms import PLATFORMS, Platform, get_platform
from repro.bytecode.image import CodeImage
from repro.checkpoint.commit import COMMIT_POINTS, recover_commit
from repro.checkpoint.format import detect_format_version
from repro.checkpoint.reader import restart_vm
from repro.checkpoint.schema import FormatProfile
from repro.errors import ReproError, RestartError, StoreNotFoundError
from repro.faults.injectors import CrashHooks, SimulatedCrashError
from repro.metrics import INTEGRITY, PhaseTimer
from repro.store.chunkstore import Manifest, PutStats
from repro.store.client import StoreClient
from repro.vm import VMConfig, VirtualMachine


def restart_candidates(
    current: Platform, require_hetero: bool = True
) -> list[str]:
    """Platforms a takeover may land on — a different machine, and (by
    default) different endianness *and* word size, so every failover
    exercises the full heterogeneous conversion path.  Shared by the
    supervisor's crash-restart loop and the live-replication driver's
    standby placement."""
    names = []
    for name in sorted(PLATFORMS):
        p = PLATFORMS[name]
        if p.name == current.name:
            continue
        if require_hetero and (
            p.arch.endianness is current.arch.endianness
            or p.arch.word_bytes == current.arch.word_bytes
        ):
            continue
        names.append(name)
    if not names:  # no fully-heterogeneous peer: any other machine
        names = [n for n in sorted(PLATFORMS) if n != current.name]
    return names


def find_generation_by_sha(
    client: StoreClient, vm_id: str, body_sha: str, below: int
) -> Optional[int]:
    """The newest store generation under ``below`` whose meta records the
    given body SHA-256, or None if no upload carries it."""
    if not body_sha:
        return None
    listing = client.ls()["vms"].get(vm_id, [])
    for gen in sorted(
        (g["generation"] for g in listing if g["generation"] < below),
        reverse=True,
    ):
        meta = client.get_manifest(vm_id, gen).meta
        if meta.get("body_sha256") == body_sha:
            return gen
    return None


def fetch_chain(
    client: StoreClient,
    vm_id: str,
    ckpt_path: str,
    generation: Optional[int] = None,
    timer: Optional[PhaseTimer] = None,
) -> Manifest:
    """Download one head generation and, when it is a delta, the parents
    it binds to — laid out at ``path.1``, ``path.2``, ... the way local
    rotation would, so the chain reader finds them.  This is the
    cold-restore download path that warm standby replication exists to
    beat."""
    phase = (
        timer.phase("restart_download")
        if timer is not None
        else contextlib.nullcontext()
    )
    with phase:
        manifest = client.get_checkpoint_file(
            vm_id, ckpt_path, generation=generation
        )
        # Stale numbered generations from a previous restart would be
        # mistaken for chain parents; clear them first.
        i = 1
        while os.path.exists(f"{ckpt_path}.{i}"):
            os.unlink(f"{ckpt_path}.{i}")
            i += 1
        m = manifest
        depth = 0
        while m.meta.get("kind") == "delta":
            parent_gen = find_generation_by_sha(
                client, vm_id, m.meta.get("parent_sha256", ""),
                below=m.generation,
            )
            if parent_gen is None:
                # Unresolvable parent: leave the chain truncated; the
                # restore raises and the generation-walk falls back.
                break
            depth += 1
            m = client.get_checkpoint_file(
                vm_id, f"{ckpt_path}.{depth}", generation=parent_gen
            )
    return manifest


@dataclass
class HAReport:
    """What one supervised run did and what it cost."""

    completed: bool = False
    exit_code: int = 0
    stdout: bytes = b""
    faults_injected: int = 0
    #: Faults that struck *during* a checkpoint write (a strict subset of
    #: ``faults_injected``) — the crash window PR 3 opened up.
    midwrite_faults: int = 0
    #: Restarts that had to skip past one or more unrestorable store
    #: generations before succeeding.
    fallback_restores: int = 0
    checkpoints: int = 0
    restarts: int = 0
    cold_restarts: int = 0
    generations: list[int] = field(default_factory=list)
    platforms_visited: list[str] = field(default_factory=list)
    work_lost_instructions: int = 0
    restart_latencies: list[float] = field(default_factory=list)
    upload_stats: PutStats = field(default_factory=PutStats)
    phases: PhaseTimer = field(default_factory=PhaseTimer)
    #: Movement of the process-wide integrity counters over this run.
    integrity: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-able summary (the CLI's ``repro ha run --json``)."""
        return {
            "completed": self.completed,
            "exit_code": self.exit_code,
            "stdout": self.stdout.decode(errors="replace"),
            "faults_injected": self.faults_injected,
            "midwrite_faults": self.midwrite_faults,
            "fallback_restores": self.fallback_restores,
            "checkpoints": self.checkpoints,
            "restarts": self.restarts,
            "cold_restarts": self.cold_restarts,
            "generations": self.generations,
            "platforms_visited": self.platforms_visited,
            "work_lost_instructions": self.work_lost_instructions,
            "restart_latencies": self.restart_latencies,
            "dedup_ratio": self.upload_stats.dedup_ratio,
            "phases": self.phases.as_dict(),
            "integrity": dict(self.integrity),
        }


class HASupervisor:
    """Run a workload to completion through injected failures."""

    def __init__(
        self,
        code: CodeImage,
        client: StoreClient,
        vm_id: str,
        start_platform: Platform | str = "rodrigo",
        checkpoint_every: int = 20_000,
        fault_budgets: tuple[int, int] = (30_000, 120_000),
        max_faults: int = 3,
        seed: int = 2002,
        config: Optional[VMConfig] = None,
        require_hetero: bool = True,
        max_slices: int = 100_000,
        midwrite_fault_prob: float = 0.0,
    ) -> None:
        if checkpoint_every <= 0:
            raise ReproError("checkpoint_every must be positive")
        if not 0.0 <= midwrite_fault_prob <= 1.0:
            raise ReproError("midwrite_fault_prob must be in [0, 1]")
        self.code = code
        self.client = client
        self.vm_id = vm_id
        self.start_platform = (
            get_platform(start_platform)
            if isinstance(start_platform, str)
            else start_platform
        )
        self.checkpoint_every = checkpoint_every
        self.fault_budgets = fault_budgets
        self.max_faults = max_faults
        self.require_hetero = require_hetero
        self.max_slices = max_slices
        self.midwrite_fault_prob = midwrite_fault_prob
        self._rng = random.Random(seed)
        self._base_config = config

    # -- pieces ------------------------------------------------------------

    def _config(self, path: str) -> VMConfig:
        base = self._base_config
        cfg = VMConfig() if base is None else VMConfig(**vars(base))
        cfg.chkpt_state = "enable"
        cfg.chkpt_filename = path
        cfg.chkpt_mode = "blocking"  # the upload needs the committed file
        cfg.chkpt_interval = None  # the supervisor owns the cadence
        return cfg

    def _restart_candidates(self, current: Platform) -> list[str]:
        return restart_candidates(current, self.require_hetero)

    def _next_fault(self, report: HAReport) -> Optional[int]:
        if report.faults_injected >= self.max_faults:
            return None
        return self._rng.randint(*self.fault_budgets)

    # -- the supervision loop ----------------------------------------------

    def run(self) -> HAReport:
        report = HAReport()
        timer = report.phases
        integrity_before = INTEGRITY.as_dict()
        fd, ckpt_path = tempfile.mkstemp(suffix=".hckp")
        os.close(fd)
        os.unlink(ckpt_path)  # perform_checkpoint recreates it atomically
        try:
            return self._supervise(report, timer, ckpt_path)
        finally:
            report.integrity = INTEGRITY.delta_since(integrity_before)
            leftovers = [ckpt_path, ckpt_path + ".tmp", ckpt_path + ".journal"]
            i = 1
            while os.path.exists(f"{ckpt_path}.{i}"):
                leftovers.append(f"{ckpt_path}.{i}")
                i += 1
            for leftover in leftovers:
                if os.path.exists(leftover):
                    os.unlink(leftover)

    def _supervise(
        self, report: HAReport, timer: PhaseTimer, ckpt_path: str
    ) -> HAReport:
        platform = self.start_platform
        config = self._config(ckpt_path)
        vm = VirtualMachine(platform, self.code, config)
        report.platforms_visited.append(platform.name)

        since_restart = 0  # instructions executed since (re)start
        since_checkpoint = 0  # of those, not yet covered by a checkpoint
        next_fault = self._next_fault(report)

        for _ in range(self.max_slices):
            budget = self.checkpoint_every
            crash_after = False
            if next_fault is not None and since_restart + budget >= next_fault:
                budget = max(1, next_fault - since_restart)
                crash_after = True
            before = vm.interp.instructions
            with timer.phase("run"):
                result = vm.run(max_instructions=budget)
            executed = vm.interp.instructions - before
            since_restart += executed
            since_checkpoint += executed

            if result.status in ("stopped", "exited"):
                report.completed = True
                report.exit_code = result.exit_code
                report.stdout = vm.channels.stdout_bytes()
                return report

            midwrite_point = None
            if (
                not crash_after
                and report.faults_injected < self.max_faults
                and self._rng.random() < self.midwrite_fault_prob
            ):
                midwrite_point = self._rng.choice(COMMIT_POINTS[:-1])

            if not crash_after:
                survived = self._checkpoint_and_upload(
                    report, timer, vm, ckpt_path, platform,
                    crash_point=midwrite_point,
                )
                if survived:
                    since_checkpoint = 0
                    continue
                # The machine died mid-checkpoint-write: the crash window
                # the atomic commit protocol exists for.
                report.midwrite_faults += 1

            # The fault: the machine dies here, taking the VM and any
            # work since the last upload with it.
            report.faults_injected += 1
            report.work_lost_instructions += since_checkpoint
            vm = None
            t0 = time.perf_counter()
            vm, platform, prefill = self._restart(
                report, timer, ckpt_path, platform, config
            )
            report.restart_latencies.append(time.perf_counter() - t0)
            report.platforms_visited.append(platform.name)
            if prefill:
                vm.channels._stdout.write(prefill)
            since_restart = 0
            since_checkpoint = 0
            next_fault = self._next_fault(report)
        raise ReproError("HA supervision exceeded max_slices")

    def _checkpoint_and_upload(
        self,
        report: HAReport,
        timer: PhaseTimer,
        vm: VirtualMachine,
        ckpt_path: str,
        platform: Platform,
        crash_point: Optional[str] = None,
    ) -> bool:
        """Checkpoint + upload; returns False if the machine "died".

        With ``crash_point`` set, a simulated crash strikes the commit
        protocol at that step — the checkpoint file is left in whatever
        torn/half-rotated state a real power cut would leave, nothing is
        uploaded, and the caller treats it as a fault.
        """
        # Flush first (the coordinator's trick): the checkpoint carries an
        # empty output buffer and the manifest the cumulative output, so a
        # restart prefills the fresh sink instead of replaying writes.
        vm.channels.stdout.flush()
        stdout_so_far = vm.channels.stdout_bytes()
        parent_sha = vm.delta_parent_sha  # what a delta would bind to
        try:
            vm.config.commit_hooks = (
                CrashHooks(crash_point) if crash_point else None
            )
            with timer.phase("checkpoint"):
                vm.perform_checkpoint()
        except SimulatedCrashError:
            return False
        finally:
            vm.config.commit_hooks = None
        stats = vm.last_checkpoint_stats
        fmt_version = detect_format_version(ckpt_path)
        profile = (
            FormatProfile.for_version(fmt_version)
            if fmt_version is not None
            else None
        )
        meta = {
            "platform": platform.name,
            "instructions": vm.interp.instructions,
            "stdout_b64": base64.b64encode(stdout_so_far).decode(),
            # Chain identity: a delta restart locates its parents in the
            # store by matching parent_sha256 against older generations'
            # body_sha256 (blocking mode, so the sha is committed here).
            "kind": stats.kind if stats is not None else "full",
            "body_sha256": (
                vm.delta_parent_sha.hex() if vm.delta_parent_sha else ""
            ),
            # Schema identity: what the uploaded file claims to be, so
            # fsck and auditors know the layout without fetching it.
            "format_version": fmt_version,
            "integrity_trailer": (
                profile.integrity_trailer if profile is not None else False
            ),
        }
        if meta["kind"] == "delta":
            meta["chain_depth"] = stats.chain_depth
            meta["parent_sha256"] = parent_sha.hex() if parent_sha else ""
        with timer.phase("upload"):
            generation, stats = self.client.put_checkpoint_file(
                self.vm_id, ckpt_path, meta=meta
            )
        report.checkpoints += 1
        report.generations.append(generation)
        report.upload_stats.merge(stats)
        return True

    def _find_generation_by_sha(
        self, body_sha: str, below: int
    ) -> Optional[int]:
        return find_generation_by_sha(self.client, self.vm_id, body_sha, below)

    def _fetch_chain(
        self,
        timer: PhaseTimer,
        ckpt_path: str,
        generation: Optional[int] = None,
    ) -> Manifest:
        return fetch_chain(
            self.client, self.vm_id, ckpt_path,
            generation=generation, timer=timer,
        )

    def _restart(
        self,
        report: HAReport,
        timer: PhaseTimer,
        ckpt_path: str,
        crashed_platform: Platform,
        config: VMConfig,
    ) -> tuple[VirtualMachine, Platform, bytes]:
        target = get_platform(
            self._rng.choice(self._restart_candidates(crashed_platform))
        )
        # A mid-write crash leaves journal/tmp debris (and possibly a torn
        # head) at the local path; resolve it the way a rebooted machine
        # would before the store download overwrites the file.
        recover_commit(ckpt_path)
        try:
            manifest = self._fetch_chain(timer, ckpt_path)
        except StoreNotFoundError:
            # Crashed before the first checkpoint landed: cold start.
            report.cold_restarts += 1
            vm = VirtualMachine(target, self.code, config)
            return vm, target, b""
        # Walk store generations newest-first until one restores: a
        # damaged latest generation degrades the restart, never kills it.
        older: Optional[list[int]] = None
        while True:
            try:
                with timer.phase("restart_rebuild"):
                    vm, _stats = restart_vm(
                        target, self.code, ckpt_path, config
                    )
                break
            except RestartError:
                if older is None:
                    listing = self.client.ls()["vms"].get(self.vm_id, [])
                    older = sorted(
                        g["generation"]
                        for g in listing
                        if g["generation"] < manifest.generation
                    )
                if not older:
                    raise
                manifest = self._fetch_chain(
                    timer, ckpt_path, generation=older.pop()
                )
        if older is not None:
            report.fallback_restores += 1
            INTEGRITY.fallback_restores += 1
        report.restarts += 1
        prefill = base64.b64decode(manifest.meta.get("stdout_b64", ""))
        return vm, target, prefill
