"""The checkpoint-store client.

One persistent TCP connection to a store daemon, re-established
transparently when it drops.  Every request is retried on transport
failure with *full-jitter* bounded exponential backoff: attempt ``n``
sleeps a uniform random duration in ``[0, min(backoff * 2**(n-1),
backoff_max)]``.  The jitter matters at fleet scale — N supervisors
whose store node dies all fail in the same instant, and a deterministic
schedule would march them back in lockstep, re-spiking the recovering
node at every backoff step.  Application errors reported by the daemon
(``ERR`` frames) are *not* retried — they are re-raised as the matching
:class:`~repro.errors.StoreError` subclass.

Retried uploads are safe end to end: chunk puts are content-addressed
(idempotent by construction) and a manifest commit of an unchanged
payload returns the existing generation instead of minting a new one.

Uploads are pipelined: a producer thread reads and SHA-256-hashes
chunks while the calling thread queries presence and uploads the
missing ones in small windows, so hashing overlaps socket I/O.  Memory
stays bounded by the queue depth plus one window of chunks, and every
chunk is verified against its content address on the way down.
"""

from __future__ import annotations

import hashlib
import queue
import random
import socket
import threading
import time
from typing import BinaryIO, Iterable, Iterator, Optional

from repro.errors import (
    StoreConnectionError,
    StoreError,
    StoreIntegrityError,
    StoreNotFoundError,
    StoreProtocolError,
)
from repro.store import protocol as P
from repro.store.chunkstore import DEFAULT_CHUNK_SIZE, Manifest, PutStats, chunk_key

_ERROR_CLASSES = {
    "StoreError": StoreError,
    "StoreIntegrityError": StoreIntegrityError,
    "StoreProtocolError": StoreProtocolError,
    "StoreNotFoundError": StoreNotFoundError,
    "StoreConnectionError": StoreConnectionError,
}

#: How many digests one HAS_MANY query carries at most.
_HAS_BATCH = 1024

#: How many hashed chunks the upload producer may run ahead of the
#: uploading thread (bounds pipeline memory to depth * chunk_size).
_PIPELINE_DEPTH = 8

#: How many chunks the uploader accumulates before one presence query
#: (amortizes HAS_MANY round trips without unbounded buffering).
_UPLOAD_WINDOW = 32


class StoreClient:
    """A connection to one store daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        io_timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        jitter: bool = True,
        jitter_seed: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.chunk_size = chunk_size
        self.jitter = jitter
        self._rng = random.Random(jitter_seed)
        #: Frame revision stamped on outgoing requests; the fleet client
        #: raises this to RSTP/2 after a successful HELLO negotiation.
        self.wire_rev = P.VERSION
        self._sock: Optional[socket.socket] = None
        #: Transport failures survived via retry (observability + tests).
        self.retries_used = 0

    # -- connection management ---------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.io_timeout)
        return sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "StoreClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- request core ------------------------------------------------------

    def _backoff_delay(self, attempt: int) -> float:
        """Full-jitter backoff: uniform in [0, bounded exponential cap]."""
        cap = min(self.backoff * (2 ** (attempt - 1)), self.backoff_max)
        return self._rng.uniform(0.0, cap) if self.jitter else cap

    def _note_retry(self) -> None:
        from repro.metrics import STORE

        self.retries_used += 1
        STORE.transport_retries += 1

    def _call(self, op: int, payload: bytes = b"") -> bytes:
        """One request/response exchange, with retry on transport failure."""
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._note_retry()
                time.sleep(self._backoff_delay(attempt))
            try:
                if self._sock is None:
                    self._sock = self._connect()
                P.send_frame(self._sock, op, payload, self.wire_rev)
                frame = P.recv_frame(self._sock)
            except (OSError, StoreProtocolError) as e:
                self.close()
                last = e
                continue
            rop, rpayload = frame
            if rop == P.OP_ERR:
                err = P.decode_json(rpayload)
                raise _ERROR_CLASSES.get(err.get("error"), StoreError)(
                    err.get("message", "unknown store error")
                )
            if rop != P.OP_OK:
                self.close()
                raise StoreProtocolError(f"unexpected response opcode 0x{rop:02x}")
            return rpayload
        raise StoreConnectionError(
            f"store at {self.host}:{self.port} unreachable after "
            f"{self.retries + 1} attempt(s): {last}"
        )

    # -- primitive operations ----------------------------------------------

    def ping(self) -> bool:
        return self._call(P.OP_PING) == b"pong"

    def has_chunk(self, key: str) -> bool:
        return self._call(P.OP_HAS_CHUNK, bytes.fromhex(key)) == b"\x01"

    def has_many(self, keys: list[str]) -> list[bool]:
        out: list[bool] = []
        for i in range(0, len(keys), _HAS_BATCH):
            batch = keys[i : i + _HAS_BATCH]
            payload = b"".join(bytes.fromhex(k) for k in batch)
            resp = self._call(P.OP_HAS_MANY, payload)
            if len(resp) != len(batch):
                raise StoreProtocolError("HAS_MANY answer length mismatch")
            out.extend(b == 1 for b in resp)
        return out

    def put_chunk(self, data: bytes) -> str:
        key = chunk_key(data)
        self._call(P.OP_PUT_CHUNK, P.encode_chunk(bytes.fromhex(key), data))
        return key

    def get_chunk(self, key: str) -> bytes:
        resp = self._call(P.OP_GET_CHUNK, bytes.fromhex(key))
        key_raw, data = P.decode_chunk(resp)
        if key_raw.hex() != key or chunk_key(data) != key:
            raise StoreIntegrityError(
                f"chunk {key[:16]}... failed verification after download"
            )
        return data

    def put_manifest(
        self,
        vm_id: str,
        chunks: list[str],
        payload_len: int,
        payload_sha256: str,
        meta: Optional[dict] = None,
        chunk_size: Optional[int] = None,
        generation: Optional[int] = None,
        check_chunks: bool = True,
    ) -> int:
        req = {
            "vm_id": vm_id,
            "chunks": chunks,
            "payload_len": payload_len,
            "payload_sha256": payload_sha256,
            "meta": meta or {},
            "chunk_size": chunk_size or self.chunk_size,
        }
        if generation is not None:
            req["generation"] = generation
        if not check_chunks:
            # Fleet commits: the chunks live on their owner shards, not
            # necessarily on the manifest's shard.
            req["check_chunks"] = False
        resp = P.decode_json(self._call(P.OP_PUT_MANIFEST, P.encode_json(req)))
        return int(resp["generation"])

    def get_manifest(self, vm_id: str, generation: Optional[int] = None) -> Manifest:
        req: dict = {"vm_id": vm_id}
        if generation is not None:
            req["generation"] = generation
        return Manifest.from_json(
            self._call(P.OP_GET_MANIFEST, P.encode_json(req)).decode()
        )

    def ls(self) -> dict:
        return P.decode_json(self._call(P.OP_LS))

    def gc(self) -> dict:
        return P.decode_json(self._call(P.OP_GC))

    def stat(self) -> dict:
        return P.decode_json(self._call(P.OP_STAT))

    def audit(self, deep: bool = False, check_refs: bool = True) -> dict:
        return P.decode_json(
            self._call(
                P.OP_AUDIT,
                P.encode_json({"deep": deep, "check_refs": check_refs}),
            )
        )

    # -- streaming checkpoint transfer --------------------------------------

    def _put_stream(
        self,
        vm_id: str,
        chunk_iter: Iterable[bytes],
        meta: Optional[dict],
    ) -> tuple[int, PutStats]:
        """Single-pass pipelined upload.

        A producer thread reads and hashes chunks into a bounded queue;
        this thread drains it in ``_UPLOAD_WINDOW``-sized windows —
        one HAS_MANY per window, then puts for the absent chunks — so
        read + hash time overlaps socket time.  ``overlap_seconds`` on
        the returned stats is ``producer + consumer - wall``: the work
        the pipeline hid versus running the two stages back to back.
        """
        q: queue.Queue = queue.Queue(maxsize=_PIPELINE_DEPTH)
        abort = threading.Event()  # consumer died; stop producing
        payload_sha = hashlib.sha256()
        producer_seconds = [0.0]

        def _enqueue(item) -> bool:
            """Put with abort polling so a dead consumer can't wedge us."""
            while not abort.is_set():
                try:
                    q.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def _produce() -> None:
            it = iter(chunk_iter)
            try:
                while True:
                    t0 = time.perf_counter()
                    try:
                        chunk = next(it)
                    except StopIteration:
                        producer_seconds[0] += time.perf_counter() - t0
                        break
                    key = chunk_key(chunk)
                    payload_sha.update(chunk)
                    producer_seconds[0] += time.perf_counter() - t0
                    if not _enqueue((key, chunk)):
                        return
            except BaseException as exc:  # surfaced on the consumer side
                _enqueue(exc)
            else:
                _enqueue(None)

        stats = PutStats()
        keys: list[str] = []
        payload_len = 0
        consumer_seconds = 0.0
        window: list[tuple[str, bytes]] = []

        def _flush_window() -> float:
            """Query one window's presence and upload the absent chunks."""
            t0 = time.perf_counter()
            present = self.has_many([k for k, _ in window])
            sent: set[str] = set()
            for (key, chunk), have in zip(window, present):
                if have or key in sent:
                    continue
                self.put_chunk(chunk)
                sent.add(key)
                stats.chunks_new += 1
                stats.bytes_new += len(chunk)
            window.clear()
            return time.perf_counter() - t0

        wall0 = time.perf_counter()
        producer = threading.Thread(
            target=_produce, name="store-put-producer", daemon=True
        )
        producer.start()
        try:
            done = False
            while not done:
                item = q.get()
                if item is None:
                    done = True
                elif isinstance(item, BaseException):
                    raise item
                else:
                    key, chunk = item
                    keys.append(key)
                    payload_len += len(chunk)
                    window.append((key, chunk))
                if window and (done or len(window) >= _UPLOAD_WINDOW):
                    consumer_seconds += _flush_window()
        finally:
            abort.set()
            producer.join()
        wall = time.perf_counter() - wall0
        if not keys:  # an empty payload is one empty chunk
            keys = [chunk_key(b"")]
            if not self.has_chunk(keys[0]):
                self.put_chunk(b"")
                stats.chunks_new += 1
        stats.chunks_total = len(keys)
        stats.bytes_total = payload_len
        stats.overlap_seconds = max(
            0.0, producer_seconds[0] + consumer_seconds - wall
        )
        from repro.metrics import DELTA

        DELTA.upload_overlap_seconds += stats.overlap_seconds
        generation = self.put_manifest(
            vm_id,
            keys,
            payload_len=payload_len,
            payload_sha256=payload_sha.hexdigest(),
            meta=meta,
        )
        return generation, stats

    def _iter_chunks(self, payload: bytes) -> Iterator[bytes]:
        cs = self.chunk_size
        for i in range(0, len(payload), cs):
            yield payload[i : i + cs]

    @staticmethod
    def _iter_file(f: BinaryIO, chunk_size: int) -> Iterator[bytes]:
        while True:
            chunk = f.read(chunk_size)
            if not chunk:
                return
            yield chunk

    def put_checkpoint(
        self, vm_id: str, payload: bytes, meta: Optional[dict] = None
    ) -> tuple[int, PutStats]:
        """Upload one checkpoint payload; returns its generation + stats."""
        return self._put_stream(vm_id, self._iter_chunks(payload), meta)

    def put_checkpoint_file(
        self, vm_id: str, path: str, meta: Optional[dict] = None
    ) -> tuple[int, PutStats]:
        """Stream a checkpoint file up without loading it whole."""
        with open(path, "rb") as f:
            return self._put_stream(
                vm_id, self._iter_file(f, self.chunk_size), meta
            )

    def get_checkpoint(
        self, vm_id: str, generation: Optional[int] = None
    ) -> tuple[bytes, Manifest]:
        """Download and verify one generation (latest by default)."""
        manifest = self.get_manifest(vm_id, generation)
        payload = b"".join(self.get_chunk(k) for k in manifest.chunks)
        if (
            len(payload) != manifest.payload_len
            or hashlib.sha256(payload).hexdigest() != manifest.payload_sha256
        ):
            raise StoreIntegrityError(
                f"vm {vm_id!r} gen {manifest.generation}: downloaded payload "
                f"fails verification"
            )
        return payload, manifest

    def get_checkpoint_file(
        self, vm_id: str, path: str, generation: Optional[int] = None
    ) -> Manifest:
        """Stream one generation down to ``path`` chunk by chunk."""
        manifest = self.get_manifest(vm_id, generation)
        payload_sha = hashlib.sha256()
        written = 0
        with open(path, "wb") as f:
            for key in manifest.chunks:
                chunk = self.get_chunk(key)
                payload_sha.update(chunk)
                written += len(chunk)
                f.write(chunk)
        if (
            written != manifest.payload_len
            or payload_sha.hexdigest() != manifest.payload_sha256
        ):
            raise StoreIntegrityError(
                f"vm {vm_id!r} gen {manifest.generation}: downloaded payload "
                f"fails verification"
            )
        return manifest
