"""Content-addressed checkpoint repository.

A checkpoint payload (the bytes of one ``.hckp`` file) is split into
fixed-size chunks; each chunk is keyed by its SHA-256 digest and stored
zlib-compressed under ``objects/<kk>/<key>.z``.  A *manifest* per VM
generation records the ordered chunk keys plus the whole-payload digest,
so ``put``/``get``/``ls``/``gc`` all operate on manifests and successive
periodic checkpoints dedup every chunk that did not change.

Integrity is re-verified chunk by chunk on every read: a chunk whose
decompressed bytes no longer hash to its key raises
:class:`~repro.errors.StoreIntegrityError` (and so does a reassembled
payload whose digest disagrees with its manifest).

Layout::

    root/
      objects/ab/ab3f...9c.z        zlib(chunk), key = sha256(chunk)
      manifests/<vm_id>/00000001.json
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import StoreError, StoreIntegrityError, StoreNotFoundError

#: Default payload chunk size.  Small enough that a single mutated heap
#: page re-uploads little; large enough that manifests stay short.
DEFAULT_CHUNK_SIZE = 64 * 1024

_VM_ID_RE = re.compile(r"[A-Za-z0-9._-]+(/[A-Za-z0-9._-]+)*\Z")


def _check_vm_id(vm_id: str) -> str:
    if not _VM_ID_RE.match(vm_id) or ".." in vm_id.split("/"):
        raise StoreError(f"invalid vm id {vm_id!r}")
    return vm_id


def chunk_key(data: bytes) -> str:
    """The content address of one chunk."""
    return hashlib.sha256(data).hexdigest()


class DirectoryLock:
    """A coarse mutual-exclusion lock over one store directory.

    Guards the window the GC satellite worries about: ``gc`` computes
    its live set from the manifests, so a ``commit`` that has written a
    manifest whose chunks are still landing (the daemon's streamed
    upload order, or a crash between the two) must never interleave with
    the sweep — the sweep would delete chunks the brand-new generation
    references.

    Implementation: ``O_CREAT | O_EXCL`` on ``<root>/.lock`` (atomic on
    every filesystem the store supports), holder pid + timestamp inside
    for diagnostics.  A lock older than ``stale_after`` seconds is
    presumed abandoned by a crashed holder and broken.  Waiting longer
    than ``timeout`` raises :class:`~repro.errors.StoreError` rather
    than deadlocking the caller.
    """

    def __init__(
        self,
        path: str,
        timeout: float = 10.0,
        stale_after: float = 60.0,
        poll_interval: float = 0.02,
    ) -> None:
        self.path = path
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        self._held = False

    def acquire(self) -> None:
        if self._held:
            raise StoreError(f"lock {self.path} is not reentrant")
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._maybe_break_stale()
                if time.monotonic() >= deadline:
                    raise StoreError(
                        f"timed out after {self.timeout:.1f}s waiting for "
                        f"store lock {self.path}"
                    ) from None
                time.sleep(self.poll_interval)
                continue
            try:
                os.write(fd, f"{os.getpid()} {time.time()}\n".encode())
            finally:
                os.close(fd)
            self._held = True
            return

    def _maybe_break_stale(self) -> None:
        try:
            age = time.time() - os.path.getmtime(self.path)
        except OSError:
            return  # released (or broken) between our check and now
        if age > self.stale_after:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "DirectoryLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


@dataclass(frozen=True)
class Manifest:
    """One generation of one VM's checkpoints."""

    vm_id: str
    generation: int
    chunk_size: int
    payload_len: int
    payload_sha256: str
    chunks: tuple[str, ...]
    meta: dict = field(default_factory=dict)
    created: float = 0.0

    def to_json(self) -> str:
        return json.dumps(
            {
                "vm_id": self.vm_id,
                "generation": self.generation,
                "chunk_size": self.chunk_size,
                "payload_len": self.payload_len,
                "payload_sha256": self.payload_sha256,
                "chunks": list(self.chunks),
                "meta": self.meta,
                "created": self.created,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            d = json.loads(text)
            return cls(
                vm_id=d["vm_id"],
                generation=int(d["generation"]),
                chunk_size=int(d["chunk_size"]),
                payload_len=int(d["payload_len"]),
                payload_sha256=d["payload_sha256"],
                chunks=tuple(d["chunks"]),
                meta=dict(d.get("meta", {})),
                created=float(d.get("created", 0.0)),
            )
        except (ValueError, KeyError, TypeError) as e:
            raise StoreIntegrityError(f"malformed manifest: {e}") from e


@dataclass
class PutStats:
    """Dedup accounting for one (or several accumulated) put(s)."""

    chunks_total: int = 0
    chunks_new: int = 0
    bytes_total: int = 0
    bytes_new: int = 0
    #: Seconds of chunk reading/hashing that ran concurrently with
    #: network I/O during a pipelined upload (0 for local puts).
    overlap_seconds: float = 0.0

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes referenced per byte actually stored (>= 1)."""
        if self.bytes_new == 0:
            return float("inf") if self.bytes_total else 1.0
        return self.bytes_total / self.bytes_new

    def merge(self, other: "PutStats") -> None:
        self.chunks_total += other.chunks_total
        self.chunks_new += other.chunks_new
        self.bytes_total += other.bytes_total
        self.bytes_new += other.bytes_new
        self.overlap_seconds += other.overlap_seconds


class ChunkStore:
    """A content-addressed chunk store rooted at one directory."""

    def __init__(
        self,
        root: str,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lock_timeout: float = 10.0,
        lock_stale_after: float = 60.0,
    ) -> None:
        if chunk_size <= 0:
            raise StoreError("chunk_size must be positive")
        self.root = root
        self.chunk_size = chunk_size
        self.lock_timeout = lock_timeout
        self.lock_stale_after = lock_stale_after
        self._objects = os.path.join(root, "objects")
        self._manifests = os.path.join(root, "manifests")
        self._epoch_path = os.path.join(root, "epoch")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._manifests, exist_ok=True)

    def _lock(self) -> DirectoryLock:
        """A fresh handle on the store-wide mutation lock.

        Fresh per operation (the exclusion lives in the lock *file*),
        so one store object can run sequential locked operations and
        concurrent holders — other processes or threads — block on the
        filesystem, not on shared Python state.
        """
        return DirectoryLock(
            os.path.join(self.root, ".lock"),
            timeout=self.lock_timeout,
            stale_after=self.lock_stale_after,
        )

    # -- store epoch -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """A counter bumped by every destructive operation.

        Chunk puts are monotone — content addressing means a key, once
        present, stays valid — so a client may cache presence answers
        *until* something deletes chunks or manifests.  ``gc``,
        ``prune``, ``sweep_keep`` and ``delete_manifest`` each bump the
        epoch; a client that sees the number move must drop its
        presence cache.
        """
        try:
            with open(self._epoch_path, "r", encoding="utf-8") as f:
                return int(f.read().strip() or "0")
        except (FileNotFoundError, ValueError):
            return 0

    def bump_epoch(self) -> int:
        """Advance the destruction epoch; returns the new value."""
        new = self.epoch + 1
        tmp = self._epoch_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(f"{new}\n")
        os.replace(tmp, self._epoch_path)
        return new

    # -- objects -----------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key + ".z")

    def has_object(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    def put_object(self, data: bytes) -> tuple[str, bool]:
        """Store one chunk; returns ``(key, was_new)``."""
        key = chunk_key(data)
        path = self._object_path(key)
        if os.path.exists(path):
            return key, False
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(zlib.compress(data, 6))
        os.replace(tmp, path)
        return key, True

    def get_object(self, key: str) -> bytes:
        """Load one chunk, re-verifying its content address."""
        path = self._object_path(key)
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except FileNotFoundError:
            raise StoreNotFoundError(f"no such chunk {key}") from None
        try:
            data = zlib.decompress(raw)
        except zlib.error as e:
            raise StoreIntegrityError(f"chunk {key} is corrupt: {e}") from e
        if chunk_key(data) != key:
            raise StoreIntegrityError(
                f"chunk {key} fails verification (stored bytes hash to "
                f"{chunk_key(data)[:16]}...)"
            )
        return data

    def iter_objects(self) -> Iterator[str]:
        for sub in sorted(os.listdir(self._objects)):
            d = os.path.join(self._objects, sub)
            if not os.path.isdir(d):
                continue
            for name in sorted(os.listdir(d)):
                if name.endswith(".z"):
                    yield name[: -len(".z")]

    # -- manifests ---------------------------------------------------------

    def _manifest_dir(self, vm_id: str) -> str:
        return os.path.join(self._manifests, _check_vm_id(vm_id))

    def _manifest_path(self, vm_id: str, generation: int) -> str:
        return os.path.join(self._manifest_dir(vm_id), f"{generation:08d}.json")

    def generations(self, vm_id: str) -> list[int]:
        d = self._manifest_dir(vm_id)
        if not os.path.isdir(d):
            return []
        out = []
        for name in os.listdir(d):
            if name.endswith(".json"):
                try:
                    out.append(int(name[: -len(".json")]))
                except ValueError:
                    continue
        return sorted(out)

    def vm_ids(self) -> list[str]:
        out = []
        for dirpath, _dirnames, filenames in os.walk(self._manifests):
            if any(f.endswith(".json") for f in filenames):
                out.append(
                    os.path.relpath(dirpath, self._manifests).replace(os.sep, "/")
                )
        return sorted(out)

    def read_manifest(self, vm_id: str, generation: Optional[int] = None) -> Manifest:
        gens = self.generations(vm_id)
        if not gens:
            raise StoreNotFoundError(f"no checkpoints stored for vm {vm_id!r}")
        gen = generation if generation is not None else gens[-1]
        path = self._manifest_path(vm_id, gen)
        try:
            with open(path, "r", encoding="utf-8") as f:
                return Manifest.from_json(f.read())
        except FileNotFoundError:
            raise StoreNotFoundError(
                f"vm {vm_id!r} has no generation {gen} (has {gens})"
            ) from None

    def write_manifest(self, manifest: Manifest) -> None:
        path = self._manifest_path(manifest.vm_id, manifest.generation)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(manifest.to_json())
        os.replace(tmp, path)

    # -- checkpoint payloads ----------------------------------------------

    def split(self, payload: bytes) -> list[bytes]:
        cs = self.chunk_size
        return [payload[i : i + cs] for i in range(0, len(payload), cs)] or [b""]

    def put_checkpoint(
        self,
        vm_id: str,
        payload: bytes,
        meta: Optional[dict] = None,
        generation: Optional[int] = None,
    ) -> tuple[Manifest, PutStats]:
        """Store one checkpoint payload as the next generation of ``vm_id``.

        Re-putting a payload identical to the latest generation returns
        that manifest instead of minting a new generation, which makes
        retried uploads idempotent.  An explicit ``generation`` (used by
        replication) writes exactly that slot.
        """
        _check_vm_id(vm_id)
        stats = PutStats()
        chunks = self.split(payload)
        keys = []
        # The whole chunks-then-manifest sequence holds the store lock:
        # a concurrent gc must never observe the manifest before every
        # chunk it references is durable (or vice versa, sweep away
        # just-written chunks the manifest is about to claim).
        with self._lock():
            for chunk in chunks:
                key, was_new = self.put_object(chunk)
                keys.append(key)
                stats.chunks_total += 1
                stats.bytes_total += len(chunk)
                if was_new:
                    stats.chunks_new += 1
                    stats.bytes_new += len(chunk)
            manifest = self._commit_manifest(
                vm_id,
                keys,
                payload_len=len(payload),
                payload_sha256=hashlib.sha256(payload).hexdigest(),
                meta=meta,
                generation=generation,
            )
        return manifest, stats

    def commit_manifest(
        self,
        vm_id: str,
        chunks: list[str],
        payload_len: int,
        payload_sha256: str,
        meta: Optional[dict] = None,
        chunk_size: Optional[int] = None,
        generation: Optional[int] = None,
        verify_chunks: bool = True,
    ) -> Manifest:
        """Record a generation whose chunks are already stored.

        Every referenced chunk must exist (the daemon calls this after a
        streamed upload).  Without an explicit ``generation``: committing
        the same payload as the latest generation returns that manifest
        unchanged — a retried upload never mints a duplicate generation.
        ``verify_chunks=False`` skips the existence check: a fleet
        manifest lands on the vm's owner shard while its chunks live on
        *their* owner shards, so local presence is not the invariant —
        the fleet client verifies placement before committing and the
        fleet ``audit`` re-checks it after.
        """
        with self._lock():
            return self._commit_manifest(
                vm_id,
                chunks,
                payload_len,
                payload_sha256,
                meta=meta,
                chunk_size=chunk_size,
                generation=generation,
                verify_chunks=verify_chunks,
            )

    def _commit_manifest(
        self,
        vm_id: str,
        chunks: list[str],
        payload_len: int,
        payload_sha256: str,
        meta: Optional[dict] = None,
        chunk_size: Optional[int] = None,
        generation: Optional[int] = None,
        verify_chunks: bool = True,
    ) -> Manifest:
        """Lock-free body of :meth:`commit_manifest` (caller holds it)."""
        _check_vm_id(vm_id)
        if verify_chunks:
            for key in chunks:
                if not self.has_object(key):
                    raise StoreNotFoundError(
                        f"manifest for vm {vm_id!r} references missing chunk "
                        f"{key[:16]}..."
                    )
        if generation is None:
            gens = self.generations(vm_id)
            if gens:
                latest = self.read_manifest(vm_id, gens[-1])
                if (
                    latest.payload_sha256 == payload_sha256
                    and latest.chunks == tuple(chunks)
                ):
                    return latest
            generation = (gens[-1] + 1) if gens else 1
        manifest = Manifest(
            vm_id=vm_id,
            generation=generation,
            chunk_size=chunk_size or self.chunk_size,
            payload_len=payload_len,
            payload_sha256=payload_sha256,
            chunks=tuple(chunks),
            meta=dict(meta or {}),
            created=time.time(),
        )
        self.write_manifest(manifest)
        return manifest

    def get_checkpoint(
        self, vm_id: str, generation: Optional[int] = None
    ) -> tuple[bytes, Manifest]:
        """Reassemble one generation, verifying every chunk and the whole."""
        manifest = self.read_manifest(vm_id, generation)
        payload = b"".join(self.get_object(k) for k in manifest.chunks)
        if len(payload) != manifest.payload_len:
            raise StoreIntegrityError(
                f"vm {vm_id!r} gen {manifest.generation}: reassembled "
                f"{len(payload)} bytes, manifest says {manifest.payload_len}"
            )
        if hashlib.sha256(payload).hexdigest() != manifest.payload_sha256:
            raise StoreIntegrityError(
                f"vm {vm_id!r} gen {manifest.generation}: payload digest "
                f"mismatch"
            )
        return payload, manifest

    # -- housekeeping ------------------------------------------------------

    def ls(self) -> dict:
        """Machine-readable listing: every vm, its generations, sizes."""
        vms = {}
        for vm_id in self.vm_ids():
            gens = []
            for gen in self.generations(vm_id):
                m = self.read_manifest(vm_id, gen)
                gens.append(
                    {
                        "generation": m.generation,
                        "payload_len": m.payload_len,
                        "chunks": len(m.chunks),
                        "created": m.created,
                        "meta": m.meta,
                    }
                )
            vms[vm_id] = gens
        return {"vms": vms, "objects": sum(1 for _ in self.iter_objects())}

    def prune(self, vm_id: str, keep_last: int) -> list[int]:
        """Drop all but the newest ``keep_last`` generations of a VM."""
        if keep_last < 1:
            raise StoreError("prune must keep at least one generation")
        with self._lock():
            gens = self.generations(vm_id)
            dropped = gens[:-keep_last]
            for gen in dropped:
                os.remove(self._manifest_path(vm_id, gen))
            if dropped:
                self.bump_epoch()
        return dropped

    def delete_manifest(self, vm_id: str, generation: int) -> bool:
        """Remove one generation's manifest (its chunks stay until gc).

        Used by fleet rebalancing after a manifest has been re-homed on
        its owner shard; returns whether anything was deleted.
        """
        with self._lock():
            try:
                os.remove(self._manifest_path(vm_id, generation))
            except FileNotFoundError:
                return False
            self.bump_epoch()
        return True

    def referenced_keys(self) -> set[str]:
        keys: set[str] = set()
        for vm_id in self.vm_ids():
            for gen in self.generations(vm_id):
                keys.update(self.read_manifest(vm_id, gen).chunks)
        return keys

    def gc(self) -> dict:
        """Delete every chunk no manifest references.

        Holds the store lock for the whole mark-and-sweep: the live set
        is computed from the manifests, so an interleaved commit could
        otherwise have its just-written chunks swept before its manifest
        lands.
        """
        with self._lock():
            live = self.referenced_keys()
            removed = 0
            bytes_freed = 0
            for key in list(self.iter_objects()):
                if key in live:
                    continue
                path = self._object_path(key)
                bytes_freed += os.path.getsize(path)
                os.remove(path)
                removed += 1
            self.bump_epoch()
        return {"removed": removed, "kept": len(live), "bytes_freed": bytes_freed}

    def sweep_keep(self, keep: set[str]) -> dict:
        """Delete every chunk *not* in ``keep``.

        The fleet-wide gc computes liveness across every shard's
        manifests (a shard's local manifests say nothing about which of
        its chunks other shards' manifests reference) and then hands
        each node exactly the keys it must retain.
        """
        with self._lock():
            removed = 0
            kept = 0
            bytes_freed = 0
            for key in list(self.iter_objects()):
                if key in keep:
                    kept += 1
                    continue
                path = self._object_path(key)
                bytes_freed += os.path.getsize(path)
                os.remove(path)
                removed += 1
            self.bump_epoch()
        return {"removed": removed, "kept": kept, "bytes_freed": bytes_freed}

    def dedup_stats(self, vm_id: str) -> PutStats:
        """Cumulative dedup over every stored generation of one VM.

        ``bytes_total`` counts every byte each manifest references;
        ``bytes_new`` counts each distinct chunk once — their ratio is
        the store-wide dedup factor for this VM's history.
        """
        stats = PutStats()
        sizes: dict[str, int] = {}
        for gen in self.generations(vm_id):
            m = self.read_manifest(vm_id, gen)
            for i, key in enumerate(m.chunks):
                size = min(m.chunk_size, m.payload_len - i * m.chunk_size)
                size = max(size, 0)
                stats.chunks_total += 1
                stats.bytes_total += size
                if key not in sizes:
                    sizes[key] = size
                    stats.chunks_new += 1
                    stats.bytes_new += size
        return stats

    # -- integrity audit ---------------------------------------------------

    def audit(self, deep: bool = False, check_refs: bool = True) -> dict:
        """Verify every object and manifest; report problems.

        With ``deep``, additionally reassemble the latest generation of
        every VM whose payload carries the checkpoint magic and validate
        it through the same machine-readable description that
        ``repro info --json`` emits.  ``check_refs=False`` skips the
        manifest-references-present-chunk check: on a fleet shard the
        referenced chunks legitimately live on other nodes, and the
        fleet client's cross-shard audit owns that invariant instead.
        """
        problems: list[str] = []
        objects = 0
        for key in self.iter_objects():
            objects += 1
            try:
                self.get_object(key)
            except StoreError as e:
                problems.append(str(e))
        manifests = 0
        for vm_id in self.vm_ids():
            for gen in self.generations(vm_id):
                manifests += 1
                try:
                    m = self.read_manifest(vm_id, gen)
                except StoreError as e:
                    problems.append(f"vm {vm_id!r} gen {gen}: {e}")
                    continue
                if not check_refs:
                    continue
                for key in m.chunks:
                    if not self.has_object(key):
                        problems.append(
                            f"vm {vm_id!r} gen {gen}: missing chunk {key[:16]}..."
                        )
        report = {
            "objects": objects,
            "manifests": manifests,
            "problems": problems,
            "ok": not problems,
        }
        if deep:
            report["checkpoints"] = self._deep_audit(problems)
            report["ok"] = not problems
        return report

    def _deep_audit(self, problems: list[str]) -> dict:
        import tempfile

        from repro.checkpoint.inspect import describe_checkpoint
        from repro.checkpoint.schema import FormatProfile

        magic_prefix = FormatProfile.all()[0].magic[:4]
        described = {}
        for vm_id in self.vm_ids():
            try:
                payload, manifest = self.get_checkpoint(vm_id)
            except StoreError as e:
                problems.append(f"vm {vm_id!r}: {e}")
                continue
            if payload[:4] != magic_prefix:
                described[vm_id] = {"skipped": "not a checkpoint payload"}
                continue
            fd, path = tempfile.mkstemp(suffix=".hckp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(payload)
                desc = describe_checkpoint(path, deep=True)
                desc["generation"] = manifest.generation
                described[vm_id] = desc
                for p in desc.get("problems", []):
                    problems.append(f"vm {vm_id!r}: {p}")
            except Exception as e:  # a corrupt payload must not stop the audit
                problems.append(f"vm {vm_id!r}: unreadable checkpoint: {e}")
            finally:
                os.unlink(path)
        return described


# ---------------------------------------------------------------------------
# Multi-file payload packing (cluster checkpoints)
# ---------------------------------------------------------------------------

_PACK_MAGIC = b"RPAK\x01"


def pack_files(files: dict[str, bytes]) -> bytes:
    """Pack named byte blobs into one store payload (order-stable)."""
    out = bytearray(_PACK_MAGIC)
    out += struct.pack("<I", len(files))
    for name in sorted(files):
        raw = name.encode()
        out += struct.pack("<I", len(raw)) + raw
        out += struct.pack("<Q", len(files[name])) + files[name]
    return bytes(out)


def unpack_files(payload: bytes) -> dict[str, bytes]:
    """Inverse of :func:`pack_files`."""
    if payload[: len(_PACK_MAGIC)] != _PACK_MAGIC:
        raise StoreIntegrityError("not a packed multi-file payload")
    off = len(_PACK_MAGIC)
    try:
        (n,) = struct.unpack_from("<I", payload, off)
        off += 4
        files = {}
        for _ in range(n):
            (name_len,) = struct.unpack_from("<I", payload, off)
            off += 4
            name = payload[off : off + name_len].decode()
            off += name_len
            (data_len,) = struct.unpack_from("<Q", payload, off)
            off += 8
            files[name] = payload[off : off + data_len]
            if len(files[name]) != data_len:
                raise StoreIntegrityError("truncated packed payload")
            off += data_len
        return files
    except struct.error as e:
        raise StoreIntegrityError(f"truncated packed payload: {e}") from e
