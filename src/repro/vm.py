"""The virtual machine façade: the library's main entry point.

Ties together the memory manager, garbage collector, scheduler,
channels, primitives and interpreter for one simulated platform, and
exposes the checkpoint/restart controls the paper drives through the
``CHKPT_STATE`` / ``CHKPT_FILENAME`` / ``CHKPT_INTERVAL`` environment
variables (§4.1-4.2).

Typical use::

    from repro import VirtualMachine, compile_source, get_platform

    code = compile_source("print_int (6 * 7)")
    vm = VirtualMachine(get_platform("rodrigo"), code)
    result = vm.run()
    assert result.stdout == b"42"
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import BinaryIO, Iterator, Mapping, Optional

from repro.arch.platforms import Platform
from repro.bytecode.image import CodeImage
from repro.errors import CheckpointError
from repro.gc import GCController
from repro.gc.roots import AreaSlot, AttrSlot, ListSlot, Slot, stack_slots
from repro.interpreter.interpreter import Interpreter
from repro.interpreter.primitives import (
    ExitProgram,
    PrimitiveTable,
    STANDARD_PRIMITIVES,
)
from repro.interpreter.signals import PendingSet
from repro.channels.manager import ChannelManager
from repro.memory.manager import MemoryManager
from repro.memory.stack import DEFAULT_STACK_WORDS, VMStack
from repro.threads.scheduler import Scheduler
from repro.threads.sync import CondvarOps, MutexOps
from repro.threads.thread import ThreadState


@dataclass
class VMConfig:
    """Run-time configuration, mirroring the paper's environment variables."""

    #: ``CHKPT_STATE``: "enable" (take checkpoints when asked), "disable",
    #: or "restart" (start from ``chkpt_filename``).
    chkpt_state: str = "enable"
    #: ``CHKPT_FILENAME``: where checkpoints go / come from.
    chkpt_filename: Optional[str] = None
    #: ``CHKPT_INTERVAL``: seconds between system-initiated checkpoints
    #: (None or a negative value disables them, like the paper's -1).
    chkpt_interval: Optional[float] = None
    #: Checkpoint concurrency: "auto" picks by OS personality (fork ->
    #: background snapshot writer, NT -> blocking); may be forced.
    chkpt_mode: str = "auto"
    #: Memory sizing knobs (words).
    minor_words: Optional[int] = None
    chunk_words: Optional[int] = None
    stack_words: int = DEFAULT_STACK_WORDS
    #: Thread preemption quantum in instructions.
    quantum: int = 1000
    #: ``CHKPT_VECTORIZE``: use the numpy fast path for the checkpoint
    #: and restart hot loops.  ``False`` selects the word-at-a-time
    #: scalar reference implementation (kept for differential testing).
    vectorize: bool = True
    #: ``CHKPT_DISPATCH``: interpreter dispatch tier.  ``"fast"`` (the
    #: default) runs decode-once closures with superinstruction fusion
    #: and batched loop kernels; ``"reference"`` keeps the canonical
    #: fetch/decode/execute loop as the differential oracle (the
    #: ``vectorize`` / ``--no-vectorize`` precedent, applied to
    #: execution).  Both tiers produce bit-identical checkpoints.
    dispatch: str = "fast"
    #: ``CHKPT_FORMAT``: checkpoint file format version to write (1, 2,
    #: or 3).  3 adds the per-section CRC32 + SHA-256 integrity trailer;
    #: 2 is the escape hatch for readers that predate it.
    chkpt_format: int = 3
    #: ``CHKPT_RETAIN``: how many previous checkpoint generations to keep
    #: as ``path.1`` ... ``path.N`` (0 = overwrite, the paper's single
    #: checkpoint file).  Restores fall back along this chain when the
    #: newest generation fails verification.
    chkpt_retain: int = 0
    #: ``CHKPT_INCREMENTAL``: write format-v4 delta checkpoints carrying
    #: only dirty heap regions when a usable parent generation exists.
    #: Requires ``chkpt_retain >= 1`` (the parent must survive rotation);
    #: otherwise every checkpoint silently stays full.
    chkpt_incremental: bool = False
    #: ``CHKPT_FULL_EVERY``: force a full checkpoint every N generations,
    #: bounding delta-chain length (0 = no periodic full).
    chkpt_full_every: int = 8
    #: ``CHKPT_DIRTY_THRESHOLD``: write a full checkpoint instead of a
    #: delta when the dirty heap fraction exceeds this ratio (a delta
    #: would barely be smaller but still costs a chain entry).
    chkpt_dirty_threshold: float = 0.5
    #: ``CHKPT_REGION_WORDS``: dirty-region granularity in words
    #: (power of two; default 1 KiB of words).
    chkpt_region_words: int = 1024
    #: ``CHKPT_LAZY``: convert restored heap chunks lazily on first
    #: touch instead of eagerly during restart, cutting blocking
    #: time-to-first-output; a background drainer finishes the rest
    #: between interpreter quanta.  Requires ``vectorize`` (the scalar
    #: reference restore stays eager).
    lazy_restore: bool = False
    #: Commit hook override (fault injection); ``None`` = real syscalls.
    commit_hooks: Optional[object] = None

    @classmethod
    def from_env(cls, environ: Mapping[str, str]) -> "VMConfig":
        """Build a config from CHKPT_* environment variables (paper Fig. 5)."""
        cfg = cls()
        state = environ.get("CHKPT_STATE")
        if state in ("enable", "disable", "restart"):
            cfg.chkpt_state = state
        cfg.chkpt_filename = environ.get("CHKPT_FILENAME", cfg.chkpt_filename)
        raw = environ.get("CHKPT_INTERVAL")
        if raw is not None:
            interval = float(raw)
            cfg.chkpt_interval = None if interval < 0 else interval
        vec = environ.get("CHKPT_VECTORIZE")
        if vec is not None:
            cfg.vectorize = vec.strip().lower() not in ("0", "false", "no", "off")
        tier = environ.get("CHKPT_DISPATCH")
        if tier is not None and tier.strip().lower() in ("fast", "reference"):
            cfg.dispatch = tier.strip().lower()
        fmt = environ.get("CHKPT_FORMAT")
        if fmt is not None and fmt.strip().lstrip("v") in ("1", "2", "3"):
            cfg.chkpt_format = int(fmt.strip().lstrip("v"))
        raw = environ.get("CHKPT_RETAIN")
        if raw is not None and raw.strip().isdigit():
            cfg.chkpt_retain = int(raw.strip())
        inc = environ.get("CHKPT_INCREMENTAL")
        if inc is not None:
            cfg.chkpt_incremental = inc.strip().lower() not in (
                "0", "false", "no", "off",
            )
        raw = environ.get("CHKPT_FULL_EVERY")
        if raw is not None and raw.strip().isdigit():
            cfg.chkpt_full_every = int(raw.strip())
        raw = environ.get("CHKPT_DIRTY_THRESHOLD")
        if raw is not None:
            try:
                cfg.chkpt_dirty_threshold = float(raw)
            except ValueError:
                pass
        raw = environ.get("CHKPT_REGION_WORDS")
        if raw is not None and raw.strip().isdigit():
            cfg.chkpt_region_words = int(raw.strip())
        lazy = environ.get("CHKPT_LAZY")
        if lazy is not None:
            cfg.lazy_restore = lazy.strip().lower() not in (
                "0", "false", "no", "off",
            )
        return cfg


@dataclass
class RunResult:
    """Outcome of a :meth:`VirtualMachine.run` call."""

    status: str  #: "stopped", "exited", or "budget"
    exit_code: int
    instructions: int
    vm: "VirtualMachine"

    @property
    def stdout(self) -> bytes:
        """Captured standard output (in-memory sink VMs only)."""
        return self.vm.channels.stdout_bytes()


class VirtualMachine:
    """One OCVM-style virtual machine on a simulated platform."""

    def __init__(
        self,
        platform: Platform,
        code: CodeImage,
        config: Optional[VMConfig] = None,
        stdout: Optional[BinaryIO] = None,
        stdin: Optional[BinaryIO] = None,
    ) -> None:
        self.platform = platform
        self.code = code
        self.config = config or VMConfig()
        self.mem = MemoryManager(
            platform,
            minor_words=self.config.minor_words,
            chunk_words=self.config.chunk_words,
            region_words=self.config.chkpt_region_words,
        )
        self.gc = GCController(self.mem, self)
        self.pending = PendingSet()
        self.channels = ChannelManager(stdout=stdout, stdin=stdin)
        self.primitives: PrimitiveTable = STANDARD_PRIMITIVES
        #: Temporary GC roots for primitive arguments and intermediates.
        self.temp_roots: list[int] = []

        layout = platform.layout
        self.code_base = layout.code_base
        self.code_end = layout.code_base + 4 * len(code.units)

        # Main stack, sized so growth can never collide with the code area.
        wb = platform.arch.word_bytes
        stack_high = layout.stack_base + self.config.stack_words * wb
        max_main_words = (stack_high - self.code_end - 4096) // wb
        self.main_stack = VMStack(
            self.mem.space,
            platform.arch,
            layout.stack_base,
            n_words=self.config.stack_words,
            label="main-stack",
            max_words=max_main_words,
        )
        self.main_stack.on_grow = self.mem.dirty.note_stack_growth

        self.sched = Scheduler(
            self.mem.space,
            platform.arch,
            layout.thread_stack_base,
            layout.thread_stride,
            initial_value=self.mem.values.val_unit,
            quantum=self.config.quantum,
        )
        self.sched.stack_grow_hook = self.mem.dirty.note_stack_growth
        self.sched.create_main(self.main_stack)
        self.mutexes = MutexOps(self.mem, self.sched)
        self.condvars = CondvarOps(self.mem, self.sched, self.mutexes)

        #: The program's global-data block (an ordinary major-heap block,
        #: like OCaml's ``global_data``).
        self.global_data = self.mem.alloc_shr(max(1, code.n_globals), 0)
        for i in range(max(1, code.n_globals)):
            self.mem.init_field(self.global_data, i, self.mem.values.val_unit)

        self.interp = Interpreter(self)
        #: Statistics from checkpoints taken by this VM.
        self.checkpoints_taken = 0
        self.last_checkpoint_stats = None
        self._policy_last = time.monotonic()
        self._background_writer = None
        #: Stats of the in-flight (or last joined) background checkpoint.
        self._background_stats = None
        #: Delta-chain state: the body SHA-256 / path of the newest
        #: committed generation this run, and how many deltas deep the
        #: chain at that path currently is (0 = the head is full).
        self.delta_parent_sha: Optional[bytes] = None
        self.delta_parent_path: Optional[str] = None
        self.delta_depth: int = 0
        #: Set by restart so the first run() continues mid-program.
        self.restarted = False
        #: Deferred-conversion tracker after a ``--lazy-restore``
        #: restart (:class:`repro.checkpoint.reader.LazyRestoreState`);
        #: ``None`` once every chunk has converted (or always, eagerly).
        self.lazy_restore = None
        #: Cluster binding (rank/size/send/recv) when this VM is a node
        #: of a message-passing cluster; None for standalone VMs.
        self.cluster = None

    # -- GC root enumeration (RootProvider) ---------------------------------

    def iter_roots(self) -> Iterator[Slot]:
        """Every mutator root: registers, thread state, stacks, globals."""
        interp = self.interp
        yield AttrSlot(interp, "accu")
        yield AttrSlot(interp, "env")
        yield AttrSlot(self, "global_data")
        current = self.sched.current
        for t in self.sched.threads.values():
            if t is not current:
                yield AttrSlot(t, "accu")
                yield AttrSlot(t, "env")
            if t.blocked_on_is_value:
                yield AttrSlot(t, "blocked_on")
            yield AttrSlot(t, "pending_mutex")
            yield AttrSlot(t, "result")
            yield from stack_slots(t.stack.area, t.stack.sp)
        area = self.mem.cglobals.area
        for idx in self.mem.cglobals.root_indices:
            yield AreaSlot(area, idx)
        for i in range(len(self.temp_roots)):
            yield ListSlot(self.temp_roots, i)

    # -- code helpers -----------------------------------------------------------

    def code_addr_to_index(self, closure: int) -> int:
        """Entry point (code unit index) of a closure value."""
        return self.interp.code_index(self.mem.field(closure, 0))

    # -- running -------------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        """Execute the program (or continue it, after a restart)."""
        try:
            status = self.interp.run(max_instructions)
            exit_code = 0
        except ExitProgram as e:
            status = "exited"
            exit_code = e.status
        self.join_background_checkpoint()
        self.channels.flush_all()
        return RunResult(
            status=status,
            exit_code=exit_code,
            instructions=self.interp.instructions,
            vm=self,
        )

    # -- checkpoint control ------------------------------------------------------------

    def request_checkpoint(self) -> None:
        """Ask for a checkpoint at the next safe point (sets the flag)."""
        if self.config.chkpt_state == "disable":
            return
        self.pending.request_checkpoint()

    def poll_checkpoint_policy(self) -> None:
        """Periodic (CHKPT_INTERVAL) system-initiated checkpoints."""
        interval = self.config.chkpt_interval
        if interval is None or self.config.chkpt_state == "disable":
            return
        now = time.monotonic()
        if now - self._policy_last >= interval:
            self._policy_last = now
            self.pending.request_checkpoint()

    def drain_lazy_restore(self) -> None:
        """Convert one pending lazily-restored chunk (background drain).

        Called by the interpreter between scheduler quanta so restores
        complete even when the workload never touches most of the heap.
        """
        state = self.lazy_restore
        if state is not None and not state.drain_one():
            self.lazy_restore = None

    def finish_lazy_restore(self) -> None:
        """Convert every pending chunk now (checkpoint writer barrier)."""
        state = self.lazy_restore
        if state is not None:
            state.finish()
            self.lazy_restore = None

    def perform_checkpoint(self) -> None:
        """Take a checkpoint right now (caller must be at a safe point)."""
        if self.config.chkpt_state == "disable":
            return
        path = self.config.chkpt_filename
        if path is None:
            raise CheckpointError(
                "no checkpoint filename configured (CHKPT_FILENAME)"
            )
        from repro.checkpoint.writer import CheckpointWriter

        writer = CheckpointWriter(self)
        self.last_checkpoint_stats = writer.checkpoint(path)
        self.checkpoints_taken += 1
        self._policy_last = time.monotonic()

    def join_background_checkpoint(self) -> None:
        """Wait for an in-flight background checkpoint writer, if any.

        Finalizes the stats the writer thread was filling (callers must
        not read ``stats.file_bytes`` before this returns — in
        background mode :meth:`CheckpointWriter.checkpoint` hands back
        the stats object while the write is still running) and surfaces
        a failed write as a typed :class:`CheckpointError` instead of
        silently dropping it.
        """
        if self._background_writer is None:
            return
        self._background_writer.join()
        self._background_writer = None
        stats = self._background_stats
        self._background_stats = None
        if stats is None:
            return
        stats.completed = True
        error = stats.error
        if error is None:
            return
        stats.error = None  # surfaced exactly once
        from repro.metrics import INTEGRITY

        INTEGRITY.background_checkpoint_failures += 1
        # The generation this writer was producing is lost; dirty
        # information accumulated since its capture no longer describes
        # the distance to a committed parent, so the next checkpoint
        # must be full.
        self.mem.dirty.mark_all()
        self.delta_parent_sha = None
        self.delta_parent_path = None
        self.delta_depth = 0
        if isinstance(error, CheckpointError):
            raise error
        raise CheckpointError(
            f"background checkpoint of {stats.path} failed: {error}"
        ) from error

    # -- dirty tracking (incremental checkpoints) ---------------------------

    def snapshot_dirty(self):
        """Freeze the dirty-region tracker state (at a safe point)."""
        return self.mem.dirty.snapshot()

    def clear_dirty(self) -> None:
        """Reset dirty tracking (after a successful capture)."""
        self.mem.dirty.clear()

    # -- state summaries (used by checkpoint and tests) -----------------------------------

    @property
    def is_multithreaded(self) -> bool:
        """The paper's "application type" header field."""
        return self.sched.ever_multithreaded

    def live_thread_count(self) -> int:
        """Threads that have not finished."""
        return sum(
            1
            for t in self.sched.threads.values()
            if t.state is not ThreadState.FINISHED
        )
