"""The instruction set of the virtual machine.

Each instruction is one opcode unit followed by a fixed number of operand
units.  Branch-style operands are *relative to the operand's own
position* in the code, following OCaml's ``pc += *pc`` convention.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Byte-code opcodes."""

    # Control
    STOP = 0
    BRANCH = 1          # ofs
    BRANCHIF = 2        # ofs
    BRANCHIFNOT = 3     # ofs
    CHECK_SIGNALS = 4

    # Stack / accumulator shuffling
    ACC = 10            # n: accu = stack[n]
    PUSH = 11
    PUSHACC = 12        # n: push accu; accu = stack[n]
    POP = 13            # n
    ASSIGN = 14         # n: stack[n] = accu; accu = unit

    # Environment access
    ENVACC = 20         # n: accu = Field(env, n)
    PUSHENVACC = 21     # n
    OFFSETCLOSURE0 = 22  # accu = env (recursive self-reference)

    # Constants and globals
    CONSTINT = 30       # n (signed): accu = Val_int(n)
    PUSHCONSTINT = 31   # n
    ATOM = 32           # t: accu = Atom(t)
    PUSHATOM = 33       # t
    GETGLOBAL = 34      # n
    PUSHGETGLOBAL = 35  # n
    SETGLOBAL = 36      # n

    # Exceptions
    PUSHTRAP = 25       # ofs: push a 4-slot trap frame, set trapsp
    POPTRAP = 26        # discard the current trap frame
    RAISE = 27          # unwind to the current trap frame

    # Function application
    PUSH_RETADDR = 40   # ofs
    APPLY = 41          # n
    APPTERM = 42        # nargs, slotsize
    RETURN = 43         # n
    GRAB = 44           # n
    RESTART = 45
    CLOSURE = 46        # nvars, ofs

    # Blocks
    MAKEBLOCK = 50      # size, tag
    GETFIELD = 51       # n
    SETFIELD = 52       # n: Field(accu, n) = pop; accu = unit
    VECTLENGTH = 53
    GETVECTITEM = 54    # accu = Field(accu, Int_val(pop))
    SETVECTITEM = 55    # Field(accu, Int_val(sp[0])) = sp[1]; pop 2
    GETSTRINGCHAR = 56
    SETSTRINGCHAR = 57
    ISINT = 58

    # Integer arithmetic (tagged)
    NEGINT = 60
    ADDINT = 61
    SUBINT = 62
    MULINT = 63
    DIVINT = 64
    MODINT = 65
    ANDINT = 66
    ORINT = 67
    XORINT = 68
    LSLINT = 69
    LSRINT = 70
    ASRINT = 71
    OFFSETINT = 72      # n: accu = Val_int(Int_val(accu) + n)
    BOOLNOT = 73

    # Comparison
    EQ = 80
    NEQ = 81
    LTINT = 82
    LEINT = 83
    GTINT = 84
    GEINT = 85

    # Foreign calls
    C_CALL = 90         # nargs, prim_id

    # Literal pools (program-image constants; each use allocates a fresh
    # heap block, so checkpointed state never aliases the code image)
    STRLIT = 95         # k: accu = fresh string from literal pool k
    FLOATLIT = 96       # k: accu = fresh double from float pool k


#: Number of operand units each opcode carries.
OPERAND_COUNTS: dict[Op, int] = {
    Op.STOP: 0,
    Op.BRANCH: 1,
    Op.BRANCHIF: 1,
    Op.BRANCHIFNOT: 1,
    Op.CHECK_SIGNALS: 0,
    Op.ACC: 1,
    Op.PUSH: 0,
    Op.PUSHACC: 1,
    Op.POP: 1,
    Op.ASSIGN: 1,
    Op.ENVACC: 1,
    Op.PUSHENVACC: 1,
    Op.OFFSETCLOSURE0: 0,
    Op.PUSHTRAP: 1,
    Op.POPTRAP: 0,
    Op.RAISE: 0,
    Op.CONSTINT: 1,
    Op.PUSHCONSTINT: 1,
    Op.ATOM: 1,
    Op.PUSHATOM: 1,
    Op.GETGLOBAL: 1,
    Op.PUSHGETGLOBAL: 1,
    Op.SETGLOBAL: 1,
    Op.PUSH_RETADDR: 1,
    Op.APPLY: 1,
    Op.APPTERM: 2,
    Op.RETURN: 1,
    Op.GRAB: 1,
    Op.RESTART: 0,
    Op.CLOSURE: 2,
    Op.MAKEBLOCK: 2,
    Op.GETFIELD: 1,
    Op.SETFIELD: 1,
    Op.VECTLENGTH: 0,
    Op.GETVECTITEM: 0,
    Op.SETVECTITEM: 0,
    Op.GETSTRINGCHAR: 0,
    Op.SETSTRINGCHAR: 0,
    Op.ISINT: 0,
    Op.NEGINT: 0,
    Op.ADDINT: 0,
    Op.SUBINT: 0,
    Op.MULINT: 0,
    Op.DIVINT: 0,
    Op.MODINT: 0,
    Op.ANDINT: 0,
    Op.ORINT: 0,
    Op.XORINT: 0,
    Op.LSLINT: 0,
    Op.LSRINT: 0,
    Op.ASRINT: 0,
    Op.OFFSETINT: 1,
    Op.BOOLNOT: 0,
    Op.EQ: 0,
    Op.NEQ: 0,
    Op.LTINT: 0,
    Op.LEINT: 0,
    Op.GTINT: 0,
    Op.GEINT: 0,
    Op.C_CALL: 2,
    Op.STRLIT: 1,
    Op.FLOATLIT: 1,
}

#: Opcodes whose single operand is a code offset (relative to the operand
#: position) — used by the assembler's label resolution and the
#: disassembler.
BRANCH_OPERANDS: dict[Op, tuple[int, ...]] = {
    Op.PUSHTRAP: (0,),
    Op.BRANCH: (0,),
    Op.BRANCHIF: (0,),
    Op.BRANCHIFNOT: (0,),
    Op.PUSH_RETADDR: (0,),
    Op.CLOSURE: (1,),
}
