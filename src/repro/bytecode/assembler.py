"""A two-pass assembler with labels.

The MiniML compiler (and the hand-written test programs) emit symbolic
instructions; the assembler resolves labels into the relative offsets the
interpreter expects (relative to the operand's own position, OCaml
style) and produces a :class:`~repro.bytecode.image.CodeImage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.image import CodeImage
from repro.bytecode.opcodes import BRANCH_OPERANDS, OPERAND_COUNTS, Op
from repro.errors import BytecodeError


@dataclass(frozen=True)
class Label:
    """A symbolic code position."""

    name: str


@dataclass
class _Insn:
    op: Op
    operands: tuple
    #: Unit index of the opcode after layout.
    position: int = 0


class Assembler:
    """Accumulates instructions and assembles them into a code image."""

    def __init__(self, name: str = "<asm>") -> None:
        self.name = name
        self._insns: list[_Insn] = []
        self._labels: dict[str, int] = {}  # label -> instruction index
        self._fresh = 0
        self.n_globals = 0
        self._string_literals: list[bytes] = []
        self._float_literals: list[float] = []

    def string_literal(self, data: bytes) -> int:
        """Intern a string literal; returns its pool index."""
        try:
            return self._string_literals.index(data)
        except ValueError:
            self._string_literals.append(data)
            return len(self._string_literals) - 1

    def float_literal(self, x: float) -> int:
        """Intern a float literal; returns its pool index."""
        for i, y in enumerate(self._float_literals):
            if y == x or (x != x and y != y):  # NaN-safe identity
                return i
        self._float_literals.append(x)
        return len(self._float_literals) - 1

    # -- building -----------------------------------------------------------

    def label(self, prefix: str = "L") -> Label:
        """Create a fresh, unplaced label."""
        self._fresh += 1
        return Label(f"{prefix}{self._fresh}")

    def place(self, label: Label) -> None:
        """Bind a label to the current position."""
        if label.name in self._labels:
            raise BytecodeError(f"label {label.name} placed twice")
        self._labels[label.name] = len(self._insns)

    def emit(self, op: Op, *operands) -> None:
        """Append one instruction; operands are ints or Labels."""
        expected = OPERAND_COUNTS[op]
        if len(operands) != expected:
            raise BytecodeError(
                f"{op.name} takes {expected} operand(s), got {len(operands)}"
            )
        branch_slots = BRANCH_OPERANDS.get(op, ())
        for i, v in enumerate(operands):
            if isinstance(v, Label):
                if i not in branch_slots:
                    raise BytecodeError(
                        f"operand {i} of {op.name} cannot be a label"
                    )
            elif not isinstance(v, int):
                raise BytecodeError(f"bad operand {v!r} for {op.name}")
        self._insns.append(_Insn(op, tuple(operands)))

    def __len__(self) -> int:
        return len(self._insns)

    # -- assembling -----------------------------------------------------------

    def assemble(self) -> CodeImage:
        """Resolve labels and produce the code image."""
        # Pass 1: layout.
        pos = 0
        for insn in self._insns:
            insn.position = pos
            pos += 1 + OPERAND_COUNTS[insn.op]
        label_units: dict[str, int] = {}
        for name, insn_index in self._labels.items():
            if insn_index < len(self._insns):
                label_units[name] = self._insns[insn_index].position
            else:
                label_units[name] = pos  # label at end of code
        # Pass 2: encode.
        units: list[int] = []
        for insn in self._insns:
            units.append(int(insn.op))
            for i, v in enumerate(insn.operands):
                operand_pos = insn.position + 1 + i
                if isinstance(v, Label):
                    try:
                        target = label_units[v.name]
                    except KeyError:
                        raise BytecodeError(
                            f"undefined label {v.name}"
                        ) from None
                    units.append((target - operand_pos) & 0xFFFFFFFF)
                else:
                    units.append(v & 0xFFFFFFFF)
        return CodeImage(
            units,
            self.name,
            n_globals=self.n_globals,
            string_literals=self._string_literals,
            float_literals=self._float_literals,
        )
