"""Decode-once instruction streams (the raw-speed tier's front end).

The reference interpreter re-fetches the opcode, re-looks-up the
handler and re-decodes every operand each time an instruction executes.
This module does all of that exactly once per :class:`CodeImage`:

* :func:`decode_image` turns the flat unit array into a dense stream of
  :class:`DecodedInstruction` records — operands extracted, signedness
  resolved, branch targets converted to absolute unit indices.
* :func:`plan_fusion` rewrites the stream with *superinstructions*: the
  hottest opcode pairs/triples (measured with ``repro trace`` over the
  example workloads, see docs/DISPATCH.md) are grouped so the fast loop
  dispatches them as one unit.
* :func:`plan_counted_loops` recognizes tight counted loops over global
  ``ref`` cells (the ``dispatch_rate`` workload shape) that the fast
  tier can execute as a batched kernel, many iterations per safe-point
  check.

Everything here is *architecture- and VM-independent*: it depends only
on the code units, so one decoded program is shared by every
``VirtualMachine`` (and every restart) running the same image.  The
**pc invariant**: all indices in the decoded stream are canonical code
*unit* indices — ``pc``, branch targets, trap frames, closures and
checkpointed thread state never see decoded/fused positions, so
checkpoint files are bit-identical whether fusion is on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bytecode.opcodes import BRANCH_OPERANDS, OPERAND_COUNTS, Op

__all__ = [
    "DecodedInstruction",
    "DecodedProgram",
    "FusedGroup",
    "CountedLoopPlan",
    "LoopUpdate",
    "StrideLoopPlan",
    "decode_image",
    "FUSION_PATTERNS",
    "FUSIBLE_INNER",
    "FUSIBLE_TAIL",
]


def _signed(u: int) -> int:
    """A 32-bit unit as a signed operand (two's complement)."""
    return u - (1 << 32) if u & (1 << 31) else u


@dataclass(frozen=True)
class DecodedInstruction:
    """One instruction, fully decoded.

    ``raw`` holds the operand units as stored (unsigned); ``targets``
    holds, for branch-style operands, the *absolute* unit index each
    offset resolves to (offsets are relative to the operand's own
    position, OCaml's ``pc += *pc`` convention).
    """

    op: int
    raw: tuple[int, ...]
    index: int          #: unit index of the opcode
    next: int           #: unit index of the following instruction
    targets: tuple[int, ...] = ()

    def signed(self, i: int) -> int:
        return _signed(self.raw[i])


@dataclass(frozen=True)
class FusedGroup:
    """A planned superinstruction: consecutive instruction starts."""

    start: int                 #: unit index of the first member
    members: tuple[int, ...]   #: unit indices of every member
    ops: tuple[int, ...]       #: their opcodes
    count: int                 #: canonical instructions represented


@dataclass(frozen=True)
class LoopUpdate:
    """One ``ref := !ref <op> operand`` statement in a counted-loop body.

    ``operand_kind`` is ``"const"`` (operand_value is the literal) or
    ``"ref"`` (operand_value is the global index of a ref cell read at
    this point of the iteration).  ``sign`` is +1 for ADDINT, -1 for
    SUBINT.
    """

    target: int
    sign: int
    operand_kind: str
    operand_value: int


@dataclass(frozen=True)
class CountedLoopPlan:
    """A ``while`` loop over global int refs the fast tier can batch.

    Shape (unit indices, all canonical)::

        head:  CHECK_SIGNALS
               <cond: bound; PUSH; counter deref; CMP>
               BRANCHIFNOT exit
               <body: one or more LoopUpdate blocks>
        back:  BRANCH head
        exit:  ...

    ``iter_count`` is the canonical instruction count of one full
    iteration (head through the back-edge BRANCH); ``cond_count`` the
    count of the final, failing pass (head through BRANCHIFNOT).
    """

    head: int
    exit: int
    iter_count: int
    cond_count: int
    counter: int                       #: global index of the loop ref
    cmp_op: int                        #: Op.LTINT/LEINT/GTINT/GEINT
    step: int                          #: signed per-iteration increment
    bound_const: Optional[int]         #: literal bound, or None
    bound_global: Optional[int]        #: global index of a bound ref
    updates: tuple[LoopUpdate, ...]    #: body statements, in order


@dataclass(frozen=True)
class StrideLoopPlan:
    """A ``for`` loop over arrays the fast tier can batch with numpy.

    The compiled ``for`` template keeps the counter in stack slot 0 and
    the bound in slot 1::

        head:  CHECK_SIGNALS
               ACC 1; PUSH; ACC 1; LEINT|GEINT
               BRANCHIFNOT exit
               <body: straight-line array expression>
               ACC 0; OFFSETINT step; ASSIGN 0
        back:  BRANCH head

    The body is captured by symbolic execution as one ``store``
    expression tree built from these node shapes (plain tuples, so
    structural equality is free)::

        ("slot", n)          stack slot n at body entry (0 == counter)
        ("const", k)         CONSTINT literal
        ("global", g)        GETGLOBAL g
        ("elem", arr, idx)   GETVECTITEM
        ("bin", op, a, b)    MULINT / ADDINT / SUBINT
        ("store", arr, idx, value)   the terminal SETVECTITEM

    The kernel decides at bind time whether the store is a *reduction*
    (``c.(j) <- c.(j) + term``, the matmul dot product) or a *stride
    map/fill* (``dst.(i) <- expr``), and at run time whether a batch is
    provably safe — anything surprising falls back to single-step
    execution, whose semantics are exact.
    """

    head: int
    exit: int
    iter_count: int      #: canonical instructions per full iteration
    cond_count: int      #: instructions of the final, failing pass
    cmp_op: int          #: Op.LEINT (step > 0) or Op.GEINT (step < 0)
    step: int            #: signed per-iteration counter increment
    store: tuple         #: the ("store", arr, idx, value) tree


class DecodedProgram:
    """The decoded stream plus fusion and loop plans for one image."""

    __slots__ = ("n_units", "entries", "groups", "loops")

    def __init__(
        self,
        n_units: int,
        entries: list[Optional[DecodedInstruction]],
        groups: list[FusedGroup],
        loops: list[CountedLoopPlan],
    ) -> None:
        self.n_units = n_units
        #: Indexed by unit; ``None`` at operand slots and undecodable
        #: positions (the fast tier falls back to single-step reference
        #: dispatch there, so misaligned jumps keep reference behavior).
        self.entries = entries
        self.groups = groups
        self.loops = loops


# ---------------------------------------------------------------------------
# Stage 1: linear decode
# ---------------------------------------------------------------------------

_VALID_OPS = {int(op) for op in Op}


def _decode_entries(units: list[int]) -> list[Optional[DecodedInstruction]]:
    n = len(units)
    entries: list[Optional[DecodedInstruction]] = [None] * n
    i = 0
    while i < n:
        op = units[i]
        if op not in _VALID_OPS:
            # Illegal opcode: leave None; execution raises exactly as
            # the reference loop does.  Resync at the next unit.
            i += 1
            continue
        argc = OPERAND_COUNTS[Op(op)]
        if i + argc >= n:
            # Truncated instruction at the end of the image.
            i += 1
            continue
        raw = tuple(units[i + 1 : i + 1 + argc])
        branch_slots = BRANCH_OPERANDS.get(Op(op), ())
        targets = tuple(
            (i + 1 + slot) + _signed(raw[slot]) for slot in branch_slots
        )
        entries[i] = DecodedInstruction(op, raw, i, i + 1 + argc, targets)
        i += 1 + argc
    return entries


# ---------------------------------------------------------------------------
# Stage 2: superinstruction fusion
# ---------------------------------------------------------------------------

#: Opcodes safe anywhere in a fused group: straight-line, never touch
#: ``pc`` (beyond falling through), never raise a *catchable* VM
#: exception mid-group, never switch threads.  Allocating opcodes are
#: fine — a GC inside a group sees coherent registers and stacks.
FUSIBLE_INNER = frozenset(
    int(op)
    for op in (
        Op.ACC, Op.PUSH, Op.PUSHACC, Op.POP, Op.ASSIGN,
        Op.ENVACC, Op.PUSHENVACC, Op.OFFSETCLOSURE0,
        Op.CONSTINT, Op.PUSHCONSTINT, Op.ATOM, Op.PUSHATOM,
        Op.GETGLOBAL, Op.PUSHGETGLOBAL, Op.SETGLOBAL,
        Op.GETFIELD, Op.SETFIELD, Op.VECTLENGTH, Op.ISINT,
        Op.NEGINT, Op.ADDINT, Op.SUBINT, Op.MULINT,
        Op.ANDINT, Op.ORINT, Op.XORINT,
        Op.LSLINT, Op.LSRINT, Op.ASRINT,
        Op.OFFSETINT, Op.BOOLNOT,
        Op.EQ, Op.NEQ, Op.LTINT, Op.LEINT, Op.GTINT, Op.GEINT,
        Op.MAKEBLOCK, Op.STRLIT, Op.FLOATLIT,
    )
)

#: Opcodes additionally allowed as the *last* member of a group (they
#: choose the next pc themselves).  APPLY transfers control;
#: GETVECTITEM/SETVECTITEM may raise a *catchable* bounds exception —
#: legal only at the tail, where every earlier member has already
#: committed, so the raise path observes canonical state.  None of the
#: three may appear as an inner member.
FUSIBLE_TAIL = FUSIBLE_INNER | {
    int(Op.BRANCH), int(Op.BRANCHIF), int(Op.BRANCHIFNOT),
    int(Op.APPLY), int(Op.GETVECTITEM), int(Op.SETVECTITEM),
}

_CMPS = (Op.EQ, Op.NEQ, Op.LTINT, Op.LEINT, Op.GTINT, Op.GEINT)

#: The fusion table: hot opcode pairs/triples, longest-match-first.
#: Chosen from the ``repro trace`` hot-pair profile over the example
#: workloads (see docs/DISPATCH.md for the data and how to extend it).
FUSION_PATTERNS: list[tuple[int, ...]] = [
    tuple(int(o) for o in pat)
    for pat in (
        # Triples
        [(Op.CONSTINT, Op.PUSH, Op.GETGLOBAL)]
        + [(Op.GETFIELD, c, b) for c in _CMPS
           for b in (Op.BRANCHIFNOT, Op.BRANCHIF)]
        + [(Op.ACC, c, b) for c in _CMPS
           for b in (Op.BRANCHIFNOT, Op.BRANCHIF)]
        + [(Op.ACC, Op.OFFSETINT, Op.ASSIGN)]
        + [(Op.ACC, Op.PUSH, Op.ACC)]
        + [(Op.ACC, Op.GETFIELD, Op.PUSH)]
        + [(Op.ACC, Op.ISINT, Op.BRANCHIF)]
        + [(Op.ACC, Op.ISINT, Op.BRANCHIFNOT)]
        + [(Op.CONSTINT, Op.PUSH, Op.ACC)]
        + [(Op.PUSH, Op.GETGLOBAL, Op.GETVECTITEM)]
        + [(Op.PUSH, Op.OFFSETCLOSURE0, Op.APPLY)]
        # Pairs
        + [(c, b) for c in _CMPS for b in (Op.BRANCHIFNOT, Op.BRANCHIF)]
        + [(Op.ISINT, Op.BRANCHIF), (Op.ISINT, Op.BRANCHIFNOT)]
        + [
            (Op.ACC, Op.PUSH),
            (Op.CONSTINT, Op.PUSH),
            (Op.ENVACC, Op.PUSH),
            (Op.GETGLOBAL, Op.GETFIELD),
            (Op.GETGLOBAL, Op.GETVECTITEM),
            (Op.GETGLOBAL, Op.APPLY),
            (Op.GETFIELD, Op.PUSH),
            (Op.GETFIELD, Op.ADDINT),
            (Op.OFFSETCLOSURE0, Op.APPLY),
            (Op.PUSH, Op.GETGLOBAL),
            (Op.PUSH, Op.OFFSETCLOSURE0),
            (Op.PUSH, Op.CONSTINT),
            (Op.PUSH, Op.ACC),
            (Op.OFFSETINT, Op.ASSIGN),
        ]
    )
]

for _pat in FUSION_PATTERNS:  # sanity: the table respects the sets
    assert all(o in FUSIBLE_INNER for o in _pat[:-1]), _pat
    assert _pat[-1] in FUSIBLE_TAIL, _pat

# First-op index, longest pattern first so greedy matching prefers
# triples over pairs.
_BY_FIRST: dict[int, list[tuple[int, ...]]] = {}
for _pat in FUSION_PATTERNS:
    _BY_FIRST.setdefault(_pat[0], []).append(_pat)
for _pats in _BY_FIRST.values():
    _pats.sort(key=len, reverse=True)


def plan_fusion(
    entries: list[Optional[DecodedInstruction]],
) -> list[FusedGroup]:
    """Greedy longest-match fusion over consecutive instruction starts.

    A group only *adds* a combined entry at its start index; the member
    instructions keep their individual entries, so jumps (or restored
    checkpoints) landing mid-group execute the canonical singles.
    """
    groups: list[FusedGroup] = []
    n = len(entries)
    i = 0
    while i < n:
        e = entries[i]
        if e is None:
            i += 1
            continue
        candidates = _BY_FIRST.get(e.op)
        matched = None
        if candidates:
            for pat in candidates:
                members = [e]
                cur = e
                ok = True
                for want in pat[1:]:
                    nxt = entries[cur.next] if cur.next < n else None
                    if nxt is None or nxt.op != want:
                        ok = False
                        break
                    members.append(nxt)
                    cur = nxt
                if ok:
                    matched = members
                    break
        if matched is not None:
            groups.append(
                FusedGroup(
                    start=i,
                    members=tuple(m.index for m in matched),
                    ops=tuple(m.op for m in matched),
                    count=len(matched),
                )
            )
            i = matched[-1].next
        else:
            i = e.next
    return groups


# ---------------------------------------------------------------------------
# Stage 3: counted-loop recognition (batched kernels)
# ---------------------------------------------------------------------------

_REF_DEREF = (int(Op.GETGLOBAL), int(Op.GETFIELD))
_REL_CMPS = {int(Op.LTINT), int(Op.LEINT), int(Op.GTINT), int(Op.GEINT)}


class _Cursor:
    """A little matching cursor over the decoded stream."""

    def __init__(self, entries, start: int) -> None:
        self.entries = entries
        self.i = start

    def take(self, op: Op) -> Optional[DecodedInstruction]:
        e = self.entries[self.i] if 0 <= self.i < len(self.entries) else None
        if e is None or e.op != int(op):
            return None
        self.i = e.next
        return e

    def peek_op(self) -> Optional[int]:
        e = self.entries[self.i] if 0 <= self.i < len(self.entries) else None
        return None if e is None else e.op


def _match_deref(cur: _Cursor) -> Optional[int]:
    """Match ``GETGLOBAL g; GETFIELD 0`` -> g."""
    g = cur.take(Op.GETGLOBAL)
    if g is None:
        return None
    f = cur.take(Op.GETFIELD)
    if f is None or f.raw[0] != 0:
        return None
    return g.raw[0]


def _match_update(cur: _Cursor) -> Optional[LoopUpdate]:
    """Match one ``a := !a (+|-) (k | !b)`` statement.

    Two compiled shapes::

        CONSTINT k; PUSH; GETGLOBAL a; GETFIELD 0; ADDINT|SUBINT;
            PUSH; GETGLOBAL a; SETFIELD 0
        GETGLOBAL b; GETFIELD 0; PUSH; GETGLOBAL a; GETFIELD 0;
            ADDINT|SUBINT; PUSH; GETGLOBAL a; SETFIELD 0
    """
    start = cur.i
    kind = None
    value = None
    if (k := cur.take(Op.CONSTINT)) is not None:
        kind, value = "const", k.signed(0)
    else:
        cur.i = start
        b = _match_deref(cur)
        if b is None:
            cur.i = start
            return None
        kind, value = "ref", b
    if cur.take(Op.PUSH) is None:
        cur.i = start
        return None
    a = _match_deref(cur)
    if a is None:
        cur.i = start
        return None
    if cur.take(Op.ADDINT) is not None:
        sign = 1
    elif cur.take(Op.SUBINT) is not None:
        sign = -1
    else:
        cur.i = start
        return None
    if cur.take(Op.PUSH) is None:
        cur.i = start
        return None
    g2 = cur.take(Op.GETGLOBAL)
    sf = cur.take(Op.SETFIELD)
    if g2 is None or g2.raw[0] != a or sf is None or sf.raw[0] != 0:
        cur.i = start
        return None
    return LoopUpdate(target=a, sign=sign, operand_kind=kind,
                      operand_value=value)


def _match_counted_loop(
    entries: list[Optional[DecodedInstruction]],
    back: DecodedInstruction,
) -> Optional[CountedLoopPlan]:
    """Try to match the counted-loop template rooted at a back-edge."""
    head = back.targets[0]
    if not 0 <= head < len(entries):
        return None
    cur = _Cursor(entries, head)
    n_instr = 0

    def count_since(mark: int) -> int:
        # canonical instruction count between two cursor marks
        c, i = 0, mark
        while i < cur.i:
            e = entries[i]
            if e is None:
                return -1
            c += 1
            i = e.next
        return c

    if cur.take(Op.CHECK_SIGNALS) is None:
        return None
    # Condition: <bound>; PUSH; !counter; CMP; BRANCHIFNOT exit
    bound_const = bound_global = None
    if (k := cur.take(Op.CONSTINT)) is not None:
        bound_const = k.signed(0)
    else:
        bound_global = _match_deref(cur)
        if bound_global is None:
            return None
    if cur.take(Op.PUSH) is None:
        return None
    counter = _match_deref(cur)
    if counter is None:
        return None
    if cur.peek_op() not in _REL_CMPS:
        return None
    cmp_instr = entries[cur.i]
    cur.i = cmp_instr.next
    branchifnot = cur.take(Op.BRANCHIFNOT)
    if branchifnot is None:
        return None
    exit_index = branchifnot.targets[0]
    cond_count = count_since(head)
    if cond_count < 0:
        return None
    # Body: one or more updates, then BRANCH back to head.
    updates: list[LoopUpdate] = []
    while True:
        if cur.i == back.index:
            break
        u = _match_update(cur)
        if u is None:
            return None
        updates.append(u)
        if len(updates) > 8:
            return None
    if not updates:
        return None
    if cur.take(Op.BRANCH) is None or exit_index != back.next:
        return None
    iter_count = count_since(head)
    # Exactly one constant-step update of the counter; accumulators are
    # write-only (operands may only be constants, the counter, or refs
    # never written in the body) and each target is written once.
    targets = [u.target for u in updates]
    if len(set(targets)) != len(targets):
        return None
    counter_updates = [
        u for u in updates
        if u.target == counter and u.operand_kind == "const"
    ]
    if len(counter_updates) != 1 or any(
        u.target == counter for u in updates if u not in counter_updates
    ):
        return None
    if bound_global is not None and bound_global in targets:
        return None
    written = set(targets)
    for u in updates:
        if u.operand_kind == "ref":
            if u.operand_value in written and u.operand_value != counter:
                return None
            if u.operand_value == u.target:
                return None
    step = counter_updates[0].sign * counter_updates[0].operand_value
    return CountedLoopPlan(
        head=head,
        exit=exit_index,
        iter_count=iter_count,
        cond_count=cond_count,
        counter=counter,
        cmp_op=cmp_instr.op,
        step=step,
        bound_const=bound_const,
        bound_global=bound_global,
        updates=tuple(updates),
    )


# ---------------------------------------------------------------------------
# Stage 3b: array-stride loop recognition (numpy-batched kernels)
# ---------------------------------------------------------------------------

_STRIDE_BIN = {int(Op.MULINT), int(Op.ADDINT), int(Op.SUBINT)}
_STRIDE_BODY_CAP = 64  # instructions; bounds the symbolic execution


def _match_stride_loop(
    entries: list[Optional[DecodedInstruction]],
    back: DecodedInstruction,
) -> Optional[StrideLoopPlan]:
    """Match the stack-counter ``for``-loop template at a back-edge.

    The body is executed *symbolically* over an abstract stack whose
    slots name the live stack at body entry; it must be straight-line
    (ACC/PUSH/CONSTINT/GETGLOBAL/GETVECTITEM/MULINT/ADDINT/SUBINT) and
    end with exactly one SETVECTITEM followed by the canonical counter
    bump.  Anything else — calls, branches, extra stores — rejects the
    loop and leaves it to fusion and singles.
    """
    head = back.targets[0]
    if not 0 <= head < len(entries):
        return None
    cur = _Cursor(entries, head)
    if cur.take(Op.CHECK_SIGNALS) is None:
        return None
    # Condition: ACC 1 (bound); PUSH; ACC 1 (counter); CMP; BRANCHIFNOT
    a1 = cur.take(Op.ACC)
    if a1 is None or a1.raw[0] != 1:
        return None
    if cur.take(Op.PUSH) is None:
        return None
    a2 = cur.take(Op.ACC)
    if a2 is None or a2.raw[0] != 1:
        return None
    if cur.take(Op.LEINT) is not None:
        cmp_op = int(Op.LEINT)
    elif cur.take(Op.GEINT) is not None:
        cmp_op = int(Op.GEINT)
    else:
        return None
    branchifnot = cur.take(Op.BRANCHIFNOT)
    if branchifnot is None:
        return None
    exit_index = branchifnot.targets[0]
    cond_count = 6
    # Body: symbolic execution to one terminal store expression.
    sym: list = []   # abstract stack, sym[0] on top
    accu = None
    store = None
    steps = 0
    while cur.i != back.index:
        e = entries[cur.i] if 0 <= cur.i < len(entries) else None
        if e is None:
            return None
        steps += 1
        if steps > _STRIDE_BODY_CAP:
            return None
        op = e.op
        if op == int(Op.ACC):
            n = e.raw[0]
            accu = sym[n] if n < len(sym) else ("slot", n - len(sym))
        elif op == int(Op.PUSH):
            if accu is None:
                return None
            sym.insert(0, accu)
        elif op == int(Op.CONSTINT):
            accu = ("const", e.signed(0))
        elif op == int(Op.GETGLOBAL):
            accu = ("global", e.raw[0])
        elif op == int(Op.GETVECTITEM):
            if not sym or accu is None:
                return None
            accu = ("elem", accu, sym.pop(0))
        elif op in _STRIDE_BIN:
            if not sym or accu is None:
                return None
            accu = ("bin", op, accu, sym.pop(0))
        elif op == int(Op.SETVECTITEM):
            if len(sym) < 2 or accu is None:
                return None
            idx = sym.pop(0)
            value = sym.pop(0)
            store = ("store", accu, idx, value)
            cur.i = e.next
            break
        else:
            return None
        cur.i = e.next
    if store is None or sym:
        return None
    # Counter bump: ACC 0; OFFSETINT step; ASSIGN 0; BRANCH head.
    bump_acc = cur.take(Op.ACC)
    if bump_acc is None or bump_acc.raw[0] != 0:
        return None
    off = cur.take(Op.OFFSETINT)
    if off is None:
        return None
    step = off.signed(0)
    asg = cur.take(Op.ASSIGN)
    if asg is None or asg.raw[0] != 0:
        return None
    if cur.i != back.index or exit_index != back.next:
        return None
    if cmp_op == int(Op.LEINT) and step <= 0:
        return None
    if cmp_op == int(Op.GEINT) and step >= 0:
        return None
    iter_count = cond_count + steps + 4  # bump (3) + back-edge BRANCH
    return StrideLoopPlan(
        head=head,
        exit=exit_index,
        iter_count=iter_count,
        cond_count=cond_count,
        cmp_op=cmp_op,
        step=step,
        store=store,
    )


def plan_stride_loops(
    entries: list[Optional[DecodedInstruction]],
) -> list[StrideLoopPlan]:
    """Find every batchable array-stride loop (one plan per head)."""
    plans: dict[int, StrideLoopPlan] = {}
    for e in entries:
        if e is None or e.op != int(Op.BRANCH) or not e.targets:
            continue
        if e.targets[0] >= e.index:
            continue  # not a back-edge
        plan = _match_stride_loop(entries, e)
        if plan is not None and plan.head not in plans:
            plans[plan.head] = plan
    return list(plans.values())


def plan_counted_loops(
    entries: list[Optional[DecodedInstruction]],
) -> list[CountedLoopPlan]:
    """Find every batchable counted loop (one plan per loop head)."""
    plans: dict[int, CountedLoopPlan] = {}
    for e in entries:
        if e is None or e.op != int(Op.BRANCH) or not e.targets:
            continue
        if e.targets[0] >= e.index:
            continue  # not a back-edge
        plan = _match_counted_loop(entries, e)
        if plan is not None and plan.head not in plans:
            plans[plan.head] = plan
    return list(plans.values())


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def decode_image(units: list[int]) -> DecodedProgram:
    """Decode a unit array into a stream with fusion and loop plans."""
    entries = _decode_entries(units)
    groups = plan_fusion(entries)
    loops: list = plan_counted_loops(entries)
    taken = {p.head for p in loops}
    for plan in plan_stride_loops(entries):
        if plan.head not in taken:
            loops.append(plan)
            taken.add(plan.head)
    return DecodedProgram(len(units), entries, groups, loops)
