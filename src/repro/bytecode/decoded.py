"""Decode-once instruction streams (the raw-speed tier's front end).

The reference interpreter re-fetches the opcode, re-looks-up the
handler and re-decodes every operand each time an instruction executes.
This module does all of that exactly once per :class:`CodeImage`:

* :func:`decode_image` turns the flat unit array into a dense stream of
  :class:`DecodedInstruction` records — operands extracted, signedness
  resolved, branch targets converted to absolute unit indices.
* :func:`plan_fusion` rewrites the stream with *superinstructions*: the
  hottest opcode pairs/triples (measured with ``repro trace`` over the
  example workloads, see docs/DISPATCH.md) are grouped so the fast loop
  dispatches them as one unit.
* :func:`plan_counted_loops` recognizes tight counted loops over global
  ``ref`` cells (the ``dispatch_rate`` workload shape) that the fast
  tier can execute as a batched kernel, many iterations per safe-point
  check.

Everything here is *architecture- and VM-independent*: it depends only
on the code units, so one decoded program is shared by every
``VirtualMachine`` (and every restart) running the same image.  The
**pc invariant**: all indices in the decoded stream are canonical code
*unit* indices — ``pc``, branch targets, trap frames, closures and
checkpointed thread state never see decoded/fused positions, so
checkpoint files are bit-identical whether fusion is on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bytecode.opcodes import BRANCH_OPERANDS, OPERAND_COUNTS, Op

__all__ = [
    "DecodedInstruction",
    "DecodedProgram",
    "FusedGroup",
    "CountedLoopPlan",
    "LoopUpdate",
    "decode_image",
    "FUSION_PATTERNS",
    "FUSIBLE_INNER",
    "FUSIBLE_TAIL",
]


def _signed(u: int) -> int:
    """A 32-bit unit as a signed operand (two's complement)."""
    return u - (1 << 32) if u & (1 << 31) else u


@dataclass(frozen=True)
class DecodedInstruction:
    """One instruction, fully decoded.

    ``raw`` holds the operand units as stored (unsigned); ``targets``
    holds, for branch-style operands, the *absolute* unit index each
    offset resolves to (offsets are relative to the operand's own
    position, OCaml's ``pc += *pc`` convention).
    """

    op: int
    raw: tuple[int, ...]
    index: int          #: unit index of the opcode
    next: int           #: unit index of the following instruction
    targets: tuple[int, ...] = ()

    def signed(self, i: int) -> int:
        return _signed(self.raw[i])


@dataclass(frozen=True)
class FusedGroup:
    """A planned superinstruction: consecutive instruction starts."""

    start: int                 #: unit index of the first member
    members: tuple[int, ...]   #: unit indices of every member
    ops: tuple[int, ...]       #: their opcodes
    count: int                 #: canonical instructions represented


@dataclass(frozen=True)
class LoopUpdate:
    """One ``ref := !ref <op> operand`` statement in a counted-loop body.

    ``operand_kind`` is ``"const"`` (operand_value is the literal) or
    ``"ref"`` (operand_value is the global index of a ref cell read at
    this point of the iteration).  ``sign`` is +1 for ADDINT, -1 for
    SUBINT.
    """

    target: int
    sign: int
    operand_kind: str
    operand_value: int


@dataclass(frozen=True)
class CountedLoopPlan:
    """A ``while`` loop over global int refs the fast tier can batch.

    Shape (unit indices, all canonical)::

        head:  CHECK_SIGNALS
               <cond: bound; PUSH; counter deref; CMP>
               BRANCHIFNOT exit
               <body: one or more LoopUpdate blocks>
        back:  BRANCH head
        exit:  ...

    ``iter_count`` is the canonical instruction count of one full
    iteration (head through the back-edge BRANCH); ``cond_count`` the
    count of the final, failing pass (head through BRANCHIFNOT).
    """

    head: int
    exit: int
    iter_count: int
    cond_count: int
    counter: int                       #: global index of the loop ref
    cmp_op: int                        #: Op.LTINT/LEINT/GTINT/GEINT
    step: int                          #: signed per-iteration increment
    bound_const: Optional[int]         #: literal bound, or None
    bound_global: Optional[int]        #: global index of a bound ref
    updates: tuple[LoopUpdate, ...]    #: body statements, in order


class DecodedProgram:
    """The decoded stream plus fusion and loop plans for one image."""

    __slots__ = ("n_units", "entries", "groups", "loops")

    def __init__(
        self,
        n_units: int,
        entries: list[Optional[DecodedInstruction]],
        groups: list[FusedGroup],
        loops: list[CountedLoopPlan],
    ) -> None:
        self.n_units = n_units
        #: Indexed by unit; ``None`` at operand slots and undecodable
        #: positions (the fast tier falls back to single-step reference
        #: dispatch there, so misaligned jumps keep reference behavior).
        self.entries = entries
        self.groups = groups
        self.loops = loops


# ---------------------------------------------------------------------------
# Stage 1: linear decode
# ---------------------------------------------------------------------------

_VALID_OPS = {int(op) for op in Op}


def _decode_entries(units: list[int]) -> list[Optional[DecodedInstruction]]:
    n = len(units)
    entries: list[Optional[DecodedInstruction]] = [None] * n
    i = 0
    while i < n:
        op = units[i]
        if op not in _VALID_OPS:
            # Illegal opcode: leave None; execution raises exactly as
            # the reference loop does.  Resync at the next unit.
            i += 1
            continue
        argc = OPERAND_COUNTS[Op(op)]
        if i + argc >= n:
            # Truncated instruction at the end of the image.
            i += 1
            continue
        raw = tuple(units[i + 1 : i + 1 + argc])
        branch_slots = BRANCH_OPERANDS.get(Op(op), ())
        targets = tuple(
            (i + 1 + slot) + _signed(raw[slot]) for slot in branch_slots
        )
        entries[i] = DecodedInstruction(op, raw, i, i + 1 + argc, targets)
        i += 1 + argc
    return entries


# ---------------------------------------------------------------------------
# Stage 2: superinstruction fusion
# ---------------------------------------------------------------------------

#: Opcodes safe anywhere in a fused group: straight-line, never touch
#: ``pc`` (beyond falling through), never raise a *catchable* VM
#: exception mid-group, never switch threads.  Allocating opcodes are
#: fine — a GC inside a group sees coherent registers and stacks.
FUSIBLE_INNER = frozenset(
    int(op)
    for op in (
        Op.ACC, Op.PUSH, Op.PUSHACC, Op.POP, Op.ASSIGN,
        Op.ENVACC, Op.PUSHENVACC, Op.OFFSETCLOSURE0,
        Op.CONSTINT, Op.PUSHCONSTINT, Op.ATOM, Op.PUSHATOM,
        Op.GETGLOBAL, Op.PUSHGETGLOBAL, Op.SETGLOBAL,
        Op.GETFIELD, Op.SETFIELD, Op.VECTLENGTH, Op.ISINT,
        Op.NEGINT, Op.ADDINT, Op.SUBINT, Op.MULINT,
        Op.ANDINT, Op.ORINT, Op.XORINT,
        Op.LSLINT, Op.LSRINT, Op.ASRINT,
        Op.OFFSETINT, Op.BOOLNOT,
        Op.EQ, Op.NEQ, Op.LTINT, Op.LEINT, Op.GTINT, Op.GEINT,
        Op.MAKEBLOCK, Op.STRLIT, Op.FLOATLIT,
    )
)

#: Opcodes additionally allowed as the *last* member of a group (they
#: choose the next pc themselves).
FUSIBLE_TAIL = FUSIBLE_INNER | {
    int(Op.BRANCH), int(Op.BRANCHIF), int(Op.BRANCHIFNOT),
}

_CMPS = (Op.EQ, Op.NEQ, Op.LTINT, Op.LEINT, Op.GTINT, Op.GEINT)

#: The fusion table: hot opcode pairs/triples, longest-match-first.
#: Chosen from the ``repro trace`` hot-pair profile over the example
#: workloads (see docs/DISPATCH.md for the data and how to extend it).
FUSION_PATTERNS: list[tuple[int, ...]] = [
    tuple(int(o) for o in pat)
    for pat in (
        # Triples
        [(Op.CONSTINT, Op.PUSH, Op.GETGLOBAL)]
        + [(Op.GETFIELD, c, b) for c in _CMPS
           for b in (Op.BRANCHIFNOT, Op.BRANCHIF)]
        + [(Op.ACC, Op.OFFSETINT, Op.ASSIGN)]
        + [(Op.ACC, Op.PUSH, Op.ACC)]
        + [(Op.CONSTINT, Op.PUSH, Op.ACC)]
        # Pairs
        + [(c, b) for c in _CMPS for b in (Op.BRANCHIFNOT, Op.BRANCHIF)]
        + [(Op.ISINT, Op.BRANCHIF), (Op.ISINT, Op.BRANCHIFNOT)]
        + [
            (Op.ACC, Op.PUSH),
            (Op.CONSTINT, Op.PUSH),
            (Op.ENVACC, Op.PUSH),
            (Op.GETGLOBAL, Op.GETFIELD),
            (Op.GETFIELD, Op.PUSH),
            (Op.GETFIELD, Op.ADDINT),
            (Op.PUSH, Op.GETGLOBAL),
            (Op.PUSH, Op.ACC),
            (Op.OFFSETINT, Op.ASSIGN),
        ]
    )
]

for _pat in FUSION_PATTERNS:  # sanity: the table respects the sets
    assert all(o in FUSIBLE_INNER for o in _pat[:-1]), _pat
    assert _pat[-1] in FUSIBLE_TAIL, _pat

# First-op index, longest pattern first so greedy matching prefers
# triples over pairs.
_BY_FIRST: dict[int, list[tuple[int, ...]]] = {}
for _pat in FUSION_PATTERNS:
    _BY_FIRST.setdefault(_pat[0], []).append(_pat)
for _pats in _BY_FIRST.values():
    _pats.sort(key=len, reverse=True)


def plan_fusion(
    entries: list[Optional[DecodedInstruction]],
) -> list[FusedGroup]:
    """Greedy longest-match fusion over consecutive instruction starts.

    A group only *adds* a combined entry at its start index; the member
    instructions keep their individual entries, so jumps (or restored
    checkpoints) landing mid-group execute the canonical singles.
    """
    groups: list[FusedGroup] = []
    n = len(entries)
    i = 0
    while i < n:
        e = entries[i]
        if e is None:
            i += 1
            continue
        candidates = _BY_FIRST.get(e.op)
        matched = None
        if candidates:
            for pat in candidates:
                members = [e]
                cur = e
                ok = True
                for want in pat[1:]:
                    nxt = entries[cur.next] if cur.next < n else None
                    if nxt is None or nxt.op != want:
                        ok = False
                        break
                    members.append(nxt)
                    cur = nxt
                if ok:
                    matched = members
                    break
        if matched is not None:
            groups.append(
                FusedGroup(
                    start=i,
                    members=tuple(m.index for m in matched),
                    ops=tuple(m.op for m in matched),
                    count=len(matched),
                )
            )
            i = matched[-1].next
        else:
            i = e.next
    return groups


# ---------------------------------------------------------------------------
# Stage 3: counted-loop recognition (batched kernels)
# ---------------------------------------------------------------------------

_REF_DEREF = (int(Op.GETGLOBAL), int(Op.GETFIELD))
_REL_CMPS = {int(Op.LTINT), int(Op.LEINT), int(Op.GTINT), int(Op.GEINT)}


class _Cursor:
    """A little matching cursor over the decoded stream."""

    def __init__(self, entries, start: int) -> None:
        self.entries = entries
        self.i = start

    def take(self, op: Op) -> Optional[DecodedInstruction]:
        e = self.entries[self.i] if 0 <= self.i < len(self.entries) else None
        if e is None or e.op != int(op):
            return None
        self.i = e.next
        return e

    def peek_op(self) -> Optional[int]:
        e = self.entries[self.i] if 0 <= self.i < len(self.entries) else None
        return None if e is None else e.op


def _match_deref(cur: _Cursor) -> Optional[int]:
    """Match ``GETGLOBAL g; GETFIELD 0`` -> g."""
    g = cur.take(Op.GETGLOBAL)
    if g is None:
        return None
    f = cur.take(Op.GETFIELD)
    if f is None or f.raw[0] != 0:
        return None
    return g.raw[0]


def _match_update(cur: _Cursor) -> Optional[LoopUpdate]:
    """Match one ``a := !a (+|-) (k | !b)`` statement.

    Two compiled shapes::

        CONSTINT k; PUSH; GETGLOBAL a; GETFIELD 0; ADDINT|SUBINT;
            PUSH; GETGLOBAL a; SETFIELD 0
        GETGLOBAL b; GETFIELD 0; PUSH; GETGLOBAL a; GETFIELD 0;
            ADDINT|SUBINT; PUSH; GETGLOBAL a; SETFIELD 0
    """
    start = cur.i
    kind = None
    value = None
    if (k := cur.take(Op.CONSTINT)) is not None:
        kind, value = "const", k.signed(0)
    else:
        cur.i = start
        b = _match_deref(cur)
        if b is None:
            cur.i = start
            return None
        kind, value = "ref", b
    if cur.take(Op.PUSH) is None:
        cur.i = start
        return None
    a = _match_deref(cur)
    if a is None:
        cur.i = start
        return None
    if cur.take(Op.ADDINT) is not None:
        sign = 1
    elif cur.take(Op.SUBINT) is not None:
        sign = -1
    else:
        cur.i = start
        return None
    if cur.take(Op.PUSH) is None:
        cur.i = start
        return None
    g2 = cur.take(Op.GETGLOBAL)
    sf = cur.take(Op.SETFIELD)
    if g2 is None or g2.raw[0] != a or sf is None or sf.raw[0] != 0:
        cur.i = start
        return None
    return LoopUpdate(target=a, sign=sign, operand_kind=kind,
                      operand_value=value)


def _match_counted_loop(
    entries: list[Optional[DecodedInstruction]],
    back: DecodedInstruction,
) -> Optional[CountedLoopPlan]:
    """Try to match the counted-loop template rooted at a back-edge."""
    head = back.targets[0]
    if not 0 <= head < len(entries):
        return None
    cur = _Cursor(entries, head)
    n_instr = 0

    def count_since(mark: int) -> int:
        # canonical instruction count between two cursor marks
        c, i = 0, mark
        while i < cur.i:
            e = entries[i]
            if e is None:
                return -1
            c += 1
            i = e.next
        return c

    if cur.take(Op.CHECK_SIGNALS) is None:
        return None
    # Condition: <bound>; PUSH; !counter; CMP; BRANCHIFNOT exit
    bound_const = bound_global = None
    if (k := cur.take(Op.CONSTINT)) is not None:
        bound_const = k.signed(0)
    else:
        bound_global = _match_deref(cur)
        if bound_global is None:
            return None
    if cur.take(Op.PUSH) is None:
        return None
    counter = _match_deref(cur)
    if counter is None:
        return None
    if cur.peek_op() not in _REL_CMPS:
        return None
    cmp_instr = entries[cur.i]
    cur.i = cmp_instr.next
    branchifnot = cur.take(Op.BRANCHIFNOT)
    if branchifnot is None:
        return None
    exit_index = branchifnot.targets[0]
    cond_count = count_since(head)
    if cond_count < 0:
        return None
    # Body: one or more updates, then BRANCH back to head.
    updates: list[LoopUpdate] = []
    while True:
        if cur.i == back.index:
            break
        u = _match_update(cur)
        if u is None:
            return None
        updates.append(u)
        if len(updates) > 8:
            return None
    if not updates:
        return None
    if cur.take(Op.BRANCH) is None or exit_index != back.next:
        return None
    iter_count = count_since(head)
    # Exactly one constant-step update of the counter; accumulators are
    # write-only (operands may only be constants, the counter, or refs
    # never written in the body) and each target is written once.
    targets = [u.target for u in updates]
    if len(set(targets)) != len(targets):
        return None
    counter_updates = [
        u for u in updates
        if u.target == counter and u.operand_kind == "const"
    ]
    if len(counter_updates) != 1 or any(
        u.target == counter for u in updates if u not in counter_updates
    ):
        return None
    if bound_global is not None and bound_global in targets:
        return None
    written = set(targets)
    for u in updates:
        if u.operand_kind == "ref":
            if u.operand_value in written and u.operand_value != counter:
                return None
            if u.operand_value == u.target:
                return None
    step = counter_updates[0].sign * counter_updates[0].operand_value
    return CountedLoopPlan(
        head=head,
        exit=exit_index,
        iter_count=iter_count,
        cond_count=cond_count,
        counter=counter,
        cmp_op=cmp_instr.op,
        step=step,
        bound_const=bound_const,
        bound_global=bound_global,
        updates=tuple(updates),
    )


def plan_counted_loops(
    entries: list[Optional[DecodedInstruction]],
) -> list[CountedLoopPlan]:
    """Find every batchable counted loop (one plan per loop head)."""
    plans: dict[int, CountedLoopPlan] = {}
    for e in entries:
        if e is None or e.op != int(Op.BRANCH) or not e.targets:
            continue
        if e.targets[0] >= e.index:
            continue  # not a back-edge
        plan = _match_counted_loop(entries, e)
        if plan is not None and plan.head not in plans:
            plans[plan.head] = plan
    return list(plans.values())


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def decode_image(units: list[int]) -> DecodedProgram:
    """Decode a unit array into a stream with fusion and loop plans."""
    entries = _decode_entries(units)
    groups = plan_fusion(entries)
    loops = plan_counted_loops(entries)
    return DecodedProgram(len(units), entries, groups, loops)
