"""The code image: a portable program file plus its in-memory mapping.

Code units are always 32 bits and serialized little-endian, so the same
program file loads on every platform (like OCaml ``.byc`` files).  In a
running VM the image is mapped at the platform's ``code_base``; code
addresses are ``code_base + 4 * unit_index`` and appear inside closures
and return frames — the restart logic re-bases them without scaling.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.errors import BytecodeError

#: Code addressing granularity in bytes, on every architecture.
CODE_UNIT_BYTES = 4

_MAGIC = b"RBYC\x01"
_UNIT_MASK = 0xFFFFFFFF


class CodeImage:
    """An immutable byte-code program."""

    def __init__(
        self,
        units: list[int],
        name: str = "<anonymous>",
        n_globals: int = 0,
        string_literals: list[bytes] | None = None,
        float_literals: list[float] | None = None,
    ) -> None:
        #: Code units, stored unsigned.
        self.units: list[int] = self._validated_units(units)
        #: Lazily built decoded stream (see :meth:`decoded`); shared by
        #: every VM and restart on this image, so re-decoding is paid
        #: exactly once per program load.
        self._decoded = None
        self.name = name
        #: Size of the global-data block the program expects.
        self.n_globals = n_globals
        #: Literal pools referenced by STRLIT / FLOATLIT.
        self.string_literals: list[bytes] = list(string_literals or [])
        self.float_literals: list[float] = list(float_literals or [])

    @staticmethod
    def _validated_units(units: list[int]) -> list[int]:
        """Range-check and mask every unit to unsigned 32-bit.

        Vectorized: one numpy pass instead of a Python loop per unit,
        which dominates image-load time for large programs.  Falls back
        to the scalar path for tiny images and for exotic inputs numpy
        cannot hold (ints beyond 64 bits — always out of range, but the
        error must name the offender).
        """
        n = len(units)
        if n >= 32:
            try:
                arr = np.asarray(units, dtype=np.int64)
            except (OverflowError, TypeError, ValueError):
                pass
            else:
                bad = (arr < -(1 << 31)) | (arr >= (1 << 32))
                if bad.any():
                    offender = int(arr[int(np.argmax(bad))])
                    raise BytecodeError(
                        f"code unit {offender} out of 32-bit range"
                    )
                return (arr & _UNIT_MASK).tolist()
        out = []
        for u in units:
            if not -(2**31) <= u < 2**32:
                raise BytecodeError(f"code unit {u} out of 32-bit range")
            out.append(u & _UNIT_MASK)
        return out

    def decoded(self):
        """The decode-once instruction stream for this image (cached).

        Returns a :class:`repro.bytecode.decoded.DecodedProgram` built
        on first use; repeated ``VirtualMachine`` constructions and
        restarts on the same image reuse it.
        """
        if self._decoded is None:
            from repro.bytecode.decoded import decode_image

            self._decoded = decode_image(self.units)
        return self._decoded

    def __len__(self) -> int:
        return len(self.units)

    @property
    def size_bytes(self) -> int:
        """Image size in bytes when mapped."""
        return len(self.units) * CODE_UNIT_BYTES

    def digest(self) -> bytes:
        """SHA-256 of the serialized units.

        Stored in checkpoint files so a restart can verify it is resuming
        the *same program* the checkpoint was taken from.
        """
        h = hashlib.sha256()
        h.update(struct.pack("<I", self.n_globals))
        h.update(struct.pack(f"<{len(self.units)}I", *self.units))
        for s in self.string_literals:
            h.update(struct.pack("<I", len(s)))
            h.update(s)
        for x in self.float_literals:
            h.update(struct.pack("<d", x))
        return h.digest()

    def signed_unit(self, index: int) -> int:
        """Read a unit as a signed 32-bit value (for immediate operands)."""
        u = self.units[index]
        return u - (1 << 32) if u & (1 << 31) else u

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the portable program format."""
        name_raw = self.name.encode()
        parts = [
            _MAGIC,
            struct.pack("<I", len(name_raw)),
            name_raw,
            struct.pack("<II", self.n_globals, len(self.units)),
            struct.pack(f"<{len(self.units)}I", *self.units),
            struct.pack("<I", len(self.string_literals)),
        ]
        for s in self.string_literals:
            parts.append(struct.pack("<I", len(s)))
            parts.append(s)
        parts.append(struct.pack("<I", len(self.float_literals)))
        parts.append(struct.pack(f"<{len(self.float_literals)}d", *self.float_literals))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CodeImage":
        """Load a serialized program."""
        try:
            return cls._from_bytes(data)
        except struct.error as exc:
            raise BytecodeError(f"truncated byte-code image: {exc}") from None

    @classmethod
    def _from_bytes(cls, data: bytes) -> "CodeImage":
        if data[: len(_MAGIC)] != _MAGIC:
            raise BytecodeError("not a byte-code image (bad magic)")
        off = len(_MAGIC)
        (name_len,) = struct.unpack_from("<I", data, off)
        off += 4
        name = data[off : off + name_len].decode()
        off += name_len
        n_globals, n_units = struct.unpack_from("<II", data, off)
        off += 8
        expected = off + n_units * CODE_UNIT_BYTES
        if len(data) < expected:
            raise BytecodeError("truncated byte-code image")
        units = list(struct.unpack_from(f"<{n_units}I", data, off))
        off = expected
        (n_strs,) = struct.unpack_from("<I", data, off)
        off += 4
        strs: list[bytes] = []
        for _ in range(n_strs):
            (slen,) = struct.unpack_from("<I", data, off)
            off += 4
            strs.append(data[off : off + slen])
            off += slen
        (n_floats,) = struct.unpack_from("<I", data, off)
        off += 4
        floats = list(struct.unpack_from(f"<{n_floats}d", data, off))
        return cls(units, name, n_globals, strs, floats)
