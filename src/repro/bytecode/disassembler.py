"""Disassembler: render a code image back into readable text.

Used by the examples, by error messages, and heavily by tests to assert
on compiler output.
"""

from __future__ import annotations

from repro.bytecode.image import CodeImage
from repro.bytecode.opcodes import BRANCH_OPERANDS, OPERAND_COUNTS, Op
from repro.errors import BytecodeError


def disassemble(image: CodeImage) -> str:
    """Pretty-print a whole code image, one instruction per line."""
    return "\n".join(text for _, text in iter_instructions(image))


def iter_instructions(image: CodeImage):
    """Yield ``(unit_index, text)`` for every instruction."""
    i = 0
    n = len(image.units)
    while i < n:
        raw = image.units[i]
        try:
            op = Op(raw)
        except ValueError:
            raise BytecodeError(f"unknown opcode {raw} at unit {i}") from None
        argc = OPERAND_COUNTS[op]
        if i + argc >= n:
            raise BytecodeError(f"truncated {op.name} at unit {i}")
        parts = [f"{i:6d}  {op.name}"]
        branch_slots = BRANCH_OPERANDS.get(op, ())
        for k in range(argc):
            operand_pos = i + 1 + k
            v = image.signed_unit(operand_pos)
            if k in branch_slots:
                parts.append(f"-> {operand_pos + v}")
            else:
                parts.append(str(v))
        yield i, " ".join(parts)
        i += 1 + argc
