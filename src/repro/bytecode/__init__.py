"""Byte-code: instruction set, assembler, disassembler, code image.

The instruction set is a ZINC-machine subset modelled on the OCaml 2.02
byte-code interpreter the paper instruments: an accumulator machine with
environment-based closures, GRAB/RESTART partial application, and an
explicit CHECK_SIGNALS safe point (paper §3.1.2).

Code is a sequence of 32-bit units on *every* architecture — exactly like
OCaml byte-code files, which is what makes the program image portable
across the heterogeneous platforms.
"""

from repro.bytecode.opcodes import Op, OPERAND_COUNTS
from repro.bytecode.assembler import Assembler, Label
from repro.bytecode.image import CodeImage, CODE_UNIT_BYTES
from repro.bytecode.disassembler import disassemble

__all__ = [
    "Op",
    "OPERAND_COUNTS",
    "Assembler",
    "Label",
    "CodeImage",
    "CODE_UNIT_BYTES",
    "disassemble",
]
